"""Generate the committed photograph fixture for the imaging benchmark.

``benchmarks/bench_imaging.py`` gates the RD/PSNR contracts on two
inputs: the synthetic ramp-and-texture scene and a *photograph-like*
image with the second-order statistics of a natural photo.  The
container has no network access and no image libraries beyond the
in-repo PGM codec, so the fixture is synthesized here from the three
properties that distinguish photographs from procedural test patterns
(Ruderman, "The statistics of natural images", 1994):

- a ``1/f``-law amplitude spectrum (random-phase pink noise, the
  cloud-like base texture every natural scene shares);
- strong oriented edges — a soft horizon step and an occluding disc —
  whose heavy-tailed wavelet marginals pure pink noise lacks;
- global illumination structure: a corner-to-corner lighting gradient,
  lens vignetting, and faint sensor grain.

The output is byte-for-byte deterministic (fixed seed, fixed numpy
ops), so re-running this script reproduces the committed file exactly:

    PYTHONPATH=src python tools/make_photo_fixture.py \
        [benchmarks/data/photo.pgm]
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

import numpy as np

from repro.io.image_io import write_pgm

SIZE = 96          # matches the benchmark's TEST_SIZE; divisible by TILE
SEED = 20240917    # fixed forever: the committed bytes depend on it
SPECTRAL_SLOPE = 1.1   # amplitude ~ 1/f**slope (natural images: ~1.0-1.2)
DEFAULT_PATH = os.path.join("benchmarks", "data", "photo.pgm")


def _pink_noise(rng: np.random.Generator, size: int) -> np.ndarray:
    """Random-phase noise with a 1/f**slope amplitude spectrum,
    normalized to zero mean and unit variance."""
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    radius = np.hypot(fy, fx)
    radius[0, 0] = 1.0  # leave DC finite; the mean is removed below
    amplitude = radius ** -SPECTRAL_SLOPE
    phase = rng.uniform(0.0, 2.0 * np.pi, size=(size, size))
    field = np.fft.ifft2(amplitude * np.exp(1j * phase)).real
    field -= field.mean()
    return field / field.std()


def make_photo(size: int = SIZE, seed: int = SEED) -> np.ndarray:
    """A deterministic grayscale 'photograph' in [0, 1]."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0.0, 1.0, size), np.linspace(0.0, 1.0, size),
        indexing="ij",
    )

    # Base texture plus a corner-to-corner illumination gradient.
    image = 0.52 + 0.16 * _pink_noise(rng, size)
    image += 0.18 * (1.0 - yy) + 0.08 * xx

    # A soft horizon: darker foreground below a slightly tilted edge.
    horizon = 0.62 + 0.05 * np.sin(2.2 * np.pi * xx) + 0.04 * xx
    below = 1.0 / (1.0 + np.exp(-(yy - horizon) * size * 1.5))
    image -= 0.22 * below

    # An occluding bright disc (the classic sun-over-hills silhouette):
    # a hard curved edge with a 1-pixel soft rim.
    disc = np.hypot(yy - 0.30, xx - 0.68) - 0.13
    image += 0.24 / (1.0 + np.exp(disc * size * 2.0))

    # Lens vignetting and sensor grain.
    radial2 = (yy - 0.5) ** 2 + (xx - 0.5) ** 2
    image *= 1.0 - 0.45 * radial2
    image += 0.012 * rng.standard_normal((size, size))

    # Stretch to a photographic tonal range with small head/footroom.
    image = (image - image.min()) / (image.max() - image.min())
    return 0.02 + 0.96 * image


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else DEFAULT_PATH
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    write_pgm(make_photo(), path, binary=True)
    print(f"wrote {SIZE}x{SIZE} P5 fixture to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
