"""Run every ``benchmarks/bench_*.py`` and merge the JSON into one file.

The perf trajectory of this repo lives in the JSON the gated benchmarks
emit (``bench_backends``, ``bench_gradients``, ``bench_serving``,
``bench_sharding``, ``bench_jit``, ``bench_training``, ``bench_noise`` —
each a standalone ``main(argv) -> exit code`` script writing a payload).  Before this tool
each produced its own artifact; now one invocation runs the whole
directory and merges everything into ``BENCH_<rev>.json`` (``<rev>`` =
short git revision), so each PR leaves exactly one comparable snapshot
and CI uploads it as a workflow artifact.

Two benchmark flavours are discovered automatically:

- **JSON-gate scripts** (the file defines ``def main(``): run as
  ``python benchmarks/bench_X.py <tmp.json>``; their payload is merged
  verbatim and their exit code is the gate verdict.
- **pytest-benchmark suites** (everything else, e.g. the fig4/table1
  reproduction timings): run as ``pytest --benchmark-only
  --benchmark-json=<tmp.json>``; the per-benchmark ``(name, mean,
  stddev, rounds)`` stats are merged.

Usage::

    PYTHONPATH=src python tools/bench_all.py                  # all benches
    PYTHONPATH=src python tools/bench_all.py --select jit sharding
    PYTHONPATH=src python tools/bench_all.py --gates-only     # CI set
    PYTHONPATH=src python tools/bench_all.py --out-dir bench-artifacts
    PYTHONPATH=src python tools/bench_all.py --list

Exit status is non-zero if any selected benchmark fails its gates (or
errors), so CI can use this as the single perf step.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def discover() -> List[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def is_json_gate(path: Path) -> bool:
    """JSON-gate scripts expose ``main(argv)``; pytest suites do not."""
    return "def main(" in path.read_text(encoding="utf-8")


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _subenv() -> Dict[str, str]:
    import os

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def run_one(path: Path, timeout: float) -> Dict:
    """Run one benchmark file; returns its merged-record dict."""
    name = path.stem
    kind = "json-gate" if is_json_gate(path) else "pytest-benchmark"
    record: Dict = {"kind": kind}
    with tempfile.TemporaryDirectory() as tmp:
        out_json = Path(tmp) / f"{name}.json"
        if kind == "json-gate":
            cmd = [sys.executable, str(path), str(out_json)]
        else:
            cmd = [
                sys.executable,
                "-m",
                "pytest",
                str(path),
                "--benchmark-only",
                "-q",
                f"--benchmark-json={out_json}",
            ]
        t0 = time.perf_counter()
        try:
            proc = subprocess.run(
                cmd,
                cwd=REPO_ROOT,
                env=_subenv(),
                capture_output=True,
                text=True,
                timeout=timeout,
            )
            record["exit_code"] = proc.returncode
            record["passed"] = proc.returncode == 0
            if proc.returncode != 0:
                # Keep the tail so a red merged artifact is debuggable.
                record["stderr_tail"] = (proc.stderr or proc.stdout)[-2000:]
        except subprocess.TimeoutExpired:
            record["exit_code"] = None
            record["passed"] = False
            record["stderr_tail"] = f"timed out after {timeout}s"
        record["seconds"] = round(time.perf_counter() - t0, 3)
        if out_json.exists():
            try:
                payload = json.loads(out_json.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                payload = None
            if payload is not None:
                if kind == "json-gate":
                    record["payload"] = payload
                else:
                    record["stats"] = [
                        {
                            "name": b.get("name"),
                            "mean_s": b.get("stats", {}).get("mean"),
                            "stddev_s": b.get("stats", {}).get("stddev"),
                            "rounds": b.get("stats", {}).get("rounds"),
                        }
                        for b in payload.get("benchmarks", [])
                    ]
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="SUBSTR",
        help="only run benchmarks whose filename contains a given substring",
    )
    parser.add_argument(
        "--skip",
        nargs="+",
        default=[],
        metavar="SUBSTR",
        help="skip benchmarks whose filename contains a given substring",
    )
    parser.add_argument(
        "--gates-only",
        action="store_true",
        help="run only the JSON-gate scripts (the CI perf-floor set)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT / "bench-artifacts",
        help="directory for the merged BENCH_<rev>.json (default: "
        "bench-artifacts/)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=1800.0,
        help="per-benchmark timeout in seconds (default 1800)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list discovered benchmarks"
    )
    args = parser.parse_args(argv)

    benches = discover()
    if args.gates_only:
        benches = [b for b in benches if is_json_gate(b)]
    if args.select:
        benches = [
            b for b in benches if any(s in b.stem for s in args.select)
        ]
    benches = [
        b for b in benches if not any(s in b.stem for s in args.skip)
    ]
    if args.list:
        for b in benches:
            kind = "json-gate" if is_json_gate(b) else "pytest-benchmark"
            print(f"{b.stem:40s} {kind}")
        return 0
    if not benches:
        print("no benchmarks selected", file=sys.stderr)
        return 1

    rev = git_rev()
    merged: Dict = {
        "rev": rev,
        "python": sys.version.split()[0],
        "benches": {},
    }
    failed: List[str] = []
    for path in benches:
        print(f"== {path.stem} ==", flush=True)
        record = run_one(path, args.timeout)
        merged["benches"][path.stem] = record
        status = "ok" if record["passed"] else "FAIL"
        print(f"   {status} in {record['seconds']}s", flush=True)
        if not record["passed"]:
            failed.append(path.stem)

    args.out_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.out_dir / f"BENCH_{rev}.json"
    out_path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nmerged benchmark JSON written to {out_path}")
    if failed:
        print(f"FAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
