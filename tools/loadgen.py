"""Open-loop many-client load generator for the serving front-end.

Drives ``N`` concurrent connections against a ``repro serve`` instance,
each sending single-sample reconstruct requests on a fixed wall-clock
schedule — *open loop*: the send times are decided up front from the
target rate, not by waiting for responses, so an overloaded server sees
the true arrival process instead of a self-throttling client (the
coordinated-omission trap).  Reports p50/p99 latency, achieved
throughput and the shed/deadline/error split, as JSON if asked.

Usage::

    PYTHONPATH=src python tools/loadgen.py --port 8077 \
        --clients 8 --rate 1000 --duration 5 --deadline-ms 50 \
        --json load.json

``--rate`` is the *total* offered request rate (spread evenly over the
clients).  ``--dim`` must match the served model (default: the paper's
16); the generator pre-builds a deterministic request pool so the hot
loop does no RNG work.  ``--payload image`` fills the pool with real
tile-coefficient vectors from the :mod:`repro.imaging` front-end
(tile side ``sqrt(dim)``, DCT + quantization over a synthetic
grayscale scene) instead of the default abs-normal noise — the vector
statistics a codec serving the image pipeline actually sees.

When the target server was launched with a noise model (``repro serve
--noise ...``), pass the same ``--noise`` / ``--noise-preset`` (and
``--noise-trajectories``) here: the spec is validated, canonicalised
and stamped into the summary JSON, so noisy and clean load runs stay
comparable side by side.

The module is importable (``run_load``) — ``benchmarks/bench_frontend.py``
reuses it so the CI gate and the operator tool measure identically.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import DeadlineExpired, ServingError
from repro.serving.client import (
    AsyncServingClient,
    RequestShed,
    ServerClosing,
    ServerError,
)


@dataclass
class LoadResult:
    """Aggregated outcome of one load run."""

    offered: int = 0
    ok: int = 0
    shed: int = 0
    expired: int = 0
    closing: int = 0
    errors: int = 0
    latencies_s: List[float] = field(default_factory=list)
    wall_s: float = 0.0

    def summary(self) -> Dict:
        lat = np.sort(np.asarray(self.latencies_s, dtype=np.float64))

        def pct(q: float) -> float:
            if lat.size == 0:
                return 0.0
            return float(lat[min(lat.size - 1, int(q * lat.size))])

        answered = self.ok + self.shed + self.expired + self.closing
        return {
            "offered_requests": self.offered,
            "ok": self.ok,
            "shed": self.shed,
            "deadline_expired": self.expired,
            "closing": self.closing,
            "errors": self.errors,
            "shed_rate": self.shed / max(1, answered),
            "wall_s": self.wall_s,
            "achieved_req_per_s": self.ok / self.wall_s if self.wall_s
            else 0.0,
            "offered_req_per_s": self.offered / self.wall_s if self.wall_s
            else 0.0,
            "latency_p50_s": pct(0.50),
            "latency_p99_s": pct(0.99),
            "latency_max_s": float(lat[-1]) if lat.size else 0.0,
        }


async def _client_task(
    host: str,
    port: int,
    requests: np.ndarray,
    send_times: List[float],
    deadline_ms: int,
    start_at: float,
    result: LoadResult,
) -> None:
    """One open-loop client: send on schedule, await replies concurrently."""
    client = await AsyncServingClient.connect(host, port)
    inflight: List[asyncio.Task] = []

    async def _await_reply(future: "asyncio.Future", sent_at: float) -> None:
        try:
            await future
        except RequestShed:
            result.shed += 1
        except DeadlineExpired:
            result.expired += 1
        except ServerClosing:
            result.closing += 1
        except (ServerError, ServingError, ConnectionError, OSError):
            result.errors += 1
        else:
            result.ok += 1
            result.latencies_s.append(time.monotonic() - sent_at)

    try:
        pool_size = requests.shape[0]
        for i, offset in enumerate(send_times):
            delay = (start_at + offset) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            result.offered += 1
            sent_at = time.monotonic()
            try:
                future = await client.submit_reconstruct(
                    requests[i % pool_size], deadline_ms=deadline_ms
                )
            except (ConnectionError, OSError):
                result.errors += 1
                continue
            task = asyncio.ensure_future(_await_reply(future, sent_at))
            inflight.append(task)
        if inflight:
            await asyncio.gather(*inflight)
    finally:
        await client.close()


PAYLOADS = ("random", "image")


def build_request_pool(
    payload: str, dim: int, seed: int, size: int = 256
) -> np.ndarray:
    """The deterministic ``(size, dim)`` request pool for one load run.

    ``"random"`` is the abs-normal noise the serving benchmarks always
    used; ``"image"`` runs a synthetic grayscale scene through the
    imaging front half (:func:`repro.imaging.tile_magnitudes`) and
    serves the resulting tile-coefficient magnitude vectors.
    """
    rng = np.random.default_rng(seed)
    if payload == "random":
        return np.abs(rng.normal(size=(size, dim))) + 0.05
    if payload != "image":
        raise ValueError(f"payload must be one of {PAYLOADS}, got {payload!r}")
    import math

    from repro.imaging import tile_magnitudes

    tile = math.isqrt(dim)
    if tile * tile != dim:
        raise ValueError(
            f"--payload image needs a square tile: dim {dim} is not a "
            f"perfect square"
        )
    # Enough tiles to fill the pool: smooth ramps + texture, like the
    # blocks of a real photograph (smooth regions dominating, some
    # high-frequency content).
    side = tile * math.isqrt(-(-size // 1))  # tile * ceil(sqrt(size))
    while (side // tile) ** 2 < size:
        side += tile
    yy, xx = np.meshgrid(
        np.linspace(0.0, 1.0, side), np.linspace(0.0, 1.0, side),
        indexing="ij",
    )
    scene = 0.55 * yy + 0.25 * np.sin(7.0 * np.pi * xx) ** 2
    scene += 0.2 * rng.random((side, side))
    scene = np.clip(scene, 0.0, 1.0)
    prep = tile_magnitudes(scene, tile_size=tile, transform="dct")
    return prep.magnitudes[:size]


async def run_load(
    host: str,
    port: int,
    clients: int,
    rate: float,
    duration: float,
    deadline_ms: int = 0,
    dim: int = 16,
    seed: int = 7,
    payload: str = "random",
) -> Dict:
    """Run one open-loop load phase; returns the summary dict."""
    if clients < 1 or rate <= 0 or duration <= 0:
        raise ValueError("need clients >= 1, rate > 0, duration > 0")
    pool = build_request_pool(payload, dim, seed)
    per_client = rate / clients
    total = max(1, int(round(per_client * duration)))
    result = LoadResult()
    start_at = time.monotonic() + 0.05  # common epoch across clients
    tasks = []
    for c in range(clients):
        # Interleave client schedules so the aggregate is a steady
        # `rate`-per-second stream, not `clients` synchronised pulses.
        offsets = [(i + c / clients) / per_client for i in range(total)]
        tasks.append(_client_task(
            host, port, pool, offsets, deadline_ms, start_at, result,
        ))
    t0 = time.monotonic()
    await asyncio.gather(*tasks)
    result.wall_s = time.monotonic() - t0
    return result.summary()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent connections")
    parser.add_argument("--rate", type=float, default=500.0,
                        help="total offered request rate (req/s)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of offered load")
    parser.add_argument("--deadline-ms", type=int, default=0,
                        help="per-request deadline budget (0 = none)")
    parser.add_argument("--dim", type=int, default=16,
                        help="request vector length (must match the model)")
    parser.add_argument("--payload", choices=PAYLOADS, default="random",
                        help="request pool contents: 'random' abs-normal "
                             "noise, or 'image' tile-coefficient vectors "
                             "from the repro.imaging front half")
    parser.add_argument("--seed", type=int, default=7)
    noise = parser.add_mutually_exclusive_group()
    noise.add_argument("--noise", type=str, default=None, metavar="JSON",
                       help="NoiseModel the target server was launched "
                            "with (annotates the summary so noisy and "
                            "clean runs compare apples-to-apples)")
    noise.add_argument("--noise-preset", type=str, default=None,
                       help="named noise model (mild | lossy | harsh)")
    parser.add_argument("--noise-trajectories", type=int, default=8,
                        metavar="K",
                        help="server-side realizations per noisy pass "
                             "(annotation only)")
    parser.add_argument("--json", type=str, default=None,
                        help="write the summary JSON to this file")
    args = parser.parse_args(argv)

    noise_spec = args.noise or args.noise_preset
    if noise_spec is not None:
        from repro.noise.model import NoiseModel

        # Validate and canonicalise before the run, so a typo fails
        # fast instead of labelling five minutes of load with garbage.
        noise_spec = NoiseModel.from_spec(noise_spec).spec_string()

    summary = asyncio.run(run_load(
        host=args.host,
        port=args.port,
        clients=args.clients,
        rate=args.rate,
        duration=args.duration,
        deadline_ms=args.deadline_ms,
        dim=args.dim,
        seed=args.seed,
        payload=args.payload,
    ))
    if noise_spec is not None:
        summary["noise"] = noise_spec
        summary["noise_trajectories"] = args.noise_trajectories
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.json}", file=sys.stderr)
    # The generator reports; gating (if any) belongs to the caller.
    return 0 if summary["errors"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
