"""Documentation checker: doctest the docs and verify intra-repo links.

Two independent checks over ``README.md`` and ``docs/*.md`` (or any file
list given on the command line):

1. **Doctests** — every fenced ```` ```python ```` block containing
   ``>>>`` examples is executed with :mod:`doctest`.  Blocks within one
   file share a namespace (so a later block may use names a former block
   defined), exactly like a module docstring would.
2. **Links** — every relative markdown link ``[text](target)`` must
   resolve to an existing file or directory inside the repository
   (anchors are stripped; ``http(s)://``, ``mailto:`` and pure-anchor
   links are ignored).

Exit status is non-zero if any block fails or any link is broken — the
CI ``docs`` job runs this after the unit suite.

Usage::

    PYTHONPATH=src python tools/check_docs.py            # README + docs/
    PYTHONPATH=src python tools/check_docs.py docs/gradients.md
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def default_files() -> List[Path]:
    files = []
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def doctest_blocks(path: Path) -> Tuple[int, int]:
    """Run every ``>>>`` example in ``path``; returns (failed, attempted)."""
    text = path.read_text(encoding="utf-8")
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS
    )
    globs: dict = {}
    failed = attempted = 0
    for i, block in enumerate(_CODE_BLOCK.findall(text)):
        if ">>>" not in block:
            continue
        test = parser.get_doctest(
            block, globs, f"{path.name}[block {i}]", str(path), 0
        )
        result = runner.run(test, clear_globs=False)
        failed += result.failed
        attempted += result.attempted
        globs = test.globs  # carry definitions into the next block
    return failed, attempted


def broken_links(path: Path) -> List[str]:
    """Relative links in ``path`` that do not resolve inside the repo."""
    text = path.read_text(encoding="utf-8")
    bad = []
    for target in _LINK.findall(text):
        if target.startswith(_EXTERNAL):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        resolved = (path.parent / candidate).resolve()
        if not resolved.exists():
            bad.append(target)
    return bad


def check(files: Iterable[Path]) -> int:
    status = 0
    for path in files:
        failed, attempted = doctest_blocks(path)
        links = broken_links(path)
        label = path.relative_to(REPO_ROOT)
        print(
            f"{label}: {attempted} doctest example(s), "
            f"{failed} failure(s), {len(links)} broken link(s)"
        )
        for target in links:
            print(f"  broken link: {target}")
        if failed or links:
            status = 1
    return status


def main(argv: List[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    files = [Path(a).resolve() for a in args] if args else default_files()
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"no such file: {f}")
        return 2
    return check(files)


if __name__ == "__main__":
    sys.exit(main())
