"""Ablation (exp id abl-arch): architecture knobs of Section IV-A.

Sweeps the three hyper-parameters the paper fixes by hand and verifies the
design-choice rationale recorded in DESIGN.md:

- layers: deeper meshes reach lower loss (more SO(N) coverage); the
  paper's l_C = 12 sits past the expressivity knee (>= ceil(N/2) = 8);
- learning rate: eta = 0.01 trains stably; much larger rates destabilise;
- compression dim: accuracy collapses below the dataset's rank (4) and
  saturates at/above it — the knee the paper exploits with d = 4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    compression_dim_sweep,
    initializer_comparison,
    layer_sweep,
    learning_rate_sweep,
)
from repro.experiments.reporting import render_records


def test_layer_sweep(benchmark, quick_config):
    records = benchmark.pedantic(
        layer_sweep,
        args=(quick_config,),
        kwargs={"layer_counts": (2, 4, 8, 12)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="layer-count sweep (l_C)"))
    by_layers = {r["compression_layers"]: r for r in records}
    # Deep enough meshes beat the shallowest on compression loss.
    assert by_layers[12]["loss_c"] < by_layers[2]["loss_c"]


def test_learning_rate_sweep(benchmark, quick_config):
    records = benchmark.pedantic(
        learning_rate_sweep,
        args=(quick_config,),
        kwargs={"rates": (0.001, 0.01, 0.05)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="learning-rate sweep (eta)"))
    by_lr = {r["learning_rate"]: r for r in records}
    # eta = 0.01 (paper) learns faster than a 10x smaller rate at a fixed
    # budget.
    assert by_lr[0.01]["loss_r"] < by_lr[0.001]["loss_r"]


def test_compression_dim_knee(benchmark, quick_config):
    records = benchmark.pedantic(
        compression_dim_sweep,
        args=(quick_config,),
        kwargs={"dims": (2, 4, 8)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="compression-dimension sweep (d)"))
    by_d = {r["compressed_dim"]: r for r in records}
    # Below the data rank the reconstruction loss is materially worse.
    assert by_d[2]["loss_r"] > by_d[4]["loss_r"] * 2
    # At or above the rank, more channels don't hurt.
    assert by_d[8]["loss_r"] <= by_d[4]["loss_r"] * 3


def test_initializer_comparison(benchmark, quick_config):
    records = benchmark.pedantic(
        initializer_comparison,
        args=(quick_config,),
        kwargs={"methods": ("uniform", "zeros", "constant", "small")},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="theta initialisation comparison"))
    # The paper: "Different initialization methods will bring different
    # training effects" — all runs must at least be finite and scored.
    assert all(np.isfinite(r["loss_r"]) for r in records)
    assert len({round(r["loss_r"], 6) for r in records}) > 1
