"""Shared fixtures for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper: the
benchmark fixture times the computation, and the test body prints the same
rows/series the paper reports and asserts the qualitative *shape* (who
wins, convergence direction, knee positions) without pinning absolute
numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PaperConfig


@pytest.fixture(scope="session")
def paper_config() -> PaperConfig:
    """The full Section IV-A configuration (150 iterations)."""
    return PaperConfig()


@pytest.fixture(scope="session")
def quick_config() -> PaperConfig:
    """A reduced-budget configuration for the heavier sweeps."""
    return PaperConfig(
        iterations=60, compression_layers=8, reconstruction_layers=10
    )
