"""Front-end benchmark: socket round-trip fidelity, throughput, overload.

The network front-end (PR 7) puts a wire protocol, admission control and
deadlines between the client and the compiled
:class:`~repro.api.session.InferenceSession`.  None of that may cost
correctness, and the overload machinery has to actually shed.  Three
gate groups:

- **fidelity** (always): compress/decompress/reconstruct through a real
  socket match the in-process :class:`~repro.api.codec.Codec` to
  <= 1e-10, with the compressed payload surviving the wire **bitwise**
  (identical to what the serving session produces in-process — the
  protocol adds zero numerical error);
- **sustained** (>= 4 CPUs): an open-loop stream of single-image
  requests sustains >= 1000 req/s with p99 latency under the configured
  deadline;
- **burst** (>= 4 CPUs): against a deterministically throttled session
  driven at ~2x its capacity, the server sheds (shed rate > 0) while the
  p99 of *accepted* requests stays within the deadline — overload
  degrades by refusing work, not by serving everyone late.

On hosts with fewer than 4 CPUs the perf groups are skipped with a
logged reason (the fidelity gate always runs); the skip is recorded in
the JSON so the perf trajectory shows *why* a point is missing.

Run standalone (``PYTHONPATH=src python benchmarks/bench_frontend.py
[output.json]``) or via pytest (``pytest benchmarks/bench_frontend.py``);
set ``BENCH_FRONTEND_JSON`` to archive the JSON from the pytest run.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from typing import Dict, List

import numpy as np

from repro.api import Codec
from repro.serving import (
    FaultInjectingSession,
    ServerHarness,
    ServingClient,
    fetch_json,
)

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
from loadgen import run_load  # noqa: E402 - needs the tools/ dir on path

PAPER_DIM = 16
PAPER_COMPRESSED = 4
PAPER_LC = 12
PAPER_LR = 14

MATCH_TOL = 1e-10
MIN_CPUS = 4

# sustained-load gate
SUSTAINED_RATE = 1200.0     # offered req/s
SUSTAINED_FLOOR = 1000.0    # gate: achieved req/s
SUSTAINED_SECONDS = 3.0
SUSTAINED_DEADLINE_MS = 50

# burst gate: throttle each serving tick to TICK_DELAY_S so capacity is
# known, then offer ~2x that capacity.
BURST_TICK_DELAY_S = 0.02
BURST_MAX_INFLIGHT = 8
BURST_DEADLINE_MS = 250
BURST_SECONDS = 1.5
BURST_RATE = 800.0


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _codec(seed: int = 2024) -> Codec:
    return Codec(
        dim=PAPER_DIM,
        compressed_dim=PAPER_COMPRESSED,
        compression_layers=PAPER_LC,
        reconstruction_layers=PAPER_LR,
        seed=seed,
    )


# ----------------------------------------------------------------------
# gate groups
# ----------------------------------------------------------------------
def measure_fidelity() -> Dict:
    """Socket round-trips vs the in-process codec (always gated)."""
    codec = _codec()
    session = codec.session(flush_latency=None)
    rng = np.random.default_rng(7)
    X = np.abs(rng.normal(size=(25, PAPER_DIM))) + 0.05
    x_hat_local = codec.forward(X).x_hat
    payload_local = codec.compress(X)
    payload_sess = session.compress(X)  # same engine the server runs
    try:
        with ServerHarness(session) as harness:
            with ServingClient(harness.host, harness.port) as client:
                payload_net = client.compress(X)
                x_hat_net = client.decompress(payload_net)
                x_batch_net = client.reconstruct(X)
                x_one_net = client.reconstruct(X[0])
            stats = fetch_json(harness.host, harness.port, "/stats")
    finally:
        session.close()
    return {
        "compress_bitwise": bool(
            np.array_equal(payload_net.codes, payload_sess.codes)
            and np.array_equal(
                payload_net.squared_norms, payload_sess.squared_norms
            )
        ),
        "compress_match": float(max(
            np.max(np.abs(payload_net.codes - payload_local.codes)),
            np.max(np.abs(
                payload_net.squared_norms - payload_local.squared_norms
            )),
        )),
        "decompress_match": float(np.max(np.abs(x_hat_net - x_hat_local))),
        "reconstruct_batch_match": float(
            np.max(np.abs(x_batch_net - x_hat_local))
        ),
        "reconstruct_single_match": float(
            np.max(np.abs(x_one_net - x_hat_local[0]))
        ),
        "server_served": int(stats["server"]["served"]),
        "match_tol": MATCH_TOL,
    }


def measure_sustained() -> Dict:
    """Open-loop throughput against an unthrottled session."""
    codec = _codec()
    session = codec.session(flush_latency=None)
    try:
        with ServerHarness(session, max_inflight=4096) as harness:
            load = asyncio.run(run_load(
                host=harness.host,
                port=harness.port,
                clients=4,
                rate=SUSTAINED_RATE,
                duration=SUSTAINED_SECONDS,
                deadline_ms=SUSTAINED_DEADLINE_MS,
                dim=PAPER_DIM,
            ))
    finally:
        session.close()
    load["throughput_floor_req_per_s"] = SUSTAINED_FLOOR
    load["deadline_s"] = SUSTAINED_DEADLINE_MS / 1000.0
    return load


def measure_burst() -> Dict:
    """2x-capacity burst against a deterministically throttled session."""
    codec = _codec()
    session = codec.session(flush_latency=None)
    faulty = FaultInjectingSession(session)
    faulty.delay_next(10 ** 9, BURST_TICK_DELAY_S)
    try:
        with ServerHarness(
            faulty,
            max_inflight=BURST_MAX_INFLIGHT,
            default_deadline_ms=BURST_DEADLINE_MS,
        ) as harness:
            load = asyncio.run(run_load(
                host=harness.host,
                port=harness.port,
                clients=4,
                rate=BURST_RATE,
                duration=BURST_SECONDS,
                deadline_ms=BURST_DEADLINE_MS,
                dim=PAPER_DIM,
            ))
            stats = fetch_json(harness.host, harness.port, "/stats")
    finally:
        session.close()
    load["deadline_s"] = BURST_DEADLINE_MS / 1000.0
    load["server_shed"] = int(stats["server"]["shed"])
    load["max_inflight_observed"] = int(
        stats["server"]["max_inflight_observed"]
    )
    load["max_inflight"] = BURST_MAX_INFLIGHT
    return load


def run_benchmarks() -> Dict:
    cpus = _cpu_count()
    perf_ok = cpus >= MIN_CPUS
    payload: Dict = {
        "config": {
            "dim": PAPER_DIM,
            "compressed_dim": PAPER_COMPRESSED,
            "compression_layers": PAPER_LC,
            "reconstruction_layers": PAPER_LR,
            "cpus": cpus,
            "min_cpus_for_perf_gates": MIN_CPUS,
        },
        "fidelity": measure_fidelity(),
    }
    if perf_ok:
        payload["sustained"] = measure_sustained()
        payload["burst"] = measure_burst()
    else:
        reason = (
            f"perf gates skipped: {cpus} CPU(s) available, "
            f"need >= {MIN_CPUS}"
        )
        print(reason, file=sys.stderr)
        payload["sustained"] = {"skipped": True, "reason": reason}
        payload["burst"] = {"skipped": True, "reason": reason}
    return payload


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    fid = payload["fidelity"]
    if not (
        fid["compress_bitwise"]
        and fid["compress_match"] <= MATCH_TOL
        and fid["decompress_match"] <= MATCH_TOL
        and fid["reconstruct_batch_match"] <= MATCH_TOL
        and fid["reconstruct_single_match"] <= MATCH_TOL
    ):
        return False
    sustained = payload["sustained"]
    if not sustained.get("skipped"):
        if (
            sustained["achieved_req_per_s"] < SUSTAINED_FLOOR
            or sustained["latency_p99_s"] > sustained["deadline_s"]
        ):
            return False
    burst = payload["burst"]
    if not burst.get("skipped"):
        if (
            burst["shed"] <= 0
            or burst["latency_p99_s"] > burst["deadline_s"]
            or burst["max_inflight_observed"] > burst["max_inflight"]
        ):
            return False
    return True


def _emit(payload: Dict, path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def test_frontend_benchmark():
    """Perf-trajectory gate: socket fidelity <= 1e-10 always; >= 1k req/s
    sustained and shed-under-burst when >= 4 CPUs are available."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_FRONTEND_JSON"))
    assert _gates_pass(payload), json.dumps(payload, indent=2)


def main(argv: List[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_FRONTEND_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
