"""Execution-backend benchmark: fused GEMM + cached gradients vs the loop.

Measures, at the paper's architecture (``N = 16``, ``l_C = 12`` /
``l_R = 14``):

- forward throughput (states/sec) as a function of batch width ``M`` for
  the ``loop`` and ``fused`` backends;
- wall-time per full gradient for every method x backend combination,
  with the paper's ``fd`` method (Eq. 8) as the headline: the prefix/
  suffix cache turns its ``P + 1`` full circuit re-executions into
  ``O(N M)`` work per parameter.

Acceptance gates asserted here (and printed as JSON for the perf
trajectory):

- fused ``fd`` gradients are >= 5x faster than loop ``fd`` gradients;
- fused ``fd`` gradients match the loop reference to <= 1e-8.

Run standalone (``PYTHONPATH=src python benchmarks/bench_backends.py
[output.json]``) or via pytest (``pytest benchmarks/bench_backends.py``);
set ``BENCH_BACKENDS_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork
from repro.training.gradients import loss_and_gradient

PAPER_DIM = 16
PAPER_LAYERS = {"uc": 12, "ur": 14}
PAPER_M = 25
FORWARD_WIDTHS = [64, 512, 4096]
GRADIENT_METHODS = ["fd", "central", "derivative", "adjoint"]
BACKENDS = ["loop", "fused"]

SPEEDUP_FLOOR = 5.0
GRAD_MATCH_TOL = 1e-8


def _time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall seconds (one untimed warmup call)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _network(layers: int, backend: str, seed: int = 2024) -> QuantumNetwork:
    net = QuantumNetwork(PAPER_DIM, layers, backend=backend)
    return net.initialize("uniform", rng=np.random.default_rng(seed))


def _problem(m: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(PAPER_DIM, m))
    x /= np.linalg.norm(x, axis=0)
    t = rng.normal(size=(PAPER_DIM, m))
    t /= np.linalg.norm(t, axis=0)
    return x, t


def bench_forward() -> List[Dict]:
    """States/sec for each backend over increasing batch widths."""
    rows = []
    for m in FORWARD_WIDTHS:
        x, _ = _problem(m)
        for backend in BACKENDS:
            net = _network(PAPER_LAYERS["uc"], backend)
            seconds = _time(lambda: net.forward(x))
            rows.append(
                {
                    "kind": "forward",
                    "backend": backend,
                    "batch_width": m,
                    "seconds": seconds,
                    "states_per_sec": m / seconds,
                }
            )
    return rows


def bench_gradients() -> List[Dict]:
    """Seconds per full gradient, method x backend, at the paper config."""
    x, t = _problem(PAPER_M)
    proj = Projection.last(PAPER_DIM, 4)
    rows = []
    grads: Dict[tuple, np.ndarray] = {}
    for backend in BACKENDS:
        net = _network(PAPER_LAYERS["uc"], backend)
        for method in GRADIENT_METHODS:
            _, grad = loss_and_gradient(
                net, x, t, projection=proj, method=method
            )
            grads[(backend, method)] = grad
            seconds = _time(
                lambda: loss_and_gradient(
                    net, x, t, projection=proj, method=method
                ),
                repeats=2,
            )
            rows.append(
                {
                    "kind": "gradient",
                    "backend": backend,
                    "method": method,
                    "num_layers": PAPER_LAYERS["uc"],
                    "num_parameters": net.num_parameters,
                    "batch_width": PAPER_M,
                    "seconds_per_gradient": seconds,
                }
            )
    for method in GRADIENT_METHODS:
        match = float(
            np.max(np.abs(grads[("fused", method)] - grads[("loop", method)]))
        )
        rows.append(
            {
                "kind": "gradient_match",
                "method": method,
                "max_abs_diff_vs_loop": match,
            }
        )
    return rows


def run_benchmarks() -> Dict:
    forward_rows = bench_forward()
    gradient_rows = bench_gradients()

    def grad_seconds(backend: str, method: str) -> float:
        return next(
            r["seconds_per_gradient"]
            for r in gradient_rows
            if r["kind"] == "gradient"
            and r["backend"] == backend
            and r["method"] == method
        )

    fd_speedup = grad_seconds("loop", "fd") / grad_seconds("fused", "fd")
    fd_match = next(
        r["max_abs_diff_vs_loop"]
        for r in gradient_rows
        if r["kind"] == "gradient_match" and r["method"] == "fd"
    )
    return {
        "config": {
            "dim": PAPER_DIM,
            "layers": PAPER_LAYERS,
            "batch_width": PAPER_M,
            "forward_widths": FORWARD_WIDTHS,
        },
        "rows": forward_rows + gradient_rows,
        "summary": {
            "fd_gradient_speedup_fused_vs_loop": fd_speedup,
            "fd_gradient_max_abs_diff": fd_match,
            "speedup_floor": SPEEDUP_FLOOR,
            "grad_match_tol": GRAD_MATCH_TOL,
        },
    }


def _emit(payload: Dict, path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def test_backend_benchmark():
    """Perf-trajectory gate: fused >= 5x on fd gradients, match <= 1e-8."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_BACKENDS_JSON"))
    summary = payload["summary"]
    assert summary["fd_gradient_speedup_fused_vs_loop"] >= SPEEDUP_FLOOR
    assert summary["fd_gradient_max_abs_diff"] <= GRAD_MATCH_TOL
    # Fused forward should win at wide batches too (GEMM vs kernel loop).
    wide = {
        r["backend"]: r["states_per_sec"]
        for r in payload["rows"]
        if r["kind"] == "forward" and r["batch_width"] == FORWARD_WIDTHS[-1]
    }
    assert wide["fused"] > wide["loop"]


def main(argv: List[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_BACKENDS_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    ok = (
        payload["summary"]["fd_gradient_speedup_fused_vs_loop"]
        >= SPEEDUP_FLOOR
        and payload["summary"]["fd_gradient_max_abs_diff"] <= GRAD_MATCH_TOL
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
