"""Performance bench (exp id perf): simulator scaling.

Not a paper artefact — this characterises the substrate so the other
benches' timings are interpretable:

- forward cost per layer scales ~O(N * M) (N-1 gates, two rows each);
- the adjoint gradient costs a small constant multiple of a forward pass,
  independent of the parameter count (vs. FD's (P+1)x);
- chunked propagation matches unchunked output while bounding memory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.quantum_network import QuantumNetwork
from repro.parallel.batch import chunked_forward
from repro.training.gradients import loss_and_gradient


@pytest.mark.parametrize("dim", [8, 16, 32, 64, 128])
def test_forward_scaling_with_dimension(benchmark, dim):
    rng = np.random.default_rng(dim)
    net = QuantumNetwork(dim, 4).initialize("uniform", rng=rng)
    x = rng.normal(size=(dim, 64))
    x /= np.linalg.norm(x, axis=0)
    out = benchmark(net.forward, x)
    assert np.allclose(np.linalg.norm(out, axis=0), 1.0, atol=1e-9)


@pytest.mark.parametrize("batch", [16, 256, 4096])
def test_forward_scaling_with_batch(benchmark, batch):
    rng = np.random.default_rng(batch)
    net = QuantumNetwork(16, 12).initialize("uniform", rng=rng)
    x = rng.normal(size=(16, batch))
    out = benchmark(net.forward, x)
    assert out.shape == (16, batch)


def test_adjoint_gradient_overhead(benchmark):
    """The adjoint gradient should cost only a few forward passes."""
    rng = np.random.default_rng(0)
    net = QuantumNetwork(16, 12).initialize("uniform", rng=rng)
    x = rng.normal(size=(16, 25))
    x /= np.linalg.norm(x, axis=0)
    t = rng.normal(size=(16, 25))
    t /= np.linalg.norm(t, axis=0)
    loss, grad = benchmark(loss_and_gradient, net, x, t, method="adjoint")
    assert grad.shape == (180,)


def test_chunked_forward_large_batch(benchmark):
    rng = np.random.default_rng(1)
    net = QuantumNetwork(16, 12).initialize("uniform", rng=rng)
    x = rng.normal(size=(16, 20000))
    out = benchmark.pedantic(
        chunked_forward,
        args=(net, x),
        kwargs={"chunk_size": 2048},
        rounds=1,
        iterations=1,
    )
    assert np.allclose(out[:, :50], net.forward(x[:, :50]), atol=1e-12)
