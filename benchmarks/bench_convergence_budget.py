"""The iteration-budget study behind the EXPERIMENTS.md accuracy table.

Runs the Fig. 4 experiment at several budgets and prints the
accuracy/losses table (paper reference: 97.75 % at 150 iterations),
plus convergence diagnostics (loss half-life, plateau iteration — the
quantitative version of the paper's "stabilize after 50 iterations").
"""

from __future__ import annotations

import pytest

from repro.analysis.convergence import budget_study, loss_half_life, plateau_iteration
from repro.experiments.config import PaperConfig
from repro.experiments.fig4 import run_fig4
from repro.experiments.reporting import render_records


def test_budget_study(benchmark):
    records = benchmark.pedantic(
        budget_study,
        kwargs={"budgets": (75, 150, 200, 300)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="accuracy vs training budget"))
    by_budget = {r["iterations"]: r for r in records}
    # More budget never hurts the best loss.
    losses = [by_budget[b]["min_loss_r"] for b in (75, 150, 200, 300)]
    assert losses == sorted(losses, reverse=True)
    # The high-90s accuracy regime is reached within 300 iterations.
    assert by_budget[300]["max_accuracy_pct"] > 97.0
    # The paper's own budget lands in the >90% regime on our dataset.
    assert by_budget[150]["max_accuracy_pct"] > 90.0


def test_convergence_diagnostics(benchmark):
    result = benchmark.pedantic(
        run_fig4, args=(PaperConfig(),), rounds=1, iterations=1
    )
    curve = result.history.loss_r
    half = loss_half_life(curve)
    plateau = plateau_iteration(curve)
    print()
    print(
        f"loss_r half-life: {half:.1f} iterations; "
        f"plateau at iteration {plateau} "
        "(paper: 'stabilize after 50 training iterations')"
    )
    assert half < 100.0  # converging, not stalled
    assert 0 < plateau < 150
