"""Jit benchmark: the ``numba`` compiled-kernel backend + vectorised adjoint.

Two independent perf claims land in the jit PR (see ``docs/backends.md``
and ``docs/gradients.md``); this benchmark gates both, JSON-emitting like
its siblings:

- **numba backend** (requires the optional numba package — *skipped with
  a logged reason* when it is not installed):

  - *agreement*: forward and inverse match the ``fused`` backend to
    ``<= 1e-10`` for the paper's real network and the Section V complex
    (``allow_phase``) extension;
  - *latency*: at the paper configuration (``N = 16``, ``l_C = 12``) and
    single-sample width ``M = 1`` — the serving path's per-request floor
    — the jitted gate sweep beats the fused GEMM by ``>= 2x`` (the GEMM
    itself is tiny there; the fused backend's per-call parameter
    re-validation and matmul allocation dominate).

- **vectorised adjoint** (pure numpy — measured on every host): the
  ``engine="batched"`` adjoint sweep (stacked per-layer GEMMs via the
  prefix/suffix cross-layer recurrence) is ``>= 3x`` faster than the
  ``engine="looped"`` per-gate Python walk for a full gradient at the
  paper configuration.  When numba is installed the fully-jitted sweep
  on the ``numba`` backend is reported as well (informational).

Run standalone (``PYTHONPATH=src python benchmarks/bench_jit.py
[output.json]``) or via pytest (``pytest benchmarks/bench_jit.py``); set
``BENCH_JIT_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.backends import NUMBA_AVAILABLE
from repro.network.quantum_network import QuantumNetwork
from repro.training.gradients import loss_and_gradient

# -- paper configuration (N = 16, l_C = 12, 25 training samples) --------
DIM = 16
LAYERS = 12
ADJOINT_M = 25

AGREE_M = 512
MATCH_TOL = 1e-10

LATENCY_REPEATS = 2000
LATENCY_SPEEDUP_FLOOR = 2.0

ADJOINT_REPEATS = 30
ADJOINT_SPEEDUP_FLOOR = 3.0

SKIP_REASON = (
    "numba is not installed; the 'numba' backend gates are skipped "
    "(pip install numba, or use the requirements-ci-numba.txt extras)"
)


def _network(backend: str, allow_phase: bool = False, seed: int = 11):
    net = QuantumNetwork(
        DIM, LAYERS, allow_phase=allow_phase, backend=backend
    ).initialize("uniform", rng=np.random.default_rng(seed))
    if allow_phase:
        params = net.get_flat_params()
        rng = np.random.default_rng(seed + 1)
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def _batch(m: int, complex_: bool = False, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(DIM, m))
    if complex_:
        x = x + 1j * rng.normal(size=(DIM, m))
    return x / np.linalg.norm(x, axis=0)


def measure_agreement() -> Dict:
    """Max |numba - fused| over forward and inverse, real and complex."""
    out = {}
    for label, allow_phase in (("real", False), ("complex", True)):
        jit = _network("numba", allow_phase)
        fused = _network("fused", allow_phase)
        fused.set_flat_params(jit.get_flat_params())
        x = _batch(AGREE_M, complex_=allow_phase)
        out[label] = {
            "match": float(
                np.max(np.abs(jit.forward(x) - fused.forward(x)))
            ),
            "inverse_match": float(
                np.max(
                    np.abs(
                        jit.forward(x, inverse=True)
                        - fused.forward(x, inverse=True)
                    )
                )
            ),
        }
    return out


def _best_latency(net, x: np.ndarray) -> float:
    """Best-of-N seconds for one in-place forward pass (buffer reused)."""
    buf = np.array(x, copy=True)
    net.forward_inplace(buf)  # warm caches / compile
    best = float("inf")
    for _ in range(LATENCY_REPEATS):
        t0 = time.perf_counter()
        net.forward_inplace(buf)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_latency() -> Dict:
    """Single-sample (M = 1) forward latency, numba vs fused."""
    jit = _network("numba")
    fused = _network("fused")
    fused.set_flat_params(jit.get_flat_params())
    x = _batch(1)
    fused_s = _best_latency(fused, x)
    jit_s = _best_latency(jit, x)
    return {
        "fused_us": fused_s * 1e6,
        "numba_us": jit_s * 1e6,
        "speedup": fused_s / jit_s,
        "speedup_floor": LATENCY_SPEEDUP_FLOOR,
    }


def _grad_time(net, x, t, engine: str) -> float:
    loss_and_gradient(net, x, t, method="adjoint", engine=engine)  # warm
    best = float("inf")
    for _ in range(ADJOINT_REPEATS):
        t0 = time.perf_counter()
        loss_and_gradient(net, x, t, method="adjoint", engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_adjoint() -> Dict:
    """Full adjoint gradient: vectorised (batched) vs per-gate (looped).

    Measured on the ``loop`` backend so the looped reference is exactly
    the pre-PR per-gate walk; the vectorised sweep builds its workspace
    from the compiled program either way.  Pure numpy — runs on every
    host.
    """
    net = _network("loop")
    x = _batch(ADJOINT_M, seed=3)
    t = _batch(ADJOINT_M, seed=4)
    looped = _grad_time(net, x, t, "looped")
    batched = _grad_time(net, x, t, "batched")
    _, g_ref = loss_and_gradient(net, x, t, method="adjoint", engine="looped")
    _, g_vec = loss_and_gradient(net, x, t, method="adjoint", engine="batched")
    out = {
        "looped_ms": looped * 1e3,
        "batched_ms": batched * 1e3,
        "speedup": looped / batched,
        "speedup_floor": ADJOINT_SPEEDUP_FLOOR,
        "match": float(np.max(np.abs(g_ref - g_vec))),
        "match_tol": MATCH_TOL,
    }
    if NUMBA_AVAILABLE:
        jit_net = _network("numba")
        jit_net.set_flat_params(net.get_flat_params())
        jit_s = _grad_time(jit_net, x, t, "batched")
        _, g_jit = loss_and_gradient(
            jit_net, x, t, method="adjoint", engine="batched"
        )
        out["numba_ms"] = jit_s * 1e3  # informational, not gated
        out["numba_speedup_vs_looped"] = looped / jit_s
        out["numba_match"] = float(np.max(np.abs(g_ref - g_jit)))
    return out


def run_benchmarks() -> Dict:
    payload: Dict = {
        "config": {
            "dim": DIM,
            "layers": LAYERS,
            "agreement_m": AGREE_M,
            "adjoint_m": ADJOINT_M,
            "match_tol": MATCH_TOL,
            "latency_repeats": LATENCY_REPEATS,
            "adjoint_repeats": ADJOINT_REPEATS,
            "numba_available": NUMBA_AVAILABLE,
        },
        "adjoint": measure_adjoint(),
    }
    if NUMBA_AVAILABLE:
        payload["agreement"] = measure_agreement()
        payload["latency"] = measure_latency()
    else:
        print(f"numba gates SKIPPED: {SKIP_REASON}", file=sys.stderr)
        payload["agreement"] = {"skipped": SKIP_REASON}
        payload["latency"] = {"skipped": SKIP_REASON}
    return payload


def _emit(payload: Dict, path: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    adjoint = payload["adjoint"]
    if adjoint["match"] > MATCH_TOL:
        return False
    if adjoint["speedup"] < ADJOINT_SPEEDUP_FLOOR:
        return False
    agreement = payload["agreement"]
    if "skipped" in agreement:
        return True  # logged skip without numba is a pass, not silence
    for label in ("real", "complex"):
        if agreement[label]["match"] > MATCH_TOL:
            return False
        if agreement[label]["inverse_match"] > MATCH_TOL:
            return False
    return payload["latency"]["speedup"] >= LATENCY_SPEEDUP_FLOOR


def test_jit_benchmark():
    """Perf-trajectory gate: vectorised adjoint >= 3x the per-gate walk
    (always); numba == fused to <= 1e-10 and >= 2x single-sample forward
    latency (skipped with a logged reason when numba is missing)."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_JIT_JSON"))
    assert _gates_pass(payload), payload


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_JIT_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
