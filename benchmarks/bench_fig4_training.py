"""Reproduce Fig. 4a-d: the main training experiment.

Regenerates the input/reconstruction image grids, the L_C/L_R loss curves
and the accuracy curve; prints each panel (run with ``-s`` to see them)
and checks the paper's qualitative claims:

- both losses approach ~0 over training (paper: min L_C = 0.017,
  min L_R = 0.023);
- reconstruction accuracy reaches the high-90s (paper: 97.75 %);
- gradient norms decay towards zero (paper Fig. 4g commentary).

Run:  pytest benchmarks/bench_fig4_training.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.fig4 import run_fig4
from repro.experiments.reporting import render_fig4


@pytest.fixture(scope="module")
def fig4_result(paper_config):
    return run_fig4(paper_config)


def test_fig4_full_run(benchmark, paper_config):
    """Time one full Section IV-A training run and verify every panel.

    (The paper's 575.67 s Table-I row was Matlab + finite differences;
    the adjoint fast path is this library's default.)
    """
    result = benchmark.pedantic(
        run_fig4, args=(paper_config,), rounds=1, iterations=1
    )
    print()
    print(render_fig4(result))

    h = result.history
    assert h.num_iterations == paper_config.iterations
    # Fig. 4c shape: losses drop by 2+ orders of magnitude towards ~0.
    assert h.loss_c[-1] < h.loss_c[0] * 0.01
    assert h.loss_r[-1] < h.loss_r[0] * 0.01
    assert result.min_loss_c < 0.1
    assert result.min_loss_r < 0.1
    # Fig. 4d shape: accuracy well above the untrained baseline.  Paper:
    # 97.75 %; measured per-budget values are recorded in EXPERIMENTS.md
    # (92.25 @150, 97.50 @200, 99.75 @300 iterations, default seed).
    assert result.max_accuracy > 90.0
    # Fig. 4b: thresholded reconstructions agree with inputs pixel-wise.
    agree = (
        abs(result.output_images - result.input_images) <= 0.01
    ).mean() * 100.0
    assert agree > 90.0
    # "The update gradient of theta decreases to 0."
    early = sum(h.grad_norm_r[:10]) / 10.0
    late = sum(h.grad_norm_r[-10:]) / 10.0
    assert late < early * 0.5


def test_fig4_paper_faithful_fd_gd_variant(benchmark, paper_config):
    """The literal Algorithm-1 configuration: plain GD + forward finite
    differences (Delta = 1e-8).  Slower per iteration and slower to
    converge (see EXPERIMENTS.md, 'Algorithm 1 ambiguity'); run at a
    reduced budget, asserting only the convergence direction."""
    cfg = paper_config.with_(
        iterations=20, optimizer="gd", gradient_method="fd"
    )
    result = benchmark.pedantic(
        run_fig4, args=(cfg,), rounds=1, iterations=1
    )
    h = result.history
    assert h.loss_c[-1] < h.loss_c[0]
    assert h.loss_r[-1] < h.loss_r[0]
