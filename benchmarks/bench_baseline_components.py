"""Micro-benchmarks of the classical baseline components.

Times the CSC building blocks at the paper's problem size (16-dim data,
16-atom dictionary, 25 samples) so the Table I CPU column can be decomposed
into its parts, and cross-checks correctness properties while timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dictionary import mod_update, svd_init_dictionary
from repro.baselines.ista import fista, ista
from repro.baselines.omp import omp_batch
from repro.baselines.pca import PCACompressor
from repro.data.binary_images import paper_dataset
from repro.encoding.amplitude import encode_batch


@pytest.fixture(scope="module")
def amplitude_data():
    X = paper_dataset().matrix()
    return X, encode_batch(X).amplitudes()


def test_omp_batch_cost(benchmark, amplitude_data):
    _, y = amplitude_data
    d = svd_init_dictionary(y)
    codes = benchmark(omp_batch, d, y, 4)
    assert np.all(np.count_nonzero(codes, axis=0) <= 4)


def test_ista_batch_cost(benchmark, amplitude_data):
    _, y = amplitude_data
    d = svd_init_dictionary(y)
    codes = benchmark(ista, d, y, 0.01, 50)
    assert codes.shape == (16, 25)


def test_fista_batch_cost(benchmark, amplitude_data):
    _, y = amplitude_data
    d = svd_init_dictionary(y)
    codes = benchmark(fista, d, y, 0.01, 50)
    assert codes.shape == (16, 25)


def test_mod_update_cost(benchmark, amplitude_data):
    _, y = amplitude_data
    d = svd_init_dictionary(y)
    codes = omp_batch(d, y, 4)
    d_new = benchmark(mod_update, y, codes)
    assert np.allclose(np.linalg.norm(d_new, axis=0), 1.0)


def test_pca_fit_reconstruct_cost(benchmark, amplitude_data):
    X, _ = amplitude_data

    def fit_and_reconstruct():
        return PCACompressor(num_components=4).fit(X).reconstruct(X)

    x_hat = benchmark(fit_and_reconstruct)
    assert np.allclose(x_hat, X, atol=1e-6)  # rank-4 data, d=4 -> exact
