"""Reproduce Fig. 4e/f: amplitude convergence of the traced sample.

The paper plots, for "Figure 25" (sample index 24), the per-iteration
output amplitudes (panel e) and compressed amplitudes (panel f), observing
that "the amplitudes are trained near the target value and stabilize after
50 training iterations".

This bench regenerates both traces and asserts:
- the final output amplitudes match the sample's encoded amplitudes
  (the L_R target) closely;
- the compressed trace is supported on the kept subspace only;
- a stabilisation point exists: late-trace movement is far smaller than
  early-trace movement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4 import run_fig4
from repro.utils.ascii_art import render_curve_ascii


def test_fig4ef_amplitude_traces(benchmark, paper_config):
    result = benchmark.pedantic(
        run_fig4, args=(paper_config,), rounds=1, iterations=1
    )
    out_trace = result.output_trace        # (Ite, N)
    comp_trace = result.compressed_trace   # (Ite, N)
    assert out_trace.shape == (paper_config.iterations, paper_config.dim)

    # Panel e: plot the dominant output amplitude.
    idx = int(np.argmax(np.abs(out_trace[-1])))
    print()
    print(
        render_curve_ascii(
            out_trace[:, idx],
            title=f"Fig. 4e: output amplitude B[{idx}] of sample 25",
        )
    )
    cidx = int(np.argmax(np.abs(comp_trace[-1])))
    print(
        render_curve_ascii(
            comp_trace[:, cidx],
            title=f"Fig. 4f: compressed amplitude a[{cidx}] of sample 25",
        )
    )

    # The L_R target for the traced sample is its encoded amplitude vector.
    enc = result.training_result.autoencoder.codec.encode(
        result.input_images.reshape(25, 16)
    )
    target = enc.amplitudes()[:, paper_config.trace_sample]
    final_err = np.max(np.abs(out_trace[-1] - target))
    assert final_err < 0.05, "output amplitudes should sit near the target"

    # Compressed states live in the kept subspace (Eq. 3).
    keep = result.training_result.autoencoder.projection.keep
    trash = np.setdiff1d(np.arange(paper_config.dim), keep)
    assert np.allclose(comp_trace[:, trash], 0.0)

    # "Stabilize after 50 training iterations": movement in the last third
    # is much smaller than in the first third.
    def movement(block):
        return float(np.abs(np.diff(block, axis=0)).mean())

    third = paper_config.iterations // 3
    assert movement(out_trace[-third:]) < movement(out_trace[:third]) * 0.5
