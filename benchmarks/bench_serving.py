"""Serving benchmark: compiled InferenceSession vs per-request eager forward.

The serving path (PR 3) folds ``decode ∘ U_R P1 U_C ∘ encode`` into dense
operators once, so a micro-batched tick of requests costs a single GEMM
instead of one full per-gate pipeline execution per request.  This
benchmark measures both paths at the paper's architecture (``N = 16``,
``l_C = 12``, ``l_R = 14``, ``d = 4``) on a stream of single-image
requests:

- **eager**: one ``QuantumAutoencoder.forward`` per request on the
  default loop backend — the pre-PR-3 serving story;
- **session**: the same requests through ``InferenceSession.submit`` and
  a ``MicroBatcher`` flushing at the paper's batch width.

Acceptance gates asserted here (and printed as JSON for the perf
trajectory):

- the session path is >= 3x faster than per-request eager forward;
- session outputs match eager outputs to <= 1e-10.

Run standalone (``PYTHONPATH=src python benchmarks/bench_serving.py
[output.json]``) or via pytest (``pytest benchmarks/bench_serving.py``);
set ``BENCH_SERVING_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List

import numpy as np

from repro.api.benchmark import measure_serving, synthetic_requests
from repro.network.autoencoder import QuantumAutoencoder

PAPER_DIM = 16
PAPER_COMPRESSED = 4
PAPER_LC = 12
PAPER_LR = 14
NUM_REQUESTS = 256
MAX_BATCH = 25  # the paper's M — one dataset's worth per tick

SPEEDUP_FLOOR = 3.0
MATCH_TOL = 1e-10


def _autoencoder(seed: int = 2024) -> QuantumAutoencoder:
    return QuantumAutoencoder(
        dim=PAPER_DIM,
        compressed_dim=PAPER_COMPRESSED,
        compression_layers=PAPER_LC,
        reconstruction_layers=PAPER_LR,
    ).initialize("uniform", rng=np.random.default_rng(seed))


def run_benchmarks() -> Dict:
    # The measurement protocol and request stream live in
    # repro.api.benchmark, shared with `python -m repro serve-bench`;
    # this file adds the paper configuration and the CI gates.
    measured = measure_serving(
        _autoencoder(),
        synthetic_requests(NUM_REQUESTS, PAPER_DIM),
        max_batch_size=MAX_BATCH,
    )
    return {
        "config": {
            "dim": PAPER_DIM,
            "compressed_dim": PAPER_COMPRESSED,
            "compression_layers": PAPER_LC,
            "reconstruction_layers": PAPER_LR,
            "num_requests": NUM_REQUESTS,
            "max_batch": MAX_BATCH,
        },
        "summary": {
            **measured,
            "session_speedup_vs_eager": measured["speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
            "match_tol": MATCH_TOL,
        },
    }


def _emit(payload: Dict, path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    summary = payload["summary"]
    return (
        summary["session_speedup_vs_eager"] >= SPEEDUP_FLOOR
        and summary["session_match_vs_eager"] <= MATCH_TOL
    )


def test_serving_benchmark():
    """Perf-trajectory gate: micro-batched session >= 3x per-request eager
    forward at the paper config, outputs matching <= 1e-10."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_SERVING_JSON"))
    assert _gates_pass(payload), payload["summary"]


def main(argv: List[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_SERVING_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
