"""Noise benchmark: the four degradation gates of the noise subsystem.

Every random draw below is realization-keyed (``realization_rng``), so
the whole benchmark is deterministic given its constants — the gates
measure modelling error and training payoff, not sampling flake.

- **(a) Path agreement** — at the paper architecture the trajectory
  mean over ``K = 400`` realizations reproduces the exact density fold
  to ``<= 0.005`` in output probabilities and ``<= 0.01`` in fidelity.
  (With no angle jitter the paths agree to rounding; that exact case is
  covered in ``tests/noise/test_execution.py``.)
- **(b) Graceful degradation** — scaling the ``mild`` preset through
  ``0 -> 2x`` degrades mean fidelity and transmission monotonically
  (no cliffs), with fidelity at the unscaled preset ``>= 0.85``.
- **(c) Noise-aware payoff** — fine-tuning a clean-trained mesh with
  jitter-averaged gradients (``K = 64`` realizations per step, low
  learning rate) reduces the per-realization reconstruction error
  under the matched channel by ``>= 1%``.  Per-realization — each
  deployed chip is one frozen miscalibration — not the ensemble
  average, which partially cancels jitter and hides the sharp-minimum
  penalty.
- **(d) Determinism** — the pool-sharded noise-averaged gradient is
  bitwise identical to the in-process loop at 2 and 4 workers, and a
  re-run is bitwise identical to the first.

Run standalone (``PYTHONPATH=src python benchmarks/bench_noise.py
[output.json]``) or via pytest (``pytest benchmarks/bench_noise.py``);
set ``BENCH_NOISE_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.network.autoencoder import QuantumAutoencoder
from repro.network.quantum_network import QuantumNetwork
from repro.noise import (
    NOISE_PRESETS,
    NoiseModel,
    degradation_curve,
    density_forward,
    noisy_loss_and_gradient,
    realization_rng,
    sample_mesh_matrix,
    trajectory_forward,
)
from repro.noise.trajectory import STREAM_UC, STREAM_UR
from repro.parallel.reducer import GradientReducer
from repro.training.optimizers import MomentumGD
from repro.training.trainer import Trainer

# -- (a) agreement: paper architecture, trajectory vs density ----------
AGREE_MODEL = NoiseModel(theta_sigma=0.03, loss_per_gate=0.005,
                         dephasing=0.03)
AGREE_K = 400
PROB_TOL = 0.005
FID_TOL = 0.01

# -- (b) degradation: the mild preset scaled through 0..2x -------------
CURVE_SCALES = (0.0, 0.5, 1.0, 2.0)
CURVE_K = 64
FIDELITY_FLOOR = 0.85  # at the unscaled mild preset

# -- (c) payoff: noise-aware fine-tune vs clean-trained ----------------
TUNE_MODEL = NoiseModel(theta_sigma=0.3)
TUNE_SEED = 1
TUNE_CLEAN_ITERS = 200
TUNE_NOISY_ITERS = 150
TUNE_K = 64
TUNE_LR = 0.002
EVAL_K = 128
IMPROVEMENT_FLOOR = 0.01  # >= 1% lower per-realization MSE

# -- (d) determinism: pool-sharded noisy gradient ----------------------
DET_MODEL = NoiseModel(theta_sigma=0.05)
DET_K = 6
POOL_SIZES = (2, 4)


def _paper_autoencoder(seed: int = 3) -> QuantumAutoencoder:
    ae = QuantumAutoencoder(16, 4, 12, 14, backend="fused")
    ae.initialize("uniform", rng=np.random.default_rng(seed))
    return ae


def _amplitudes(dim: int, m: int, seed: int) -> np.ndarray:
    a = np.abs(np.random.default_rng(seed).normal(size=(dim, m))) + 0.1
    return a / np.linalg.norm(a, axis=0, keepdims=True)


def measure_agreement() -> Dict:
    """Trajectory mean at K = 400 vs the exact density fold."""
    ae = _paper_autoencoder()
    amps = _amplitudes(16, 8, seed=5)
    de = density_forward(ae, amps, AGREE_MODEL)
    tr = trajectory_forward(ae, amps, AGREE_MODEL, trajectories=AGREE_K,
                            seed=0)
    return {
        "trajectories": AGREE_K,
        "max_prob_diff": float(
            np.max(np.abs(tr.probabilities - de.probabilities))
        ),
        "max_fidelity_diff": float(np.max(np.abs(tr.fidelity - de.fidelity))),
        "prob_tol": PROB_TOL,
        "fidelity_tol": FID_TOL,
    }


def measure_degradation() -> Dict:
    """The mild preset scaled 0 -> 2x must degrade without cliffs."""
    ae = _paper_autoencoder()
    X = _amplitudes(16, 8, seed=5).T
    records = degradation_curve(
        ae, X, NOISE_PRESETS["mild"], scales=CURVE_SCALES,
        trajectories=CURVE_K, seed=0,
    )
    return {
        "scales": list(CURVE_SCALES),
        "mean_fidelity": [r["mean_fidelity"] for r in records],
        "mean_transmission": [r["mean_transmission"] for r in records],
        "fidelity_floor": FIDELITY_FLOOR,
    }


def _per_realization_mse(ae: QuantumAutoencoder, X: np.ndarray,
                         model: NoiseModel, k: int, seed: int = 0) -> float:
    """E over frozen realizations of the end-to-end reconstruction MSE."""
    enc = ae.codec.encode(np.asarray(X, dtype=np.float64))
    amps = enc.amplitudes()
    uc_p = ae.uc.get_flat_params()
    ur_p = ae.ur.get_flat_params()
    mses: List[float] = []
    for r in range(k):
        dev_c = sample_mesh_matrix(
            ae.uc, uc_p, model, realization_rng(seed, 0, r, STREAM_UC)
        )
        dev_r = sample_mesh_matrix(
            ae.ur, ur_p, model, realization_rng(seed, 0, r, STREAM_UR)
        )
        phi = dev_c @ amps
        ae.projection.apply_inplace(phi)
        x_hat = ae.codec.decode(np.abs(dev_r @ phi), enc.squared_norms)
        mses.append(float(np.mean((x_hat - np.asarray(X)) ** 2)))
    return float(np.mean(mses))


def measure_payoff() -> Dict:
    """Noise-aware fine-tune vs the clean-trained mesh it started from."""
    X = np.abs(np.random.default_rng(1).normal(size=(24, 8))) + 0.1
    ae = QuantumAutoencoder(8, 3, 4, 4, backend="fused")
    ae.initialize("uniform", rng=np.random.default_rng(TUNE_SEED))
    Trainer(iterations=TUNE_CLEAN_ITERS, backend="fused").train(ae, X)
    blind = _per_realization_mse(ae, X, TUNE_MODEL, EVAL_K)
    Trainer(
        iterations=TUNE_NOISY_ITERS,
        backend="fused",
        optimizer_factory=lambda: MomentumGD(TUNE_LR, 0.9),
        noise=TUNE_MODEL,
        noise_trajectories=TUNE_K,
    ).train(ae, X)
    aware = _per_realization_mse(ae, X, TUNE_MODEL, EVAL_K)
    return {
        "noise": TUNE_MODEL.spec_string(),
        "eval_realizations": EVAL_K,
        "noise_blind_mse": blind,
        "noise_aware_mse": aware,
        "improvement": (blind - aware) / blind,
        "improvement_floor": IMPROVEMENT_FLOOR,
    }


def measure_determinism() -> Dict:
    """Pool-sharded noisy gradient == in-process, bitwise, at 2 and 4
    workers, plus a bitwise re-run check."""
    net = QuantumNetwork(16, 12, backend="fused").initialize(
        "uniform", rng=np.random.default_rng(11)
    )
    x = _amplitudes(16, 32, seed=7)
    t = _amplitudes(16, 32, seed=8)
    kwargs = dict(model=DET_MODEL, trajectories=DET_K, seed=3, epoch=2)
    ref_v, ref_g = noisy_loss_and_gradient(net, x, t, **kwargs)
    rerun_v, rerun_g = noisy_loss_and_gradient(net, x, t, **kwargs)
    out: Dict = {
        "trajectories": DET_K,
        "rerun_bitwise": bool(
            ref_v == rerun_v and np.array_equal(ref_g, rerun_g)
        ),
    }
    for workers in POOL_SIZES:
        with GradientReducer(num_workers=workers, seed=0) as reducer:
            v, g = reducer.noisy_loss_and_gradient(net, x, t, **kwargs)
        out[f"pool{workers}_bitwise"] = bool(
            v == ref_v and np.array_equal(g, ref_g)
        )
    return out


def run_benchmarks() -> Dict:
    return {
        "agreement": measure_agreement(),
        "degradation": measure_degradation(),
        "payoff": measure_payoff(),
        "determinism": measure_determinism(),
    }


def _emit(payload: Dict, path: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _monotone_nonincreasing(values: List[float]) -> bool:
    return all(a >= b for a, b in zip(values, values[1:]))


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    agree = payload["agreement"]
    if agree["max_prob_diff"] > agree["prob_tol"]:
        return False
    if agree["max_fidelity_diff"] > agree["fidelity_tol"]:
        return False
    curve = payload["degradation"]
    if not _monotone_nonincreasing(curve["mean_fidelity"]):
        return False
    if not _monotone_nonincreasing(curve["mean_transmission"]):
        return False
    at_one = curve["mean_fidelity"][curve["scales"].index(1.0)]
    if at_one < curve["fidelity_floor"]:
        return False
    payoff = payload["payoff"]
    if payoff["improvement"] < payoff["improvement_floor"]:
        return False
    det = payload["determinism"]
    return (
        det["rerun_bitwise"]
        and all(det[f"pool{w}_bitwise"] for w in POOL_SIZES)
    )


def test_noise_benchmark():
    """Degradation gates: (a) trajectory == density to statistical
    tolerance at K = 400; (b) monotone graceful degradation with the
    mild-preset fidelity floor; (c) noise-aware fine-tuning beats the
    noise-blind mesh under the matched channel; (d) the pool-sharded
    noisy gradient is bitwise reproducible across pool sizes."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_NOISE_JSON"))
    assert _gates_pass(payload), payload


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_NOISE_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
