"""Reproduce Fig. 4g: theta parameter trajectories.

The paper shows theta updating over 150 iterations with "the update
gradient of theta decreases to 0 and the theta stabilize in [0, 2*pi]".

This bench regenerates the trajectories and asserts:
- parameters move early and freeze late (trajectory flattens);
- gradient norms decay by an order of magnitude;
- wrapped parameters lie in [0, 2*pi) (the paper's plotting convention —
  raw angles are unconstrained, the physical reflectivity is periodic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4 import run_fig4
from repro.utils.ascii_art import render_curve_ascii


def test_fig4g_theta_trajectories(benchmark, paper_config):
    result = benchmark.pedantic(
        run_fig4, args=(paper_config,), rounds=1, iterations=1
    )
    theta_c = result.theta_c  # (Ite, 180)
    theta_r = result.theta_r  # (Ite, 210)
    assert theta_c.shape == (
        paper_config.iterations,
        paper_config.uc_parameter_count,
    )
    assert theta_r.shape == (
        paper_config.iterations,
        paper_config.ur_parameter_count,
    )

    drift_c = np.linalg.norm(theta_c - theta_c[0], axis=1)
    print()
    print(
        render_curve_ascii(
            drift_c, title="Fig. 4g: ||theta_C(t) - theta_C(0)||"
        )
    )
    grad = np.asarray(result.history.grad_norm_c)
    print(render_curve_ascii(grad, title="gradient norm ||dL_C/dtheta||",
                             logy=True))

    # Parameters move, then stabilise: last-10 movement << first-10.
    step_sizes = np.linalg.norm(np.diff(theta_c, axis=0), axis=1)
    assert step_sizes[-10:].mean() < step_sizes[:10].mean() * 0.5

    # Gradient decays strongly (paper: "drops to 0").
    assert grad[-5:].mean() < grad[:5].mean() * 0.2

    # Wrapped angles live in [0, 2*pi) (Fig. 4g's plotted range).
    wrapped = np.mod(theta_c[-1], 2 * np.pi)
    assert wrapped.min() >= 0.0 and wrapped.max() < 2 * np.pi
