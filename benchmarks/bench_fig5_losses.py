"""Reproduce Fig. 5c: QN-based vs CSC-based training-loss comparison.

The paper trains both methods on the same dataset with same-size (16x16)
operators and finds "the training loss of the QN-based algorithm is much
lower than that of the CSC-based algorithm".

Asserted shape:
- both curves decrease;
- at the full budget the QN final loss is below the gradient-CSC's;
- the strong classical variant (MOD+OMP) is reported alongside for
  calibration (it solves the rank-4 dataset exactly — the paper's
  superiority claim is specifically against its gradient-trained CSC).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.reporting import render_fig5


def test_fig5c_qn_vs_gradient_csc(benchmark, paper_config):
    result = benchmark.pedantic(
        run_fig5, args=(paper_config,), rounds=1, iterations=1
    )
    print()
    print(render_fig5(result))

    qn, csc = result.qn_loss, result.csc_loss
    assert len(qn) == len(csc) == paper_config.iterations
    assert qn[-1] < qn[0]
    assert csc[-1] <= csc[0]
    # The paper's headline: QN ends lower than its CSC comparator.
    assert result.qn_wins_loss, (
        f"QN final loss {result.qn_final_loss:.4f} should be below CSC "
        f"{result.csc_final_loss:.4f}"
    )


def test_fig5c_strong_classical_reference(benchmark, paper_config):
    """Beyond the paper: the closed-form classical pipeline (MOD + OMP).

    On the exactly rank-4 dataset this solves the problem to numerical
    zero — documenting that the paper's 'quantum superiority' is an
    optimisation-speed claim against gradient sparse coding, not an
    expressivity claim against classical methods at large.
    """
    cfg = paper_config.with_(iterations=30)
    result = benchmark.pedantic(
        run_fig5,
        args=(cfg,),
        kwargs={"csc_update": "mod", "csc_coder": "omp"},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig5(result))
    assert result.csc_loss[-1] < 1e-6
