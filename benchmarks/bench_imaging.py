"""Imaging benchmark: the tiled pipeline's RD curve, fan-out and speed.

Four contracts of ``repro.imaging`` (see ``docs/imaging.md``):

- **Rate-distortion** — the classical transform coder's quality knob is
  monotone in both rate and PSNR, and the quantum path (a codec trained
  on tile-magnitude vectors) lands on the PSNR-vs-bpp curve against the
  in-repo rank-``d`` baselines: per-tile zig-zag DCT keep-``d``
  (:class:`~repro.baselines.dct.DCTCompressor`) and a rank-``d`` SVD of
  the tile matrix, both at their *nominal* ``d``-coefficient rate.
  Rates for the containers are **measured serialized bytes**, not
  nominal counts.
- **Bit-exact wire** — ``CompressedImage.from_bytes(to_bytes())``
  reproduces both containers exactly.
- **Pool fan-out** — a pool-attached ``InferenceSession`` produces the
  same pre-quantization codes as the single-process path to
  ``<= 1e-10`` (skipped with a logged reason below 2 usable CPUs).
- **Throughput** — classical compress+serialize and the tile/transform
  front half clear conservative MPix/s floors.

Run standalone (``PYTHONPATH=src python benchmarks/bench_imaging.py
[output.json]``) or via pytest (``pytest benchmarks/bench_imaging.py``);
set ``BENCH_IMAGING_JSON`` to archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.api import Codec, CodecSpec
from repro.baselines.dct import DCTCompressor
from repro.imaging import (
    CompressedImage,
    assemble_tiles,
    compress_image,
    decompress_image,
    split_tiles,
    tile_magnitudes,
)
from repro.parallel.pool import default_worker_count
from repro.training.metrics import psnr

TILE = 4
COMPRESSED_DIM = 4
TRAIN_ITERATIONS = 300
QUALITIES = (30, 60, 90)
TRAIN_SIZE = 64
TEST_SIZE = 96

MATCH_TOL = 1e-10
MIN_CPUS = 2
POOL_WORKERS = 2

# Conservative floors (measured: classical q90 ~53 dB, quantum q90
# ~32 dB vs SVD rank-4 ~29 dB; end-to-end ~1.7 MPix/s, front ~11).
CLASSICAL_PSNR_FLOOR_DB = 45.0
QUANTUM_PSNR_FLOOR_DB = 24.0
QUANTUM_VS_SVD_MARGIN_DB = 3.0
END_TO_END_FLOOR_MPIX_S = 0.2
FRONT_HALF_FLOOR_MPIX_S = 1.0
PERF_REPEATS = 3


def _scene(size: int, seed: int) -> np.ndarray:
    """Smooth ramps + texture — the coefficient statistics of a real
    photograph's blocks, deterministically."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0.0, 1.0, size), np.linspace(0.0, 1.0, size),
        indexing="ij",
    )
    scene = 0.55 * yy + 0.25 * np.sin(7.0 * np.pi * xx) ** 2
    scene += 0.15 * rng.random((size, size))
    return np.clip(scene, 0.0, 1.0)


def _train_codec() -> Codec:
    prep = tile_magnitudes(_scene(TRAIN_SIZE, seed=3), tile_size=TILE,
                           quality=90)
    X = prep.magnitudes / np.linalg.norm(
        prep.magnitudes, axis=1, keepdims=True
    )
    # Adam + mean reduction: the paper's momentum/sum regime is tuned
    # for 25 samples and diverges on a 256-tile batch.
    spec = CodecSpec(
        dim=TILE * TILE,
        compressed_dim=COMPRESSED_DIM,
        iterations=TRAIN_ITERATIONS,
        backend="fused",
        optimizer="adam",
        loss_mode="mean",
        seed=7,
        tile_size=TILE,
    )
    return Codec(spec).fit(X)


def measure_rd_sweep(codec: Codec, image: np.ndarray) -> Dict:
    """PSNR-vs-measured-bpp for both container modes at each quality,
    plus the nominal-rate rank-d baselines; asserts wire bit-exactness
    along the way."""
    out: Dict = {"classical": [], "quantum": [], "wire_bit_exact": True}
    for quality in QUALITIES:
        for mode, blob in (
            ("classical", compress_image(image, quality=quality)),
            ("quantum", compress_image(image, codec, quality=quality)),
        ):
            if CompressedImage.from_bytes(blob.to_bytes()) != blob:
                out["wire_bit_exact"] = False
            recon = decompress_image(
                blob, codec if blob.mode == "quantum" else None
            )
            out[mode].append({
                "quality": quality,
                "bpp": blob.bits_per_pixel(),
                "psnr_db": float(psnr(recon, image)),
            })

    tiles, grid = split_tiles(image, TILE)
    dct_recon = assemble_tiles(
        DCTCompressor(
            num_coefficients=COMPRESSED_DIM, mode="zigzag"
        ).reconstruct(tiles),
        grid,
    )
    flat = tiles.reshape(-1, TILE * TILE)
    u, s, vt = np.linalg.svd(flat - flat.mean(0), full_matrices=False)
    svd_flat = (
        (u[:, :COMPRESSED_DIM] * s[:COMPRESSED_DIM]) @ vt[:COMPRESSED_DIM]
        + flat.mean(0)
    )
    svd_recon = assemble_tiles(svd_flat.reshape(-1, TILE, TILE), grid)
    nominal_bpp = COMPRESSED_DIM * 8.0 / (TILE * TILE)
    out["baselines"] = {
        "dct_keep_d": {
            "psnr_db": float(psnr(np.clip(dct_recon, 0, 1), image)),
            "nominal_bpp": nominal_bpp,
        },
        "svd_rank_d": {
            "psnr_db": float(psnr(np.clip(svd_recon, 0, 1), image)),
            "nominal_bpp": nominal_bpp,
        },
    }
    return out


def measure_pool_agreement(codec: Codec, image: np.ndarray) -> Dict:
    """Max |pool codes - single codes| pre-quantization (a level flip at
    a rounding boundary would turn 1e-12 of float noise into a full
    quantizer step, so the gate compares the raw float codes)."""
    from repro.parallel.pool import WorkerPool

    prep = tile_magnitudes(image, tile_size=TILE, quality=90)
    single = codec.compress(prep.magnitudes).codes
    with WorkerPool(processes=POOL_WORKERS) as pool:
        session = codec.session(
            flush_latency=None, chunk_size=16, pool=pool
        )
        try:
            scattered = session.compress(prep.magnitudes).codes
        finally:
            session.close()
    return {
        "workers": POOL_WORKERS,
        "tiles": int(prep.magnitudes.shape[0]),
        "match": float(np.max(np.abs(scattered - single))),
        "match_tol": MATCH_TOL,
    }


def measure_throughput(image: np.ndarray) -> Dict:
    """Best-of-N megapixels/second: end-to-end classical (compress +
    serialize) and the shared tile/transform/quantize front half."""
    mpix = image.size / 1e6
    compress_image(image)  # warm caches

    best_e2e = float("inf")
    for _ in range(PERF_REPEATS):
        t0 = time.perf_counter()
        compress_image(image, quality=60).to_bytes()
        best_e2e = min(best_e2e, time.perf_counter() - t0)

    best_front = float("inf")
    for _ in range(PERF_REPEATS):
        t0 = time.perf_counter()
        tile_magnitudes(image, tile_size=TILE, quality=60)
        best_front = min(best_front, time.perf_counter() - t0)

    return {
        "megapixels": mpix,
        "end_to_end_mpix_per_s": mpix / best_e2e,
        "front_half_mpix_per_s": mpix / best_front,
        "end_to_end_floor": END_TO_END_FLOOR_MPIX_S,
        "front_half_floor": FRONT_HALF_FLOOR_MPIX_S,
    }


def run_benchmarks() -> Dict:
    usable = default_worker_count()
    codec = _train_codec()
    image = _scene(TEST_SIZE, seed=11)
    payload: Dict = {
        "config": {
            "tile": TILE,
            "compressed_dim": COMPRESSED_DIM,
            "train_iterations": TRAIN_ITERATIONS,
            "qualities": list(QUALITIES),
            "test_image": [TEST_SIZE, TEST_SIZE],
            "usable_cpus": usable,
        },
        "rd": measure_rd_sweep(codec, image),
        "throughput": measure_throughput(_scene(256, seed=13)),
    }
    if usable < MIN_CPUS:
        reason = (
            f"host exposes {usable} usable CPU(s) < {MIN_CPUS}; the "
            f"{POOL_WORKERS}-worker fan-out would not actually scatter"
        )
        print(f"pool gate SKIPPED: {reason}", file=sys.stderr)
        payload["pool"] = {"skipped": reason}
    else:
        payload["pool"] = measure_pool_agreement(codec, image)
    return payload


def _emit(payload: Dict, path: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    rd = payload["rd"]
    if not rd["wire_bit_exact"]:
        return False
    classical = rd["classical"]
    bpps = [p["bpp"] for p in classical]
    psnrs = [p["psnr_db"] for p in classical]
    if bpps != sorted(bpps) or psnrs != sorted(psnrs):
        return False  # quality must be monotone in rate AND distortion
    if psnrs[-1] < CLASSICAL_PSNR_FLOOR_DB:
        return False
    quantum_best = max(p["psnr_db"] for p in rd["quantum"])
    if quantum_best < QUANTUM_PSNR_FLOOR_DB:
        return False
    svd_psnr = rd["baselines"]["svd_rank_d"]["psnr_db"]
    if quantum_best < svd_psnr - QUANTUM_VS_SVD_MARGIN_DB:
        return False  # the quantum path fell off the rank-d RD curve
    pool = payload["pool"]
    if "skipped" not in pool and pool["match"] > MATCH_TOL:
        return False
    throughput = payload["throughput"]
    if throughput["end_to_end_mpix_per_s"] < END_TO_END_FLOOR_MPIX_S:
        return False
    return throughput["front_half_mpix_per_s"] >= FRONT_HALF_FLOOR_MPIX_S


def test_imaging_benchmark():
    """Perf-trajectory gate: monotone classical RD curve (q90 >= 45 dB),
    quantum path on the rank-d curve (>= 24 dB, within 3 dB of SVD),
    bit-exact wire, pool fan-out <= 1e-10, throughput floors."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_IMAGING_JSON"))
    assert _gates_pass(payload), payload


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_IMAGING_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
