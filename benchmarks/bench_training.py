"""Training benchmark: data-parallel GradientReducer vs single-process.

``Trainer(parallel="pool[:K]")`` routes every gradient step through a
:class:`~repro.parallel.reducer.GradientReducer` — the sample batch (or,
for the finite-difference methods, the parameter-perturbation stack)
scattered over a persistent :class:`~repro.parallel.pool.WorkerPool` and
recombined by a deterministic :func:`~repro.parallel.reducer.tree_reduce`.
This benchmark asserts the two contracts that make that deployable:

- **Gradient agreement** — at the paper architecture (``dim=16``,
  ``l_C=12``) and identical batch order, the 2-worker reduced
  ``(loss, grad)`` matches the single-process engine to ``<= 1e-10``
  for the exact ``adjoint`` method (batch sharding) *and* the paper's
  ``fd`` method (perturbation-stack sharding), and a re-run of the
  reduction is *bitwise identical* (the determinism contract).  The
  single-process fd reference runs on the fused backend — the same
  workspace the workers use — so the comparison isolates the sharding
  error rather than backend base-loss rounding amplified by
  ``1/delta``.  Runs on any host.
- **Epoch throughput** — at a wide batch (``M = 16384``) a 4-worker
  reducer delivers ``>= 2x`` the single-process adjoint
  gradient-epoch throughput.  Workers are pinned to single-threaded
  BLAS, so this measures genuine data parallelism.  On hosts with
  fewer than 4 usable CPUs (CPU-affinity mask, not nominal core
  count) the gate *skips with a logged reason* instead of reporting
  scheduler noise.

Run standalone (``PYTHONPATH=src python benchmarks/bench_training.py
[output.json]``) or via pytest (``pytest benchmarks/bench_training.py``);
set ``BENCH_TRAINING_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork
from repro.parallel.pool import default_worker_count
from repro.parallel.reducer import GradientReducer
from repro.training.gradients import loss_and_gradient
from repro.training.loss import SquaredErrorLoss

# -- agreement: the paper architecture, reduced over 2 workers ----------
AGREE_DIM = 16
AGREE_LAYERS = 12
AGREE_M = 256
AGREE_WORKERS = 2
MATCH_TOL = 1e-10

# -- throughput: a batch wide enough for data parallelism to matter ----
PERF_DIM = 16
PERF_LAYERS = 12
PERF_M = 16384
PERF_WORKERS = 4
PERF_REPEATS = 3
SPEEDUP_FLOOR = 2.0
MIN_CPUS = 4


def _network(seed: int, backend: str = "fused") -> QuantumNetwork:
    return QuantumNetwork(
        AGREE_DIM, AGREE_LAYERS, backend=backend
    ).initialize("uniform", rng=np.random.default_rng(seed))


def _batch(m: int, dim: int, seed: int):
    rng = np.random.default_rng(seed)
    x = np.abs(rng.normal(size=(dim, m))) + 0.1
    x /= np.linalg.norm(x, axis=0, keepdims=True)
    t = np.abs(rng.normal(size=(dim, m))) + 0.1
    t /= np.linalg.norm(t, axis=0, keepdims=True)
    return x, t


def measure_agreement() -> Dict:
    """2-worker reduced (loss, grad) vs single-process, plus a bitwise
    re-run check, for adjoint (batch shards) and fd (param shards)."""
    x, t = _batch(AGREE_M, AGREE_DIM, seed=7)
    projection = Projection.last(AGREE_DIM, 4)
    out: Dict = {}
    with GradientReducer(num_workers=AGREE_WORKERS, seed=0) as reducer:
        for method, reduction in (
            ("adjoint", "sum"),
            ("adjoint", "mean"),
            ("fd", "sum"),
        ):
            loss = SquaredErrorLoss(reduction=reduction)
            # The fused single-process reference shares the workers'
            # workspace arithmetic (matters at 1/delta amplification).
            net = _network(seed=11)
            ref_v, ref_g = loss_and_gradient(
                net, x, t, loss=loss, projection=projection, method=method
            )
            par_v, par_g = reducer.loss_and_gradient(
                net, x, t, loss=loss, projection=projection, method=method
            )
            rerun_v, rerun_g = reducer.loss_and_gradient(
                net, x, t, loss=loss, projection=projection, method=method
            )
            out[f"{method}_{reduction}"] = {
                "value_match": abs(par_v - ref_v),
                "grad_match": float(np.max(np.abs(par_g - ref_g))),
                "rerun_bitwise": bool(
                    par_v == rerun_v and np.array_equal(par_g, rerun_g)
                ),
            }
    return out


def _epoch_throughput(reducer: Optional[GradientReducer],
                      x: np.ndarray, t: np.ndarray) -> float:
    """Best-of-N columns/second of one full-batch adjoint gradient."""
    net = QuantumNetwork(
        PERF_DIM, PERF_LAYERS, backend="fused"
    ).initialize("uniform", rng=np.random.default_rng(5))
    loss = SquaredErrorLoss(reduction="sum")

    def step():
        if reducer is None:
            return loss_and_gradient(net, x, t, loss=loss, method="adjoint")
        return reducer.loss_and_gradient(
            net, x, t, loss=loss, method="adjoint"
        )

    step()  # warm-up: spawn workers, build workspaces, ship shards
    best = float("inf")
    for _ in range(PERF_REPEATS):
        t0 = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - t0)
    return x.shape[1] / best


def measure_throughput() -> Dict:
    x, t = _batch(PERF_M, PERF_DIM, seed=3)
    single = _epoch_throughput(None, x, t)
    with GradientReducer(num_workers=PERF_WORKERS, seed=0) as reducer:
        multi = _epoch_throughput(reducer, x, t)
    return {
        "single_process_cols_per_s": single,
        "pool_cols_per_s": multi,
        "workers": PERF_WORKERS,
        "speedup": multi / single,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def run_benchmarks() -> Dict:
    usable = default_worker_count()
    payload: Dict = {
        "config": {
            "agreement": {
                "dim": AGREE_DIM, "layers": AGREE_LAYERS, "m": AGREE_M,
                "workers": AGREE_WORKERS, "match_tol": MATCH_TOL,
            },
            "throughput": {
                "dim": PERF_DIM, "layers": PERF_LAYERS, "m": PERF_M,
                "workers": PERF_WORKERS, "repeats": PERF_REPEATS,
                "min_cpus": MIN_CPUS,
            },
            "usable_cpus": usable,
        },
        "agreement": measure_agreement(),
    }
    if usable < MIN_CPUS:
        reason = (
            f"host exposes {usable} usable CPU(s) < {MIN_CPUS}; "
            f"{PERF_WORKERS}-worker throughput would measure scheduler "
            "noise, not data parallelism"
        )
        print(f"throughput gate SKIPPED: {reason}", file=sys.stderr)
        payload["throughput"] = {"skipped": reason}
    else:
        payload["throughput"] = measure_throughput()
    return payload


def _emit(payload: Dict, path: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    for record in payload["agreement"].values():
        if record["value_match"] > MATCH_TOL:
            return False
        if record["grad_match"] > MATCH_TOL:
            return False
        if not record["rerun_bitwise"]:
            return False
    throughput = payload["throughput"]
    if "skipped" in throughput:
        return True  # logged skip on small hosts is a pass, not silence
    return throughput["speedup"] >= SPEEDUP_FLOOR


def test_training_benchmark():
    """Perf-trajectory gate: 2-worker reduced gradients == single-process
    to <= 1e-10 at identical batch order (bitwise reproducible on
    re-run), and 4 workers >= 2x single-process epoch throughput at
    M = 16384 (skipped with a logged reason below 4 usable CPUs)."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_TRAINING_JSON"))
    assert _gates_pass(payload), payload


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_TRAINING_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
