"""Reproduce Table I: "Quantum Superiority Analysis".

Paper reference:

=========  ========  =========  ===========
Method     Accuracy  CPU Runs   Matrix Size
=========  ========  =========  ===========
QN-based   97.75 %   575.67 s   16*16
CSC-based  93.63 %   763.83 s   16*16
=========  ========  =========  ===========

Shape asserted here: the QN row beats the (gradient/ISTA) CSC row on
accuracy at the full training budget, with equal matrix sizes.  Absolute
CPU seconds are hardware/implementation-bound (the paper timed Matlab
with finite-difference gradients; this library's default is the exact
adjoint) — both the adjoint and FD-timed QN rows are printed so the
runtime comparison can be read either way.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_table1
from repro.experiments.reporting import render_table1


def test_table1_reproduction(benchmark, paper_config):
    rows = benchmark.pedantic(
        run_table1,
        args=(paper_config,),
        kwargs={"include_strong_csc": True},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table1(rows))

    by_method = {r.method: r for r in rows}
    qn = by_method["QN-based"]
    csc = by_method["CSC-based"]
    # Paper shape: QN-based accuracy exceeds the CSC comparator's.
    assert qn.accuracy_pct > csc.accuracy_pct
    # Same operator budget, as in the paper.
    assert qn.matrix_size == csc.matrix_size == "16*16"
    # QN also ends at the lower training loss (Fig. 5c cross-check).
    assert qn.final_loss < csc.final_loss
    # The strong classical row is the calibration upper bound.
    strong = by_method["CSC-MOD/OMP"]
    assert strong.accuracy_pct >= csc.accuracy_pct


def test_table1_fd_timed_qn_row(benchmark):
    """Time the QN training the way the paper did (forward finite
    differences): this is the row comparable to Table I's 575.67 s in
    spirit — FD training is ~(P+1)x the adjoint's cost per iteration."""
    from repro.experiments.config import PaperConfig
    from repro.experiments.fig4 import run_fig4

    cfg = PaperConfig(iterations=10, gradient_method="fd")
    result = benchmark.pedantic(
        run_fig4, args=(cfg,), rounds=1, iterations=1
    )
    assert result.history.num_iterations == 10
