"""Gradient-engine benchmark: batched einsum drive vs the looped reference.

PR 1's prefix/suffix workspace already removed the ``O(P^2)`` circuit
re-executions from the perturbative gradient methods, but it still walked
the ``P`` parameters in a Python loop.  The batched engine stacks each
layer's ``(2 x 2)`` perturbed blocks into single batched contractions
against the cached prefix rows and suffix columns, so a full gradient
costs ``O(num_layers)`` GEMM-like calls.  This benchmark measures both
engines at the paper's architecture (``N = 16``, ``l_C = 12`` layers,
``M = 25`` samples, compression projection ``d = 4``) for every gradient
method, on the real network and the Section V complex (``allow_phase``)
extension.

Acceptance gates asserted here (and printed as JSON for the perf
trajectory):

- batched ``fd`` gradients are >= 3x faster than the PR 1 looped path at
  the paper configuration;
- the batched engine matches the looped reference to <= 1e-8 for all four
  methods, real and complex.

Run standalone (``PYTHONPATH=src python benchmarks/bench_gradients.py
[output.json]``) or via pytest (``pytest benchmarks/bench_gradients.py``);
set ``BENCH_GRADIENTS_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork
from repro.training.gradients import loss_and_gradient

PAPER_DIM = 16
PAPER_LAYERS = 12          # l_C — the compression network
PAPER_M = 25
PAPER_COMPRESSED = 4
GRADIENT_METHODS = ["fd", "central", "derivative", "adjoint"]
ENGINES = ["looped", "batched"]
VARIANTS = ["real", "complex"]

SPEEDUP_FLOOR = 3.0
ENGINE_MATCH_TOL = 1e-8


def _time(fn: Callable[[], object], repeats: int = 5) -> float:
    """Best-of-``repeats`` wall seconds (one untimed warmup call)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _network(allow_phase: bool, seed: int = 2024) -> QuantumNetwork:
    net = QuantumNetwork(
        PAPER_DIM, PAPER_LAYERS, allow_phase=allow_phase, backend="fused"
    )
    net.initialize("uniform", rng=np.random.default_rng(seed))
    if allow_phase:
        rng = np.random.default_rng(seed + 1)
        params = net.get_flat_params()
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def _problem(seed: int = 7):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(PAPER_DIM, PAPER_M))
    x /= np.linalg.norm(x, axis=0)
    t = rng.normal(size=(PAPER_DIM, PAPER_M))
    t /= np.linalg.norm(t, axis=0)
    return x, t


def bench_engines() -> List[Dict]:
    """Seconds per gradient and engine agreement, method x engine x dtype."""
    x, t = _problem()
    proj = Projection.last(PAPER_DIM, PAPER_COMPRESSED)
    rows: List[Dict] = []
    for variant in VARIANTS:
        net = _network(allow_phase=variant == "complex")
        grads: Dict[str, Dict[str, np.ndarray]] = {}
        for method in GRADIENT_METHODS:
            grads[method] = {}
            for engine in ENGINES:
                _, grad = loss_and_gradient(
                    net, x, t, projection=proj, method=method, engine=engine
                )
                grads[method][engine] = grad
                seconds = _time(
                    lambda: loss_and_gradient(
                        net,
                        x,
                        t,
                        projection=proj,
                        method=method,
                        engine=engine,
                    )
                )
                rows.append(
                    {
                        "kind": "gradient",
                        "variant": variant,
                        "method": method,
                        "engine": engine,
                        "num_parameters": net.num_parameters,
                        "seconds_per_gradient": seconds,
                    }
                )
            rows.append(
                {
                    "kind": "engine_match",
                    "variant": variant,
                    "method": method,
                    "max_abs_diff_vs_looped": float(
                        np.max(
                            np.abs(
                                grads[method]["batched"]
                                - grads[method]["looped"]
                            )
                        )
                    ),
                }
            )
    return rows


def run_benchmarks() -> Dict:
    rows = bench_engines()

    def seconds(variant: str, method: str, engine: str) -> float:
        return next(
            r["seconds_per_gradient"]
            for r in rows
            if r["kind"] == "gradient"
            and r["variant"] == variant
            and r["method"] == method
            and r["engine"] == engine
        )

    speedups = {
        f"{variant}_{method}": seconds(variant, method, "looped")
        / seconds(variant, method, "batched")
        for variant in VARIANTS
        for method in GRADIENT_METHODS
        if method != "adjoint"  # adjoint ignores the engine choice
    }
    worst_match = max(
        r["max_abs_diff_vs_looped"] for r in rows if r["kind"] == "engine_match"
    )
    return {
        "config": {
            "dim": PAPER_DIM,
            "num_layers": PAPER_LAYERS,
            "batch_width": PAPER_M,
            "compressed_dim": PAPER_COMPRESSED,
        },
        "rows": rows,
        "summary": {
            "fd_gradient_speedup_batched_vs_looped": speedups["real_fd"],
            "engine_speedups": speedups,
            "engine_match_worst": worst_match,
            "speedup_floor": SPEEDUP_FLOOR,
            "engine_match_tol": ENGINE_MATCH_TOL,
        },
    }


def _emit(payload: Dict, path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    summary = payload["summary"]
    return (
        summary["fd_gradient_speedup_batched_vs_looped"] >= SPEEDUP_FLOOR
        # The complex network must accelerate too (phases double P).
        and summary["engine_speedups"]["complex_fd"] >= SPEEDUP_FLOOR
        and summary["engine_match_worst"] <= ENGINE_MATCH_TOL
    )


def test_gradient_engine_benchmark():
    """Perf-trajectory gate: batched >= 3x on fd (real and complex),
    engine match <= 1e-8 everywhere."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_GRADIENTS_JSON"))
    assert _gates_pass(payload), payload["summary"]


def main(argv: List[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_GRADIENTS_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
