"""Ablation (exp id abl-hw): what survives on a physical device.

The paper trains in an exact simulator; Section V defers physical effects
and the complex (alpha-trainable) network to future work.  This bench
quantifies both:

- finite measurement shots when estimating |B|^2 (accuracy recovers the
  exact-simulation value as shots grow);
- interferometer angle miscalibration and per-gate insertion loss
  (graceful degradation; heavy noise hurts);
- the fully complex network (doubled parameters, no benefit on
  real-valued image data — as the paper anticipates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    complex_network_study,
    imperfection_study,
    shot_noise_study,
)
from repro.experiments.reporting import render_records


def test_shot_noise_convergence(benchmark, quick_config):
    records = benchmark.pedantic(
        shot_noise_study,
        args=(quick_config,),
        kwargs={"shots_list": (None, 100, 1000, 10000, 100000)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="finite-shot measurement study"))
    by_shots = {r["shots"]: r["accuracy_pct"] for r in records}
    exact = by_shots[-1]
    # Heavy sampling converges to the exact-simulation accuracy...
    assert abs(by_shots[100000] - exact) < 5.0
    # ...while starved sampling deviates more than heavy sampling does.
    assert abs(by_shots[100] - exact) >= abs(by_shots[100000] - exact) - 1e-9


def test_imperfection_grid(benchmark, quick_config):
    records = benchmark.pedantic(
        imperfection_study,
        args=(quick_config,),
        kwargs={
            "theta_sigmas": (0.0, 0.001, 0.01, 0.1),
            "losses": (0.0, 0.01),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="interferometer imperfection grid"))
    by_cfg = {
        (r["theta_sigma"], r["loss_per_gate"]): r for r in records
    }
    ideal = by_cfg[(0.0, 0.0)]["accuracy_pct"]
    # Tiny calibration error is harmless...
    assert by_cfg[(0.001, 0.0)]["accuracy_pct"] >= ideal - 10.0
    # ...heavy calibration error is destructive.
    assert by_cfg[(0.1, 0.0)]["accuracy_pct"] <= ideal
    # Loss strictly reduces transmitted power.
    assert (
        by_cfg[(0.0, 0.01)]["mean_transmission"]
        < by_cfg[(0.0, 0.0)]["mean_transmission"]
    )


def test_spsa_shot_based_training(benchmark, paper_config):
    """Train the way hardware would: SPSA on shot-estimated probability
    losses (signs unobservable, two measurement rounds per step).

    Shape asserted: the noisy objective still descends — median of late
    measured losses below the early median, for both networks.
    """
    import numpy as np

    from repro.network.targets import TruncatedInputTarget
    from repro.training.hardware import train_hardware_style

    cfg = paper_config.with_(
        iterations=150, compression_layers=6, reconstruction_layers=6,
        num_samples=10,
    )
    ae = cfg.build_autoencoder()
    X = cfg.dataset().matrix()
    enc = ae.codec.encode(X)
    strat = TruncatedInputTarget.from_pca(ae.projection, X)
    q = strat.targets(enc) ** 2

    result = benchmark.pedantic(
        train_hardware_style,
        args=(ae, enc, q),
        kwargs={"iterations": cfg.iterations, "shots": 4096, "seed": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"shot-based training: {result.total_measurement_rounds} "
        f"measurement rounds of {result.shots} shots; "
        f"L_C {np.median(result.loss_c[:15]):.3f} -> "
        f"{np.median(result.loss_c[-15:]):.3f}, "
        f"L_R {np.median(result.loss_r[:15]):.3f} -> "
        f"{np.median(result.loss_r[-15:]):.3f}"
    )
    assert np.median(result.loss_c[-15:]) < np.median(result.loss_c[:15])
    assert np.median(result.loss_r[-15:]) < np.median(result.loss_r[:15])


def test_complex_alpha_network(benchmark, paper_config):
    cfg = paper_config.with_(
        iterations=30, compression_layers=4, reconstruction_layers=6
    )
    records = benchmark.pedantic(
        complex_network_study, args=(cfg,), rounds=1, iterations=1
    )
    print()
    print(render_records(records, title="Section V: complex-alpha network"))
    real, complex_ = records
    assert complex_["num_parameters"] == 2 * real["num_parameters"]
    # Both train to finite losses; the complex network must not be
    # catastrophically worse on real data (it contains the real network).
    assert np.isfinite(complex_["loss_r"])
    assert complex_["wall_seconds"] > real["wall_seconds"]  # pricier grads
