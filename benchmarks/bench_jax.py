"""JAX benchmark: XLA backend equivalence, wide-batch and train-step gates.

Four claims land with the ``jax`` backend (see ``docs/backends.md`` and
``docs/gradients.md``); this benchmark gates all of them, JSON-emitting
like its siblings, and every gate is *skipped with a logged reason* when
the optional jax package is not installed (the jax-free CI legs prove
the soft gating, the jax leg proves the kernels):

- *agreement*: forward and inverse match the ``fused`` backend to
  ``<= 1e-10`` for the paper's real network and the Section V complex
  (``allow_phase``) extension, at ``M = 512``;
- *wide-batch throughput*: at the paper configuration (``N = 16``,
  ``l_C = 12``) and ``M = 4096`` the vmapped device-side contraction
  beats the fused numpy GEMM by ``>= 2x`` samples/s (the fused backend
  re-validates parameters and allocates per call; the jax apply is one
  cached executable);
- *fused train step*: one jitted forward + adjoint + Adam update
  (:class:`repro.training.jax_step.JaxTrainStep`) is ``>= 2x`` the
  unfused batched-adjoint step at the paper training config
  (``M = 25``);
- *autodiff cross-check*: ``jax.grad`` through the scanned sweep agrees
  with the adjoint-tape gradient to ``<= 1e-8``.

Run standalone (``PYTHONPATH=src python benchmarks/bench_jax.py
[output.json]``) or via pytest (``pytest benchmarks/bench_jax.py``); set
``BENCH_JAX_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.backends import JAX_AVAILABLE
from repro.network.quantum_network import QuantumNetwork

# -- paper configuration (N = 16, l_C = 12, 25 training samples) --------
DIM = 16
LAYERS = 12
TRAIN_M = 25

AGREE_M = 512
WIDE_M = 4096
MATCH_TOL = 1e-10
AUTODIFF_TOL = 1e-8

THROUGHPUT_REPEATS = 50
WIDE_SPEEDUP_FLOOR = 2.0

STEP_REPEATS = 50
STEP_SPEEDUP_FLOOR = 2.0

SKIP_REASON = (
    "jax is not installed; the 'jax' backend gates are skipped "
    "(pip install jax, or use the requirements-ci-jax.txt extras)"
)


def _network(backend: str, allow_phase: bool = False, seed: int = 11):
    net = QuantumNetwork(
        DIM, LAYERS, allow_phase=allow_phase, backend=backend
    ).initialize("uniform", rng=np.random.default_rng(seed))
    if allow_phase:
        params = net.get_flat_params()
        rng = np.random.default_rng(seed + 1)
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def _batch(m: int, complex_: bool = False, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(DIM, m))
    if complex_:
        x = x + 1j * rng.normal(size=(DIM, m))
    return x / np.linalg.norm(x, axis=0)


def measure_agreement() -> Dict:
    """Max |jax - fused| over forward and inverse, real and complex."""
    out = {}
    for label, allow_phase in (("real", False), ("complex", True)):
        xla = _network("jax", allow_phase)
        fused = _network("fused", allow_phase)
        fused.set_flat_params(xla.get_flat_params())
        x = _batch(AGREE_M, complex_=allow_phase)
        out[label] = {
            "match": float(
                np.max(np.abs(xla.forward(x) - fused.forward(x)))
            ),
            "inverse_match": float(
                np.max(
                    np.abs(
                        xla.forward(x, inverse=True)
                        - fused.forward(x, inverse=True)
                    )
                )
            ),
        }
    return out


def _best_forward(net, x: np.ndarray) -> float:
    """Best-of-N seconds for one in-place wide-batch forward pass."""
    buf = np.array(x, copy=True)
    net.forward_inplace(buf)  # warm caches / compile
    best = float("inf")
    for _ in range(THROUGHPUT_REPEATS):
        t0 = time.perf_counter()
        net.forward_inplace(buf)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_wide_batch() -> Dict:
    """Wide-batch (M = 4096) forward throughput, jax vs fused."""
    xla = _network("jax")
    fused = _network("fused")
    fused.set_flat_params(xla.get_flat_params())
    x = _batch(WIDE_M)
    fused_s = _best_forward(fused, x)
    jax_s = _best_forward(xla, x)
    return {
        "m": WIDE_M,
        "fused_samples_per_s": WIDE_M / fused_s,
        "jax_samples_per_s": WIDE_M / jax_s,
        "speedup": fused_s / jax_s,
        "speedup_floor": WIDE_SPEEDUP_FLOOR,
    }


def measure_train_step() -> Dict:
    """One fused-jit train step vs the unfused batched-adjoint step.

    Both sides run on the ``jax`` backend at the paper training config
    so the comparison isolates the *fusion* (one executable vs
    tape + numpy loss + sweep + numpy Adam with host round-trips).
    """
    from repro.network.projection import Projection
    from repro.training.gradients import loss_and_gradient
    from repro.training.jax_step import maybe_fused_step
    from repro.training.loss import SquaredErrorLoss
    from repro.training.optimizers import Adam

    x = _batch(TRAIN_M, seed=3)
    projection = Projection.last(DIM, 4)
    t = projection.apply(_batch(TRAIN_M, seed=4))
    loss = SquaredErrorLoss()

    def unfused_step(net, opt):
        loss_val, grad = loss_and_gradient(
            net, x, t, loss=loss, projection=projection,
            method="adjoint", engine="batched",
        )
        net.set_flat_params(opt.step(net.get_flat_params(), grad))
        return loss_val

    def time_steps(step_fn) -> float:
        step_fn()  # warm compile caches
        best = float("inf")
        for _ in range(STEP_REPEATS):
            t0 = time.perf_counter()
            step_fn()
            best = min(best, time.perf_counter() - t0)
        return best

    net_a = _network("jax")
    opt_a = Adam(0.01)
    unfused_s = time_steps(lambda: unfused_step(net_a, opt_a))

    net_b = _network("jax")
    fused_step = maybe_fused_step(net_b, Adam(0.01), projection, loss)
    assert fused_step is not None
    fused_s = time_steps(lambda: fused_step.run(x, t))

    # Autodiff cross-check on a fresh network (same parameters as the
    # timed ones before any updates).
    net_c = _network("jax")
    check = maybe_fused_step(net_c, Adam(0.01), projection, loss)
    l_adj, g_adj = check.loss_and_grad(x, t)
    l_auto, g_auto = check.loss_and_grad_autodiff(x, t)
    return {
        "m": TRAIN_M,
        "unfused_step_ms": unfused_s * 1e3,
        "fused_step_ms": fused_s * 1e3,
        "speedup": unfused_s / fused_s,
        "speedup_floor": STEP_SPEEDUP_FLOOR,
        "autodiff_loss_delta": abs(l_adj - l_auto),
        "autodiff_grad_delta": float(np.max(np.abs(g_adj - g_auto))),
        "autodiff_tol": AUTODIFF_TOL,
    }


def run_benchmarks() -> Dict:
    payload: Dict = {
        "config": {
            "dim": DIM,
            "layers": LAYERS,
            "agreement_m": AGREE_M,
            "wide_m": WIDE_M,
            "train_m": TRAIN_M,
            "match_tol": MATCH_TOL,
            "autodiff_tol": AUTODIFF_TOL,
            "throughput_repeats": THROUGHPUT_REPEATS,
            "step_repeats": STEP_REPEATS,
            "jax_available": JAX_AVAILABLE,
        },
    }
    if JAX_AVAILABLE:
        payload["agreement"] = measure_agreement()
        payload["wide_batch"] = measure_wide_batch()
        payload["train_step"] = measure_train_step()
    else:
        print(f"jax gates SKIPPED: {SKIP_REASON}", file=sys.stderr)
        payload["agreement"] = {"skipped": SKIP_REASON}
        payload["wide_batch"] = {"skipped": SKIP_REASON}
        payload["train_step"] = {"skipped": SKIP_REASON}
    return payload


def _emit(payload: Dict, path: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    agreement = payload["agreement"]
    if "skipped" in agreement:
        return True  # logged skip without jax is a pass, not silence
    for label in ("real", "complex"):
        if agreement[label]["match"] > MATCH_TOL:
            return False
        if agreement[label]["inverse_match"] > MATCH_TOL:
            return False
    if payload["wide_batch"]["speedup"] < WIDE_SPEEDUP_FLOOR:
        return False
    step = payload["train_step"]
    if step["speedup"] < STEP_SPEEDUP_FLOOR:
        return False
    return step["autodiff_grad_delta"] <= AUTODIFF_TOL


def test_jax_benchmark():
    """Perf-trajectory gate: jax == fused to <= 1e-10 (real + complex,
    forward + inverse), vmapped wide-batch forward >= 2x fused at
    M = 4096, the one-jit train step >= 2x the unfused batched-adjoint
    step, and jax.grad vs the adjoint tape <= 1e-8 (all skipped with a
    logged reason when jax is missing)."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_JAX_JSON"))
    assert _gates_pass(payload), payload


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_JAX_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
