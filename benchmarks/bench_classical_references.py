"""Calibration bench: every classical reference on the paper's dataset.

Prints one table comparing all implemented compressors at the same
d = 4-ish budget on the 25-image set: the trained quantum network, the
paper's gradient CSC, strong CSC (MOD/OMP), PCA, truncated SVD, and the
data-independent DCT coder.  This contextualises Table I: which part of
the spread comes from adaptivity, which from optimisation quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CSCCompressor,
    DCTCompressor,
    PCACompressor,
    truncated_svd_reconstruction,
)
from repro.experiments.reporting import render_records
from repro.training.metrics import paper_accuracy


def test_all_classical_references(benchmark, paper_config):
    ds = paper_config.dataset()
    X = ds.matrix()
    images = ds.images

    def evaluate():
        records = []
        csc = CSCCompressor(dim=16, sparsity=4, update="gradient",
                            coder="ista", lr=0.01, seed=0)
        csc.fit(X, iterations=paper_config.iterations)
        records.append(
            {
                "method": "CSC gradient/ISTA (paper comparator)",
                "budget": "4 atoms of 16",
                "accuracy_pct": paper_accuracy(csc.reconstruct(X), X),
            }
        )
        strong = CSCCompressor(dim=16, sparsity=4, update="mod",
                               coder="omp", seed=0)
        strong.fit(X, iterations=30)
        records.append(
            {
                "method": "CSC MOD/OMP (strong classical)",
                "budget": "4 atoms of 16",
                "accuracy_pct": paper_accuracy(strong.reconstruct(X), X),
            }
        )
        pca = PCACompressor(num_components=4).fit(X)
        records.append(
            {
                "method": "PCA (linear optimum, adaptive)",
                "budget": "4 components",
                "accuracy_pct": paper_accuracy(pca.reconstruct(X), X),
            }
        )
        x_svd, _ = truncated_svd_reconstruction(X, 4)
        records.append(
            {
                "method": "truncated SVD (Eckart-Young floor)",
                "budget": "rank 4",
                "accuracy_pct": paper_accuracy(
                    np.clip(x_svd, 0.0, None), X
                ),
            }
        )
        dct = DCTCompressor(num_coefficients=4)
        records.append(
            {
                "method": "DCT keep-4 (data-independent)",
                "budget": "4 coefficients",
                "accuracy_pct": paper_accuracy(
                    dct.reconstruct(images).reshape(25, 16), X
                ),
            }
        )
        return records

    records = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print()
    print(render_records(records, title="classical references, d=4 budget"))
    by_method = {r["method"]: r["accuracy_pct"] for r in records}
    # Adaptive linear methods crack the rank-4 set exactly.
    assert by_method["PCA (linear optimum, adaptive)"] == pytest.approx(100.0)
    # The fixed-basis DCT cannot (it does not know the block structure).
    assert by_method["DCT keep-4 (data-independent)"] < 100.0
    # The paper's comparator sits below the strong classical pipeline.
    assert (
        by_method["CSC gradient/ISTA (paper comparator)"]
        <= by_method["CSC MOD/OMP (strong classical)"]
    )
