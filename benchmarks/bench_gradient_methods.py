"""Ablation (exp id abl-grad): the four gradient engines.

The paper trains with forward finite differences (Eq. 8, Delta = 1e-8).
This bench quantifies what that choice costs against central differences,
the exact derivative-gate forward mode, and the exact adjoint:

- accuracy: max |g - g_adjoint| (FD ~1e-6..1e-8-ish, exact methods ~1e-12);
- speed: seconds per full gradient at the paper's architecture
  (adjoint is ~2 forward passes; FD is P+1 = 181 forward passes for U_C).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import gradient_method_comparison
from repro.experiments.reporting import render_records
from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork
from repro.training.gradients import loss_and_gradient


@pytest.fixture(scope="module")
def problem(paper_config):
    """The U_C gradient problem at the paper's architecture."""
    cfg = paper_config
    ds = cfg.dataset()
    X = ds.matrix()
    ae = cfg.build_autoencoder()
    enc = ae.codec.encode(X)
    strategy = cfg.build_target_strategy(ae, X)
    return ae.uc, enc.amplitudes(), strategy.targets(enc), ae.projection


@pytest.mark.parametrize("method", ["fd", "central", "derivative", "adjoint"])
def test_gradient_method_cost(benchmark, problem, method):
    net, x, targets, projection = problem
    loss, grad = benchmark(
        loss_and_gradient,
        net,
        x,
        targets,
        projection=projection,
        method=method,
    )
    assert np.all(np.isfinite(grad))
    assert grad.shape == (net.num_parameters,)


def test_gradient_method_accuracy_table(benchmark, paper_config):
    records = benchmark.pedantic(
        gradient_method_comparison,
        args=(paper_config,),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="gradient-method ablation"))
    by_method = {r["method"]: r for r in records}
    # Exact methods agree to rounding.
    assert by_method["derivative"]["max_error_vs_adjoint"] < 1e-10
    # The paper's FD is approximate but safely inside training tolerance.
    assert 0.0 < by_method["fd"]["max_error_vs_adjoint"] < 1e-4
    # Central differences beat forward differences.
    assert (
        by_method["central"]["max_error_vs_adjoint"]
        <= by_method["fd"]["max_error_vs_adjoint"]
    )
    # The adjoint is the fastest by a wide margin at P=180 parameters.
    assert (
        by_method["adjoint"]["seconds_per_gradient"] * 5
        < by_method["fd"]["seconds_per_gradient"]
    )
