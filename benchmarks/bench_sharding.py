"""Sharding benchmark: multi-process `sharded` backend vs in-process `fused`.

The ``sharded`` backend (see ``docs/sharding.md``) scatters wide
``(N, M)`` batches over a persistent :class:`~repro.parallel.pool.WorkerPool`
in column shards; each worker compiles the gate program once and runs one
fused GEMM per shard through shared memory.  This benchmark asserts the two
contracts that make it deployable:

- **Agreement** — sharded outputs match the in-process fused backend to
  ``<= 1e-10`` for both the paper's real network and the Section V
  complex (``allow_phase``) extension.  Runs on any host.
- **Throughput** — at ``M >= 16384`` a 4-worker pool delivers ``>= 1.5x``
  the single-worker sharded path.  Workers are pinned to single-threaded
  BLAS, so this measures genuine scatter parallelism.  On hosts with
  fewer than 4 usable CPUs (CPU-affinity mask, not nominal core count)
  the gate *skips with a logged reason* instead of reporting noise.

Run standalone (``PYTHONPATH=src python benchmarks/bench_sharding.py
[output.json]``) or via pytest (``pytest benchmarks/bench_sharding.py``);
set ``BENCH_SHARDING_JSON`` to also archive the JSON from the pytest run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.backends.sharded import ShardedBackend
from repro.network.quantum_network import QuantumNetwork
from repro.parallel.pool import default_worker_count

# -- agreement: the paper architecture, sharded over 2 workers ----------
AGREE_DIM = 16
AGREE_LAYERS = 12
AGREE_M = 4096
AGREE_WORKERS = 2
AGREE_MIN_SHARD = 512  # force real scatter at the agreement batch width
MATCH_TOL = 1e-10

# -- throughput: a GEMM heavy enough for process parallelism to matter --
PERF_DIM = 256
PERF_LAYERS = 4
PERF_M = 16384
PERF_WORKERS = 4
PERF_MIN_SHARD = 1024
PERF_REPEATS = 3
SPEEDUP_FLOOR = 1.5
MIN_CPUS = 4


def _pair(dim: int, layers: int, workers: int, min_shard: int,
          allow_phase: bool, seed: int):
    """A (sharded, fused) network pair with identical parameters."""
    sharded = QuantumNetwork(
        dim,
        layers,
        allow_phase=allow_phase,
        backend=ShardedBackend(
            num_workers=workers, min_shard_columns=min_shard
        ),
    ).initialize("uniform", rng=np.random.default_rng(seed))
    fused = QuantumNetwork(dim, layers, allow_phase=allow_phase,
                           backend="fused")
    fused.set_flat_params(sharded.get_flat_params())
    return sharded, fused


def measure_agreement() -> Dict:
    """Max |sharded - fused| on wide batches, real and complex."""
    rng = np.random.default_rng(7)
    x = rng.normal(size=(AGREE_DIM, AGREE_M))
    out = {}
    for label, allow_phase in (("real", False), ("complex", True)):
        sharded, fused = _pair(
            AGREE_DIM, AGREE_LAYERS, AGREE_WORKERS, AGREE_MIN_SHARD,
            allow_phase, seed=11,
        )
        data = x.astype(np.complex128) if allow_phase else x
        try:
            diff = float(
                np.max(np.abs(sharded.forward(data) - fused.forward(data)))
            )
            inverse_diff = float(np.max(np.abs(
                sharded.forward(data, inverse=True)
                - fused.forward(data, inverse=True)
            )))
        finally:
            sharded.backend.close()
        out[label] = {"match": diff, "inverse_match": inverse_diff}
    return out


def _throughput(workers: int, x: np.ndarray, seed: int) -> float:
    """Best-of-N columns/second of the sharded path with ``workers``."""
    net = QuantumNetwork(
        PERF_DIM,
        PERF_LAYERS,
        backend=ShardedBackend(
            num_workers=workers, min_shard_columns=PERF_MIN_SHARD
        ),
    ).initialize("uniform", rng=np.random.default_rng(seed))
    buf = np.array(x, copy=True)
    try:
        net.forward_inplace(buf)  # warm-up: spawn workers, compile, ship
        best = float("inf")
        for _ in range(PERF_REPEATS):
            t0 = time.perf_counter()
            net.forward_inplace(buf)
            best = min(best, time.perf_counter() - t0)
    finally:
        net.backend.close()
    return x.shape[1] / best


def measure_throughput() -> Dict:
    x = np.random.default_rng(3).normal(size=(PERF_DIM, PERF_M))
    single = _throughput(1, x, seed=5)
    multi = _throughput(PERF_WORKERS, x, seed=5)
    return {
        "single_worker_cols_per_s": single,
        "multi_worker_cols_per_s": multi,
        "workers": PERF_WORKERS,
        "speedup": multi / single,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def run_benchmarks() -> Dict:
    usable = default_worker_count()
    payload: Dict = {
        "config": {
            "agreement": {
                "dim": AGREE_DIM, "layers": AGREE_LAYERS, "m": AGREE_M,
                "workers": AGREE_WORKERS, "match_tol": MATCH_TOL,
            },
            "throughput": {
                "dim": PERF_DIM, "layers": PERF_LAYERS, "m": PERF_M,
                "workers": PERF_WORKERS, "repeats": PERF_REPEATS,
                "min_cpus": MIN_CPUS,
            },
            "usable_cpus": usable,
        },
        "agreement": measure_agreement(),
    }
    if usable < MIN_CPUS:
        reason = (
            f"host exposes {usable} usable CPU(s) < {MIN_CPUS}; "
            f"{PERF_WORKERS}-worker throughput would measure scheduler "
            "noise, not scatter parallelism"
        )
        print(f"throughput gate SKIPPED: {reason}", file=sys.stderr)
        payload["throughput"] = {"skipped": reason}
    else:
        payload["throughput"] = measure_throughput()
    return payload


def _emit(payload: Dict, path: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nbenchmark JSON written to {path}", file=sys.stderr)


def _gates_pass(payload: Dict) -> bool:
    """The full gate set — shared by the pytest and CLI entry points."""
    agreement = payload["agreement"]
    for label in ("real", "complex"):
        if agreement[label]["match"] > MATCH_TOL:
            return False
        if agreement[label]["inverse_match"] > MATCH_TOL:
            return False
    throughput = payload["throughput"]
    if "skipped" in throughput:
        return True  # logged skip on small hosts is a pass, not silence
    return throughput["speedup"] >= SPEEDUP_FLOOR


def test_sharding_benchmark():
    """Perf-trajectory gate: sharded == fused to <= 1e-10 (real and
    complex), and 4 workers >= 1.5x one worker at M >= 16384 (skipped
    with a logged reason below 4 usable CPUs)."""
    payload = run_benchmarks()
    print()
    _emit(payload, os.environ.get("BENCH_SHARDING_JSON"))
    assert _gates_pass(payload), payload


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else os.environ.get("BENCH_SHARDING_JSON")
    payload = run_benchmarks()
    _emit(payload, path)
    return 0 if _gates_pass(payload) else 1


if __name__ == "__main__":
    sys.exit(main())
