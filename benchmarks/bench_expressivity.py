"""Ablation: mesh expressivity vs depth (the DESIGN.md layer-count study).

Measures the tangent rank of the parameter-to-unitary map across layer
counts, characterising the paper's architecture choice:

- the parameter-count bound says >= ceil(N/2) = 8 layers at N = 16;
- the measured rank shows full SO(16) coverage only from 16 layers
  (consistent with the N-column rectangular decompositions of the
  paper's ref. [19]);
- the paper's l_C = 12 (rank 114/120) is sufficient *for rank-4 data*,
  which is why Fig. 4 converges anyway.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_records
from repro.network.expressivity import (
    layer_coverage_report,
    minimum_layers,
    parameter_dimension,
    universal_layers,
)


def test_layer_coverage_n16(benchmark):
    records = benchmark.pedantic(
        layer_coverage_report,
        args=(16, [8, 10, 12, 14, 16]),
        kwargs={"seed": 2},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_records(records, title="tangent rank vs depth (N = 16)"))
    by_layers = {r["layers"]: r for r in records}
    # Rank grows monotonically with depth...
    ranks = [by_layers[l]["tangent_rank"] for l in (8, 10, 12, 14, 16)]
    assert ranks == sorted(ranks)
    # ...the parameter-count bound is necessary but not sufficient...
    assert not by_layers[minimum_layers(16)]["locally_universal"]
    # ...and universality arrives at N layers.
    assert by_layers[universal_layers(16)]["locally_universal"]
    assert by_layers[16]["tangent_rank"] == parameter_dimension(16)
    # The paper's architecture: close to, but short of, universal.
    assert 110 <= by_layers[12]["tangent_rank"] < 120


def test_layer_coverage_small_dims(benchmark):
    """The N-layers-for-universality pattern holds across dimensions."""

    def collect():
        out = {}
        for dim in (4, 6, 8):
            records = layer_coverage_report(
                dim, [dim // 2, dim - 1, dim], seed=3
            )
            out[dim] = records
        return out

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for dim, records in results.items():
        by_layers = {r["layers"]: r for r in records}
        assert by_layers[dim]["locally_universal"], f"N={dim}"
