#!/usr/bin/env python
"""Serving walkthrough: train a Codec, compile a session, micro-batch requests.

Demonstrates the PR-3 serving surface end to end:

1. train a :class:`repro.api.Codec` on the paper dataset (Algorithm 1);
2. checkpoint it and reload (format v2 round-trips the full spec);
3. compile an :class:`repro.api.InferenceSession` — the whole pipeline
   folded into one dense operator, one GEMM per served batch;
4. push single-image requests through the micro-batcher and compare
   throughput against per-request eager forward.

Run:  python examples/serving_session.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import Codec, CodecSpec
from repro.api.benchmark import synthetic_requests
from repro.data import paper_dataset


def main() -> None:
    # 1. Train the paper's architecture (shortened budget for the demo).
    spec = CodecSpec(iterations=50, backend="fused")
    codec = Codec(spec)
    X = paper_dataset().matrix()
    codec.fit(X)
    metrics = codec.evaluate(X)
    print(f"trained {codec!r}")
    print(f"  accuracy={metrics['accuracy']:.2f}%  "
          f"L_R={metrics['reconstruction_loss']:.4f}")

    # 2. Round-trip through a checkpoint.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "codec.npz"
        codec.save(path)
        codec = Codec.load(path)
    print(f"reloaded from checkpoint: spec intact "
          f"(backend={codec.spec.backend!r})")

    # 3. Compile the serving artifact and verify it against eager forward.
    session = codec.session(max_batch_size=25, flush_latency=None)
    drift = np.max(np.abs(session.reconstruct(X) - codec.forward(X).x_hat))
    print(f"session vs eager forward: max |diff| = {drift:.2e}")

    # 4. Serve a request stream both ways.
    requests = synthetic_requests(500, codec.dim)

    t0 = time.perf_counter()
    for row in requests:
        codec.forward(row[None, :])
    eager = time.perf_counter() - t0

    t0 = time.perf_counter()
    futures = [session.submit(row) for row in requests]
    session.flush()
    for future in futures:
        future.result(timeout=10.0)
    batched = time.perf_counter() - t0

    stats = session.batcher.stats
    print(f"eager   : {len(requests) / eager:9.0f} req/s")
    print(f"session : {len(requests) / batched:9.0f} req/s "
          f"({stats['ticks']} ticks, largest {stats['largest_tick']})")
    print(f"speedup : {eager / batched:.1f}x")


if __name__ == "__main__":
    main()
