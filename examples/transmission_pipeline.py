#!/usr/bin/env python
"""Sender/receiver scenario: ship only the compressed payload.

The paper motivates compression by "saving storage space and transmission
bandwidth".  This example splits the pipeline across a simulated channel:

- sender: encodes images, runs U_C + P1, transmits the (d, M) compact
  codes plus one norm scalar per image;
- receiver: embeds the codes, runs U_R, decodes — never seeing the
  originals;
- also streams a large batch through the chunked pipeline to show the
  memory-bounded execution path.

Run:  python examples/transmission_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import QuantumAutoencoder, Trainer, paper_accuracy
from repro.data import paper_dataset, rank_limited_binary_dataset
from repro.network.targets import TruncatedInputTarget
from repro.parallel import ChunkedPipeline
from repro.training.optimizers import MomentumGD


def main() -> None:
    dataset = paper_dataset()
    X = dataset.matrix()

    ae = QuantumAutoencoder(
        dim=16, compressed_dim=4,
        compression_layers=12, reconstruction_layers=14,
    ).initialize("uniform", rng=np.random.default_rng(2024))
    Trainer(
        iterations=200,
        gradient_method="adjoint",
        optimizer_factory=lambda: MomentumGD(0.01, 0.9),
    ).train(ae, X, target_strategy=TruncatedInputTarget.from_pca(ae.projection, X))

    # --- sender side -----------------------------------------------------
    enc = ae.codec.encode(X)
    codes = ae.compression.compact_codes(enc.states)       # (d, M)
    norms = enc.squared_norms                              # (M,)
    payload_floats = codes.size + norms.size
    raw_floats = X.size
    print(
        f"transmitting {payload_floats} floats instead of {raw_floats} "
        f"({payload_floats / raw_floats:.0%} of raw)"
    )

    # --- receiver side (no access to X) ----------------------------------
    x_hat = ae.reconstruct_from_codes(codes, norms)
    print(f"receiver-side accuracy: {paper_accuracy(x_hat, X):.2f}%")

    # --- bulk streaming path ---------------------------------------------
    bulk = rank_limited_binary_dataset(
        num_samples=5000, rank=4, image_size=4, seed=3
    )
    Xbulk = bulk.matrix()
    pipeline = ChunkedPipeline(ae, chunk_size=512)
    x_bulk = pipeline.reconstruct(Xbulk)
    print(
        f"streamed {len(bulk)} images through the chunked pipeline; "
        f"accuracy {paper_accuracy(x_bulk, Xbulk):.2f}%"
    )
    print(
        "(bulk images share the training set's rank-4 structure, so the "
        "trained codec generalises to unseen samples)"
    )


if __name__ == "__main__":
    main()
