#!/usr/bin/env python
"""Mixed-state analysis: how decoherence degrades the trained codec.

The statevector simulator covers the paper's ideal runs; real photonic
hardware decoheres.  This example propagates the trained pipeline through
density-matrix channels:

1. dephasing between the compression and reconstruction meshes (e.g. a
   noisy delay line or transmission link) — Fig.-1 step 2->3 boundary;
2. depolarising noise of increasing strength;
3. per-mode photon loss with post-selection.

For each channel strength it reports the output-state fidelity against
the ideal reconstruction and the resulting pixel accuracy.

Run:  python examples/density_noise_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import QuantumAutoencoder, Trainer, paper_accuracy
from repro.data import paper_dataset
from repro.encoding.amplitude import decode_vector
from repro.network.targets import TruncatedInputTarget
from repro.simulator.density import (
    DensityMatrix,
    amplitude_damping_kraus,
    dephasing_channel,
    depolarizing_channel,
)
from repro.training.optimizers import MomentumGD
from repro.utils.ascii_art import render_table


def main() -> None:
    ds = paper_dataset()
    X = ds.matrix()
    ae = QuantumAutoencoder(16, 4, 12, 14).initialize(
        "uniform", rng=np.random.default_rng(2024)
    )
    Trainer(
        iterations=200,
        gradient_method="adjoint",
        optimizer_factory=lambda: MomentumGD(0.01, 0.9),
        record_theta_every=None,
    ).train(ae, X, target_strategy=TruncatedInputTarget.from_pca(ae.projection, X))

    enc = ae.codec.encode(X)
    u_c = ae.uc.unitary()
    u_r = ae.ur.unitary()
    p1 = ae.projection.matrix()

    def run_with_channel(kraus, renormalize=False):
        """Propagate every sample as a density matrix through
        U_R . channel . P1 . U_C and decode the diagonal."""
        fidelities, pixels = [], []
        for i in range(enc.num_samples):
            amps = enc.amplitudes()[:, i]
            rho = DensityMatrix.from_state(amps)
            rho = rho.evolve(u_c)
            # Projection is a (trace-decreasing) Kraus map; renormalise to
            # model post-selecting the kept modes.
            rho = rho.apply_kraus([p1], renormalize=True)
            if kraus is not None:
                rho = rho.apply_kraus(kraus, renormalize=renormalize)
            rho = rho.evolve(u_r)
            ideal = ae.forward_encoded(enc).output_amplitudes[:, i]
            ideal = ideal / np.linalg.norm(ideal)
            fidelities.append(rho.fidelity_with_pure(ideal))
            probs = rho.probabilities()
            x_hat = decode_vector(np.sqrt(probs), enc.squared_norms[i])
            pixels.append(x_hat)
        x_hat = np.stack(pixels)
        return float(np.mean(fidelities)), paper_accuracy(x_hat, X)

    rows = []
    fid, acc = run_with_channel(None)
    rows.append({"channel": "none (ideal)", "strength": "-",
                 "fidelity": f"{fid:.4f}", "accuracy": f"{acc:.2f}%"})
    for p in (0.01, 0.1, 0.5):
        fid, acc = run_with_channel(dephasing_channel(16, p))
        rows.append({"channel": "dephasing", "strength": f"{p}",
                     "fidelity": f"{fid:.4f}", "accuracy": f"{acc:.2f}%"})
    for p in (0.01, 0.1):
        fid, acc = run_with_channel(depolarizing_channel(16, p))
        rows.append({"channel": "depolarizing", "strength": f"{p}",
                     "fidelity": f"{fid:.4f}", "accuracy": f"{acc:.2f}%"})
    for g in (0.05, 0.2):
        kraus = amplitude_damping_kraus(16, mode=15, gamma=g)
        fid, acc = run_with_channel(kraus, renormalize=True)
        rows.append({"channel": "loss on mode 15", "strength": f"{g}",
                     "fidelity": f"{fid:.4f}", "accuracy": f"{acc:.2f}%"})

    print(render_table(rows, title="decoherence between U_C and U_R"))
    print(
        "\nReading: state fidelity degrades gracefully (>0.99 at 1% noise) "
        "but Eq. (10)'s |err| <= 0.01 pixel\ncriterion is far stricter — "
        "1% dephasing already halves the accuracy while barely moving "
        "fidelity.\nSingle-mode loss is mildest: only ~1/4 of the "
        "compressed signal occupies any one kept mode, and\npost-selection "
        "renormalises the rest."
    )


if __name__ == "__main__":
    main()
