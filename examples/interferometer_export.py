#!/usr/bin/env python
"""Deployment: program a physical interferometer from a trained network.

Section III-C: trained reflectivities "can also be directly set into the
corresponding position interferometer for physical implementation".  This
example

1. trains a small compression network,
2. reads out its per-gate settings table (layer, modes, theta,
   reflectivity cos(theta)) — the values a lab would program,
3. verifies the programmed mesh reproduces the trained transfer matrix,
4. synthesises an *arbitrary* target orthogonal via the Reck
   decomposition, showing any unitary the training might land on is
   programmable,
5. saves and reloads the trained model (NPZ round trip).

Run:  python examples/interferometer_export.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.io import load_network, save_network
from repro.network import QuantumNetwork
from repro.optics import Interferometer, circuit_from_orthogonal
from repro.simulator.unitary import random_orthogonal
from repro.utils.ascii_art import render_table


def main() -> None:
    rng = np.random.default_rng(17)
    net = QuantumNetwork(dim=8, num_layers=4).initialize("uniform", rng=rng)

    # 2. The programmable settings table (first layer shown).
    rows = []
    for k, theta in enumerate(net.layers[0].thetas):
        rows.append(
            {
                "layer": 0,
                "modes": f"({k},{k + 1})",
                "theta": f"{theta:.4f}",
                "reflectivity cos(theta)": f"{np.cos(theta):.4f}",
            }
        )
    print(render_table(rows, title="interferometer settings (layer 0)"))

    # 3. Programmed device == trained network.
    device = Interferometer.from_network(net)
    err = np.max(np.abs(device.transfer_matrix() - net.unitary()))
    print(f"\nprogrammed-mesh fidelity: max|T_device - U_net| = {err:.2e}")

    # 4. Any SO(N) target is synthesisable (Reck/Givens chain).
    target = random_orthogonal(8, rng, special=True)
    circuit = circuit_from_orthogonal(target)
    synth_err = np.max(np.abs(circuit.unitary() - target))
    print(
        f"Reck synthesis of a random SO(8) target: {circuit.num_gates} "
        f"gates, max error {synth_err:.2e}"
    )

    # 5. Model persistence round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "uc.npz"
        save_network(net, path)
        clone = load_network(path)
        same = np.allclose(clone.unitary(), net.unitary())
        print(f"NPZ save/load round trip identical: {same}")


if __name__ == "__main__":
    main()
