#!/usr/bin/env python
"""Hardware realism: finite shots, miscalibration, loss — and alpha.

The paper trains in an exact simulator and defers physical effects to
future work.  This example takes a trained pipeline and asks what survives
on a realistic device:

1. finite measurement statistics (shots) when estimating |B|^2;
2. beamsplitter angle miscalibration (frozen Gaussian error);
3. per-gate insertion loss;
4. the Section V complex network (trainable alpha phases).

Run:  python examples/hardware_realism.py
"""

from __future__ import annotations

from repro.experiments import PaperConfig
from repro.experiments.ablations import (
    complex_network_study,
    imperfection_study,
    shot_noise_study,
)
from repro.experiments.reporting import render_records


def main() -> None:
    # A shorter run keeps the example snappy; shapes match the full config.
    config = PaperConfig(iterations=100)

    print("=== finite measurement shots (shots=-1 means exact) ===")
    print(render_records(shot_noise_study(config)))

    print("\n=== interferometer imperfections ===")
    print(render_records(imperfection_study(config)))

    print("\n=== Section V extension: complex (alpha-trainable) network ===")
    records = complex_network_study(
        config.with_(iterations=40, compression_layers=6,
                     reconstruction_layers=8)
    )
    print(render_records(records))
    print(
        "\nReading: accuracy is measurement-limited below ~1e4 shots, "
        "tolerates ~1e-2 rad calibration error,\nand degrades smoothly "
        "with loss; the complex network doubles parameters without "
        "helping on real-valued data (as the paper anticipates)."
    )


if __name__ == "__main__":
    main()
