#!/usr/bin/env python
"""Why the paper's experiment works: dataset + target feasibility analysis.

Before training anything, this example answers three questions with the
analysis toolbox:

1. How compressible is the dataset?  (spectrum, accuracy ceiling per d)
2. Which compression targets are unitarily feasible?  (Gram/Procrustes)
3. How deep must the mesh be?  (tangent-rank expressivity)

Together these *predict* the Fig. 4 outcome — high-90s accuracy at d = 4
with 12 layers — without running a single training iteration.

Run:  python examples/dataset_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    accuracy_ceiling,
    compressibility_report,
    unitary_map_exists,
    unitary_map_residual,
)
from repro.data import paper_dataset, random_binary_dataset
from repro.encoding.amplitude import encode_batch
from repro.network import Projection, layer_coverage_report
from repro.network.targets import TruncatedInputTarget, UniformSubspaceTarget
from repro.utils.ascii_art import render_table


def main() -> None:
    ds = paper_dataset()
    X = ds.matrix()
    print(f"dataset: {ds}, rank {ds.rank()}, "
          f"effective rank (99%): {ds.effective_rank()}")

    # 1. Compressibility: where is the knee?
    records = compressibility_report(X, max_d=8)
    rows = [
        {
            "d": r["d"],
            "accuracy ceiling": f"{r['accuracy_ceiling_pct']:.1f}%",
            "retained energy": f"{r['retained_energy']:.4f}",
        }
        for r in records
    ]
    print()
    print(render_table(rows, title="1. accuracy ceiling per budget d"))
    print("-> d = 4 is the smallest budget with a 100% ceiling: the "
          "paper's operating point.")

    # 2. Target feasibility.
    enc = encode_batch(X)
    proj = Projection.last(16, 4)
    uniform = UniformSubspaceTarget(proj).targets(enc)
    pca = TruncatedInputTarget.from_pca(proj, X).targets(enc)
    uni_ok = unitary_map_exists(enc.amplitudes(), uniform)
    pca_ok = unitary_map_exists(enc.amplitudes(), pca)
    uni_floor, _ = unitary_map_residual(enc.amplitudes(), uniform)
    pca_floor, _ = unitary_map_residual(enc.amplitudes(), pca)
    print()
    print(render_table(
        [
            {"target": "uniform b_i (paper's worked example)",
             "feasible": str(uni_ok), "Procrustes floor": f"{uni_floor:.3f}"},
            {"target": "PCA-mixed truncated input (default)",
             "feasible": str(pca_ok), "Procrustes floor": f"{pca_floor:.2e}"},
        ],
        title="2. compression-target feasibility",
    ))
    print("-> the shared uniform target cannot be reached by any unitary; "
          "the per-sample PCA target can.")

    # 3. Mesh depth.
    coverage = layer_coverage_report(16, [8, 12, 16], seed=0)
    print()
    print(render_table(
        [
            {
                "layers": r["layers"],
                "parameters": r["num_parameters"],
                "tangent rank": f"{r['tangent_rank']}/120",
                "universal": str(r["locally_universal"]),
            }
            for r in coverage
        ],
        title="3. mesh expressivity (SO(16) needs rank 120)",
    ))
    print("-> the paper's 12 layers are not fully universal, but rank-4 "
          "data only needs a 4-dim subspace rotated into place.")

    # Contrast: a random binary dataset has no exploitable structure.
    rnd = random_binary_dataset(25, image_size=4, seed=1)
    ceiling = accuracy_ceiling(rnd.matrix(), d=4)
    print(
        f"\ncontrast — random binary 25x16 dataset: rank {rnd.rank()}, "
        f"d=4 ceiling {ceiling['accuracy_ceiling_pct']:.1f}% "
        f"(retained energy {ceiling['retained_energy']:.3f})"
    )
    print("-> no compression scheme, quantum or classical, can reproduce "
          "Fig. 4 on unstructured data.")


if __name__ == "__main__":
    main()
