#!/usr/bin/env python
"""Grayscale 8x8 compression: the pipeline beyond binary 4x4 images.

The paper's pipeline is not limited to binary inputs — Eq. (1) encodes any
non-negative vector.  This example compresses 16 synthetic 8x8 grayscale
images (64-dimensional states on 6 qubits) into d = 8 amplitude channels
(an 8x compression of the quantum payload) and reports PSNR/SSIM alongside
the paper's Eq. (10) accuracy.

Run:  python examples/grayscale_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import QuantumAutoencoder, Trainer
from repro.data import grayscale_dataset
from repro.network.targets import TruncatedInputTarget
from repro.training.metrics import pixel_accuracy, psnr, ssim
from repro.training.optimizers import Adam
from repro.utils.ascii_art import render_image_ascii


def main() -> None:
    dataset = grayscale_dataset(num_samples=16, size=8, seed=5)
    X = dataset.matrix()
    print(f"dataset: {dataset}")
    print(
        f"effective rank (99% energy): {dataset.effective_rank()} of "
        f"{dataset.dim} dims"
    )

    d = 8
    ae = QuantumAutoencoder(
        dim=64, compressed_dim=d,
        compression_layers=10, reconstruction_layers=12,
    ).initialize("uniform", rng=np.random.default_rng(1))
    trainer = Trainer(
        iterations=120,
        gradient_method="adjoint",
        optimizer_factory=lambda: Adam(0.05),
    )
    target = TruncatedInputTarget.from_pca(ae.projection, X)
    result = trainer.train(ae, X, target_strategy=target)
    out = ae.forward(X)

    print(f"\nfinal L_C={result.final_loss_c:.4f} L_R={result.final_loss_r:.4f}")
    print(f"retained probability: {np.mean(out.retained_probability):.4f}")
    per_image_psnr = [
        psnr(out.x_hat[i].reshape(8, 8), dataset.image(i))
        for i in range(len(dataset))
    ]
    per_image_ssim = [
        ssim(out.x_hat[i].reshape(8, 8), dataset.image(i))
        for i in range(len(dataset))
    ]
    print(f"mean PSNR: {np.mean(per_image_psnr):.2f} dB")
    print(f"mean SSIM: {np.mean(per_image_ssim):.4f}")
    print(
        "pixel accuracy (|err| <= 0.05): "
        f"{pixel_accuracy(out.x_hat, X, tol=0.05):.2f}%"
    )

    worst = int(np.argmin(per_image_psnr))
    print(f"\nworst image ({worst}), input:")
    print(render_image_ascii(dataset.image(worst)))
    print("\nreconstruction:")
    print(render_image_ascii(np.clip(out.x_hat[worst].reshape(8, 8), 0, 1)))


if __name__ == "__main__":
    main()
