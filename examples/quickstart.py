#!/usr/bin/env python
"""Quickstart: compress and reconstruct one batch of binary images.

Walks the full Fig.-1 pipeline in a few lines:

1. build the 25-image binary dataset (the Fig. 4a stand-in);
2. amplitude-encode the images (Eq. 1);
3. train the compression network ``U_C`` and reconstruction network
   ``U_R`` (Algorithm 1);
4. decode the outputs (Eq. 2), apply the paper's thresholds, and score
   with Eq. (10).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import QuantumAutoencoder, Trainer, paper_accuracy
from repro.data import paper_dataset
from repro.network.targets import TruncatedInputTarget
from repro.training.optimizers import MomentumGD
from repro.utils.ascii_art import render_image_ascii


def main() -> None:
    # 1. Data: 25 binary 4x4 images -> (25, 16) matrix.
    dataset = paper_dataset()
    X = dataset.matrix()
    print(f"dataset: {dataset} (rank {dataset.rank()})")

    # 2-3. Autoencoder with the paper's architecture (N=16, d=4,
    #      l_C=12, l_R=14) trained for 150 iterations at eta=0.01.
    ae = QuantumAutoencoder(
        dim=16, compressed_dim=4,
        compression_layers=12, reconstruction_layers=14,
    ).initialize("uniform", rng=np.random.default_rng(2024))
    trainer = Trainer(
        iterations=150,
        gradient_method="adjoint",
        optimizer_factory=lambda: MomentumGD(0.01, 0.9),
    )
    target = TruncatedInputTarget.from_pca(ae.projection, X)
    result = trainer.train(ae, X, target_strategy=target)

    # 4. Inspect one reconstruction and the headline numbers.
    out = ae.forward(X)
    sample = 0
    print("\ninput image 0:")
    print(render_image_ascii(dataset.image(sample)))
    print("\nreconstruction of image 0:")
    print(render_image_ascii(out.x_hat[sample].reshape(4, 4)))
    print(
        f"\ncompressed payload per image: {ae.compressed_dim} amplitudes "
        f"(+1 norm scalar) instead of {ae.dim} pixels "
        f"({ae.compression_ratio():.0%} ratio)"
    )
    print(
        f"final losses: L_C={result.final_loss_c:.5f} "
        f"L_R={result.final_loss_r:.5f}"
    )
    print(f"reconstruction accuracy (Eq. 10): {paper_accuracy(out.x_hat, X):.2f}%")


if __name__ == "__main__":
    main()
