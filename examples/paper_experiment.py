#!/usr/bin/env python
"""Full Section IV reproduction: every panel of Fig. 4 in the terminal.

Runs the paper's configuration (N=16, d=4, l_C=12, l_R=14, eta=0.01,
Ite=150, M=25) end to end and renders:

- Fig. 4a input images / 4b reconstructions as ASCII rasters,
- Fig. 4c loss curves, 4d accuracy, 4e/f amplitude traces of sample 25,
- Fig. 4g theta drift,
- a summary table against the paper's reported numbers.

Run:  python examples/paper_experiment.py [--iterations N]
"""

from __future__ import annotations

import argparse

from repro.experiments import PaperConfig, run_fig4
from repro.experiments.reporting import render_fig4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--iterations",
        type=int,
        default=150,
        help="training iterations (paper: 150; 300 reaches ~99.8%% accuracy)",
    )
    parser.add_argument(
        "--optimizer",
        choices=["gd", "momentum", "adam"],
        default="momentum",
        help="'gd' is the paper-faithful plain gradient descent",
    )
    parser.add_argument(
        "--gradient",
        choices=["fd", "central", "derivative", "adjoint"],
        default="adjoint",
        help="'fd' is the paper's forward finite differences (slow)",
    )
    args = parser.parse_args()

    config = PaperConfig(
        iterations=args.iterations,
        optimizer=args.optimizer,
        gradient_method=args.gradient,
    )
    print(
        f"training U_C ({config.uc_parameter_count} params) and U_R "
        f"({config.ur_parameter_count} params) for {config.iterations} "
        f"iterations with {args.optimizer}/{args.gradient}..."
    )
    result = run_fig4(config)
    print(render_fig4(result))


if __name__ == "__main__":
    main()
