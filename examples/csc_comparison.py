#!/usr/bin/env python
"""QN vs classical sparse coding: Fig. 5c and Table I in one script.

Trains the quantum network and the CSC baseline (gradient dictionary +
ISTA codes, the paper's comparator) on the same dataset with the same
iteration budget, then prints the loss curves, Table I, and — beyond the
paper — the strong classical references (MOD+OMP dictionary learning,
PCA, truncated SVD) that calibrate what 'quantum superiority' is measured
against.

Run:  python examples/csc_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PCACompressor, truncated_svd_reconstruction
from repro.experiments import PaperConfig, run_fig5, run_table1
from repro.experiments.reporting import render_fig5, render_table1
from repro.training.metrics import paper_accuracy


def main() -> None:
    config = PaperConfig()
    print("=== Fig. 5 reproduction (QN vs gradient/ISTA CSC) ===")
    fig5 = run_fig5(config)
    print(render_fig5(fig5))

    print("\n=== Table I reproduction ===")
    rows = run_table1(config, include_strong_csc=True)
    print(render_table1(rows))

    # Extra calibration lines (not in the paper): linear-optimum codes.
    X = config.dataset().matrix()
    pca = PCACompressor(num_components=config.compressed_dim).fit(X)
    pca_acc = paper_accuracy(pca.reconstruct(X), X)
    x_svd, err = truncated_svd_reconstruction(X, config.compressed_dim)
    svd_acc = paper_accuracy(np.clip(x_svd, 0.0, None), X)
    print("\n=== Classical calibration (beyond the paper) ===")
    print(f"PCA (d={config.compressed_dim})             accuracy: {pca_acc:6.2f}%")
    print(f"truncated SVD (rank {config.compressed_dim}) accuracy: {svd_acc:6.2f}%"
          f"   residual energy: {err:.3g}")
    print(
        "\nReading: the paper's superiority claim holds against its "
        "gradient-trained CSC comparator;\nclosed-form classical methods "
        "(MOD/OMP, PCA, SVD) solve this rank-4 dataset exactly."
    )


if __name__ == "__main__":
    main()
