"""Repo-root pytest hooks shared by every collection entry point.

``src/repro/backends/jit_kernels.py`` imports numba at module scope by
design (module-level ``@njit(cache=True)`` definitions, lazily imported
by :mod:`repro.backends.jit`); when the optional numba package is absent
the module is unimportable, so the doctest sweep
(``pytest --doctest-modules src/repro``) must skip collecting it — the
soft-dependency contract every other entry point already honours.
"""

from importlib.util import find_spec

collect_ignore = []
if find_spec("numba") is None:
    collect_ignore.append("src/repro/backends/jit_kernels.py")
