"""Tests for repro.network.quantum_network."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DimensionError, NetworkConfigError
from repro.network.quantum_network import QuantumNetwork


class TestConstruction:
    def test_paper_parameter_counts(self):
        # Section IV-A: "only 12x15 parameters ... in the compression
        # network, and 14x15 ... in the reconstruction network".
        assert QuantumNetwork(16, 12).num_parameters == 180
        assert QuantumNetwork(16, 14).num_parameters == 210

    def test_invalid_layers(self):
        with pytest.raises(NetworkConfigError):
            QuantumNetwork(4, 0)

    def test_invalid_dim(self):
        with pytest.raises(NetworkConfigError):
            QuantumNetwork(1, 2)

    def test_phase_doubles_parameters(self):
        assert QuantumNetwork(4, 2, allow_phase=True).num_parameters == 12

    def test_zero_init_is_identity(self):
        assert np.allclose(QuantumNetwork(8, 3).unitary(), np.eye(8))


class TestParameters:
    def test_flat_roundtrip(self, rng):
        net = QuantumNetwork(8, 4)
        params = rng.uniform(0, 2 * np.pi, net.num_parameters)
        net.set_flat_params(params)
        assert np.allclose(net.get_flat_params(), params)

    def test_flat_roundtrip_with_phase(self, rng):
        net = QuantumNetwork(4, 3, allow_phase=True)
        params = rng.uniform(0, 2 * np.pi, net.num_parameters)
        net.set_flat_params(params)
        assert np.allclose(net.get_flat_params(), params)

    def test_wrong_size_rejected(self):
        with pytest.raises(NetworkConfigError, match="expected"):
            QuantumNetwork(4, 2).set_flat_params(np.zeros(5))

    def test_nan_params_rejected(self):
        net = QuantumNetwork(4, 2)
        bad = np.zeros(net.num_parameters)
        bad[0] = np.nan
        with pytest.raises(NetworkConfigError, match="NaN"):
            net.set_flat_params(bad)

    def test_theta_matrix_shape(self):
        assert QuantumNetwork(16, 12).theta_matrix.shape == (12, 15)

    def test_layer_order_in_flat_vector(self):
        net = QuantumNetwork(4, 2)
        params = np.arange(6.0)
        net.set_flat_params(params)
        assert net.layers[0].thetas.tolist() == [0.0, 1.0, 2.0]
        assert net.layers[1].thetas.tolist() == [3.0, 4.0, 5.0]

    def test_initialize_methods(self, rng):
        for method in ("uniform", "zeros", "constant", "small"):
            net = QuantumNetwork(4, 2).initialize(method, rng=rng)
            assert np.all(np.isfinite(net.get_flat_params()))

    def test_initialize_unknown_raises(self):
        from repro.exceptions import TrainingError

        with pytest.raises(TrainingError, match="unknown initializer"):
            QuantumNetwork(4, 2).initialize("nope")


class TestForward:
    def test_unitarity(self, rng):
        net = QuantumNetwork(8, 5).initialize("uniform", rng=rng)
        u = net.unitary()
        assert np.allclose(u.T @ u, np.eye(8), atol=1e-12)

    def test_forward_matches_unitary(self, rng):
        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 4))
        assert np.allclose(net.forward(x), net.unitary() @ x)

    def test_forward_inverse_roundtrip(self, rng):
        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 4))
        assert np.allclose(net.forward(net.forward(x), inverse=True), x)

    def test_forward_1d(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        v = rng.normal(size=4)
        assert net.forward(v).shape == (4,)

    def test_dim_mismatch_raises(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            net.forward_inplace(np.zeros((8, 2)))

    def test_descending_differs_from_ascending(self, rng):
        params = rng.uniform(0, 2 * np.pi, 6)
        asc = QuantumNetwork(4, 2)
        asc.set_flat_params(params)
        desc = QuantumNetwork(4, 2, descending=True)
        desc.set_flat_params(params)
        assert not np.allclose(asc.unitary(), desc.unitary())

    def test_matches_circuit_expansion(self, rng):
        net = QuantumNetwork(6, 3).initialize("uniform", rng=rng)
        assert np.allclose(net.unitary(), net.as_circuit().unitary())

    def test_complex_network_forward_upcasts(self, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 1.0, net.num_parameters))
        out = net.forward(np.eye(4))
        assert np.iscomplexobj(out)
        assert np.allclose(np.conj(out.T) @ out, np.eye(4), atol=1e-12)

    @given(st.integers(0, 1000))
    def test_property_norm_preservation(self, seed):
        rng = np.random.default_rng(seed)
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 3))
        x /= np.linalg.norm(x, axis=0)
        y = net.forward(x)
        assert np.allclose(np.linalg.norm(y, axis=0), 1.0, atol=1e-12)


class TestForwardTrace:
    def test_trace_output_matches_forward(self, rng):
        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 5))
        trace = net.forward_trace(x)
        assert np.allclose(trace.output, net.forward(x))

    def test_tape_shapes(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 3))
        trace = net.forward_trace(x)
        assert trace.row_tape.shape == (6, 2, 3)
        assert trace.gate_index.shape == (6, 2)
        assert trace.modes.shape == (6,)

    def test_tape_first_gate_rows_are_input(self, rng):
        net = QuantumNetwork(4, 1).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 2))
        trace = net.forward_trace(x)
        k = trace.modes[0]
        assert np.allclose(trace.row_tape[0, 0], x[k])
        assert np.allclose(trace.row_tape[0, 1], x[k + 1])

    def test_complex_network_trace(self, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 1.0, net.num_parameters))
        trace = net.forward_trace(np.eye(4))
        assert np.iscomplexobj(trace.output)
        assert np.iscomplexobj(trace.row_tape)
        assert np.allclose(trace.output, net.forward(np.eye(4)))

    def test_complex_input_trace(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
        trace = net.forward_trace(x)
        assert np.iscomplexobj(trace.output)
        assert np.allclose(trace.output, net.forward(x))


class TestStructure:
    def test_reversed_structure(self):
        net = QuantumNetwork(4, 3, descending=False)
        rev = net.reversed_structure()
        assert rev.descending is True
        assert rev.num_layers == 3
        assert np.allclose(rev.get_flat_params(), 0.0)

    def test_copy_is_deep(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        clone = net.copy()
        clone.layers[0].thetas[0] += 1.0
        assert net.layers[0].thetas[0] != clone.layers[0].thetas[0]

    def test_repr_mentions_order(self):
        assert "descending" in repr(QuantumNetwork(4, 2, descending=True))
