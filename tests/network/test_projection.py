"""Tests for repro.network.projection (P1/P0, Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ProjectionError
from repro.network.projection import Projection


class TestConstruction:
    def test_paper_example_layout(self):
        # (b_i)^2 = [0,0,0,0,.25,.25,.25,.25]: keep the LAST 4 of 8.
        p = Projection.last(8, 4)
        assert p.keep.tolist() == [4, 5, 6, 7]

    def test_first(self):
        assert Projection.first(8, 3).keep.tolist() == [0, 1, 2]

    def test_arbitrary_indices_sorted_unique(self):
        p = Projection(8, [5, 1, 5, 3])
        assert p.keep.tolist() == [1, 3, 5]

    def test_empty_keep_rejected(self):
        with pytest.raises(ProjectionError, match="at least one"):
            Projection(4, [])

    def test_keep_everything_rejected(self):
        with pytest.raises(ProjectionError, match="not a compression"):
            Projection(4, [0, 1, 2, 3])

    def test_out_of_range_rejected(self):
        with pytest.raises(ProjectionError):
            Projection(4, [4])
        with pytest.raises(ProjectionError):
            Projection(4, [-1])

    def test_invalid_d(self):
        with pytest.raises(ProjectionError):
            Projection.last(8, 0)
        with pytest.raises(ProjectionError):
            Projection.last(8, 8)


class TestAlgebra:
    def test_p1_plus_p0_is_identity(self):
        # Fig. 2: "The identity matrix can consist of P1 and P0".
        p1 = Projection.last(8, 3)
        p0 = p1.complement()
        assert np.allclose(p1.matrix() + p0.matrix(), np.eye(8))

    def test_idempotent(self):
        p = Projection.last(8, 4)
        m = p.matrix()
        assert np.allclose(m @ m, m)

    def test_apply_zeros_complement(self):
        p = Projection.first(4, 2)
        out = p.apply(np.ones(4))
        assert out.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_apply_batch(self):
        p = Projection.last(4, 1)
        out = p.apply(np.ones((4, 3)))
        assert np.allclose(out[:3], 0.0)
        assert np.allclose(out[3], 1.0)

    def test_apply_inplace(self):
        p = Projection.first(4, 2)
        data = np.ones((4, 2))
        p.apply_inplace(data)
        assert np.allclose(data[2:], 0.0)

    def test_apply_out_of_place_preserves_input(self):
        p = Projection.first(4, 2)
        x = np.ones(4)
        p.apply(x)
        assert np.allclose(x, 1.0)

    def test_dim_mismatch(self):
        with pytest.raises(ProjectionError):
            Projection.last(4, 2).apply(np.ones(8))

    @given(st.integers(1, 7))
    def test_property_idempotence_all_d(self, d):
        p = Projection.last(8, d)
        x = np.random.default_rng(d).normal(size=(8, 3))
        assert np.allclose(p.apply(p.apply(x)), p.apply(x))


class TestRestrictEmbed:
    def test_restrict_shape(self):
        p = Projection.last(8, 3)
        assert p.restrict(np.ones((8, 5))).shape == (3, 5)

    def test_embed_restores_positions(self):
        p = Projection(4, [1, 3])
        compact = np.array([[1.0], [2.0]])
        out = p.embed(compact)
        assert out[:, 0].tolist() == [0.0, 1.0, 0.0, 2.0]

    def test_restrict_embed_roundtrip(self, rng):
        p = Projection.last(8, 4)
        x = rng.normal(size=(8, 3))
        assert np.allclose(p.embed(p.restrict(x)), p.apply(x))

    def test_embed_wrong_rows(self):
        with pytest.raises(ProjectionError):
            Projection.last(8, 3).embed(np.ones((4, 2)))

    def test_restrict_dim_mismatch(self):
        with pytest.raises(ProjectionError):
            Projection.last(8, 3).restrict(np.ones((4, 2)))


class TestRetainedProbability:
    def test_full_mass_inside(self):
        p = Projection.last(4, 2)
        state = np.array([0.0, 0.0, 0.6, 0.8])
        assert p.retained_probability(state) == pytest.approx(1.0)

    def test_half_mass(self):
        p = Projection.first(2, 1)
        state = np.array([1.0, 1.0]) / np.sqrt(2)
        assert p.retained_probability(state) == pytest.approx(0.5)

    def test_batch_output(self, rng):
        p = Projection.last(8, 4)
        x = rng.normal(size=(8, 6))
        x /= np.linalg.norm(x, axis=0)
        vals = p.retained_probability(x)
        assert vals.shape == (6,)
        assert np.all((vals >= 0) & (vals <= 1 + 1e-12))


class TestEquality:
    def test_eq_and_hash(self):
        a = Projection.last(8, 4)
        b = Projection(8, [4, 5, 6, 7])
        assert a == b
        assert hash(a) == hash(b)

    def test_neq_different_keep(self):
        assert Projection.last(8, 4) != Projection.first(8, 4)
