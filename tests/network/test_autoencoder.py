"""Tests for repro.network.autoencoder (Eqs. 3-4, Fig. 1 pipeline)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, NetworkConfigError
from repro.network.autoencoder import (
    CompressionNetwork,
    QuantumAutoencoder,
    ReconstructionNetwork,
)
from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork


@pytest.fixture
def ae(rng):
    return QuantumAutoencoder(16, 4, 3, 3).initialize("uniform", rng=rng)


class TestCompressionNetwork:
    def test_dim_mismatch_rejected(self, rng):
        net = QuantumNetwork(8, 2)
        with pytest.raises(NetworkConfigError):
            CompressionNetwork(net, Projection.last(16, 4))

    def test_compress_is_projected_forward(self, rng):
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        proj = Projection.last(8, 4)
        comp = CompressionNetwork(net, proj)
        x = rng.normal(size=(8, 3))
        expected = proj.apply(net.forward(x))
        assert np.allclose(comp.compress(x), expected)

    def test_compressed_subnormalised(self, rng, unit_batch):
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        comp = CompressionNetwork(net, Projection.last(8, 4))
        out = comp.compress(unit_batch)
        norms = np.linalg.norm(out, axis=0)
        assert np.all(norms <= 1.0 + 1e-12)

    def test_renormalize_option(self, rng, unit_batch):
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        comp = CompressionNetwork(net, Projection.last(8, 4))
        out = comp.compress(unit_batch, renormalize=True)
        assert np.allclose(np.linalg.norm(out, axis=0), 1.0)

    def test_compact_codes_shape(self, rng, unit_batch):
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        comp = CompressionNetwork(net, Projection.last(8, 3))
        assert comp.compact_codes(unit_batch).shape == (3, 5)

    def test_retained_probability_bounds(self, rng, unit_batch):
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        comp = CompressionNetwork(net, Projection.last(8, 4))
        vals = comp.retained_probability(unit_batch)
        assert np.all((vals >= 0) & (vals <= 1 + 1e-12))


class TestReconstructionNetwork:
    def test_reconstruct_applies_network(self, rng):
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        recon = ReconstructionNetwork(net)
        x = rng.normal(size=(8, 2))
        assert np.allclose(recon.reconstruct(x), net.forward(x))

    def test_dim_check(self, rng):
        recon = ReconstructionNetwork(QuantumNetwork(8, 2))
        with pytest.raises(DimensionError):
            recon.reconstruct(np.ones((4, 2)))


class TestQuantumAutoencoder:
    def test_architecture_defaults(self, ae):
        assert ae.dim == 16
        assert ae.compressed_dim == 4
        assert ae.uc.descending is False
        assert ae.ur.descending is True  # reverse-order per Section III-B

    def test_projection_default_is_last(self, ae):
        assert ae.projection == Projection.last(16, 4)

    def test_explicit_projection_must_match_d(self):
        with pytest.raises(NetworkConfigError):
            QuantumAutoencoder(
                16, 4, 2, 2, projection=Projection.first(16, 8)
            )

    def test_non_power_of_two_dim_rejected(self):
        with pytest.raises(DimensionError):
            QuantumAutoencoder(12, 4, 2, 2)

    def test_forward_output_shapes(self, ae, paper_images):
        out = ae.forward(paper_images)
        assert out.x_hat.shape == (25, 16)
        assert out.compact_codes.shape == (4, 25)
        assert out.compressed.shape == (16, 25)
        assert out.output_amplitudes.shape == (16, 25)

    def test_forward_equation4(self, ae, paper_images):
        # |Psi> = U_R P1 U_C |psi> (Eq. 4).
        enc = ae.codec.encode(paper_images)
        expected = ae.ur.forward(
            ae.projection.apply(ae.uc.forward(enc.amplitudes()))
        )
        out = ae.forward_encoded(enc)
        assert np.allclose(out.output_amplitudes, expected)

    def test_retained_probability_matches_norms(self, ae, paper_images):
        out = ae.forward(paper_images)
        assert np.allclose(
            out.retained_probability,
            np.linalg.norm(out.compressed, axis=0) ** 2,
        )

    def test_reconstruct_from_codes_matches_forward(self, ae, paper_images):
        enc = ae.codec.encode(paper_images)
        out = ae.forward_encoded(enc)
        x_hat = ae.reconstruct_from_codes(
            out.compact_codes, enc.squared_norms
        )
        assert np.allclose(x_hat, out.x_hat, atol=1e-12)

    def test_compression_ratio(self, ae):
        assert ae.compression_ratio() == pytest.approx(0.25)

    def test_num_parameters_sum(self, ae):
        assert ae.num_parameters == ae.uc.num_parameters + ae.ur.num_parameters

    def test_forward_encoded_dim_check(self, ae):
        from repro.encoding.amplitude import encode_batch

        enc = encode_batch(np.ones((2, 8)))
        with pytest.raises(DimensionError):
            ae.forward_encoded(enc)

    def test_initialize_seeds_both_networks(self, paper_images):
        a = QuantumAutoencoder(16, 4, 2, 2).initialize(
            rng=np.random.default_rng(0)
        )
        b = QuantumAutoencoder(16, 4, 2, 2).initialize(
            rng=np.random.default_rng(0)
        )
        assert np.allclose(a.uc.get_flat_params(), b.uc.get_flat_params())
        assert np.allclose(a.ur.get_flat_params(), b.ur.get_flat_params())
        # UC and UR draw from one stream -> differ from each other
        assert not np.allclose(a.uc.get_flat_params(), a.ur.get_flat_params())

    def test_identity_networks_lossy_only_through_projection(
        self, paper_images
    ):
        """With U_C = U_R = I the pipeline is exactly P1 on amplitudes."""
        ae = QuantumAutoencoder(16, 4, 2, 2)  # zero-init = identity
        enc = ae.codec.encode(paper_images)
        out = ae.forward_encoded(enc)
        expected = ae.projection.apply(enc.amplitudes())
        assert np.allclose(out.output_amplitudes, expected)
