"""Tests for repro.network.expressivity."""

import numpy as np
import pytest

from repro.exceptions import NetworkConfigError
from repro.network.expressivity import (
    layer_coverage_report,
    minimum_layers,
    parameter_dimension,
    tangent_rank,
)
from repro.network.quantum_network import QuantumNetwork


class TestCountingFormulas:
    def test_so_n_dimension(self):
        assert parameter_dimension(2) == 1
        assert parameter_dimension(4) == 6
        assert parameter_dimension(16) == 120

    def test_minimum_layers_formula(self):
        assert minimum_layers(2) == 1
        assert minimum_layers(4) == 2
        assert minimum_layers(16) == 8  # the paper's 12 exceeds this

    def test_minimum_layers_covers_so_n(self):
        for dim in (2, 4, 8, 16):
            layers = minimum_layers(dim)
            assert layers * (dim - 1) >= parameter_dimension(dim)

    def test_validation(self):
        with pytest.raises(NetworkConfigError):
            parameter_dimension(1)
        with pytest.raises(NetworkConfigError):
            minimum_layers(0)


class TestTangentRank:
    def test_single_layer_full_parameter_rank(self, rng):
        """One layer's N-1 parameters are locally independent."""
        net = QuantumNetwork(4, 1).initialize("uniform", rng=rng)
        assert tangent_rank(net) == 3

    def test_saturates_at_so_n_dimension(self, rng):
        """A deep mesh cannot exceed dim SO(4) = 6 directions."""
        net = QuantumNetwork(4, 8).initialize("uniform", rng=rng)
        assert tangent_rank(net) == 6

    def test_paper_depth_is_universal_for_n4(self, rng):
        net = QuantumNetwork(4, 3).initialize("uniform", rng=rng)
        # 3 layers x 3 params = 9 >= 6; generic angles reach full rank.
        assert tangent_rank(net) == 6

    def test_zero_init_degenerate(self):
        """At theta = 0 every layer generates the same tangent directions,
        collapsing the rank to a single layer's worth."""
        net = QuantumNetwork(4, 4)  # all-zero init
        assert tangent_rank(net) <= 3

    def test_complex_network_rejected(self):
        net = QuantumNetwork(4, 2, allow_phase=True)
        with pytest.raises(NetworkConfigError):
            tangent_rank(net)


class TestCoverageReport:
    def test_report_records(self):
        records = layer_coverage_report(4, [1, 2, 3], seed=0)
        assert [r["layers"] for r in records] == [1, 2, 3]
        assert all(r["so_n_dimension"] == 6 for r in records)

    def test_universality_flag_monotone_in_depth(self):
        records = layer_coverage_report(4, [1, 4], seed=1)
        shallow, deep = records
        assert not shallow["locally_universal"]
        assert deep["locally_universal"]

    def test_paper_architecture_not_fully_universal(self):
        """Measured characterisation of the paper's architecture: at
        N = 16 the chain mesh saturates SO(16)'s 120 dimensions only from
        16 layers; the paper's l_C = 12 reaches tangent rank 114 — ample
        for rank-4 data but short of universality."""
        records = layer_coverage_report(16, [12, 16], seed=2)
        paper, universal = records
        assert not paper["locally_universal"]
        assert paper["tangent_rank"] >= 110
        assert universal["locally_universal"]

    def test_universal_layers_formula(self):
        from repro.network.expressivity import universal_layers

        assert universal_layers(4) == 4
        assert universal_layers(16) == 16
        # Cross-check the empirical claim at a small dimension.
        import numpy as np

        net = QuantumNetwork(6, 6).initialize(
            "uniform", rng=np.random.default_rng(0)
        )
        assert tangent_rank(net) == parameter_dimension(6)
