"""Tests for repro.network.targets (compression targets b_i)."""

import numpy as np
import pytest

from repro.encoding.amplitude import encode_batch
from repro.exceptions import DimensionError, NetworkConfigError
from repro.network.projection import Projection
from repro.network.targets import (
    FixedTarget,
    TruncatedInputTarget,
    UniformSubspaceTarget,
)


@pytest.fixture
def encoded(paper_images):
    return encode_batch(paper_images)


@pytest.fixture
def projection():
    return Projection.last(16, 4)


class TestUniformSubspaceTarget:
    def test_paper_example_8dim(self):
        # (b_i)^2 = [0,0,0,0,.25,.25,.25,.25] for d=4 of 8 (Section II-D).
        t = UniformSubspaceTarget(Projection.last(8, 4))
        b = t.target_vector()
        assert np.allclose(b**2, [0, 0, 0, 0, 0.25, 0.25, 0.25, 0.25])

    def test_targets_unit_columns(self, encoded, projection):
        b = UniformSubspaceTarget(projection).targets(encoded)
        assert b.shape == (16, 25)
        assert np.allclose(np.linalg.norm(b, axis=0), 1.0)

    def test_all_columns_identical(self, encoded, projection):
        b = UniformSubspaceTarget(projection).targets(encoded)
        assert np.allclose(b, b[:, :1])

    def test_dim_mismatch(self, encoded):
        t = UniformSubspaceTarget(Projection.last(8, 4))
        with pytest.raises(DimensionError):
            t.targets(encoded)

    def test_shared_target_is_unitarily_infeasible(self, encoded, projection):
        """The design reason 'uniform' is not the default: a unitary must
        preserve pairwise overlaps, but a shared target forces all
        (distinct) inputs onto one state — impossible exactly."""
        amps = encoded.amplitudes()
        gram = amps.T @ amps
        distinct = np.abs(gram - 1.0) > 1e-9  # pairs with overlap < 1
        assert np.any(distinct), "dataset should contain distinct states"
        # If a unitary mapped all inputs to the same b, all pairwise
        # overlaps would have to be exactly 1 — contradiction.
        assert np.min(np.abs(gram[distinct])) < 1.0


class TestTruncatedInputTarget:
    def test_supported_on_subspace(self, encoded, projection):
        b = TruncatedInputTarget(projection).targets(encoded)
        assert np.allclose(b[~projection.mask], 0.0)

    def test_unit_columns(self, encoded, projection):
        b = TruncatedInputTarget(projection).targets(encoded)
        assert np.allclose(np.linalg.norm(b, axis=0), 1.0)

    def test_degenerate_sample_falls_back_to_uniform(self):
        proj = Projection.last(4, 2)
        # A state entirely outside the kept subspace.
        X = np.array([[1.0, 1.0, 0.0, 0.0]])
        enc = encode_batch(X)
        b = TruncatedInputTarget(proj).targets(enc)
        assert np.allclose(np.linalg.norm(b, axis=0), 1.0)
        assert np.allclose(b[2:, 0], 1 / np.sqrt(2))

    def test_pca_mixing_preserves_gram_on_low_rank_data(
        self, paper_images, projection
    ):
        """For exactly rank-d data, PCA-mixed targets preserve pairwise
        inner products — the feasibility condition for a unitary U_C."""
        enc = encode_batch(paper_images)
        strat = TruncatedInputTarget.from_pca(projection, paper_images)
        b = strat.targets(enc)
        amps = enc.amplitudes()
        assert np.allclose(b.T @ b, amps.T @ amps, atol=1e-8)

    def test_from_pca_shape_validation(self, projection):
        with pytest.raises(DimensionError):
            TruncatedInputTarget.from_pca(projection, np.ones((5, 8)))

    def test_bad_mixing_shape(self, projection):
        with pytest.raises(NetworkConfigError, match="shape"):
            TruncatedInputTarget(projection, mixing=np.ones((3, 16)))

    def test_non_orthonormal_mixing_rejected(self, projection):
        w = np.ones((4, 16))
        with pytest.raises(NetworkConfigError, match="orthonormal"):
            TruncatedInputTarget(projection, mixing=w)


class TestFixedTarget:
    def test_shared_vector_tiled(self, encoded, projection):
        b_vec = np.zeros(16)
        b_vec[projection.keep] = 0.5
        t = FixedTarget(projection, b_vec)
        b = t.targets(encoded)
        assert b.shape == (16, 25)
        assert np.allclose(b, b_vec[:, None])

    def test_support_outside_subspace_rejected(self, projection):
        bad = np.zeros(16)
        bad[0] = 1.0  # index 0 is not kept by Projection.last(16, 4)
        with pytest.raises(NetworkConfigError, match="outside"):
            FixedTarget(projection, bad)

    def test_non_unit_norm_rejected(self, projection):
        bad = np.zeros(16)
        bad[projection.keep] = 0.1
        with pytest.raises(NetworkConfigError, match="unit norm"):
            FixedTarget(projection, bad)

    def test_per_sample_matrix(self, projection):
        m = 3
        b = np.zeros((16, m))
        b[projection.keep[0]] = 1.0
        t = FixedTarget(projection, b)
        X = np.ones((m, 16))
        enc = encode_batch(X)
        assert t.targets(enc).shape == (16, m)

    def test_per_sample_count_mismatch(self, projection):
        b = np.zeros((16, 3))
        b[projection.keep[0]] = 1.0
        t = FixedTarget(projection, b)
        enc = encode_batch(np.ones((5, 16)))
        with pytest.raises(DimensionError):
            t.targets(enc)
