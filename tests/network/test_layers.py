"""Tests for repro.network.layers (GateLayer, Eq. 6 / Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import NetworkConfigError
from repro.network.layers import GateLayer


class TestConstruction:
    def test_paper_gate_count(self):
        # "The number of single-layer quantum gates U is N - 1" (Fig. 3).
        assert GateLayer(16).num_gates == 15

    def test_default_identity(self):
        assert np.allclose(GateLayer(5).unitary(), np.eye(5))

    def test_theta_shape_validated(self):
        with pytest.raises(NetworkConfigError, match="shape"):
            GateLayer(4, thetas=[0.1, 0.2])

    def test_alpha_shape_validated(self):
        with pytest.raises(NetworkConfigError):
            GateLayer(4, alphas=[0.1])

    def test_nan_thetas_rejected(self):
        with pytest.raises(NetworkConfigError, match="NaN"):
            GateLayer(4, thetas=[0.1, np.nan, 0.2])

    def test_dim_too_small(self):
        with pytest.raises(NetworkConfigError):
            GateLayer(1)

    def test_thetas_copied(self):
        src = np.zeros(3)
        layer = GateLayer(4, thetas=src)
        src[0] = 9.0
        assert layer.thetas[0] == 0.0


class TestModeSequence:
    def test_ascending(self):
        assert GateLayer(5).mode_sequence().tolist() == [0, 1, 2, 3]

    def test_descending(self):
        assert GateLayer(5, descending=True).mode_sequence().tolist() == [
            3,
            2,
            1,
            0,
        ]

    def test_descending_is_reverse_order_not_reverse_params(self):
        thetas = [0.1, 0.2, 0.3]
        asc = GateLayer(4, thetas=thetas)
        desc = GateLayer(4, thetas=thetas, descending=True)
        # Gate at modes (k, k+1) uses thetas[k] in both orders.
        assert asc.thetas.tolist() == desc.thetas.tolist()
        # But the unitaries differ because application order differs.
        assert not np.allclose(asc.unitary(), desc.unitary())


class TestApplication:
    @given(
        arrays(np.float64, 3, elements=st.floats(-np.pi, np.pi, allow_nan=False))
    )
    def test_property_orthogonal(self, thetas):
        u = GateLayer(4, thetas=thetas).unitary()
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-12)

    def test_matches_circuit_expansion(self, rng):
        thetas = rng.uniform(0, 2 * np.pi, 7)
        layer = GateLayer(8, thetas=thetas)
        assert np.allclose(layer.unitary(), layer.as_circuit().unitary())

    def test_descending_matches_circuit(self, rng):
        thetas = rng.uniform(0, 2 * np.pi, 7)
        layer = GateLayer(8, thetas=thetas, descending=True)
        assert np.allclose(layer.unitary(), layer.as_circuit().unitary())

    def test_inverse_roundtrip(self, rng):
        layer = GateLayer(6, thetas=rng.uniform(0, 6, 5))
        x = rng.normal(size=(6, 3))
        y = layer.apply(x)
        back = layer.apply(y, inverse=True)
        assert np.allclose(back, x, atol=1e-12)

    def test_apply_1d(self, rng):
        layer = GateLayer(4, thetas=rng.uniform(0, 6, 3))
        v = rng.normal(size=4)
        assert layer.apply(v).shape == (4,)
        assert np.allclose(layer.apply(v), layer.unitary() @ v)

    def test_apply_out_of_place(self, rng):
        layer = GateLayer(4, thetas=rng.uniform(0, 6, 3))
        x = np.eye(4)
        layer.apply(x)
        assert np.allclose(x, np.eye(4))

    def test_norm_preserved_batch(self, rng):
        layer = GateLayer(8, thetas=rng.uniform(0, 6, 7))
        x = rng.normal(size=(8, 10))
        x /= np.linalg.norm(x, axis=0)
        y = layer.apply(x)
        assert np.allclose(np.linalg.norm(y, axis=0), 1.0)

    def test_complex_layer_unitary(self, rng):
        layer = GateLayer(
            4,
            thetas=rng.uniform(0, 6, 3),
            alphas=rng.uniform(0, 6, 3),
        )
        u = layer.unitary()
        assert np.allclose(np.conj(u.T) @ u, np.eye(4), atol=1e-12)

    def test_zero_alphas_treated_real(self, rng):
        layer = GateLayer(4, thetas=rng.uniform(0, 6, 3), alphas=np.zeros(3))
        assert layer.is_real

    def test_copy_independent(self, rng):
        layer = GateLayer(4, thetas=rng.uniform(0, 6, 3))
        clone = layer.copy()
        clone.thetas[0] += 1.0
        assert layer.thetas[0] != clone.thetas[0]
