"""Tests for repro.optics.mesh (layouts and Reck synthesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecompositionError
from repro.optics.mesh import (
    circuit_from_orthogonal,
    mesh_depth,
    reck_decompose,
    rectangular_mesh_layout,
)
from repro.simulator.gates import BeamsplitterGate
from repro.simulator.unitary import random_orthogonal


class TestLayout:
    def test_paper_figure3_structure(self):
        # 2-layer 8-dim network: each layer has 7 gates (0,1)...(6,7).
        layout = rectangular_mesh_layout(8, 2)
        assert layout == [[0, 1, 2, 3, 4, 5, 6]] * 2

    def test_mesh_depth(self):
        # Paper Section IV-A: 12x15 and 14x15 parameter grids.
        assert mesh_depth(16, 12) == 180
        assert mesh_depth(16, 14) == 210

    def test_invalid_args(self):
        with pytest.raises(DecompositionError):
            rectangular_mesh_layout(1, 2)
        with pytest.raises(DecompositionError):
            rectangular_mesh_layout(4, 0)
        with pytest.raises(DecompositionError):
            mesh_depth(1, 1)


class TestReckDecompose:
    def test_identity_decomposes_trivially(self):
        rotations, signs = reck_decompose(np.eye(5))
        assert rotations == []
        assert np.all(signs == 1.0)

    def test_factorisation_reconstructs(self, rng):
        u = random_orthogonal(6, rng)
        rotations, signs = reck_decompose(u)
        rebuilt = np.diag(signs)
        for mode, theta in reversed(rotations):
            rebuilt = BeamsplitterGate(mode, theta).embed(6) @ rebuilt
        assert np.allclose(rebuilt, u, atol=1e-10)

    def test_signs_multiply_to_det(self, rng):
        for seed in range(5):
            u = random_orthogonal(5, np.random.default_rng(seed))
            _, signs = reck_decompose(u)
            assert np.prod(signs) == pytest.approx(np.linalg.det(u))

    def test_gate_count_bounded(self, rng):
        u = random_orthogonal(8, rng)
        rotations, _ = reck_decompose(u)
        assert len(rotations) <= 8 * 7 // 2  # N(N-1)/2

    def test_non_orthogonal_rejected(self):
        with pytest.raises(DecompositionError, match="not orthogonal"):
            reck_decompose(np.ones((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(DecompositionError):
            reck_decompose(np.ones((2, 3)))

    @given(st.integers(0, 100), st.integers(2, 10))
    @settings(max_examples=25)
    def test_property_roundtrip(self, seed, dim):
        u = random_orthogonal(dim, np.random.default_rng(seed))
        rotations, signs = reck_decompose(u)
        rebuilt = np.diag(signs)
        for mode, theta in reversed(rotations):
            rebuilt = BeamsplitterGate(mode, theta).embed(dim) @ rebuilt
        assert np.allclose(rebuilt, u, atol=1e-9)


class TestCircuitFromOrthogonal:
    def test_special_orthogonal_roundtrip(self, rng):
        u = random_orthogonal(7, rng, special=True)
        c = circuit_from_orthogonal(u)
        assert np.allclose(c.unitary(), u, atol=1e-9)

    def test_handles_even_sign_pairs(self):
        """A diagonal with two -1s (det +1) must synthesise exactly."""
        d = np.diag([1.0, -1.0, 1.0, -1.0, 1.0])
        c = circuit_from_orthogonal(d)
        assert np.allclose(c.unitary(), d, atol=1e-12)

    def test_adjacent_sign_pair(self):
        d = np.diag([-1.0, -1.0, 1.0])
        c = circuit_from_orthogonal(d)
        assert np.allclose(c.unitary(), d, atol=1e-12)

    def test_det_minus_one_rejected(self, rng):
        u = random_orthogonal(4, rng)
        if np.linalg.det(u) > 0:
            u[:, 0] = -u[:, 0]
        with pytest.raises(DecompositionError, match="reflection"):
            circuit_from_orthogonal(u)

    def test_network_unitary_synthesisable(self, rng):
        """The paper's trained U_C is always synthesisable: it is a
        product of rotations, hence det +1."""
        from repro.network import QuantumNetwork

        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        u = net.unitary()
        c = circuit_from_orthogonal(u)
        assert np.allclose(c.unitary(), u, atol=1e-9)

    @given(st.integers(0, 60))
    @settings(max_examples=15)
    def test_property_so_n_synthesis(self, seed):
        u = random_orthogonal(5, np.random.default_rng(seed), special=True)
        c = circuit_from_orthogonal(u)
        assert np.allclose(c.unitary(), u, atol=1e-9)
