"""Tests for repro.optics.beamsplitter."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GateError
from repro.optics.beamsplitter import (
    beamsplitter_block,
    lossy_beamsplitter_block,
)
from repro.simulator.gates import BeamsplitterGate


class TestIdealBlock:
    def test_identity_at_zero(self):
        assert np.allclose(beamsplitter_block(0.0), np.eye(2))

    def test_matches_gate_convention(self):
        assert np.allclose(
            beamsplitter_block(0.37), BeamsplitterGate(0, 0.37).matrix2()
        )

    def test_complex_matches_gate(self):
        assert np.allclose(
            beamsplitter_block(0.3, alpha=0.9),
            BeamsplitterGate(0, 0.3, alpha=0.9).matrix2(),
        )

    def test_nonfinite_rejected(self):
        with pytest.raises(GateError):
            beamsplitter_block(np.nan)

    @given(st.floats(-6, 6, allow_nan=False))
    def test_property_orthogonal(self, theta):
        b = beamsplitter_block(theta)
        assert np.allclose(b.T @ b, np.eye(2), atol=1e-12)


class TestLossyBlock:
    def test_zero_loss_is_ideal(self):
        assert np.allclose(
            lossy_beamsplitter_block(0.5, 0.0), beamsplitter_block(0.5)
        )

    def test_subunitarity_scaling(self):
        b = lossy_beamsplitter_block(0.7, loss=0.1)
        gram = b.T @ b
        assert np.allclose(gram, 0.9 * np.eye(2), atol=1e-12)

    def test_power_conservation_bound(self):
        b = lossy_beamsplitter_block(0.3, loss=0.25)
        v = np.array([0.6, 0.8])
        assert np.linalg.norm(b @ v) ** 2 == pytest.approx(0.75)

    def test_invalid_loss(self):
        with pytest.raises(GateError):
            lossy_beamsplitter_block(0.1, loss=1.0)
        with pytest.raises(GateError):
            lossy_beamsplitter_block(0.1, loss=-0.1)
