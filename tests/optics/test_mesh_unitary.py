"""Tests for circuit_from_unitary (the full U(N) Clements capability)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecompositionError
from repro.optics.mesh import circuit_from_unitary
from repro.simulator.gates import BeamsplitterGate, PhaseGate
from repro.simulator.unitary import haar_random_unitary, random_orthogonal


class TestCircuitFromUnitary:
    def test_haar_roundtrip(self, rng):
        u = haar_random_unitary(6, rng)
        c = circuit_from_unitary(u)
        assert np.allclose(c.unitary(), u, atol=1e-9)

    def test_identity(self):
        c = circuit_from_unitary(np.eye(4))
        assert np.allclose(c.unitary(), np.eye(4))

    def test_reflection_handled(self, rng):
        """det = -1 orthogonals (impossible for the rotations-only path)
        synthesise exactly once phase shifters are allowed."""
        q = random_orthogonal(5, rng)
        if np.linalg.det(q) > 0:
            q[:, 0] = -q[:, 0]
        c = circuit_from_unitary(q)
        assert np.allclose(c.unitary(), q, atol=1e-9)

    def test_diagonal_phase_matrix(self):
        d = np.diag(np.exp(1j * np.array([0.3, -1.2, 2.0])))
        c = circuit_from_unitary(d)
        assert np.allclose(c.unitary(), d, atol=1e-12)
        # Pure phases need no beamsplitters.
        assert all(isinstance(g, PhaseGate) for g in c.gates)

    def test_gate_budget(self, rng):
        """At most N(N-1)/2 rotations + as many aligning phases + N output
        phases."""
        n = 8
        u = haar_random_unitary(n, rng)
        c = circuit_from_unitary(u)
        rotations = sum(
            isinstance(g, BeamsplitterGate) for g in c.gates
        )
        assert rotations <= n * (n - 1) // 2

    def test_rotation_gates_are_real(self, rng):
        u = haar_random_unitary(4, rng)
        c = circuit_from_unitary(u)
        for g in c.gates:
            if isinstance(g, BeamsplitterGate):
                assert g.alpha == 0.0  # phases live in PhaseGates

    def test_non_unitary_rejected(self):
        with pytest.raises(DecompositionError, match="not unitary"):
            circuit_from_unitary(np.ones((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(DecompositionError):
            circuit_from_unitary(np.ones((2, 3)))

    @given(st.integers(0, 200), st.integers(2, 8))
    @settings(max_examples=25)
    def test_property_roundtrip(self, seed, dim):
        u = haar_random_unitary(dim, np.random.default_rng(seed))
        c = circuit_from_unitary(u)
        assert np.allclose(c.unitary(), u, atol=1e-8)

    def test_trained_complex_network_synthesisable(self, rng):
        """Section V extension deployed: a complex (alpha) network's
        unitary can be programmed as rotations + phase shifters."""
        from repro.network import QuantumNetwork

        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 2.0, net.num_parameters))
        u = net.unitary()
        c = circuit_from_unitary(u)
        assert np.allclose(c.unitary(), u, atol=1e-9)
