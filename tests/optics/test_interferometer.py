"""Tests for repro.optics.interferometer."""

import numpy as np
import pytest

from repro.exceptions import GateError, NetworkConfigError
from repro.network import QuantumNetwork
from repro.optics.interferometer import ImperfectionModel, Interferometer


@pytest.fixture
def trained_net(rng):
    return QuantumNetwork(8, 3).initialize("uniform", rng=rng)


class TestImperfectionModel:
    def test_ideal_default(self):
        assert ImperfectionModel().is_ideal

    def test_invalid_sigma(self):
        with pytest.raises(GateError):
            ImperfectionModel(theta_sigma=-0.1)

    def test_invalid_loss(self):
        with pytest.raises(GateError):
            ImperfectionModel(loss_per_gate=1.0)


class TestIdealDevice:
    def test_matches_network(self, trained_net):
        device = Interferometer.from_network(trained_net)
        assert np.allclose(
            device.transfer_matrix(), trained_net.unitary(), atol=1e-12
        )

    def test_descending_network(self, rng):
        net = QuantumNetwork(6, 2, descending=True).initialize(
            "uniform", rng=rng
        )
        device = Interferometer.from_network(net)
        assert np.allclose(device.transfer_matrix(), net.unitary())

    def test_apply_1d(self, trained_net, rng):
        device = Interferometer.from_network(trained_net)
        v = rng.normal(size=8)
        assert np.allclose(device.apply(v), trained_net.forward(v))

    def test_complex_network_rejected(self):
        net = QuantumNetwork(4, 1, allow_phase=True)
        with pytest.raises(NetworkConfigError, match="phase"):
            Interferometer.from_network(net)

    def test_theta_shape_validated(self):
        with pytest.raises(NetworkConfigError, match="thetas"):
            Interferometer(8, np.zeros((2, 5)))

    def test_nan_thetas_rejected(self):
        bad = np.zeros((2, 7))
        bad[0, 0] = np.nan
        with pytest.raises(NetworkConfigError):
            Interferometer(8, bad)


class TestImperfectDevice:
    def test_miscalibration_frozen(self, trained_net):
        model = ImperfectionModel(theta_sigma=0.05)
        device = Interferometer.from_network(
            trained_net, model, rng=np.random.default_rng(0)
        )
        t1 = device.transfer_matrix()
        t2 = device.transfer_matrix()
        assert np.allclose(t1, t2)  # error drawn once, not per call

    def test_miscalibration_perturbs(self, trained_net):
        model = ImperfectionModel(theta_sigma=0.05)
        device = Interferometer.from_network(
            trained_net, model, rng=np.random.default_rng(0)
        )
        assert not np.allclose(
            device.transfer_matrix(), trained_net.unitary(), atol=1e-6
        )

    def test_small_sigma_small_deviation(self, trained_net):
        model = ImperfectionModel(theta_sigma=1e-6)
        device = Interferometer.from_network(
            trained_net, model, rng=np.random.default_rng(1)
        )
        err = np.max(np.abs(device.transfer_matrix() - trained_net.unitary()))
        assert err < 1e-4

    def test_loss_makes_subunitary(self, trained_net):
        model = ImperfectionModel(loss_per_gate=0.01)
        device = Interferometer.from_network(trained_net, model)
        t = device.transfer_matrix()
        norms = np.linalg.norm(t, axis=0)
        assert np.all(norms < 1.0)

    def test_loss_norm_exact_per_column(self, trained_net):
        """Every mode crosses all N-1 gates of a layer's chain once, so a
        basis input loses exactly (1-loss)^(gates_applied/...) -- check the
        aggregate bound instead: output power <= (1-loss)^layers."""
        loss = 0.01
        model = ImperfectionModel(loss_per_gate=loss)
        device = Interferometer.from_network(trained_net, model)
        t = device.transfer_matrix()
        power = np.linalg.norm(t, axis=0) ** 2
        assert np.all(power <= (1 - loss) ** device.num_layers + 1e-12)

    def test_total_transmission_formula(self, trained_net):
        model = ImperfectionModel(loss_per_gate=0.1)
        device = Interferometer.from_network(trained_net, model)
        assert device.total_transmission() == pytest.approx(
            0.9 ** (2 * 3)
        )

    def test_programmed_vs_effective_thetas(self, trained_net):
        model = ImperfectionModel(theta_sigma=0.1)
        device = Interferometer.from_network(
            trained_net, model, rng=np.random.default_rng(5)
        )
        assert not np.allclose(
            device.programmed_thetas, device.effective_thetas
        )
        assert np.allclose(
            device.programmed_thetas, trained_net.theta_matrix
        )
