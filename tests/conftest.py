"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Deterministic, CI-friendly hypothesis profile: no deadline flakiness on
# loaded machines, moderate example counts for the heavier state-vector
# properties.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: spawns worker processes or runs multi-second workloads "
        "(deselect with -m 'not slow')",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_network():
    """A tiny initialised 4-mode, 2-layer network."""
    from repro.network import QuantumNetwork

    return QuantumNetwork(4, 2).initialize(
        "uniform", rng=np.random.default_rng(3)
    )


@pytest.fixture
def paper_images() -> np.ndarray:
    """The 25x16 binary data matrix of the reproduction dataset."""
    from repro.data import paper_dataset

    return paper_dataset().matrix()


@pytest.fixture
def unit_batch(rng) -> np.ndarray:
    """An (8, 5) batch of unit-norm random state columns."""
    x = rng.normal(size=(8, 5))
    return x / np.linalg.norm(x, axis=0)
