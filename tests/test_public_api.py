"""Public-API surface tests: everything exported must resolve and work."""

import importlib

import numpy as np
import pytest

import repro

SUBPACKAGES = [
    "repro.api",
    "repro.simulator",
    "repro.optics",
    "repro.encoding",
    "repro.network",
    "repro.training",
    "repro.baselines",
    "repro.data",
    "repro.experiments",
    "repro.noise",
    "repro.parallel",
    "repro.imaging",
    "repro.io",
    "repro.utils",
    "repro.analysis",
]


class TestTopLevel:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_classes_importable(self):
        from repro import (
            Projection,
            QuantumAutoencoder,
            QuantumNetwork,
            Trainer,
        )

        assert QuantumAutoencoder and QuantumNetwork and Trainer and Projection


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_importable(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod is not None

    def test_all_resolves(self, module_name):
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module_name}.{name}"

    def test_has_docstring(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40


class TestMinimalWorkflow:
    def test_readme_quickstart_shape(self):
        """The README quickstart must keep working verbatim (short run)."""
        from repro import QuantumAutoencoder, Trainer, paper_accuracy
        from repro.data import paper_dataset
        from repro.network.targets import TruncatedInputTarget
        from repro.training.optimizers import MomentumGD

        X = paper_dataset().matrix()
        ae = QuantumAutoencoder(
            dim=16, compressed_dim=4,
            compression_layers=12, reconstruction_layers=14,
        ).initialize("uniform", rng=np.random.default_rng(2024))
        trainer = Trainer(
            iterations=3,
            gradient_method="adjoint",
            optimizer_factory=lambda: MomentumGD(0.01, 0.9),
        )
        result = trainer.train(
            ae, X,
            target_strategy=TruncatedInputTarget.from_pca(ae.projection, X),
        )
        out = ae.forward(X)
        acc = paper_accuracy(out.x_hat, X)
        assert 0.0 <= acc <= 100.0
        assert result.history.num_iterations == 3
