"""Cross-cutting property-based tests of the library's core invariants.

These hypothesis suites encode the physics/maths contracts everything else
relies on:

1. every network (any depth, order, parameters) is exactly orthogonal;
2. amplitude encode/decode is a lossless round trip for non-negative data;
3. compression never creates probability (retained mass <= 1);
4. the adjoint gradient equals the derivative-gate gradient for arbitrary
   configurations;
5. the end-to-end pipeline is invariant under global intensity scaling of
   an image (amplitude encoding is scale-free, the norm side-channel
   carries the scale);
6. mesh synthesis round-trips arbitrary special-orthogonal targets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.encoding.amplitude import decode_batch, encode_batch
from repro.network import Projection, QuantumAutoencoder, QuantumNetwork
from repro.optics.mesh import circuit_from_orthogonal
from repro.simulator.unitary import random_orthogonal, unitarity_defect
from repro.training.gradients import loss_and_gradient

dims = st.sampled_from([2, 4, 8])
seeds = st.integers(0, 10_000)


class TestNetworkInvariants:
    @given(dim=dims, layers=st.integers(1, 5), seed=seeds,
           descending=st.booleans())
    @settings(max_examples=40)
    def test_any_network_is_orthogonal(self, dim, layers, seed, descending):
        net = QuantumNetwork(dim, layers, descending=descending)
        net.initialize("uniform", rng=np.random.default_rng(seed))
        assert unitarity_defect(net.unitary()) < 1e-11

    @given(dim=dims, seed=seeds)
    @settings(max_examples=30)
    def test_forward_then_inverse_is_identity(self, dim, seed):
        rng = np.random.default_rng(seed)
        net = QuantumNetwork(dim, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(dim, 4))
        assert np.allclose(
            net.forward(net.forward(x), inverse=True), x, atol=1e-10
        )

    @given(seed=seeds)
    @settings(max_examples=30)
    def test_parameter_roundtrip_preserves_unitary(self, seed):
        rng = np.random.default_rng(seed)
        net = QuantumNetwork(8, 2).initialize("uniform", rng=rng)
        u_before = net.unitary()
        net.set_flat_params(net.get_flat_params())
        assert np.allclose(net.unitary(), u_before)


class TestEncodingInvariants:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.just(8)),
            elements=st.floats(0, 50, allow_nan=False),
        ).filter(lambda m: np.all(m.sum(axis=1) > 1e-6))
    )
    @settings(max_examples=40)
    def test_encode_decode_roundtrip(self, X):
        enc = encode_batch(X)
        out = decode_batch(enc.states.data, enc.squared_norms)
        assert np.allclose(out, X, atol=1e-8)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.just(4)),
            elements=st.floats(0.01, 10, allow_nan=False),
        ),
        st.floats(0.1, 100.0),
    )
    @settings(max_examples=40)
    def test_scale_invariance_of_states(self, X, scale):
        """Amplitude encoding maps x and c*x to the same quantum state;
        the norm side-channel carries the scale."""
        a = encode_batch(X)
        b = encode_batch(scale * X)
        assert np.allclose(a.states.data, b.states.data, atol=1e-9)
        assert np.allclose(
            b.squared_norms, scale**2 * a.squared_norms, rtol=1e-9
        )


class TestCompressionInvariants:
    @given(dim=st.sampled_from([4, 8]), seed=seeds, d=st.integers(1, 3))
    @settings(max_examples=40)
    def test_retained_probability_at_most_one(self, dim, seed, d):
        rng = np.random.default_rng(seed)
        ae = QuantumAutoencoder(dim, d, 2, 2, projection=Projection.last(dim, d))
        ae.initialize("uniform", rng=rng)
        x = np.abs(rng.normal(size=(3, dim))) + 0.01
        out = ae.forward(x)
        assert np.all(out.retained_probability <= 1.0 + 1e-10)
        assert np.all(out.retained_probability >= -1e-12)

    @given(seed=seeds)
    @settings(max_examples=25)
    def test_output_norm_equals_retained_mass(self, seed):
        """U_R is unitary, so ||B_i||^2 == retained probability: the
        reconstruction cannot amplify what the projection discarded."""
        rng = np.random.default_rng(seed)
        ae = QuantumAutoencoder(8, 4, 2, 2).initialize("uniform", rng=rng)
        x = np.abs(rng.normal(size=(4, 8))) + 0.01
        out = ae.forward(x)
        out_norms = np.linalg.norm(out.output_amplitudes, axis=0) ** 2
        assert np.allclose(out_norms, out.retained_probability, atol=1e-10)


class TestGradientInvariants:
    @given(
        dim=st.sampled_from([4, 8]),
        layers=st.integers(1, 3),
        seed=seeds,
        use_projection=st.booleans(),
    )
    @settings(max_examples=30)
    def test_adjoint_equals_derivative_everywhere(
        self, dim, layers, seed, use_projection
    ):
        rng = np.random.default_rng(seed)
        net = QuantumNetwork(dim, layers).initialize("uniform", rng=rng)
        x = rng.normal(size=(dim, 3))
        x /= np.linalg.norm(x, axis=0)
        proj = Projection.last(dim, dim // 2) if use_projection else None
        t = rng.normal(size=(dim, 3))
        if proj is not None:
            t = proj.apply(t)
        norms = np.linalg.norm(t, axis=0)
        norms[norms < 1e-9] = 1.0
        t = t / norms
        _, g_adj = loss_and_gradient(
            net, x, t, projection=proj, method="adjoint"
        )
        _, g_der = loss_and_gradient(
            net, x, t, projection=proj, method="derivative"
        )
        assert np.allclose(g_adj, g_der, atol=1e-10)


class TestPipelineInvariants:
    @given(seed=seeds, scale=st.floats(0.5, 20.0))
    @settings(max_examples=25)
    def test_reconstruction_scales_linearly(self, seed, scale):
        """Scaling an image scales its reconstruction by the same factor
        (Eq. 2 decodes through the stored norm)."""
        rng = np.random.default_rng(seed)
        ae = QuantumAutoencoder(4, 2, 2, 2).initialize("uniform", rng=rng)
        x = np.abs(rng.normal(size=(2, 4))) + 0.1
        out1 = ae.forward(x).x_hat
        out2 = ae.forward(scale * x).x_hat
        assert np.allclose(out2, scale * out1, rtol=1e-8, atol=1e-10)


class TestMeshInvariants:
    @given(seed=seeds, dim=st.integers(2, 8))
    @settings(max_examples=25)
    def test_so_n_synthesis_roundtrip(self, seed, dim):
        u = random_orthogonal(dim, np.random.default_rng(seed), special=True)
        c = circuit_from_orthogonal(u)
        assert np.allclose(c.unitary(), u, atol=1e-8)
