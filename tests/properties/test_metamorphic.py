"""Metamorphic properties of the end-to-end pipeline.

These tests assert relations between *pairs* of pipeline runs — the kind
of contract no single-run oracle can check:

- permuting the samples permutes the reconstructions identically;
- duplicating a sample duplicates its reconstruction;
- the pipeline treats samples independently (batch composition cannot
  change any individual output);
- training is invariant to sample order (full-batch gradients sum over
  samples);
- relabelling the kept subspace (an equivalent projection plus matching
  targets) leaves the achievable loss unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.binary_images import paper_dataset
from repro.network import Projection, QuantumAutoencoder
from repro.network.targets import TruncatedInputTarget
from repro.training.optimizers import Adam
from repro.training.trainer import Trainer

seeds = st.integers(0, 5_000)


def fresh_ae(seed=7, layers=(3, 3), dim=8, d=4):
    return QuantumAutoencoder(dim, d, *layers).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


class TestSampleIndependence:
    @given(seed=seeds)
    @settings(max_examples=20)
    def test_permutation_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        ae = fresh_ae(seed)
        X = np.abs(rng.normal(size=(6, 8))) + 0.05
        perm = rng.permutation(6)
        out_direct = ae.forward(X).x_hat
        out_permuted = ae.forward(X[perm]).x_hat
        assert np.allclose(out_permuted, out_direct[perm], atol=1e-12)

    @given(seed=seeds)
    @settings(max_examples=20)
    def test_duplication_consistency(self, seed):
        rng = np.random.default_rng(seed)
        ae = fresh_ae(seed)
        X = np.abs(rng.normal(size=(3, 8))) + 0.05
        doubled = np.vstack([X, X[1:2]])
        out = ae.forward(doubled).x_hat
        assert np.allclose(out[3], out[1], atol=1e-12)

    @given(seed=seeds)
    @settings(max_examples=20)
    def test_batch_composition_irrelevant(self, seed):
        """A sample's reconstruction is identical alone or in a batch."""
        rng = np.random.default_rng(seed)
        ae = fresh_ae(seed)
        X = np.abs(rng.normal(size=(5, 8))) + 0.05
        full = ae.forward(X).x_hat
        solo = ae.forward(X[2:3]).x_hat
        assert np.allclose(full[2], solo[0], atol=1e-12)


class TestTrainingInvariances:
    def test_training_invariant_to_sample_order(self):
        X = paper_dataset(num_samples=10).matrix()
        perm = np.random.default_rng(0).permutation(10)
        # The strategy is built ONCE: PCA mixing matrices are only defined
        # up to singular-vector sign, which depends on row order — the
        # invariance below is about the *gradient sum*, so the targets
        # must be held fixed across both runs.
        proj = Projection.last(16, 4)
        strat = TruncatedInputTarget.from_pca(proj, X)

        def train(data):
            ae = QuantumAutoencoder(16, 4, 3, 3, projection=proj)
            ae.initialize("uniform", rng=np.random.default_rng(11))
            res = Trainer(
                iterations=10,
                optimizer_factory=lambda: Adam(0.05),
                record_theta_every=None,
            ).train(ae, data, target_strategy=strat)
            return np.asarray(res.history.loss_r)

        # Full-batch gradients are sums over samples: order cannot matter.
        assert np.allclose(train(X), train(X[perm]), atol=1e-9)

    def test_equivalent_projections_reach_equal_loss(self):
        """Keeping the FIRST d dims instead of the LAST d is a relabelling
        of the trash modes; with matching targets the optimisation problem
        is congruent and reaches the same loss."""
        X = paper_dataset(num_samples=12).matrix()

        def train(projection_factory):
            proj = projection_factory(16, 4)
            ae = QuantumAutoencoder(16, 4, 6, 6, projection=proj)
            ae.initialize("uniform", rng=np.random.default_rng(5))
            strat = TruncatedInputTarget.from_pca(proj, X)
            res = Trainer(
                iterations=60,
                optimizer_factory=lambda: Adam(0.05),
                record_theta_every=None,
            ).train(ae, X, target_strategy=strat)
            return res.history.loss_r[0], res.history.loss_r[-1]

        last0, last1 = train(Projection.last)
        first0, first1 = train(Projection.first)
        # Not bit-identical (different random landscapes give different
        # transient speeds), but the same problem class: both make clear
        # progress towards zero within the budget.
        assert last1 < 0.5 * last0
        assert first1 < 0.5 * first0
