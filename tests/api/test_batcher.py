"""Tests for repro.api.batcher (MicroBatcher)."""

import time

import numpy as np
import pytest

from repro.api import InferenceSession, MicroBatcher
from repro.exceptions import ServingError
from repro.network.autoencoder import QuantumAutoencoder


def _session(**kwargs):
    ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
        "uniform", rng=np.random.default_rng(0)
    )
    return InferenceSession(ae, **kwargs)


def _requests(m=5, seed=1):
    return np.abs(np.random.default_rng(seed).normal(size=(m, 4))) + 0.1


class TestValidation:
    def test_bad_construction(self):
        session = _session()
        with pytest.raises(ServingError):
            MicroBatcher(session, max_batch_size=0)
        with pytest.raises(ServingError):
            MicroBatcher(session, flush_latency=0.0)

    def test_bad_requests_rejected_at_submit(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        with pytest.raises(ServingError):
            batcher.submit(np.ones(3))  # wrong length
        with pytest.raises(ServingError):
            batcher.submit(np.array([1.0, np.nan, 0.0, 0.0]))
        with pytest.raises(ServingError):
            batcher.submit(np.zeros(4))  # not encodable
        assert batcher.pending == 0


class TestFlushTriggers:
    def test_manual_flush_serves_everything(self):
        session = _session()
        batcher = MicroBatcher(session, max_batch_size=64, flush_latency=None)
        X = _requests()
        futures = [batcher.submit(x) for x in X]
        assert batcher.pending == len(X)
        assert not futures[0].done()
        assert batcher.flush() == len(X)
        expected = session.reconstruct(X)
        for i, future in enumerate(futures):
            assert np.array_equal(future.result(timeout=1.0), expected[i])

    def test_size_trigger_flushes_inline(self):
        batcher = MicroBatcher(_session(), max_batch_size=3,
                               flush_latency=None)
        X = _requests(m=7)
        futures = [batcher.submit(x) for x in X]
        # 7 submits with max 3 -> two full ticks served, one pending.
        assert [f.done() for f in futures] == [True] * 6 + [False]
        assert batcher.pending == 1
        assert batcher.flush() == 1
        stats = batcher.stats
        assert stats["ticks"] == 3
        assert stats["largest_tick"] == 3
        assert stats["served_requests"] == 7

    def test_latency_trigger_fires(self):
        batcher = MicroBatcher(_session(), max_batch_size=1024,
                               flush_latency=0.02)
        future = batcher.submit(_requests(m=1)[0])
        assert future.result(timeout=5.0).shape == (4,)
        assert batcher.stats["ticks"] == 1

    def test_results_are_per_request_rows(self):
        session = _session()
        batcher = MicroBatcher(session, flush_latency=None)
        X = _requests(m=4)
        futures = [batcher.submit(x) for x in X]
        batcher.flush()
        # Order must be preserved: request i gets row i of the tick.
        expected = session.reconstruct(X)
        for i, future in enumerate(futures):
            assert np.array_equal(future.result(timeout=1.0), expected[i])


class TestCancellation:
    def test_cancelled_future_does_not_poison_tick(self):
        session = _session()
        batcher = MicroBatcher(session, flush_latency=None)
        X = _requests(m=3)
        futures = [batcher.submit(x) for x in X]
        assert futures[0].cancel()
        # The tick still runs for everyone else; the return value counts
        # deliveries, consistent with stats["served_requests"].
        assert batcher.flush() == 2
        assert futures[0].cancelled()
        expected = session.reconstruct(X)
        for i in (1, 2):
            assert np.array_equal(futures[i].result(timeout=1.0), expected[i])
        assert batcher.stats["served_requests"] == 2


class TestLifecycle:
    def test_close_flushes_then_rejects(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        future = batcher.submit(_requests(m=1)[0])
        batcher.close()
        assert future.result(timeout=1.0).shape == (4,)
        with pytest.raises(ServingError):
            batcher.submit(_requests(m=1)[0])
        batcher.close()  # idempotent

    def test_context_manager(self):
        with MicroBatcher(_session(), flush_latency=None) as batcher:
            future = batcher.submit(_requests(m=1)[0])
        assert future.done()

    def test_flush_empty_is_zero(self):
        assert MicroBatcher(_session(), flush_latency=None).flush() == 0

    def test_repr(self):
        assert "open" in repr(MicroBatcher(_session(), flush_latency=None))


class TestSessionIntegration:
    def test_submit_via_session(self):
        session = _session(max_batch_size=2, flush_latency=None)
        X = _requests(m=4)
        futures = [session.submit(x) for x in X]
        assert all(f.done() for f in futures)  # two size-triggered ticks
        expected_a = session.reconstruct(X[:2])
        expected_b = session.reconstruct(X[2:])
        assert np.array_equal(futures[0].result(), expected_a[0])
        assert np.array_equal(futures[3].result(), expected_b[1])
        assert session.batcher.stats["ticks"] == 2
