"""Tests for repro.api.session (InferenceSession)."""

import numpy as np
import pytest

from repro.api import Codec, CodecSpec, InferenceSession
from repro.data.binary_images import paper_dataset
from repro.exceptions import DimensionError, ServingError
from repro.network.autoencoder import QuantumAutoencoder

TOL = 1e-10


def _autoencoder(seed=0, **kwargs):
    return QuantumAutoencoder(4, 2, 2, 2, **kwargs).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


def _data(m=6, n=4, seed=1):
    return np.abs(np.random.default_rng(seed).normal(size=(m, n))) + 0.1


class TestEagerParity:
    def test_paper_config_parity(self):
        """Compiled single-GEMM pass == eager forward to <= 1e-10."""
        codec = Codec(CodecSpec(iterations=3, backend="fused"))
        X = paper_dataset().matrix()
        codec.fit(X)
        session = codec.session()
        np.testing.assert_allclose(
            session.reconstruct(X), codec.forward(X).x_hat, atol=TOL, rtol=0
        )

    @pytest.mark.parametrize("allow_phase", [False, True])
    @pytest.mark.parametrize("renormalize", [False, True])
    def test_parity_matrix(self, allow_phase, renormalize):
        ae = _autoencoder(allow_phase=allow_phase, renormalize=renormalize)
        session = InferenceSession(ae)
        X = _data()
        np.testing.assert_allclose(
            session.reconstruct(X), ae.forward(X).x_hat, atol=TOL, rtol=0
        )

    def test_compress_decompress_parity(self):
        ae = _autoencoder()
        session = InferenceSession(ae)
        X = _data()
        eager = ae.forward(X)
        payload = session.compress(X)
        np.testing.assert_allclose(
            payload.codes, eager.compact_codes, atol=TOL, rtol=0
        )
        np.testing.assert_allclose(
            session.decompress(payload), eager.x_hat, atol=TOL, rtol=0
        )

    def test_decompress_raw_codes(self):
        session = InferenceSession(_autoencoder())
        X = _data()
        payload = session.compress(X)
        with pytest.raises(DimensionError):
            session.decompress(payload.codes)
        with pytest.raises(DimensionError):
            session.decompress(np.zeros((3, 2)), np.ones(2))
        assert np.array_equal(
            session.decompress(payload.codes, payload.squared_norms),
            session.decompress(payload),
        )


class TestImmutability:
    def test_later_training_does_not_leak(self):
        ae = _autoencoder()
        session = InferenceSession(ae)
        X = _data()
        before = session.reconstruct(X)
        ae.uc.set_flat_params(
            np.random.default_rng(5).normal(size=ae.uc.num_parameters)
        )
        assert np.array_equal(session.reconstruct(X), before)
        assert not np.allclose(ae.forward(X).x_hat, before)

    def test_operator_is_read_only_copy(self):
        session = InferenceSession(_autoencoder())
        op = session.pipeline_operator()
        op[:] = 0.0  # mutating the copy ...
        assert not np.allclose(session.pipeline_operator(), 0.0)

    def test_source_network_backend_untouched(self):
        ae = _autoencoder(backend="loop")
        InferenceSession(ae)
        assert ae.uc.backend.name == "loop"


class TestChunking:
    def test_oversized_tick_streams_in_chunks(self):
        ae = _autoencoder()
        session = InferenceSession(ae, chunk_size=7)
        wide = InferenceSession(ae)
        X = _data(m=50)
        # Chunk boundaries change BLAS blocking, so equality is to
        # rounding, not bitwise.
        np.testing.assert_allclose(
            session.reconstruct(X), wide.reconstruct(X), atol=1e-12, rtol=0
        )
        np.testing.assert_allclose(
            session.compress(X).codes, wide.compress(X).codes,
            atol=1e-12, rtol=0,
        )

    def test_chunk_size_validated(self):
        with pytest.raises(ServingError):
            InferenceSession(_autoencoder(), chunk_size=0)


class TestLifecycle:
    def test_from_codec(self):
        codec = Codec(
            CodecSpec(dim=4, compressed_dim=2, compression_layers=2,
                      reconstruction_layers=2, iterations=2)
        )
        session = codec.session(chunk_size=128)
        assert session.dim == 4
        assert session.chunk_size == 128

    def test_context_manager_closes_batcher(self):
        with InferenceSession(_autoencoder(), flush_latency=None) as session:
            future = session.submit(_data(m=1)[0])
            session.flush()
        assert future.result(timeout=1.0).shape == (4,)
        with pytest.raises(ServingError):
            session.submit(_data(m=1)[0])

    def test_flush_without_batcher_is_noop(self):
        assert InferenceSession(_autoencoder()).flush() == 0

    def test_close_before_any_submit_still_closes(self):
        """A never-used session must not resurrect through the lazy
        batcher after close()."""
        session = InferenceSession(_autoencoder(), flush_latency=None)
        session.close()
        with pytest.raises(ServingError):
            session.submit(_data(m=1)[0])

    def test_repr_mentions_shape(self):
        assert "dim=4" in repr(InferenceSession(_autoencoder()))


class TestPoolAttachment:
    def test_pool_defaults_to_none(self):
        session = InferenceSession(_autoencoder())
        assert session.pool is None
        assert "pool" not in repr(session)

    def test_small_ticks_never_touch_the_pool(self):
        class Exploder:
            processes = 2

            def apply_dense(self, *a, **k):  # pragma: no cover - guard
                raise AssertionError("small tick scattered to the pool")

        session = InferenceSession(
            _autoencoder(), chunk_size=64, pool=Exploder()
        )
        X = _data(m=10)
        ref = InferenceSession(_autoencoder(), chunk_size=64)
        np.testing.assert_allclose(
            session.reconstruct(X), ref.reconstruct(X), atol=0, rtol=0
        )

    @pytest.mark.slow
    def test_oversized_ticks_scatter_and_match(self):
        from repro.parallel.pool import WorkerPool

        ae = _autoencoder()
        with WorkerPool(processes=2) as pool:
            sharded = InferenceSession(ae, chunk_size=16, pool=pool)
            plain = InferenceSession(ae, chunk_size=16)
            assert sharded.pool is pool
            assert "pool=2 workers" in repr(sharded)
            X = _data(m=200, seed=5)
            np.testing.assert_allclose(
                sharded.reconstruct(X), plain.reconstruct(X),
                atol=TOL, rtol=0,
            )
            payload = sharded.compress(X)
            np.testing.assert_allclose(
                payload.codes, plain.compress(X).codes, atol=TOL, rtol=0
            )
            np.testing.assert_allclose(
                sharded.decompress(payload), plain.decompress(payload),
                atol=TOL, rtol=0,
            )

    @pytest.mark.slow
    def test_renormalize_path_through_pool(self):
        from repro.parallel.pool import WorkerPool

        ae = _autoencoder(renormalize=True)
        with WorkerPool(processes=2) as pool:
            sharded = InferenceSession(ae, chunk_size=16, pool=pool)
            plain = InferenceSession(ae, chunk_size=16)
            X = _data(m=120, seed=8)
            np.testing.assert_allclose(
                sharded.reconstruct(X), plain.reconstruct(X),
                atol=TOL, rtol=0,
            )
