"""Tests for repro.api.spec (CodecSpec)."""

import numpy as np
import pytest

from repro.api.spec import CodecSpec
from repro.exceptions import NetworkConfigError
from repro.experiments.config import PaperConfig
from repro.network.projection import Projection


class TestValidation:
    def test_paper_defaults(self):
        spec = CodecSpec()
        assert (spec.dim, spec.compressed_dim) == (16, 4)
        assert (spec.compression_layers, spec.reconstruction_layers) == (12, 14)
        assert spec.backend == "loop"
        assert spec.grad_engine == "batched"

    def test_compressed_dim_must_be_smaller(self):
        with pytest.raises(NetworkConfigError):
            CodecSpec(dim=4, compressed_dim=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"learning_rate": 0.0},
            {"optimizer": "sgd"},
            {"target": "magic"},
            {"loss_mode": "median"},
            {"backend": "quantum-annealer"},
            {"grad_engine": "vectorised"},
            {"gradient_method": "spsa"},
            {"batch_size": 0},
            {"parallel": "cluster"},
            {"parallel": "pool:zero"},
            {"parallel": "pool:0"},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(NetworkConfigError):
            CodecSpec(**kwargs)

    def test_parallel_spec_normalised(self):
        assert CodecSpec(parallel="POOL:3").parallel == "pool:3"
        assert CodecSpec(parallel="none").parallel is None
        assert CodecSpec().parallel is None
        assert CodecSpec().batch_size is None

    def test_projection_length_must_match(self):
        with pytest.raises(NetworkConfigError):
            CodecSpec(dim=8, compressed_dim=2, projection=(0, 1, 2))

    def test_projection_indices_validated(self):
        with pytest.raises(Exception):
            CodecSpec(dim=8, compressed_dim=2, projection=(6, 99))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CodecSpec().dim = 8


class TestRoundTrip:
    def test_with_updates(self):
        spec = CodecSpec().with_(backend="fused", iterations=7)
        assert spec.backend == "fused"
        assert spec.iterations == 7
        assert CodecSpec().backend == "loop"  # original untouched

    def test_dict_round_trip(self):
        spec = CodecSpec(
            dim=8,
            compressed_dim=3,
            projection=(1, 4, 6),
            allow_phase=True,
            renormalize=True,
            backend="fused",
            loss_mode="mean",
            batch_size=4,
            parallel="pool:2",
        )
        assert CodecSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_safe(self):
        import json

        json.dumps(CodecSpec(projection=(12, 13, 14, 15)).to_dict())

    def test_unknown_field_rejected(self):
        with pytest.raises(NetworkConfigError):
            CodecSpec.from_dict({"quantisation": 8})

    def test_hashable(self):
        assert hash(CodecSpec()) == hash(CodecSpec())


class TestFactories:
    def test_build_projection_default_is_last(self):
        assert CodecSpec(dim=8, compressed_dim=2).build_projection() == (
            Projection.last(8, 2)
        )

    def test_build_projection_explicit(self):
        spec = CodecSpec(dim=8, compressed_dim=2, projection=(0, 5))
        assert spec.build_projection().keep.tolist() == [0, 5]

    def test_build_autoencoder_wires_everything(self):
        spec = CodecSpec(
            dim=8,
            compressed_dim=2,
            compression_layers=3,
            reconstruction_layers=2,
            allow_phase=True,
            renormalize=True,
            backend="fused",
        )
        ae = spec.build_autoencoder()
        assert ae.dim == 8
        assert ae.compressed_dim == 2
        assert ae.uc.num_layers == 3
        assert ae.ur.num_layers == 2
        assert ae.uc.allow_phase and ae.ur.allow_phase
        assert ae.renormalize
        assert ae.backend_name == "fused"

    def test_build_trainer_carries_exec_knobs(self):
        trainer = CodecSpec(
            gradient_method="central",
            grad_engine="looped",
            backend="fused",
            iterations=9,
            loss_mode="mean",
            batch_size=8,
            parallel="pool:2",
        ).build_trainer()
        assert trainer.iterations == 9
        assert trainer.gradient_method == "central"
        assert trainer.grad_engine == "looped"
        assert trainer.backend == "fused"
        assert trainer.batch_size == 8
        assert trainer.parallel == "pool:2"


class TestPaperConfigDelegation:
    """PaperConfig must be a thin layer over the same code path."""

    def test_from_paper_config_fields(self):
        cfg = PaperConfig(backend="fused", optimizer="adam", iterations=42)
        spec = CodecSpec.from_paper_config(cfg)
        assert spec.backend == "fused"
        assert spec.optimizer == "adam"
        assert spec.iterations == 42
        assert spec.seed == cfg.seed

    def test_from_paper_config_parallel_and_batch(self):
        cfg = PaperConfig(parallel="pool:2", batch_size=5)
        spec = CodecSpec.from_paper_config(cfg)
        assert spec.parallel == "pool:2"
        assert spec.batch_size == 5

    def test_codec_spec_method(self):
        assert PaperConfig().codec_spec() == CodecSpec.from_paper_config(
            PaperConfig()
        )

    def test_build_autoencoder_identical_params(self):
        cfg = PaperConfig()
        via_config = cfg.build_autoencoder()
        via_spec = cfg.codec_spec().build_autoencoder()
        assert np.array_equal(
            via_config.uc.get_flat_params(), via_spec.uc.get_flat_params()
        )
        assert np.array_equal(
            via_config.ur.get_flat_params(), via_spec.ur.get_flat_params()
        )
