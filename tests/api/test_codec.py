"""Tests for repro.api.codec: round-trip exactness and persistence."""

import json

import numpy as np
import pytest

from repro.api import Codec, CodecSpec, CompressedBatch
from repro.data.binary_images import paper_dataset
from repro.exceptions import DimensionError, SerializationError
from repro.io.model_io import load_autoencoder, save_autoencoder
from repro.network.autoencoder import QuantumAutoencoder

SMALL = dict(
    dim=4, compressed_dim=2, compression_layers=2, reconstruction_layers=2,
    iterations=2,
)


def _data(m=6, n=4, seed=1):
    return np.abs(np.random.default_rng(seed).normal(size=(m, n))) + 0.1


class TestCompressedBatch:
    def test_shapes_validated(self):
        with pytest.raises(DimensionError):
            CompressedBatch(codes=np.zeros(3), squared_norms=np.ones(3))
        with pytest.raises(DimensionError):
            CompressedBatch(codes=np.zeros((2, 3)), squared_norms=np.ones(2))

    def test_payload_accounting(self):
        payload = CompressedBatch(
            codes=np.zeros((4, 25)), squared_norms=np.ones(25)
        )
        assert payload.compressed_dim == 4
        assert payload.num_samples == 25
        assert payload.floats_per_sample == 5

    def test_coerce_rejects_conflicting_forms(self):
        payload = CompressedBatch(
            codes=np.ones((2, 3)), squared_norms=np.ones(3)
        )
        assert CompressedBatch.coerce(payload) is payload
        with pytest.raises(DimensionError):
            CompressedBatch.coerce(payload, np.ones(3))  # double norms

    @pytest.mark.parametrize("complex_codes", [False, True])
    def test_wire_format_round_trip(self, complex_codes, tmp_path):
        from repro.io.results_io import load_results, save_results

        rng = np.random.default_rng(0)
        codes = rng.normal(size=(2, 5))
        if complex_codes:
            codes = codes + 1j * rng.normal(size=(2, 5))
        payload = CompressedBatch(
            codes=codes, squared_norms=np.abs(rng.normal(size=5)) + 0.1
        )
        path = tmp_path / "payload.json"
        save_results(payload.to_results(), path)
        back = CompressedBatch.from_results(load_results(path))
        assert np.array_equal(back.codes, payload.codes)
        assert np.array_equal(back.squared_norms, payload.squared_norms)

    def test_from_results_rejects_codeless_mapping(self):
        with pytest.raises(DimensionError):
            CompressedBatch.from_results({"squared_norms": np.ones(2)})


class TestRoundTripExactness:
    def test_paper_dataset_bit_exact(self):
        """compress->decompress equals QuantumAutoencoder.forward bitwise."""
        spec = CodecSpec()  # the paper's architecture + seed
        codec = Codec(spec)
        ae = QuantumAutoencoder(
            dim=16, compressed_dim=4,
            compression_layers=12, reconstruction_layers=14,
        ).initialize("uniform", rng=np.random.default_rng(spec.seed))
        X = paper_dataset().matrix()
        expected = ae.forward(X)
        x_hat = codec.decompress(codec.compress(X))
        assert np.array_equal(x_hat, expected.x_hat)

    def test_compress_matches_forward_codes(self):
        codec = Codec(CodecSpec(**SMALL))
        X = _data()
        out = codec.forward(X)
        payload = codec.compress(X)
        assert np.array_equal(payload.codes, out.compact_codes)
        assert np.array_equal(payload.squared_norms, out.encoded.squared_norms)

    @pytest.mark.parametrize("allow_phase", [False, True])
    @pytest.mark.parametrize("renormalize", [False, True])
    @pytest.mark.parametrize("backend", ["loop", "fused"])
    def test_round_trip_bit_exact_matrix(
        self, allow_phase, renormalize, backend
    ):
        codec = Codec(
            CodecSpec(
                **SMALL,
                allow_phase=allow_phase,
                renormalize=renormalize,
                backend=backend,
            )
        ).fit(_data())
        X = _data(seed=3)
        expected = codec.forward(X).x_hat
        assert np.array_equal(codec.decompress(codec.compress(X)), expected)

    def test_decompress_raw_codes_needs_norms(self):
        codec = Codec(CodecSpec(**SMALL))
        payload = codec.compress(_data())
        with pytest.raises(DimensionError):
            codec.decompress(payload.codes)
        x_hat = codec.decompress(payload.codes, payload.squared_norms)
        assert np.array_equal(x_hat, codec.decompress(payload))


class TestFitEvaluate:
    def test_fit_records_result_and_improves(self):
        codec = Codec(CodecSpec(**SMALL) .with_(iterations=40, backend="fused"))
        X = _data(m=8)
        assert not codec.is_fitted
        codec.fit(X)
        assert codec.is_fitted
        history = codec.last_result.history
        assert history.num_iterations == 40
        assert history.loss_r[-1] < history.loss_r[0]

    def test_retained_probability_measured_before_renormalization(self):
        """renormalize must not trivialise the compression-loss metric."""
        X = _data()
        plain = Codec(CodecSpec(**SMALL))
        renorm = Codec(CodecSpec(**SMALL, renormalize=True))
        expected = plain.forward(X).retained_probability
        assert np.all(expected < 1.0 - 1e-6)  # untrained: real loss
        assert np.allclose(
            renorm.forward(X).retained_probability, expected
        )
        assert (
            renorm.evaluate(X)["mean_retained_probability"]
            == pytest.approx(float(np.mean(expected)))
        )

    def test_evaluate_keys_and_ranges(self):
        metrics = Codec(CodecSpec(**SMALL)).fit(_data()).evaluate(_data())
        assert set(metrics) == {
            "accuracy",
            "pixel_accuracy",
            "mse",
            "reconstruction_loss",
            "mean_retained_probability",
        }
        assert 0.0 <= metrics["accuracy"] <= 100.0
        assert 0.0 <= metrics["mean_retained_probability"] <= 1.0 + 1e-12

    def test_overrides_via_kwargs(self):
        codec = Codec(dim=8, compressed_dim=2, compression_layers=2,
                      reconstruction_layers=2)
        assert codec.dim == 8
        assert codec.spec.compressed_dim == 2

    def test_fit_accepts_path_source(self, tmp_path):
        X = _data(m=8)
        path = tmp_path / "x.npy"
        np.save(path, X)
        from_path = Codec(CodecSpec(**SMALL)).fit(path)
        from_array = Codec(CodecSpec(**SMALL)).fit(X)
        assert np.array_equal(
            from_path.autoencoder.uc.get_flat_params(),
            from_array.autoencoder.uc.get_flat_params(),
        )

    def test_fit_accepts_dataset_source(self):
        ds = paper_dataset(image_size=2, num_samples=6)
        codec = Codec(CodecSpec(**SMALL)).fit(ds)
        assert codec.is_fitted

    def test_fit_accepts_stream_and_adopts_its_batch_size(self):
        from repro.data.stream import MiniBatchStream

        X = _data(m=8)
        stream = MiniBatchStream(X, batch_size=3, seed=0)
        via_stream = Codec(CodecSpec(**SMALL)).fit(stream)
        via_array = Codec(
            CodecSpec(**SMALL).with_(batch_size=3)
        ).fit(X)
        assert np.array_equal(
            via_stream.autoencoder.uc.get_flat_params(),
            via_array.autoencoder.uc.get_flat_params(),
        )
        # The codec's own spec stays as configured (frozen).
        assert via_stream.spec.batch_size is None

    def test_fit_trains_ur_on_renormalized_inputs(self):
        """The renormalize flag must reach training, not just inference:
        U_R is optimised on the same (renormalized) states it serves."""
        X = _data(m=8)
        base = CodecSpec(**SMALL).with_(iterations=30, backend="fused")
        plain = Codec(base).fit(X)
        renorm = Codec(base.with_(renormalize=True)).fit(X)
        # Different U_R input distributions -> different trained params.
        assert not np.allclose(
            plain.autoencoder.ur.get_flat_params(),
            renorm.autoencoder.ur.get_flat_params(),
        )
        # And the objective it optimised is the serving pipeline's: the
        # trained codec beats its own untrained initialisation.
        untrained = Codec(base.with_(renormalize=True))
        assert (
            renorm.evaluate(X)["reconstruction_loss"]
            < untrained.evaluate(X)["reconstruction_loss"]
        )


class TestPersistence:
    @pytest.mark.parametrize("allow_phase", [False, True])
    @pytest.mark.parametrize("renormalize", [False, True])
    def test_save_load_output_identical(
        self, tmp_path, allow_phase, renormalize
    ):
        codec = Codec(
            CodecSpec(
                **SMALL, allow_phase=allow_phase, renormalize=renormalize,
                backend="fused",
            )
        ).fit(_data())
        path = tmp_path / "codec.npz"
        codec.save(path)
        loaded = Codec.load(path)
        assert loaded.spec == codec.spec
        assert loaded.autoencoder.renormalize == renormalize
        assert loaded.autoencoder.backend_name == "fused"
        X = _data(seed=9)
        assert np.array_equal(
            loaded.forward(X).x_hat, codec.forward(X).x_hat
        )
        assert np.array_equal(
            loaded.decompress(loaded.compress(X)),
            codec.decompress(codec.compress(X)),
        )

    def test_fitted_state_survives_checkpoint(self, tmp_path):
        codec = Codec(CodecSpec(**SMALL))
        path = tmp_path / "c.npz"
        codec.save(path)
        assert not Codec.load(path).is_fitted  # untrained stays untrained
        codec.fit(_data())
        codec.save(path)
        loaded = Codec.load(path)
        assert loaded.is_fitted
        assert loaded.last_result is None  # history is not serialised
        assert "fitted" in repr(loaded)

    def test_save_without_npz_suffix_round_trips(self, tmp_path):
        """np.savez appends .npz on write; load must find it either way."""
        codec = Codec(CodecSpec(**SMALL))
        written = codec.save(tmp_path / "model")  # no suffix
        assert str(written).endswith("model.npz")
        X = _data()
        for path in (tmp_path / "model", written):
            loaded = Codec.load(path)
            assert np.array_equal(
                loaded.forward(X).x_hat, codec.forward(X).x_hat
            )

    def test_checkpoint_loads_as_plain_autoencoder(self, tmp_path):
        codec = Codec(CodecSpec(**SMALL, renormalize=True)).fit(_data())
        path = tmp_path / "codec.npz"
        codec.save(path)
        ae = load_autoencoder(path)
        assert ae.renormalize
        X = _data(seed=5)
        assert np.array_equal(
            ae.forward(X).x_hat, codec.forward(X).x_hat
        )

    def test_load_plain_autoencoder_archive(self, tmp_path):
        """A bare save_autoencoder file (no spec) loads with defaults."""
        ae = QuantumAutoencoder(4, 2, 2, 2, backend="fused").initialize(
            rng=np.random.default_rng(0)
        )
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        codec = Codec.load(path)
        assert codec.spec.backend == "fused"
        assert codec.spec.projection == (2, 3)
        X = _data(seed=2)
        assert np.array_equal(
            codec.forward(X).x_hat, ae.forward(X).x_hat
        )

    def test_load_v1_archive(self, tmp_path):
        """v1 files (no renormalize/backend/spec) still load."""
        ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
            rng=np.random.default_rng(7)
        )
        meta = {
            "format_version": 1,
            "kind": "QuantumAutoencoder",
            "dim": 4,
            "compressed_dim": 2,
            "compression_layers": 2,
            "reconstruction_layers": 2,
            "allow_phase": False,
            "keep": [2, 3],
        }
        path = tmp_path / "v1.npz"
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            params=np.concatenate(
                [ae.uc.get_flat_params(), ae.ur.get_flat_params()]
            ),
        )
        codec = Codec.load(path)
        assert codec.spec.backend == "loop"
        assert not codec.autoencoder.renormalize
        X = _data(seed=4)
        assert np.array_equal(
            codec.forward(X).x_hat, ae.forward(X).x_hat
        )

    def test_future_format_version_rejected(self, tmp_path):
        meta = {"format_version": 99, "kind": "QuantumAutoencoder"}
        path = tmp_path / "v99.npz"
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            params=np.zeros(1),
        )
        with pytest.raises(SerializationError):
            Codec.load(path)


class TestShardedCheckpointRoundTrip:
    def test_sharded_worker_count_survives_save_load(self, tmp_path):
        """The archive header stores only 'sharded'; the embedded spec
        must restore the ':K' worker pinning on load."""
        from repro.backends.sharded import ShardedBackend

        codec = Codec(
            CodecSpec(
                dim=4, compressed_dim=2, compression_layers=2,
                reconstruction_layers=2, backend="sharded:3",
            )
        )
        path = codec.save(tmp_path / "model.npz")
        loaded = Codec.load(path)
        assert loaded.spec.backend == "sharded:3"
        backend = loaded.autoencoder.uc.backend
        assert isinstance(backend, ShardedBackend)
        assert backend.worker_count == 3
        assert backend._slot is loaded.autoencoder.ur.backend._slot
