"""Stats surface of MicroBatcher + the LatencyHistogram it reports.

Satellite contract: ``MicroBatcher.stats`` exposes queue depth, the
rejection/expiry counters and a per-flush latency histogram, and every
counter is monotone non-decreasing over the batcher's lifetime.
"""

import time

import numpy as np
import pytest

from repro.api import InferenceSession, MicroBatcher
from repro.exceptions import DeadlineExpired, ServingError
from repro.network.autoencoder import QuantumAutoencoder
from repro.serving import FaultInjectingSession, LatencyHistogram


def _session(**kwargs):
    ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
        "uniform", rng=np.random.default_rng(0)
    )
    return InferenceSession(ae, **kwargs)


def _requests(m=5, seed=1):
    return np.abs(np.random.default_rng(seed).normal(size=(m, 4))) + 0.1


#: Keys in MicroBatcher.stats that may never decrease.
MONOTONE_KEYS = ("served_requests", "ticks", "largest_tick",
                 "rejected_requests", "expired_requests")


class TestLatencyHistogram:
    def test_empty_summary(self):
        hist = LatencyHistogram()
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50_s"] == 0.0 and summary["p99_s"] == 0.0

    def test_percentiles_ordered_and_conservative(self):
        hist = LatencyHistogram()
        samples = [0.001, 0.002, 0.004, 0.008, 0.5]
        for s in samples:
            hist.record(s)
        summary = hist.summary()
        assert summary["count"] == len(samples)
        assert summary["p50_s"] <= summary["p99_s"] <= summary["max_s"]
        assert summary["max_s"] == max(samples)
        # conservative: a reported percentile never understates the
        # true one (bucket upper bounds, capped at the observed max)
        assert hist.percentile(0.5) >= 0.002
        assert hist.percentile(0.99) <= max(samples)

    def test_bucket_counts_sum_to_count(self):
        hist = LatencyHistogram()
        for s in (1e-9, 1e-3, 1.0, 500.0):  # below/above the bounds too
            hist.record(s)
        assert sum(hist.bucket_counts) == hist.count == 4

    def test_zero_samples_report_zero(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        assert hist.percentile(0.99) == 0.0


class TestCounterMonotonicity:
    def test_counters_never_decrease_across_workload(self):
        """Drive a mixed workload (serves, rejections, expiries, manual
        flushes) snapshotting stats at every step."""
        batcher = MicroBatcher(_session(), max_batch_size=3,
                               flush_latency=None)
        snapshots = [batcher.stats]

        def step(fn):
            try:
                fn()
            except (ServingError, DeadlineExpired):
                pass
            snapshots.append(batcher.stats)

        X = _requests(m=8)
        for x in X[:4]:
            step(lambda x=x: batcher.submit(x))
        step(lambda: batcher.submit(np.zeros(4)))          # rejected
        step(lambda: batcher.submit(np.ones(3)))           # rejected
        step(lambda: batcher.submit(
            X[4], deadline=time.monotonic() - 1.0))        # will expire
        step(batcher.flush)
        for x in X[5:]:
            step(lambda x=x: batcher.submit(x))
        step(batcher.close)

        for before, after in zip(snapshots, snapshots[1:]):
            for key in MONOTONE_KEYS:
                assert after[key] >= before[key], key
            assert (after["flush_latency"]["count"]
                    >= before["flush_latency"]["count"])

        final = snapshots[-1]
        assert final["served_requests"] == 7
        assert final["rejected_requests"] == 2
        assert final["expired_requests"] == 1
        assert final["queue_depth"] == 0


class TestQueueDepth:
    def test_queue_depth_tracks_pending(self):
        batcher = MicroBatcher(_session(), max_batch_size=64,
                               flush_latency=None)
        X = _requests(m=4)
        for i, x in enumerate(X):
            batcher.submit(x)
            assert batcher.stats["queue_depth"] == i + 1
        assert batcher.stats["pending"] == 4  # back-compat alias
        batcher.flush()
        assert batcher.stats["queue_depth"] == 0


class TestRejections:
    def test_each_invalid_submit_counts_once(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        bad = [np.ones(3), np.array([1.0, np.nan, 0.0, 0.0]), np.zeros(4)]
        for i, x in enumerate(bad):
            with pytest.raises(ServingError):
                batcher.submit(x)
            assert batcher.stats["rejected_requests"] == i + 1
        assert batcher.stats["queue_depth"] == 0

    def test_closed_submit_counts_as_rejection(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        batcher.close()
        with pytest.raises(ServingError):
            batcher.submit(_requests(m=1)[0])
        assert batcher.stats["rejected_requests"] == 1


class TestDeadlines:
    def test_expired_request_dropped_before_the_gemm(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        X = _requests(m=3)
        alive = [batcher.submit(x) for x in X[:2]]
        doomed = batcher.submit(X[2], deadline=time.monotonic() - 0.01)
        assert batcher.flush() == 2  # expired work is not "served"
        with pytest.raises(DeadlineExpired):
            doomed.result(timeout=1.0)
        for future in alive:
            assert future.result(timeout=1.0).shape == (4,)
        stats = batcher.stats
        assert stats["expired_requests"] == 1
        assert stats["served_requests"] == 2
        assert stats["largest_tick"] == 2  # the tick shrank pre-GEMM

    def test_future_deadline_is_served_normally(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        future = batcher.submit(_requests(m=1)[0],
                                deadline=time.monotonic() + 60.0)
        batcher.flush()
        assert future.result(timeout=1.0).shape == (4,)
        assert batcher.stats["expired_requests"] == 0

    def test_oldest_pending_deadline(self):
        batcher = MicroBatcher(_session(), flush_latency=None)
        assert batcher.oldest_pending_deadline is None
        batcher.submit(_requests(m=1)[0])
        assert batcher.oldest_pending_deadline is None
        t1 = time.monotonic() + 5.0
        t2 = time.monotonic() + 1.0
        batcher.submit(_requests(m=1)[0], deadline=t1)
        batcher.submit(_requests(m=1)[0], deadline=t2)
        assert batcher.oldest_pending_deadline == t2
        batcher.flush()
        assert batcher.oldest_pending_deadline is None


class TestFlushHistogram:
    def test_histogram_counts_ticks(self):
        batcher = MicroBatcher(_session(), max_batch_size=2,
                               flush_latency=None)
        for x in _requests(m=6):
            batcher.submit(x)
        stats = batcher.stats
        assert stats["ticks"] == 3
        assert stats["flush_latency"]["count"] == 3
        assert stats["flush_latency"]["max_s"] > 0.0
        assert (stats["flush_latency"]["p50_s"]
                <= stats["flush_latency"]["p99_s"])

    def test_failed_tick_still_recorded(self):
        """A tick that dies in the session call still contributes a
        flush-latency sample — failure time is capacity too."""
        faulty = FaultInjectingSession(_session())
        batcher = MicroBatcher(faulty, flush_latency=None)
        faulty.fail_next(1, RuntimeError("boom"))
        future = batcher.submit(_requests(m=1)[0])
        assert batcher.flush() == 0
        with pytest.raises(RuntimeError):
            future.result(timeout=1.0)
        stats = batcher.stats
        assert stats["flush_latency"]["count"] == 1
        assert stats["served_requests"] == 0
