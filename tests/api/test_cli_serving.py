"""CLI lifecycle tests: train / compress / decompress / serve-bench,
--version and exit-code handling."""

import numpy as np
import pytest

from repro.api import Codec
from repro.data.binary_images import paper_dataset
from repro.experiments.cli import main
from repro.io.results_io import load_results, save_results


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """One 5-iteration trained checkpoint shared across the module."""
    path = tmp_path_factory.mktemp("ckpt") / "model.npz"
    code = main([
        "train", "--checkpoint", str(path), "--iterations", "5",
        "--backend", "fused",
    ])
    assert code == 0
    return path


class TestExitCodes:
    def test_version_flag(self, capsys):
        assert main(["--version"]) == 0
        assert "repro 1." in capsys.readouterr().out

    def test_unknown_subcommand_returns_2_with_usage(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_no_subcommand_returns_2(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_help_returns_0(self, capsys):
        assert main(["--help"]) == 0
        assert "serve-bench" in capsys.readouterr().out

    def test_missing_checkpoint_is_an_error_not_a_traceback(
        self, tmp_path, capsys
    ):
        assert main([
            "compress", "--checkpoint", str(tmp_path / "nope.npz"),
            "--output", str(tmp_path / "codes.json"),
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_input_without_x_key_is_an_error(
        self, checkpoint, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        save_results({"Y": np.ones((2, 16))}, bad)
        assert main([
            "compress", "--checkpoint", str(checkpoint),
            "--input", str(bad), "--output", str(tmp_path / "c.json"),
        ]) == 1
        assert "'X'" in capsys.readouterr().err


class TestTrain:
    def test_train_writes_loadable_checkpoint(self, checkpoint, capsys):
        codec = Codec.load(checkpoint)
        assert codec.spec.iterations == 5
        assert codec.spec.backend == "fused"
        X = paper_dataset().matrix()
        assert codec.decompress(codec.compress(X)).shape == X.shape

    def test_train_archives_summary(self, tmp_path, capsys):
        out = tmp_path / "train.json"
        code = main([
            "train", "--checkpoint", str(tmp_path / "m.npz"),
            "--iterations", "2", "--backend", "fused",
            "--output", str(out),
        ])
        assert code == 0
        results = load_results(out)
        assert "loss_r" in results and "accuracy" in results


class TestCompressDecompress:
    def test_round_trip_through_files(self, checkpoint, tmp_path, capsys):
        codes = tmp_path / "codes.json"
        recon = tmp_path / "recon.json"
        assert main([
            "compress", "--checkpoint", str(checkpoint),
            "--output", str(codes),
        ]) == 0
        payload = load_results(codes)
        assert np.asarray(payload["codes"]).shape[0] == 4
        assert main([
            "decompress", "--checkpoint", str(checkpoint),
            "--codes", str(codes), "--output", str(recon),
        ]) == 0
        x_hat = np.asarray(load_results(recon)["x_hat"])
        codec = Codec.load(checkpoint)
        X = paper_dataset().matrix()
        assert np.array_equal(x_hat, codec.forward(X).x_hat)

    def test_compress_custom_input(self, checkpoint, tmp_path, capsys):
        data = tmp_path / "data.json"
        codes = tmp_path / "codes.json"
        X = np.abs(np.random.default_rng(3).normal(size=(7, 16))) + 0.1
        save_results({"X": X}, data)
        assert main([
            "compress", "--checkpoint", str(checkpoint),
            "--input", str(data), "--output", str(codes),
        ]) == 0
        payload = load_results(codes)
        assert np.asarray(payload["codes"]).shape == (4, 7)

    def test_complex_codes_survive_json(self, tmp_path, capsys):
        ckpt = tmp_path / "complex.npz"
        codes = tmp_path / "codes.json"
        assert main([
            "train", "--checkpoint", str(ckpt), "--iterations", "2",
            "--backend", "fused", "--allow-phase",
        ]) == 0
        assert main([
            "compress", "--checkpoint", str(ckpt), "--output", str(codes),
        ]) == 0
        payload = load_results(codes)
        assert "codes_real" in payload and "codes_imag" in payload
        assert main([
            "decompress", "--checkpoint", str(ckpt), "--codes", str(codes),
        ]) == 0


class TestServeBench:
    def test_serve_bench_runs_and_reports(self, checkpoint, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "serve-bench", "--checkpoint", str(checkpoint),
            "--requests", "16", "--max-batch", "8", "--output", str(out),
        ]) == 0
        results = load_results(out)
        assert results["requests"] == 16
        assert results["ticks"] == 2
        assert results["speedup"] > 0
        assert "req/s" in capsys.readouterr().out
