"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import ImageDataset
from repro.exceptions import DatasetError


@pytest.fixture
def ds(rng):
    return ImageDataset(rng.random((10, 4, 4)), name="test")


class TestConstruction:
    def test_properties(self, ds):
        assert ds.num_samples == 10
        assert ds.image_size == 4
        assert ds.dim == 16
        assert len(ds) == 10

    def test_non_square_rejected(self, rng):
        with pytest.raises(DatasetError, match="square"):
            ImageDataset(rng.random((3, 4, 5)))

    def test_2d_rejected(self, rng):
        with pytest.raises(DatasetError):
            ImageDataset(rng.random((4, 4)))

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            ImageDataset(np.zeros((0, 4, 4)))

    def test_out_of_range_pixels_rejected(self):
        with pytest.raises(DatasetError, match="\\[0, 1\\]"):
            ImageDataset(np.full((1, 2, 2), 1.5))

    def test_nan_rejected(self):
        imgs = np.zeros((1, 2, 2))
        imgs[0, 0, 0] = np.nan
        with pytest.raises(DatasetError, match="NaN"):
            ImageDataset(imgs)

    def test_is_binary(self):
        assert ImageDataset(np.ones((2, 2, 2))).is_binary
        assert not ImageDataset(np.full((2, 2, 2), 0.5)).is_binary


class TestMatrixAndImages:
    def test_matrix_shape(self, ds):
        assert ds.matrix().shape == (10, 16)

    def test_from_matrix_roundtrip(self, ds):
        clone = ImageDataset.from_matrix(ds.matrix())
        assert np.allclose(clone.images, ds.images)

    def test_image_copy(self, ds):
        img = ds.image(0)
        img[0, 0] = 0.123456
        assert ds.images[0, 0, 0] != 0.123456

    def test_image_out_of_range(self, ds):
        with pytest.raises(DatasetError):
            ds.image(10)


class TestStatistics:
    def test_rank_of_rank1_set(self):
        imgs = np.tile(np.eye(2)[None], (5, 1, 1)) * 1.0
        assert ImageDataset(imgs).rank() == 1

    def test_effective_rank_bounds(self, ds):
        r = ds.effective_rank()
        assert 1 <= r <= 16

    def test_effective_rank_full_energy(self, ds):
        assert ds.effective_rank(energy=1.0) <= min(10, 16)

    def test_effective_rank_invalid_energy(self, ds):
        with pytest.raises(DatasetError):
            ds.effective_rank(energy=0.0)

    def test_singular_values_descending(self, ds):
        sv = ds.singular_values()
        assert np.all(np.diff(sv) <= 1e-12)


class TestSplitBatchSubset:
    def test_split_sizes(self, ds):
        train, test = ds.split(train_fraction=0.7, rng=np.random.default_rng(0))
        assert train.num_samples == 7
        assert test.num_samples == 3

    def test_split_partitions_all_samples(self, ds):
        train, test = ds.split(rng=np.random.default_rng(0))
        combined = np.concatenate([train.images, test.images])
        assert sorted(map(tuple, combined.reshape(10, -1).tolist())) == sorted(
            map(tuple, ds.images.reshape(10, -1).tolist())
        )

    def test_split_deterministic_with_seed(self, ds):
        a, _ = ds.split(rng=np.random.default_rng(1))
        b, _ = ds.split(rng=np.random.default_rng(1))
        assert np.allclose(a.images, b.images)

    def test_split_invalid_fraction(self, ds):
        with pytest.raises(DatasetError):
            ds.split(train_fraction=1.0)

    def test_split_needs_two(self):
        single = ImageDataset(np.ones((1, 2, 2)))
        with pytest.raises(DatasetError):
            single.split()

    def test_batches_cover_everything(self, ds):
        chunks = list(ds.batches(3))
        assert [c.shape[0] for c in chunks] == [3, 3, 3, 1]
        assert np.allclose(np.vstack(chunks), ds.matrix())

    def test_batches_invalid_size(self, ds):
        with pytest.raises(DatasetError):
            list(ds.batches(0))

    def test_subset(self, ds):
        sub = ds.subset([0, 2, 4])
        assert sub.num_samples == 3
        assert np.allclose(sub.images[1], ds.images[2])

    def test_subset_out_of_range(self, ds):
        with pytest.raises(DatasetError):
            ds.subset([99])

    def test_subset_empty(self, ds):
        with pytest.raises(DatasetError):
            ds.subset([])
