"""Tests for repro.data.binary_images (the Fig. 4a substitute)."""

import numpy as np
import pytest

from repro.data.binary_images import (
    block_basis,
    paper_dataset,
    random_binary_dataset,
    rank_limited_binary_dataset,
)
from repro.exceptions import DatasetError


class TestBlockBasis:
    def test_disjoint_supports(self):
        bases = block_basis(4, 2)
        overlap = np.sum(bases, axis=0)
        assert np.all(overlap == 1.0)  # every pixel in exactly one block

    def test_count_and_shape(self):
        bases = block_basis(8, 4)
        assert bases.shape == (16, 8, 8)

    def test_invalid_divisibility(self):
        with pytest.raises(DatasetError):
            block_basis(4, 3)

    def test_invalid_size(self):
        with pytest.raises(DatasetError):
            block_basis(1, 1)


class TestPaperDataset:
    def test_paper_parameters(self):
        ds = paper_dataset()
        assert ds.num_samples == 25
        assert ds.image_size == 4
        assert ds.dim == 16

    def test_strictly_binary(self):
        assert paper_dataset().is_binary

    def test_rank_is_exactly_four(self):
        # The property that makes d=4 compression near-lossless (Fig. 4c).
        assert paper_dataset().rank() == 4

    def test_no_all_zero_images(self):
        ds = paper_dataset()
        assert np.all(ds.matrix().sum(axis=1) > 0)

    def test_deterministic(self):
        a = paper_dataset(seed=2024)
        b = paper_dataset(seed=2024)
        assert np.array_equal(a.images, b.images)

    def test_first_fifteen_enumerate_unions(self):
        ds = paper_dataset()
        first15 = ds.matrix()[:15]
        assert len({tuple(row) for row in first15.tolist()}) == 15

    def test_custom_sample_count(self):
        assert paper_dataset(num_samples=10).num_samples == 10

    def test_invalid_rank(self):
        with pytest.raises(DatasetError, match="perfect square"):
            paper_dataset(rank=5)

    def test_invalid_num_samples(self):
        with pytest.raises(DatasetError):
            paper_dataset(num_samples=0)


class TestRandomBinary:
    def test_shape_and_binary(self):
        ds = random_binary_dataset(12, image_size=4, seed=0)
        assert ds.num_samples == 12
        assert ds.is_binary

    def test_no_zero_images_even_at_low_density(self):
        ds = random_binary_dataset(50, image_size=4, density=0.02, seed=1)
        assert np.all(ds.matrix().sum(axis=1) > 0)

    def test_generic_set_is_high_rank(self):
        ds = random_binary_dataset(30, image_size=4, seed=3)
        assert ds.rank() > 10

    def test_invalid_density(self):
        with pytest.raises(DatasetError):
            random_binary_dataset(5, density=0.0)


class TestRankLimited:
    def test_rank_bound_respected(self):
        for r in (2, 4, 8):
            ds = rank_limited_binary_dataset(40, rank=r, seed=0)
            assert ds.rank() <= r

    def test_flips_break_rank(self):
        clean = rank_limited_binary_dataset(40, rank=4, seed=5)
        noisy = rank_limited_binary_dataset(
            40, rank=4, flip_fraction=0.1, seed=5
        )
        assert noisy.rank() > clean.rank()
        assert noisy.is_binary

    def test_no_zero_images_after_flips(self):
        ds = rank_limited_binary_dataset(
            100, rank=2, flip_fraction=0.4, seed=2
        )
        assert np.all(ds.matrix().sum(axis=1) > 0)

    def test_invalid_rank(self):
        with pytest.raises(DatasetError):
            rank_limited_binary_dataset(5, rank=0)
        with pytest.raises(DatasetError):
            rank_limited_binary_dataset(5, rank=17, image_size=4)

    def test_invalid_flip_fraction(self):
        with pytest.raises(DatasetError):
            rank_limited_binary_dataset(5, rank=2, flip_fraction=1.0)
