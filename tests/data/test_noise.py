"""Tests for repro.data.noise."""

import numpy as np
import pytest

from repro.data.noise import add_gaussian_noise, flip_pixels, salt_and_pepper
from repro.exceptions import DatasetError


class TestFlipPixels:
    def test_stays_binary(self, rng):
        imgs = (rng.random((5, 4, 4)) > 0.5).astype(float)
        out = flip_pixels(imgs, 0.3, rng=rng)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_flip_all(self):
        imgs = np.zeros((2, 2, 2))
        out = flip_pixels(imgs, 1.0, rng=np.random.default_rng(0))
        assert np.all(out == 1.0)

    def test_flip_none(self, rng):
        imgs = (rng.random((3, 4, 4)) > 0.5).astype(float)
        assert np.array_equal(flip_pixels(imgs, 0.0, rng=rng), imgs)

    def test_flip_rate_statistics(self):
        imgs = np.zeros((100, 4, 4))
        out = flip_pixels(imgs, 0.25, rng=np.random.default_rng(1))
        assert out.mean() == pytest.approx(0.25, abs=0.03)

    def test_grayscale_rejected(self):
        with pytest.raises(DatasetError, match="binary"):
            flip_pixels(np.full((2, 2, 2), 0.5), 0.1)

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            flip_pixels(np.zeros((1, 2, 2)), 1.5)

    def test_input_not_mutated(self, rng):
        imgs = np.zeros((2, 2, 2))
        flip_pixels(imgs, 0.9, rng=rng)
        assert np.all(imgs == 0.0)


class TestGaussianNoise:
    def test_clipped_to_unit_interval(self, rng):
        out = add_gaussian_noise(np.full((4, 4), 0.5), 10.0, rng=rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unclipped_option(self, rng):
        out = add_gaussian_noise(
            np.zeros((50, 50)), 2.0, rng=rng, clip=False
        )
        assert out.min() < 0.0

    def test_zero_sigma_identity(self, rng):
        x = rng.random((3, 3))
        assert np.allclose(add_gaussian_noise(x, 0.0, rng=rng), x)

    def test_negative_sigma_rejected(self):
        with pytest.raises(DatasetError):
            add_gaussian_noise(np.zeros((2, 2)), -0.1)


class TestSaltAndPepper:
    def test_corrupted_pixels_binary(self, rng):
        x = np.full((10, 10), 0.5)
        out = salt_and_pepper(x, 1.0, rng=rng)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_zero_fraction_identity(self, rng):
        x = rng.random((4, 4))
        assert np.array_equal(salt_and_pepper(x, 0.0, rng=rng), x)

    def test_fraction_statistics(self):
        x = np.full((100, 100), 0.5)
        out = salt_and_pepper(x, 0.3, rng=np.random.default_rng(2))
        corrupted = np.mean(out != 0.5)
        assert corrupted == pytest.approx(0.3, abs=0.03)

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            salt_and_pepper(np.zeros((2, 2)), -0.1)
