"""Tests for repro.data.grayscale."""

import numpy as np
import pytest

from repro.data.grayscale import (
    checkerboard,
    gaussian_blob,
    gradient_image,
    grayscale_dataset,
    stripes,
)
from repro.exceptions import DatasetError


class TestGenerators:
    def test_gradient_range(self):
        img = gradient_image(8)
        assert img.min() == pytest.approx(0.0)
        assert img.max() == pytest.approx(1.0)

    def test_gradient_horizontal_default(self):
        img = gradient_image(4, angle=0.0)
        assert np.allclose(img[0], img[3])  # constant along rows

    def test_gradient_vertical(self):
        img = gradient_image(4, angle=np.pi / 2)
        assert np.allclose(img[:, 0], img[:, 3])

    def test_blob_peak_at_center(self):
        img = gaussian_blob(9, center=(0.5, 0.5))
        assert img.max() == pytest.approx(1.0)
        assert img[4, 4] == img.max()

    def test_blob_invalid_sigma(self):
        with pytest.raises(DatasetError):
            gaussian_blob(8, sigma=0.0)

    def test_checkerboard_alternates(self):
        img = checkerboard(4, cell=1)
        assert img[0, 0] != img[0, 1]
        assert img[0, 0] == img[1, 1]

    def test_checkerboard_cell_size(self):
        img = checkerboard(4, cell=2)
        assert np.all(img[:2, :2] == img[0, 0])

    def test_checkerboard_invalid_cell(self):
        with pytest.raises(DatasetError):
            checkerboard(4, cell=0)

    def test_stripes_range(self):
        img = stripes(8, period=4)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_stripes_orientation(self):
        h = stripes(4, period=2, horizontal=True)
        v = stripes(4, period=2, horizontal=False)
        assert np.allclose(h[0], h[0][0])
        assert np.allclose(v[:, 0], v[0][0])

    def test_size_validation(self):
        with pytest.raises(DatasetError):
            gradient_image(1)


class TestGrayscaleDataset:
    def test_shape_and_range(self):
        ds = grayscale_dataset(num_samples=6, size=8, seed=0)
        assert ds.num_samples == 6
        assert ds.image_size == 8
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0

    def test_not_binary(self):
        assert not grayscale_dataset(8, size=8, seed=1).is_binary

    def test_deterministic(self):
        a = grayscale_dataset(4, seed=7)
        b = grayscale_dataset(4, seed=7)
        assert np.allclose(a.images, b.images)

    def test_encodable(self):
        """No all-zero images (Eq. 1 requires positive norm)."""
        ds = grayscale_dataset(20, size=8, seed=3)
        assert np.all(ds.matrix().sum(axis=1) > 0)

    def test_invalid_count(self):
        with pytest.raises(DatasetError):
            grayscale_dataset(0)
