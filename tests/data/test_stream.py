"""Tests for repro.data.stream — schedule determinism, prefetch, sources."""

import numpy as np
import pytest

from repro.data.binary_images import paper_dataset
from repro.data.stream import MiniBatch, MiniBatchStream, load_data_matrix
from repro.exceptions import DatasetError
from repro.io.results_io import save_results


@pytest.fixture
def matrix(rng):
    return rng.normal(size=(10, 4))


class TestConstruction:
    def test_invalid_batch_size(self, matrix):
        with pytest.raises(DatasetError):
            MiniBatchStream(matrix, 0)

    def test_invalid_axis(self, matrix):
        with pytest.raises(DatasetError):
            MiniBatchStream(matrix, 2, axis=2)

    def test_invalid_prefetch(self, matrix):
        with pytest.raises(DatasetError):
            MiniBatchStream(matrix, 2, prefetch=-1)

    def test_empty_source_rejected(self):
        with pytest.raises(DatasetError):
            MiniBatchStream(np.empty((0, 4)), 2)
        with pytest.raises(DatasetError):
            MiniBatchStream((), 2)

    def test_mismatched_sample_counts_rejected(self, rng):
        with pytest.raises(DatasetError):
            MiniBatchStream(
                (rng.normal(size=(10, 4)), rng.normal(size=(9, 4))), 2
            )

    def test_axis_out_of_range_for_1d(self):
        with pytest.raises(DatasetError):
            MiniBatchStream(np.arange(6.0), 2, axis=1)

    def test_dataset_source(self):
        ds = paper_dataset()
        stream = MiniBatchStream(ds, 5)
        assert stream.num_samples == 25
        assert np.array_equal(stream.materialize(), ds.matrix())


class TestSchedule:
    def test_batches_per_epoch_and_len(self, matrix):
        assert MiniBatchStream(matrix, 4).batches_per_epoch == 3
        assert len(MiniBatchStream(matrix, 5)) == 2
        assert MiniBatchStream(matrix, 4, drop_last=True).batches_per_epoch == 2

    def test_epoch_order_deterministic_per_epoch(self, matrix):
        stream = MiniBatchStream(matrix, 4, seed=3)
        assert np.array_equal(stream.epoch_order(0), stream.epoch_order(0))
        assert not np.array_equal(stream.epoch_order(0), stream.epoch_order(1))
        # Each epoch is a full permutation.
        assert sorted(stream.epoch_order(1).tolist()) == list(range(10))

    def test_shuffle_false_keeps_natural_order(self, matrix):
        stream = MiniBatchStream(matrix, 4, shuffle=False)
        assert np.array_equal(stream.epoch_order(5), np.arange(10))

    def test_schedule_is_pure_function_of_arguments(self, matrix):
        a = MiniBatchStream(matrix, 3, seed=9)
        b = MiniBatchStream(matrix.copy(), 3, seed=9)
        for epoch in range(3):
            for x, y in zip(a.epoch_batches(epoch), b.epoch_batches(epoch)):
                assert np.array_equal(x, y)

    def test_drop_last_drops_ragged_tail(self, matrix):
        batches = MiniBatchStream(matrix, 4, drop_last=True).epoch_batches(0)
        assert [b.size for b in batches] == [4, 4]


class TestIteration:
    def test_gathered_arrays_match_indices(self, matrix):
        stream = MiniBatchStream(matrix, 4, seed=1)
        for mb in stream:
            assert isinstance(mb, MiniBatch)
            assert np.array_equal(mb.data, matrix[mb.indices])
            assert mb.num_samples == mb.indices.size

    def test_axis1_gathers_columns(self, rng):
        data = rng.normal(size=(4, 10))
        targets = rng.normal(size=(4, 10))
        stream = MiniBatchStream((data, targets), 3, axis=1, seed=2)
        for mb in stream.batches(5):
            x, t = mb.arrays
            assert np.array_equal(x, data[:, mb.indices])
            assert np.array_equal(t, targets[:, mb.indices])

    def test_prefetch_matches_synchronous(self, matrix):
        eager = MiniBatchStream(matrix, 3, seed=4, prefetch=0)
        threaded = MiniBatchStream(matrix, 3, seed=4, prefetch=3)
        a = [(mb.epoch, mb.step, mb.indices.tolist()) for mb in
             eager.batches(11)]
        b = [(mb.epoch, mb.step, mb.indices.tolist()) for mb in
             threaded.batches(11)]
        assert a == b

    def test_batches_cross_epochs_with_monotonic_step(self, matrix):
        stream = MiniBatchStream(matrix, 4, seed=5)
        batches = list(stream.batches(7))
        assert [mb.step for mb in batches] == list(range(7))
        assert [mb.epoch for mb in batches] == [0, 0, 0, 1, 1, 1, 2]

    def test_start_epoch_resumes_schedule(self, matrix):
        stream = MiniBatchStream(matrix, 4, seed=6)
        tail = list(stream.batches(3, start_epoch=1))
        full = list(stream.batches(6))
        for resumed, original in zip(tail, full[3:]):
            assert np.array_equal(resumed.indices, original.indices)

    def test_closing_generator_stops_prefetch_thread(self, matrix):
        import threading

        before = threading.active_count()
        gen = MiniBatchStream(matrix, 2, prefetch=2).batches(100)
        next(gen)
        gen.close()
        assert threading.active_count() == before

    def test_producer_error_surfaces_in_consumer(self, matrix):
        stream = MiniBatchStream(matrix, 4, prefetch=2)
        stream.arrays = ("not an array",)  # corrupt post-validation
        with pytest.raises(Exception):
            list(stream.batches(2))


class TestLoadDataMatrix:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_data_matrix(tmp_path / "nope.npy")

    def test_npy_roundtrip_memmapped(self, tmp_path, rng):
        data = rng.normal(size=(6, 3))
        path = tmp_path / "x.npy"
        np.save(path, data)
        loaded = load_data_matrix(path)
        assert isinstance(loaded, np.memmap)
        assert np.array_equal(np.asarray(loaded), data)
        stream = MiniBatchStream(path, 2, seed=0)
        for mb in stream:
            assert np.array_equal(mb.data, data[mb.indices])

    def test_npz_x_entry(self, tmp_path, rng):
        data = rng.normal(size=(4, 4))
        path = tmp_path / "x.npz"
        np.savez(path, X=data, other=np.ones(2))
        assert np.array_equal(load_data_matrix(path), data)

    def test_npz_single_entry(self, tmp_path, rng):
        data = rng.normal(size=(4, 4))
        path = tmp_path / "only.npz"
        np.savez(path, data=data)
        assert np.array_equal(load_data_matrix(path), data)

    def test_npz_ambiguous_rejected(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, a=np.ones(2), b=np.ones(2))
        with pytest.raises(DatasetError):
            load_data_matrix(path)

    def test_results_json(self, tmp_path, rng):
        data = rng.normal(size=(5, 4))
        path = tmp_path / "x.json"
        save_results({"X": data}, path)
        assert np.allclose(load_data_matrix(path), data)

    def test_results_json_without_x_rejected(self, tmp_path):
        path = tmp_path / "nox.json"
        save_results({"Y": np.ones((2, 2))}, path)
        with pytest.raises(DatasetError):
            load_data_matrix(path)
