"""Tests for repro.data.glyphs."""

import numpy as np
import pytest

from repro.data.glyphs import GLYPHS_4X4, GLYPHS_8X8, available_glyphs, glyph
from repro.exceptions import DatasetError


class TestGlyphLibrary:
    def test_all_4x4_glyphs_shape(self):
        for name, img in GLYPHS_4X4.items():
            assert img.shape == (4, 4), name

    def test_all_8x8_glyphs_shape(self):
        for name, img in GLYPHS_8X8.items():
            assert img.shape == (8, 8), name

    def test_all_binary(self):
        for img in GLYPHS_4X4.values():
            assert set(np.unique(img)) <= {0.0, 1.0}

    def test_none_empty(self):
        for name, img in GLYPHS_4X4.items():
            assert img.sum() > 0, name

    def test_available_sorted(self):
        names = available_glyphs(4)
        assert names == sorted(names)
        assert "zero" in names

    def test_available_8(self):
        assert "ring" in available_glyphs(8)

    def test_available_invalid_size(self):
        with pytest.raises(DatasetError):
            available_glyphs(16)


class TestGlyphAccess:
    def test_returns_copy(self):
        a = glyph("zero")
        a[0, 0] = 0.5
        assert GLYPHS_4X4["zero"][0, 0] == 1.0

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown glyph"):
            glyph("nonexistent")

    def test_size_8(self):
        assert glyph("plus", size=8).shape == (8, 8)

    def test_invalid_size(self):
        with pytest.raises(DatasetError):
            glyph("zero", size=5)
