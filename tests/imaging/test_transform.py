"""Tests for repro.imaging.transform."""

import numpy as np
import pytest

from repro.baselines.dct import dct2, zigzag_indices
from repro.exceptions import ImagingError
from repro.imaging import TileTransform


class TestTileTransform:
    @pytest.mark.parametrize("name", ["dct", "pixel"])
    def test_roundtrip(self, rng, name):
        tr = TileTransform(name, 4)
        tiles = rng.random((7, 4, 4))
        back = tr.inverse(tr.forward(tiles))
        assert np.allclose(back, tiles, atol=1e-12)

    def test_forward_shape(self, rng):
        tr = TileTransform("dct", 4)
        assert tr.forward(rng.random((5, 4, 4))).shape == (5, 16)

    def test_dct_matches_baseline_dct2(self, rng):
        """Per-tile coefficients are exactly the baseline's 2-D DCT,
        reordered along the baseline's zig-zag path."""
        tile = rng.random((4, 4))
        coeffs = TileTransform("dct", 4).forward(tile[None])[0]
        ref = dct2(tile)
        zz = zigzag_indices(4)
        assert np.allclose(coeffs, ref[zz[:, 0], zz[:, 1]], atol=1e-12)

    def test_dct_zigzag_dc_first(self):
        tr = TileTransform("dct", 4)
        flat = tr.forward(np.full((1, 4, 4), 0.7))[0]
        assert abs(flat[0]) > 1.0  # DC = 4 * 0.7
        assert np.allclose(flat[1:], 0.0, atol=1e-12)

    def test_pixel_is_identity_flatten(self, rng):
        tiles = rng.random((3, 2, 2))
        out = TileTransform("pixel", 2).forward(tiles)
        assert np.array_equal(out, tiles.reshape(3, 4))

    def test_energy_preserved(self, rng):
        tiles = rng.random((6, 4, 4))
        coeffs = TileTransform("dct", 4).forward(tiles)
        assert np.allclose(
            np.sum(coeffs**2, axis=1), np.sum(tiles**2, axis=(1, 2))
        )

    def test_validation(self, rng):
        with pytest.raises(ImagingError):
            TileTransform("haar", 4)
        with pytest.raises(ImagingError):
            TileTransform("dct", 0)
        tr = TileTransform("dct", 4)
        with pytest.raises(ImagingError):
            tr.forward(rng.random((3, 3, 3)))
        with pytest.raises(ImagingError):
            tr.inverse(rng.random((3, 9)))
