"""Tests for repro.imaging.tiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ImagingError
from repro.imaging import TileGrid, assemble_tiles, split_tiles


class TestTileGrid:
    def test_geometry_non_multiple(self):
        grid = TileGrid(height=37, width=29, tile_size=4)
        assert (grid.rows, grid.cols) == (10, 8)
        assert grid.num_tiles == 80
        assert (grid.padded_height, grid.padded_width) == (40, 32)
        assert grid.num_pixels == 37 * 29  # original, not padded

    def test_geometry_exact_multiple(self):
        grid = TileGrid(height=8, width=12, tile_size=4)
        assert (grid.rows, grid.cols) == (2, 3)
        assert (grid.padded_height, grid.padded_width) == (8, 12)

    def test_dict_roundtrip(self):
        grid = TileGrid(height=5, width=7, tile_size=4, pad_mode="zero")
        assert TileGrid.from_dict(grid.to_dict()) == grid

    def test_validation(self):
        with pytest.raises(ImagingError):
            TileGrid(height=0, width=4, tile_size=4)
        with pytest.raises(ImagingError):
            TileGrid(height=4, width=4, tile_size=0)
        with pytest.raises(ImagingError):
            TileGrid(height=4, width=4, tile_size=4, pad_mode="wrap")


class TestSplitAssemble:
    def test_roundtrip_exact(self, rng):
        image = rng.random((12, 8))
        tiles, grid = split_tiles(image, 4)
        assert tiles.shape == (6, 4, 4)
        assert np.array_equal(assemble_tiles(tiles, grid), image)

    @pytest.mark.parametrize("pad_mode", ["edge", "zero"])
    def test_roundtrip_padded(self, rng, pad_mode):
        image = rng.random((13, 6))
        tiles, grid = split_tiles(image, 4, pad_mode=pad_mode)
        assert tiles.shape == (grid.num_tiles, 4, 4)
        assert np.array_equal(assemble_tiles(tiles, grid), image)

    def test_edge_padding_replicates_border(self):
        image = np.arange(6.0).reshape(2, 3) / 10.0
        tiles, grid = split_tiles(image, 4, pad_mode="edge")
        padded = tiles.reshape(1, 1, 4, 4)[0, 0]
        assert padded[3, 0] == image[1, 0]  # bottom rows replicate
        assert padded[0, 3] == image[0, 2]  # right cols replicate

    def test_zero_padding_is_zero(self):
        image = np.ones((2, 3))
        tiles, _ = split_tiles(image, 4, pad_mode="zero")
        assert tiles[0, 3, :].sum() == 0.0
        assert tiles[0, :, 3].sum() == 0.0

    def test_tile_ordering_row_major(self):
        # Tile (r, c) must land at index r * cols + c.
        image = np.zeros((8, 8))
        image[4:, :4] = 1.0  # tile (1, 0)
        tiles, grid = split_tiles(image, 4)
        assert grid.cols == 2
        assert tiles[2].sum() == 16.0
        assert tiles[0].sum() == tiles[1].sum() == tiles[3].sum() == 0.0

    def test_single_pixel_image(self):
        tiles, grid = split_tiles(np.array([[0.5]]), 4)
        assert tiles.shape == (1, 4, 4)
        out = assemble_tiles(tiles, grid)
        assert out.shape == (1, 1) and out[0, 0] == 0.5

    def test_wrong_shape_rejected(self, rng):
        tiles, grid = split_tiles(rng.random((8, 8)), 4)
        with pytest.raises(ImagingError):
            grid.assemble(tiles[:-1])
        with pytest.raises(ImagingError):
            split_tiles(rng.random(8), 4)

    @given(
        h=st.integers(1, 23),
        w=st.integers(1, 23),
        t=st.integers(1, 6),
        pad=st.sampled_from(["edge", "zero"]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, h, w, t, pad, seed):
        image = np.random.default_rng(seed).random((h, w))
        tiles, grid = split_tiles(image, t, pad_mode=pad)
        assert np.array_equal(assemble_tiles(tiles, grid), image)
