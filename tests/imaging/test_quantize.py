"""Tests for repro.imaging.quantize."""

import numpy as np
import pytest

from repro.exceptions import ImagingError
from repro.imaging import QuantizationTable, uniform_code_step


class TestQuantizationTable:
    def test_quantize_dequantize_bounded_error(self, rng):
        table = QuantizationTable.jpeg_like(4, 75)
        coeffs = rng.normal(size=(10, 16))
        levels = table.quantize(coeffs)
        assert levels.dtype == np.int32
        back = table.dequantize(levels)
        # Rounding to the nearest level bounds the error by step / 2.
        assert np.all(
            np.abs(back - coeffs) <= table.steps.astype(np.float64) / 2
            + 1e-12
        )

    def test_steps_float32_readonly(self):
        table = QuantizationTable.jpeg_like(4, 50)
        assert table.steps.dtype == np.float32
        with pytest.raises(ValueError):
            table.steps[0] = 1.0

    def test_quality_monotonic_rate(self, rng):
        coeffs = rng.normal(size=(20, 16))
        mass = [
            np.abs(QuantizationTable.jpeg_like(4, q).quantize(coeffs)).sum()
            for q in (10, 50, 90)
        ]
        assert mass[0] < mass[1] < mass[2]

    def test_frequency_ramp(self):
        steps = QuantizationTable.jpeg_like(8, 75).steps
        assert steps[0] == steps.min()  # DC is the finest
        assert steps[-1] == steps.max()

    def test_uniform_factory(self):
        table = QuantizationTable.uniform(9, 0.25)
        assert np.all(table.steps == np.float32(0.25))
        levels = table.quantize(np.full((1, 9), 0.5))
        assert np.all(levels == 2)

    def test_dequantize_exact_float32_contract(self):
        """Encoder and decoder must dequantize bit-identically from the
        wire's float32 steps."""
        table = QuantizationTable.jpeg_like(4, 37)
        wire = QuantizationTable(
            steps=np.asarray(table.steps, dtype=np.float32),
            quality=table.quality,
        )
        levels = np.arange(-8, 8, dtype=np.int32).reshape(1, 16)
        assert np.array_equal(
            table.dequantize(levels), wire.dequantize(levels)
        )

    def test_validation(self):
        with pytest.raises(ImagingError):
            QuantizationTable.jpeg_like(4, 0)
        with pytest.raises(ImagingError):
            QuantizationTable.jpeg_like(4, 101)
        with pytest.raises(ImagingError):
            QuantizationTable.jpeg_like(0, 50)
        with pytest.raises(ImagingError):
            QuantizationTable.uniform(4, 0.0)
        with pytest.raises(ImagingError):
            QuantizationTable(
                steps=np.zeros(4, dtype=np.float32), quality=50
            )
        table = QuantizationTable.uniform(4, 0.5)
        with pytest.raises(ImagingError):
            table.quantize(np.zeros((2, 5)))


class TestUniformCodeStep:
    def test_values(self):
        assert uniform_code_step(8) == 2.0**-7
        assert uniform_code_step(2) == 0.5

    def test_code_range_fits(self):
        # Amplitudes are in [-1, 1]; 1/step must fit signed code_bits.
        for bits in (2, 8, 16):
            assert 1.0 / uniform_code_step(bits) <= 2 ** (bits - 1)

    def test_validation(self):
        with pytest.raises(ImagingError):
            uniform_code_step(1)
        with pytest.raises(ImagingError):
            uniform_code_step(17)
