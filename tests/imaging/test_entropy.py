"""Tests for repro.imaging.entropy — varints, rANS, the byte codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ImagingError
from repro.imaging.entropy import (
    PROB_SCALE,
    compress_bytes,
    decode_varints,
    decompress_bytes,
    decompress_bytes_from,
    encode_varints,
    fold_signed,
    normalize_counts,
    rans_decode,
    rans_encode,
    unfold_signed,
)


class TestSignedFold:
    def test_known_values(self):
        values = np.array([0, -1, 1, -2, 2, -3])
        assert fold_signed(values).tolist() == [0, 1, 2, 3, 4, 5]

    def test_roundtrip_extremes(self):
        values = np.array([0, 1, -1, 2**30, -(2**30)], dtype=np.int64)
        assert np.array_equal(unfold_signed(fold_signed(values)), values)

    @given(st.lists(st.integers(-(2**31) + 1, 2**31 - 1), max_size=64))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(unfold_signed(fold_signed(arr)), arr)


class TestVarints:
    def test_single_byte_values(self):
        data = encode_varints(np.array([0, 1, 127]))
        assert data == bytes([0, 1, 127])

    def test_multi_byte_boundary(self):
        data = encode_varints(np.array([128]))
        assert data == bytes([0x80, 0x01])  # LEB128

    def test_roundtrip(self, rng):
        values = rng.integers(0, 2**40, size=200).astype(np.uint64)
        data = encode_varints(values)
        decoded, consumed = decode_varints(data, 200)
        assert consumed == len(data)
        assert np.array_equal(decoded, values)

    def test_empty(self):
        assert encode_varints(np.array([], dtype=np.uint64)) == b""
        decoded, consumed = decode_varints(b"", 0)
        assert decoded.size == 0 and consumed == 0

    def test_truncated_rejected(self):
        data = encode_varints(np.array([300, 300]))
        with pytest.raises(ImagingError):
            decode_varints(data[:-1], 2)

    @given(st.lists(st.integers(0, 2**62), max_size=100))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        decoded, consumed = decode_varints(encode_varints(arr), len(values))
        assert np.array_equal(decoded, arr)


class TestRans:
    def test_roundtrip_skewed(self, rng):
        data = bytes(rng.choice([0, 0, 0, 0, 1, 2, 7], size=5000))
        counts = normalize_counts(
            np.bincount(np.frombuffer(data, np.uint8), minlength=256)
        )
        blob = rans_encode(data, counts)
        assert rans_decode(blob, counts, len(data)) == data
        assert len(blob) < len(data)  # skewed input actually compresses

    def test_roundtrip_all_bytes(self, rng):
        data = bytes(rng.integers(0, 256, size=4096, dtype=np.uint64))
        counts = normalize_counts(
            np.bincount(np.frombuffer(data, np.uint8), minlength=256)
        )
        assert rans_decode(rans_encode(data, counts), counts, len(data)) \
            == data

    def test_normalize_counts_sums_to_scale(self, rng):
        hist = np.bincount(rng.integers(0, 5, size=100), minlength=256)
        counts = normalize_counts(hist)
        assert counts.sum() == PROB_SCALE
        assert np.all(counts[hist > 0] >= 1)
        assert np.all(counts[hist == 0] == 0)

    def test_corrupt_blob_rejected(self, rng):
        data = bytes(rng.choice([3, 5], size=256))
        counts = normalize_counts(
            np.bincount(np.frombuffer(data, np.uint8), minlength=256)
        )
        blob = bytearray(rans_encode(data, counts))
        blob[0] ^= 0xFF  # smash the final-state bytes
        with pytest.raises(ImagingError):
            rans_decode(bytes(blob), counts, len(data))


class TestCompressBytes:
    @pytest.mark.parametrize(
        "data",
        [b"", b"\x00", b"abc", b"\x00" * 1000, bytes(range(256)) * 4],
    )
    def test_roundtrip_fixed(self, data):
        assert decompress_bytes(compress_bytes(data)) == data

    def test_roundtrip_random(self, rng):
        data = bytes(rng.integers(0, 256, size=3000, dtype=np.uint64))
        assert decompress_bytes(compress_bytes(data)) == data

    def test_skewed_compresses(self, rng):
        data = bytes(rng.choice([0] * 9 + [1], size=10_000))
        assert len(compress_bytes(data)) < len(data) // 2

    def test_offset_reader_consumes_exactly(self):
        blob = compress_bytes(b"hello") + b"trailing"
        data, offset = decompress_bytes_from(
            b"XX" + compress_bytes(b"hello") + b"trailing", 2
        )
        assert data == b"hello"
        assert offset == 2 + len(compress_bytes(b"hello"))
        assert blob  # silence unused warning

    def test_truncated_rejected(self):
        blob = compress_bytes(b"some payload bytes")
        with pytest.raises(ImagingError):
            decompress_bytes(blob[:-2])

    @given(st.binary(max_size=2048))
    @settings(max_examples=60)
    def test_roundtrip_property(self, data):
        assert decompress_bytes(compress_bytes(data)) == data
