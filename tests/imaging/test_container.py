"""Tests for repro.imaging.container — wire format v2 bit-exactness."""

import numpy as np
import pytest

from repro.exceptions import ImagingError
from repro.imaging import (
    CompressedImage,
    QuantizationTable,
    TileGrid,
)
from repro.imaging.container import MAGIC, VERSION


def _transform_blob(rng, h=11, w=7, t=4):
    grid = TileGrid(height=h, width=w, tile_size=t)
    n = t * t
    return CompressedImage(
        grid=grid,
        transform="dct",
        table=QuantizationTable.jpeg_like(t, 60),
        mode="transform",
        levels=rng.integers(-300, 300, size=(grid.num_tiles, n)).astype(
            np.int32
        ),
    )


def _quantum_blob(rng, h=11, w=7, t=4, d=4):
    grid = TileGrid(height=h, width=w, tile_size=t, pad_mode="zero")
    n, m = t * t, TileGrid(height=h, width=w, tile_size=t).num_tiles
    return CompressedImage(
        grid=grid,
        transform="dct",
        table=QuantizationTable.jpeg_like(t, 85),
        mode="quantum",
        codes=rng.integers(-127, 128, size=(d, m)).astype(np.int32),
        signs=rng.random((m, n)) < 0.3,
        norms=np.abs(rng.normal(size=m)).astype(np.float32),
        code_bits=8,
    )


class TestRoundTrip:
    def test_transform_bit_exact(self, rng):
        blob = _transform_blob(rng)
        back = CompressedImage.from_bytes(blob.to_bytes())
        assert back == blob
        assert np.array_equal(back.levels, blob.levels)
        assert np.array_equal(back.table.steps, blob.table.steps)

    def test_quantum_bit_exact(self, rng):
        blob = _quantum_blob(rng)
        back = CompressedImage.from_bytes(blob.to_bytes())
        assert back == blob
        assert np.array_equal(back.codes, blob.codes)
        assert np.array_equal(back.signs, blob.signs)
        assert np.array_equal(back.norms, blob.norms)
        assert back.code_bits == 8
        assert back.grid.pad_mode == "zero"

    def test_serialization_deterministic(self, rng):
        blob = _transform_blob(rng)
        fresh = CompressedImage.from_bytes(blob.to_bytes())
        assert fresh.to_bytes() == blob.to_bytes()

    def test_non_byte_aligned_sign_plane(self, rng):
        # T=3: 9 signs per tile exercise the packbits row padding.
        blob = _quantum_blob(rng, h=7, w=5, t=3, d=2)
        assert CompressedImage.from_bytes(blob.to_bytes()) == blob

    def test_magic_and_version(self, rng):
        data = _transform_blob(rng).to_bytes()
        assert data[:5] == MAGIC
        assert data[5] == VERSION

    def test_bits_per_pixel_counts_original_pixels(self, rng):
        blob = _transform_blob(rng, h=11, w=7)
        assert blob.bits_per_pixel() == pytest.approx(
            8.0 * blob.num_bytes() / (11 * 7)
        )


class TestMalformed:
    def test_bad_magic(self, rng):
        data = bytearray(_transform_blob(rng).to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(ImagingError, match="magic"):
            CompressedImage.from_bytes(bytes(data))

    def test_bad_version(self, rng):
        data = bytearray(_transform_blob(rng).to_bytes())
        data[5] = 99
        with pytest.raises(ImagingError, match="version"):
            CompressedImage.from_bytes(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(ImagingError, match="truncated"):
            CompressedImage.from_bytes(b"RIMG2\x02")

    def test_truncated_payload(self, rng):
        data = _transform_blob(rng).to_bytes()
        with pytest.raises(ImagingError):
            CompressedImage.from_bytes(data[:-3])

    def test_trailing_bytes_rejected(self, rng):
        data = _transform_blob(rng).to_bytes() + b"xx"
        with pytest.raises(ImagingError, match="trailing"):
            CompressedImage.from_bytes(data)

    def test_enum_out_of_range(self, rng):
        data = bytearray(_transform_blob(rng).to_bytes())
        data[6] = 7  # mode byte
        with pytest.raises(ImagingError, match="enum"):
            CompressedImage.from_bytes(bytes(data))


class TestConstruction:
    def test_transform_mode_plane_contract(self, rng):
        grid = TileGrid(height=8, width=8, tile_size=4)
        table = QuantizationTable.jpeg_like(4, 50)
        with pytest.raises(ImagingError):
            CompressedImage(grid, "dct", table, "transform")  # no levels
        with pytest.raises(ImagingError):
            CompressedImage(
                grid, "dct", table, "transform",
                levels=np.zeros((3, 16), dtype=np.int32),  # wrong M
            )

    def test_quantum_mode_plane_contract(self, rng):
        grid = TileGrid(height=8, width=8, tile_size=4)
        table = QuantizationTable.jpeg_like(4, 50)
        m = grid.num_tiles
        codes = np.zeros((4, m), dtype=np.int32)
        signs = np.zeros((m, 16), dtype=bool)
        norms = np.ones(m, dtype=np.float32)
        with pytest.raises(ImagingError):
            CompressedImage(grid, "dct", table, "quantum", codes=codes)
        with pytest.raises(ImagingError):
            CompressedImage(
                grid, "dct", table, "quantum",
                codes=codes, signs=signs, norms=norms, code_bits=1,
            )
        blob = CompressedImage(
            grid, "dct", table, "quantum",
            codes=codes, signs=signs, norms=norms, code_bits=8,
        )
        assert blob.compressed_dim == 4

    def test_table_size_must_match_tiles(self, rng):
        grid = TileGrid(height=8, width=8, tile_size=4)
        with pytest.raises(ImagingError):
            CompressedImage(
                grid, "dct", QuantizationTable.jpeg_like(3, 50),
                "transform",
                levels=np.zeros((grid.num_tiles, 16), dtype=np.int32),
            )

    def test_equality(self, rng):
        a = _transform_blob(rng)
        b = CompressedImage.from_bytes(a.to_bytes())
        assert a == b
        c = _quantum_blob(rng)
        assert a != c
        assert a != "not a container"
