"""CLI tests: repro compress-image / decompress-image on PGM files."""

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main
from repro.imaging import CompressedImage
from repro.io.image_io import read_pgm, write_pgm

FIXTURE = (
    Path(__file__).resolve().parents[1] / "io" / "data" / "sample.pgm"
)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("ckpt") / "model.npz"
    assert main([
        "train", "--checkpoint", str(path), "--iterations", "5",
        "--backend", "fused",
    ]) == 0
    return path


@pytest.fixture()
def pgm(tmp_path):
    rng = np.random.default_rng(11)
    yy = np.linspace(0, 1, 18)[:, None] * np.ones((1, 13))
    image = np.clip(yy + 0.1 * rng.random((18, 13)), 0.0, 1.0)
    path = tmp_path / "in.pgm"
    write_pgm(image, path)
    return path


class TestParser:
    def test_compress_image_args(self):
        args = build_parser().parse_args([
            "compress-image", "--input", "a.pgm", "--output", "a.rimg",
            "--quality", "40", "--tile-size", "8", "--transform",
            "pixel", "--pad", "zero", "--code-bits", "10",
        ])
        assert args.quality == 40 and args.tile_size == 8
        assert args.transform == "pixel" and args.pad == "zero"
        assert args.code_bits == 10 and args.checkpoint is None

    def test_decompress_image_args(self):
        args = build_parser().parse_args([
            "decompress-image", "--input", "a.rimg", "--output",
            "a.pgm", "--reference", "ref.pgm", "--binary",
        ])
        assert args.reference == "ref.pgm" and args.binary

    def test_bad_transform_rejected(self, capsys):
        assert main([
            "compress-image", "--input", "a.pgm", "--output", "a.rimg",
            "--transform", "haar",
        ]) == 2
        assert "invalid choice" in capsys.readouterr().err


class TestClassicalCLI:
    def test_roundtrip_with_psnr(self, tmp_path, pgm, capsys):
        blob_path = tmp_path / "img.rimg"
        assert main([
            "compress-image", "--input", str(pgm), "--output",
            str(blob_path), "--quality", "90",
        ]) == 0
        out = capsys.readouterr().out
        assert "transform mode" in out and "bpp" in out
        blob = CompressedImage.from_bytes(blob_path.read_bytes())
        assert blob.grid.height == 18 and blob.grid.width == 13

        out_path = tmp_path / "out.pgm"
        assert main([
            "decompress-image", "--input", str(blob_path), "--output",
            str(out_path), "--reference", str(pgm),
        ]) == 0
        printed = capsys.readouterr().out
        assert "PSNR" in printed
        assert read_pgm(out_path).shape == (18, 13)

    def test_binary_output(self, tmp_path, pgm):
        blob_path, out_path = tmp_path / "i.rimg", tmp_path / "o.pgm"
        assert main([
            "compress-image", "--input", str(pgm), "--output",
            str(blob_path),
        ]) == 0
        assert main([
            "decompress-image", "--input", str(blob_path), "--output",
            str(out_path), "--binary",
        ]) == 0
        assert out_path.read_bytes()[:2] == b"P5"

    def test_committed_fixture_roundtrips(self, tmp_path, capsys):
        """The CI smoke's committed PGM fixture must stay decodable."""
        blob_path = tmp_path / "s.rimg"
        out_path = tmp_path / "s.pgm"
        assert main([
            "compress-image", "--input", str(FIXTURE), "--output",
            str(blob_path), "--quality", "60",
        ]) == 0
        assert main([
            "decompress-image", "--input", str(blob_path), "--output",
            str(out_path), "--reference", str(FIXTURE),
        ]) == 0
        out = capsys.readouterr().out
        psnr_db = float(out.rsplit(": ", 1)[1].split(" dB")[0])
        assert psnr_db > 30.0


class TestQuantumCLI:
    def test_roundtrip(self, tmp_path, pgm, checkpoint, capsys):
        blob_path, out_path = tmp_path / "q.rimg", tmp_path / "q.pgm"
        assert main([
            "compress-image", "--input", str(pgm), "--output",
            str(blob_path), "--checkpoint", str(checkpoint),
        ]) == 0
        assert "quantum mode" in capsys.readouterr().out
        blob = CompressedImage.from_bytes(blob_path.read_bytes())
        assert blob.mode == "quantum" and blob.compressed_dim == 4
        assert main([
            "decompress-image", "--input", str(blob_path), "--output",
            str(out_path), "--checkpoint", str(checkpoint),
        ]) == 0
        assert read_pgm(out_path).shape == (18, 13)

    def test_quantum_blob_without_checkpoint_fails(
        self, tmp_path, pgm, checkpoint, capsys
    ):
        blob_path = tmp_path / "q.rimg"
        assert main([
            "compress-image", "--input", str(pgm), "--output",
            str(blob_path), "--checkpoint", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        assert main([
            "decompress-image", "--input", str(blob_path), "--output",
            str(tmp_path / "x.pgm"),
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_input_is_operator_error(self, tmp_path, capsys):
        assert main([
            "compress-image", "--input", str(tmp_path / "nope.pgm"),
            "--output", str(tmp_path / "x.rimg"),
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_garbage_container_is_operator_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.rimg"
        bad.write_bytes(b"definitely not a wire-format-v2 container")
        assert main([
            "decompress-image", "--input", str(bad), "--output",
            str(tmp_path / "x.pgm"),
        ]) == 1
        assert "magic" in capsys.readouterr().err
