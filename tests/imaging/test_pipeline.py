"""Tests for repro.imaging.pipeline — the end-to-end image path."""

import numpy as np
import pytest

from repro.exceptions import ImagingError
from repro.imaging import (
    CompressedImage,
    QuantizationTable,
    compress_image,
    decompress_image,
    tile_magnitudes,
)
from repro.training.metrics import psnr


def _scene(h=37, w=29, seed=0):
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij"
    )
    return np.clip(
        0.6 * yy + 0.3 * np.sin(6 * xx) ** 2 + 0.05 * rng.random((h, w)),
        0.0,
        1.0,
    )


@pytest.fixture(scope="module")
def codec16():
    """A quickly-fitted dim=16 codec shared by the quantum-mode tests."""
    from repro.api import Codec, CodecSpec

    prep = tile_magnitudes(_scene(32, 32, seed=3), tile_size=4)
    X = prep.magnitudes / np.linalg.norm(
        prep.magnitudes, axis=1, keepdims=True
    )
    spec = CodecSpec(iterations=30, backend="fused", seed=7)
    return Codec(spec).fit(X)


class TestTileMagnitudes:
    def test_shapes(self):
        prep = tile_magnitudes(_scene(), tile_size=4)
        m = prep.grid.num_tiles
        assert prep.levels.shape == (m, 16)
        assert prep.magnitudes.shape == (m, 16)
        assert prep.signs.shape == (m, 16)
        assert prep.zero_tiles.shape == (m,)
        assert np.all(prep.magnitudes >= 0.0)

    def test_zero_tiles_get_placeholder(self):
        prep = tile_magnitudes(np.zeros((8, 8)), tile_size=4)
        assert np.all(prep.zero_tiles)
        # The placeholder keeps every codec input encodable (Eq. 1).
        assert np.all(np.linalg.norm(prep.magnitudes, axis=1) > 0)

    def test_rejects_bad_images(self):
        with pytest.raises(ImagingError):
            tile_magnitudes(np.ones((2, 2)) * 1.5)
        with pytest.raises(ImagingError):
            tile_magnitudes(np.full((2, 2), np.nan))
        with pytest.raises(ImagingError):
            tile_magnitudes(np.ones(4))


class TestClassicalPath:
    def test_roundtrip_non_multiple_dims(self):
        image = _scene(37, 29)
        blob = compress_image(image, quality=85)
        out = decompress_image(blob)
        assert out.shape == image.shape
        assert psnr(out, image) > 40.0

    def test_container_survives_the_wire(self):
        blob = compress_image(_scene(), quality=60)
        back = CompressedImage.from_bytes(blob.to_bytes())
        assert back == blob
        assert np.array_equal(decompress_image(back), decompress_image(blob))

    def test_quality_is_a_rate_knob(self):
        image = _scene()
        low = compress_image(image, quality=20)
        high = compress_image(image, quality=90)
        assert low.bits_per_pixel() < high.bits_per_pixel()
        assert psnr(decompress_image(low), image) < psnr(
            decompress_image(high), image
        )

    def test_all_zero_image(self):
        blob = compress_image(np.zeros((10, 6)))
        assert np.array_equal(decompress_image(blob), np.zeros((10, 6)))

    def test_pixel_transform_roundtrip(self):
        image = _scene(9, 5)
        blob = compress_image(image, transform="pixel", quality=95)
        out = decompress_image(blob)
        assert psnr(out, image) > 35.0

    def test_explicit_table_overrides_quality(self):
        image = _scene(8, 8)
        table = QuantizationTable.uniform(16, 1e-4)
        blob = compress_image(image, table=table)
        assert psnr(decompress_image(blob), image) > 70.0

    @pytest.mark.parametrize("shape", [(1, 1), (3, 17), (16, 16), (5, 40)])
    def test_arbitrary_shapes(self, shape):
        image = _scene(*shape)
        out = decompress_image(compress_image(image, quality=90))
        assert out.shape == shape


class TestQuantumPath:
    def test_roundtrip(self, codec16):
        image = _scene()
        blob = compress_image(image, codec16, quality=85)
        assert blob.mode == "quantum"
        assert blob.codes.shape == (4, blob.num_tiles)
        out = decompress_image(blob, codec16)
        assert out.shape == image.shape
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_wire_roundtrip_bit_exact(self, codec16):
        blob = compress_image(_scene(), codec16)
        back = CompressedImage.from_bytes(blob.to_bytes())
        assert back == blob
        assert np.array_equal(
            decompress_image(back, codec16),
            decompress_image(blob, codec16),
        )

    def test_zero_tiles_bypass_codec(self, codec16):
        image = np.zeros((8, 8))
        image[0, 0] = 0.5
        blob = compress_image(image, codec16)
        assert blob.norms[1:].max() == 0.0  # tiles 1-3 are all-zero
        out = decompress_image(blob, codec16)
        assert np.array_equal(out[4:, 4:], np.zeros((4, 4)))

    def test_all_zero_image_quantum(self, codec16):
        blob = compress_image(np.zeros((8, 8)), codec16)
        assert np.all(blob.norms == 0.0)
        assert np.array_equal(
            decompress_image(blob, codec16), np.zeros((8, 8))
        )

    def test_signs_restored(self, codec16):
        """Eq. 2 observes magnitudes only; the sign plane must restore
        negative DCT coefficients through the full pipeline."""
        image = _scene()
        prep = tile_magnitudes(image, tile_size=4, quality=85)
        assert prep.signs.any()  # the scene has negative AC coefficients
        blob = compress_image(image, codec16, quality=85)
        assert np.array_equal(blob.signs, prep.signs)

    def test_dim_mismatch_rejected(self, codec16):
        with pytest.raises(ImagingError, match="tile_size"):
            compress_image(_scene(), codec16, tile_size=3)

    def test_decompress_needs_codec(self, codec16):
        blob = compress_image(_scene(), codec16)
        with pytest.raises(ImagingError, match="codec"):
            decompress_image(blob)

    def test_decompress_wrong_codec_rejected(self, codec16):
        from repro.api import Codec, CodecSpec

        blob = compress_image(_scene(), codec16)
        other = Codec(CodecSpec(compressed_dim=2, iterations=1))
        with pytest.raises(ImagingError, match="compressed_dim"):
            decompress_image(blob, other)

    def test_code_bits_rate_tradeoff(self, codec16):
        image = _scene()
        narrow = compress_image(image, codec16, code_bits=4)
        wide = compress_image(image, codec16, code_bits=12)
        assert narrow.num_bytes() < wide.num_bytes()

    def test_tile_size_inferred_from_codec(self, codec16):
        blob = compress_image(_scene(), codec16)  # no tile_size given
        assert blob.grid.tile_size == 4

    def test_not_a_container_rejected(self):
        with pytest.raises(ImagingError):
            decompress_image(b"junk")


class TestPoolFanOut:
    def test_session_fanout_matches_single_process(self, codec16):
        """A pool-attached session must produce the same codes as the
        in-process path to 1e-10 (compared pre-quantization, where a
        level flip at a rounding boundary cannot amplify the diff)."""
        from repro.parallel.pool import WorkerPool

        image = _scene(64, 64, seed=5)
        prep = tile_magnitudes(image, tile_size=4, quality=85)
        single = codec16.compress(prep.magnitudes).codes
        with WorkerPool(processes=2) as pool:
            session = codec16.session(
                flush_latency=None, chunk_size=16, pool=pool
            )
            try:
                scattered = session.compress(prep.magnitudes).codes
            finally:
                session.close()
        assert scattered.shape == single.shape
        assert np.max(np.abs(scattered - single)) <= 1e-10

    def test_session_end_to_end_container(self, codec16):
        """compress_image accepts a pool-attached session as the codec."""
        from repro.parallel.pool import WorkerPool

        image = _scene(48, 40, seed=6)
        with WorkerPool(processes=2) as pool:
            session = codec16.session(
                flush_latency=None, chunk_size=16, pool=pool
            )
            try:
                via_session = compress_image(image, session, quality=85)
            finally:
                session.close()
        via_codec = compress_image(image, codec16, quality=85)
        assert via_session.grid == via_codec.grid
        assert np.array_equal(via_session.signs, via_codec.signs)
        # Codes agree to the quantizer's resolution (float fan-out is
        # 1e-10-close; a boundary-straddling level may differ by one).
        assert np.max(np.abs(
            via_session.codes - via_codec.codes
        )) <= 1


class TestLoadgenPayload:
    def test_image_pool_is_codec_ready(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[2] / "tools")
        )
        try:
            from loadgen import build_request_pool
        finally:
            sys.path.pop(0)
        pool = build_request_pool("image", 16, seed=7)
        assert pool.shape == (256, 16)
        assert np.all(pool >= 0.0)
        assert np.linalg.norm(pool, axis=1).min() > 0.0  # encodable
        again = build_request_pool("image", 16, seed=7)
        assert np.array_equal(pool, again)  # deterministic
        with pytest.raises(ValueError):
            build_request_pool("image", 10, seed=7)
        with pytest.raises(ValueError):
            build_request_pool("nope", 16, seed=7)
