"""Fault injection: the server must stay serviceable through failures.

Each test drives one production failure mode — a misbehaving client, a
backend tick that dies or stalls, a worker pool torn down under load —
and asserts the same invariant: the front-end answers what it can,
counts what it cannot, and keeps serving everyone else.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.api import Codec
from repro.exceptions import DeadlineExpired
from repro.parallel.pool import WorkerPool
from repro.serving import (
    FaultInjectingSession,
    ServerError,
    ServerHarness,
    ServingClient,
    fetch_json,
)
from repro.serving import protocol
from repro.serving.protocol import ErrorCode, Frame, FrameType
from repro.serving.testing import garbage_frame_bytes, truncated_frame_bytes


def _codec(seed=13):
    return Codec(dim=8, compressed_dim=2, compression_layers=3,
                 reconstruction_layers=3, seed=seed)


def _x(seed=2):
    return np.abs(np.random.default_rng(seed).normal(size=8)) + 0.1


@pytest.fixture()
def served():
    codec = _codec()
    session = codec.session(flush_latency=None)
    faulty = FaultInjectingSession(session)
    with ServerHarness(faulty) as harness:
        yield harness, faulty
    session.close()


class TestClientFaults:
    def test_slow_client_does_not_block_others(self, served):
        """A connection dribbling half a frame must not stall anyone."""
        harness, _ = served
        slow = socket.create_connection((harness.host, harness.port),
                                        timeout=10.0)
        try:
            slow.sendall(truncated_frame_bytes(12))  # ...and goes quiet
            with ServingClient(harness.host, harness.port) as client:
                assert client.ping()
                out = client.reconstruct(_x())
                assert out.shape == (8,)
        finally:
            slow.close()
        # the half-frame connection dying is not a protocol violation
        # the server charges anyone for
        with ServingClient(harness.host, harness.port) as client:
            assert client.ping()

    def test_disconnect_mid_request_keeps_serving(self, served):
        """A client that sends a request and vanishes before the answer
        costs the server nothing but a dropped response."""
        harness, faulty = served
        faulty.delay_next(1, 0.2)
        ghost = socket.create_connection((harness.host, harness.port),
                                         timeout=10.0)
        ghost.sendall(protocol.encode_frame(Frame(
            type=FrameType.RECONSTRUCT, req_id=1,
            payload=protocol.encode_arrays([_x()]),
        )))
        time.sleep(0.05)  # admitted; its tick is stalling
        ghost.close()
        with ServingClient(harness.host, harness.port) as client:
            assert client.reconstruct(_x()).shape == (8,)
        stats = fetch_json(harness.host, harness.port, "/stats")
        assert stats["server"]["accepted"] >= 2
        assert stats["server"]["inflight"] == 0

    def test_malformed_frame_answered_once_then_closed(self, served):
        """Garbage bytes get one 400 and a hangup — a byte stream with a
        corrupt length prefix cannot be resynchronised."""
        harness, _ = served
        with socket.create_connection(
            (harness.host, harness.port), timeout=10.0
        ) as sock:
            sock.sendall(garbage_frame_bytes(24))
            stream = sock.makefile("rb")
            reply = protocol.read_frame(stream)
            assert reply.type == FrameType.ERROR
            assert reply.error()[0] == ErrorCode.BAD_REQUEST
            assert stream.read(1) == b""  # server hung up
        stats = fetch_json(harness.host, harness.port, "/stats")
        assert stats["server"]["protocol_errors"] >= 1
        with ServingClient(harness.host, harness.port) as client:
            assert client.ping()

    def test_wrong_direction_frame_rejected(self, served):
        """A client sending a response-type frame gets a 400, not a
        crash."""
        harness, _ = served
        with socket.create_connection(
            (harness.host, harness.port), timeout=10.0
        ) as sock:
            sock.sendall(protocol.encode_frame(Frame(
                type=FrameType.RESULT, req_id=5, payload=b"",
            )))
            reply = protocol.read_frame(sock.makefile("rb"))
        assert reply.type == FrameType.ERROR
        assert reply.error()[0] == ErrorCode.BAD_REQUEST


class TestBackendFaults:
    def test_deadline_expires_mid_queue(self, served):
        """A request whose deadline passes while a slow tick holds the
        executor is dropped before its GEMM and answered with 408."""
        harness, faulty = served
        faulty.delay_next(1, 0.4)

        slow_result = {}

        def occupy():
            with ServingClient(harness.host, harness.port) as client:
                slow_result["out"] = client.reconstruct(_x())

        blocker = threading.Thread(target=occupy)
        blocker.start()
        time.sleep(0.15)  # the no-deadline request's tick is stalling
        with ServingClient(harness.host, harness.port) as client:
            with pytest.raises(DeadlineExpired):
                client.reconstruct(_x(), deadline_ms=50)
        blocker.join(timeout=10.0)
        assert slow_result["out"].shape == (8,)  # slow work still served
        stats = fetch_json(harness.host, harness.port, "/stats")
        assert stats["server"]["expired"] >= 1
        assert stats["batcher"]["expired_requests"] >= 1
        # and the server is none the worse for it
        with ServingClient(harness.host, harness.port) as client:
            assert client.reconstruct(_x()).shape == (8,)

    def test_tick_failure_maps_to_500_and_recovers(self, served):
        """A tick dying server-side (what a torn-down worker pool looks
        like mid-flight) answers 500 and the next request succeeds."""
        harness, faulty = served
        faulty.fail_next(1, RuntimeError("worker pool torn down"))
        with ServingClient(harness.host, harness.port) as client:
            with pytest.raises(ServerError):
                client.reconstruct(_x())
            assert client.reconstruct(_x()).shape == (8,)
        stats = fetch_json(harness.host, harness.port, "/stats")
        assert stats["server"]["internal_errors"] >= 1
        assert stats["server"]["served"] >= 1

    def test_repeated_failures_do_not_leak_inflight(self, served):
        """The admission gauge returns to zero through a failure storm
        (a leak here would eventually shed all traffic forever)."""
        harness, faulty = served
        faulty.fail_next(5, RuntimeError("flaky backend"))
        with ServingClient(harness.host, harness.port) as client:
            for _ in range(5):
                with pytest.raises(ServerError):
                    client.reconstruct(_x())
            assert client.reconstruct(_x()).shape == (8,)
        stats = fetch_json(harness.host, harness.port, "/stats")
        assert stats["server"]["inflight"] == 0
        assert stats["server"]["internal_errors"] == 5


@pytest.mark.slow
class TestWorkerPoolTeardown:
    def test_pool_closed_between_requests_recovers(self):
        """Closing the attached WorkerPool mid-session must not kill the
        server: the pool respawns lazily on the next tick."""
        codec = _codec()
        pool = WorkerPool(processes=2)
        session = codec.session(flush_latency=None, pool=pool)
        X = np.abs(np.random.default_rng(3).normal(size=(24, 8))) + 0.1
        try:
            with ServerHarness(session) as harness:
                with ServingClient(harness.host, harness.port) as client:
                    first = client.reconstruct(X)
                    pool.close()  # deploy-cycle teardown under the server
                    second = client.reconstruct(X)
                stats = fetch_json(harness.host, harness.port, "/stats")
            assert np.array_equal(first, second)
            assert stats["server"]["served"] == 2
            assert stats["server"]["internal_errors"] == 0
        finally:
            session.close()
            pool.close()
