"""Property tests for the serving wire protocol.

The framing must be an exact inverse pair — every array that goes in
comes out bit-for-bit — and every malformed byte stream must raise
:class:`~repro.exceptions.ProtocolError` instead of crashing or hanging
the reader.  Hypothesis drives the round-trips over arbitrary payload
sizes, shapes and the four wire dtypes; the socket test then asserts the
same bit-exactness end to end through a live server.
"""

import io
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.api import Codec
from repro.exceptions import ProtocolError
from repro.serving import ServerHarness, ServingClient
from repro.serving.protocol import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    VERSION,
    Frame,
    FrameType,
    decode_arrays,
    decode_error,
    decode_header,
    encode_arrays,
    encode_error,
    encode_frame,
    read_frame,
)

#: The four dtypes CompressedBatch payloads can carry on the wire.
WIRE_DTYPES = [np.float32, np.float64, np.complex64, np.complex128]

wire_arrays = st.lists(
    st.one_of([
        npst.arrays(
            dtype=dt,
            shape=npst.array_shapes(min_dims=0, max_dims=3, max_side=6),
        )
        for dt in WIRE_DTYPES
    ]),
    min_size=0,
    max_size=5,
)


def _bit_identical(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise equality that treats NaN payloads honestly."""
    return (
        a.dtype == b.dtype
        and a.shape == b.shape
        and np.ascontiguousarray(a).tobytes()
        == np.ascontiguousarray(b).tobytes()
    )


class TestArrayRoundTrip:
    @settings(deadline=None, max_examples=200)
    @given(arrays=wire_arrays)
    def test_encode_decode_bit_exact(self, arrays):
        decoded = decode_arrays(encode_arrays(arrays))
        assert len(decoded) == len(arrays)
        for original, back in zip(arrays, decoded):
            assert _bit_identical(np.asarray(original), back)

    @settings(deadline=None, max_examples=100)
    @given(arrays=wire_arrays)
    def test_encoding_is_deterministic(self, arrays):
        assert encode_arrays(arrays) == encode_arrays(arrays)

    def test_too_many_arrays_rejected(self):
        with pytest.raises(ProtocolError):
            encode_arrays([np.zeros(1)] * 256)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ProtocolError):
            encode_arrays([np.zeros(3, dtype=np.int64)])


class TestFrameRoundTrip:
    @settings(deadline=None, max_examples=200)
    @given(
        ftype=st.sampled_from(FrameType.REQUESTS + FrameType.RESPONSES),
        req_id=st.integers(min_value=0, max_value=2 ** 64 - 1),
        deadline_ms=st.integers(min_value=0, max_value=2 ** 32 - 1),
        payload=st.binary(max_size=4096),
    )
    def test_stream_round_trip(self, ftype, req_id, deadline_ms, payload):
        frame = Frame(type=ftype, req_id=req_id, payload=payload,
                      deadline_ms=deadline_ms)
        back = read_frame(io.BytesIO(encode_frame(frame)))
        assert back == frame

    @settings(deadline=None, max_examples=50)
    @given(payload=st.binary(min_size=1, max_size=256))
    def test_dribbling_stream_reassembles(self, payload):
        """Partial reads (1 byte at a time) still produce whole frames."""
        data = encode_frame(Frame(type=FrameType.RESULT, req_id=3,
                                  payload=payload))

        class Dribble:
            def __init__(self, raw):
                self._raw, self._pos = raw, 0

            def read(self, n):
                chunk = self._raw[self._pos:self._pos + min(n, 1)]
                self._pos += len(chunk)
                return chunk

        back = read_frame(Dribble(data))
        assert back is not None and back.payload == payload

    def test_clean_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_back_to_back_frames(self):
        frames = [
            Frame(type=FrameType.PING, req_id=1),
            Frame(type=FrameType.RESULT, req_id=2, payload=b"abc"),
        ]
        stream = io.BytesIO(b"".join(encode_frame(f) for f in frames))
        assert read_frame(stream) == frames[0]
        assert read_frame(stream) == frames[1]
        assert read_frame(stream) is None


class TestErrorRoundTrip:
    @settings(deadline=None, max_examples=100)
    @given(
        code=st.integers(min_value=0, max_value=2 ** 16 - 1),
        message=st.text(max_size=200),
    )
    def test_error_round_trip(self, code, message):
        assert decode_error(encode_error(code, message)) == (code, message)


class TestMalformedInput:
    def test_bad_magic_rejected(self):
        header = HEADER.pack(0xDEAD, VERSION, FrameType.PING, 0, 0, 0)
        with pytest.raises(ProtocolError, match="magic"):
            decode_header(header)

    def test_bad_version_rejected(self):
        header = HEADER.pack(MAGIC, VERSION + 1, FrameType.PING, 0, 0, 0)
        with pytest.raises(ProtocolError, match="version"):
            decode_header(header)

    def test_oversize_length_rejected(self):
        header = HEADER.pack(MAGIC, VERSION, FrameType.PING, 0, 0,
                             MAX_PAYLOAD_BYTES + 1)
        with pytest.raises(ProtocolError, match="ceiling"):
            decode_header(header)

    def test_truncated_stream_raises(self):
        data = encode_frame(Frame(type=FrameType.RESULT, req_id=1,
                                  payload=b"xyz"))
        for cut in (1, HEADER.size - 1, HEADER.size + 1):
            with pytest.raises(ProtocolError):
                read_frame(io.BytesIO(data[:cut]))

    def test_unknown_dtype_code_rejected(self):
        payload = bytes([1]) + struct.pack("!BB", ord("q"), 1) + \
            struct.pack("!I", 1) + b"\x00" * 8
        with pytest.raises(ProtocolError, match="dtype"):
            decode_arrays(payload)

    def test_trailing_bytes_rejected(self):
        payload = encode_arrays([np.zeros(2)]) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            decode_arrays(payload)

    def test_truncated_array_body_rejected(self):
        payload = encode_arrays([np.zeros(4)])
        with pytest.raises(ProtocolError):
            decode_arrays(payload[:-1])

    def test_empty_array_payload_rejected(self):
        with pytest.raises(ProtocolError, match="count"):
            decode_arrays(b"")


class TestCompressedBatchOverSocket:
    """Satellite 3's end-to-end claim: a CompressedBatch survives the
    socket path bit-exactly vs the serving session's in-process result,
    and within 1e-10 of the eager Codec."""

    def test_socket_compress_is_bit_exact(self):
        codec = Codec(dim=8, compressed_dim=2, compression_layers=3,
                      reconstruction_layers=3, seed=5)
        session = codec.session(flush_latency=None)
        rng = np.random.default_rng(0)
        X = np.abs(rng.normal(size=(9, 8))) + 0.1
        in_process = session.compress(X)
        eager = codec.compress(X)
        try:
            with ServerHarness(session) as harness:
                with ServingClient(harness.host, harness.port) as client:
                    over_wire = client.compress(X)
                    x_hat_wire = client.decompress(over_wire)
        finally:
            session.close()
        assert _bit_identical(over_wire.codes, in_process.codes)
        assert _bit_identical(over_wire.squared_norms,
                              in_process.squared_norms)
        # ...and the wire payload bytes themselves are reproducible.
        assert encode_arrays([over_wire.codes, over_wire.squared_norms]) \
            == encode_arrays([in_process.codes, in_process.squared_norms])
        assert np.max(np.abs(over_wire.codes - eager.codes)) <= 1e-10
        assert np.max(np.abs(
            over_wire.squared_norms - eager.squared_norms
        )) <= 1e-10
        assert np.max(np.abs(
            x_hat_wire - codec.forward(X).x_hat
        )) <= 1e-10
