"""Front-end behaviour: routing, stats endpoints, backpressure, fairness.

Everything runs against a real socket via :class:`ServerHarness`; the
backpressure group throttles the session with
:class:`FaultInjectingSession` so capacity (and therefore overload) is
deterministic rather than machine-dependent.
"""

import asyncio
import socket
import time

import numpy as np
import pytest

from repro.api import Codec
from repro.exceptions import ServingError
from repro.serving import (
    AsyncServingClient,
    FaultInjectingSession,
    RequestShed,
    ServerHarness,
    ServingClient,
    fetch_json,
)
from repro.serving import protocol
from repro.serving.protocol import ErrorCode, Frame, FrameType


def _codec(seed=11):
    return Codec(dim=8, compressed_dim=2, compression_layers=3,
                 reconstruction_layers=3, seed=seed)


def _requests(m=6, seed=1):
    return np.abs(np.random.default_rng(seed).normal(size=(m, 8))) + 0.1


@pytest.fixture()
def codec_session():
    codec = _codec()
    session = codec.session(flush_latency=None)
    yield codec, session
    session.close()


class TestBasics:
    def test_ping_and_reconstruct_paths(self, codec_session):
        codec, session = codec_session
        X = _requests()
        expected = session.reconstruct(X)
        with ServerHarness(session) as harness:
            with ServingClient(harness.host, harness.port) as client:
                assert client.ping()
                # single-sample path (micro-batcher)
                one = client.reconstruct(X[0])
                assert np.max(np.abs(one - expected[0])) <= 1e-10
                # batch path (own tick on the executor)
                batch = client.reconstruct(X)
                assert np.max(np.abs(batch - expected)) <= 1e-10

    def test_compress_decompress_round_trip(self, codec_session):
        codec, session = codec_session
        X = _requests()
        with ServerHarness(session) as harness:
            with ServingClient(harness.host, harness.port) as client:
                payload = client.compress(X)
                x_hat = client.decompress(payload)
        assert np.max(np.abs(x_hat - codec.forward(X).x_hat)) <= 1e-10

    def test_healthz_and_stats_endpoints(self, codec_session):
        _, session = codec_session
        with ServerHarness(session) as harness:
            with ServingClient(harness.host, harness.port) as client:
                client.reconstruct(_requests()[0])
            health = fetch_json(harness.host, harness.port, "/healthz")
            stats = fetch_json(harness.host, harness.port, "/stats")
        assert health["status"] == "ok"
        server = stats["server"]
        assert server["accepted"] >= server["served"] >= 1
        assert server["dim"] == 8 and server["compressed_dim"] == 2
        assert server["request_latency"]["count"] >= 1
        assert stats["batcher"]["served_requests"] >= 1

    def test_unknown_http_path_is_404(self, codec_session):
        _, session = codec_session
        with ServerHarness(session) as harness:
            with pytest.raises(ServingError, match="404"):
                fetch_json(harness.host, harness.port, "/nope")

    def test_bad_request_is_answered_not_fatal(self, codec_session):
        _, session = codec_session
        with ServerHarness(session) as harness:
            with ServingClient(harness.host, harness.port) as client:
                with pytest.raises(ServingError):
                    client.reconstruct(np.ones(3))  # wrong dim
                # the connection survives the rejected request
                assert client.ping()

    def test_stats_visible_after_drain(self, codec_session):
        _, session = codec_session
        harness = ServerHarness(session)
        with harness:
            with ServingClient(harness.host, harness.port) as client:
                client.reconstruct(_requests()[0])
        final = harness.frontend.stats()["server"]
        assert final["draining"] is True
        assert final["inflight"] == 0
        assert final["served"] == final["accepted"] == 1


class TestBackpressure:
    def test_queue_bounded_and_shed_distinguishable(self, codec_session):
        """N pipelined clients against a deliberately slow 1-worker
        server: admissions never exceed ``max_inflight``, overload
        surfaces as :class:`RequestShed` (not some generic failure), and
        accepted requests still complete correctly."""
        _, session = codec_session
        faulty = FaultInjectingSession(session)
        faulty.delay_next(10 ** 6, 0.05)  # every tick costs >= 50 ms
        x = _requests()[0]

        async def drive(host, port, n=12):
            clients = [await AsyncServingClient.connect(host, port)
                       for _ in range(3)]
            try:
                futures = []
                for i in range(n):
                    client = clients[i % len(clients)]
                    futures.append(await client.submit_reconstruct(x))
                return await asyncio.gather(*futures,
                                            return_exceptions=True)
            finally:
                for client in clients:
                    await client.close()

        with ServerHarness(faulty, max_inflight=2) as harness:
            outcomes = asyncio.run(drive(harness.host, harness.port))
            stats = fetch_json(harness.host, harness.port, "/stats")
        sheds = [r for r in outcomes if isinstance(r, RequestShed)]
        served = [r for r in outcomes if isinstance(r, list)]
        others = [r for r in outcomes
                  if isinstance(r, Exception) and
                  not isinstance(r, RequestShed)]
        assert sheds, "overload never shed"
        assert served, "overload starved every request"
        assert not others, f"unexpected failures: {others!r}"
        server = stats["server"]
        assert server["shed"] == len(sheds)
        assert server["max_inflight_observed"] <= 2
        assert server["accepted"] == len(served)

    def test_fifo_within_deadline_class(self, codec_session):
        """Same-deadline requests on one connection are answered in
        submission order — admission is a FIFO queue, not a free-for-all."""
        _, session = codec_session
        x = _requests()[0]
        n = 8
        with ServerHarness(session) as harness:
            with socket.create_connection(
                (harness.host, harness.port), timeout=10.0
            ) as sock:
                for req_id in range(1, n + 1):
                    sock.sendall(protocol.encode_frame(Frame(
                        type=FrameType.RECONSTRUCT,
                        req_id=req_id,
                        payload=protocol.encode_arrays([x]),
                    )))
                stream = sock.makefile("rb")
                replies = [protocol.read_frame(stream)
                           for _ in range(n)]
        assert all(r is not None and r.type == FrameType.RESULT
                   for r in replies)
        assert [r.req_id for r in replies] == list(range(1, n + 1))

    def test_shed_error_code_on_wire(self, codec_session):
        """The wire-level error code for a shed is 429 — scripts that
        speak raw frames can implement backoff without string-matching."""
        _, session = codec_session
        faulty = FaultInjectingSession(session)
        faulty.delay_next(10 ** 6, 0.1)
        x = _requests()[0]
        with ServerHarness(faulty, max_inflight=1) as harness:
            with socket.create_connection(
                (harness.host, harness.port), timeout=10.0
            ) as sock:
                for req_id in range(1, 7):
                    sock.sendall(protocol.encode_frame(Frame(
                        type=FrameType.RECONSTRUCT,
                        req_id=req_id,
                        payload=protocol.encode_arrays([x]),
                    )))
                stream = sock.makefile("rb")
                replies = [protocol.read_frame(stream) for _ in range(6)]
        codes = [r.error()[0] for r in replies
                 if r.type == FrameType.ERROR]
        assert codes and set(codes) == {ErrorCode.SHED}

    def test_draining_server_refuses_with_503(self, codec_session):
        """During a graceful drain, already-admitted work is still
        served while new submissions are refused with 503."""
        _, session = codec_session
        faulty = FaultInjectingSession(session)
        x = _requests()[0]
        with ServerHarness(faulty) as harness:
            with socket.create_connection(
                (harness.host, harness.port), timeout=10.0
            ) as sock:
                stream = sock.makefile("rb")
                faulty.delay_next(1, 0.5)  # hold the drain open
                sock.sendall(protocol.encode_frame(Frame(
                    type=FrameType.RECONSTRUCT, req_id=1,
                    payload=protocol.encode_arrays([x]),
                )))
                time.sleep(0.15)  # request 1 admitted, its tick stalling
                harness.begin_drain()
                time.sleep(0.05)
                sock.sendall(protocol.encode_frame(Frame(
                    type=FrameType.RECONSTRUCT, req_id=2,
                    payload=protocol.encode_arrays([x]),
                )))
                replies = [protocol.read_frame(stream) for _ in range(2)]
        by_id = {r.req_id: r for r in replies}
        assert by_id[2].type == FrameType.ERROR
        assert by_id[2].error()[0] == ErrorCode.CLOSING
        assert by_id[1].type == FrameType.RESULT  # admitted work served


class TestAdaptiveTicks:
    def test_burst_widens_ticks(self, codec_session):
        """A pipelined burst must be served in fewer, wider ticks than
        one-request-per-tick — the GEMM amortisation the batcher exists
        for."""
        _, session = codec_session
        x = _requests()[0]

        async def burst(host, port, n=32):
            client = await AsyncServingClient.connect(host, port)
            try:
                futures = [await client.submit_reconstruct(x)
                           for _ in range(n)]
                await asyncio.gather(*futures)
            finally:
                await client.close()

        with ServerHarness(session, batch_window=0.01) as harness:
            asyncio.run(burst(harness.host, harness.port))
            stats = fetch_json(harness.host, harness.port, "/stats")
        batcher = stats["batcher"]
        assert batcher["served_requests"] == 32
        assert batcher["largest_tick"] >= 2
        assert batcher["ticks"] < 32
