"""Cross-implementation validation.

The repository contains several independent computations of the same
physics; these tests pit them against each other:

- gate-kernel forward vs explicit matrix products;
- statevector pipeline vs density-matrix pipeline;
- interferometer propagation vs network forward vs circuit expansion;
- measurement sampling vs exact Born statistics (chi-square-ish bound);
- Reck/unitary synthesis vs the original network.

Agreement across code paths written at different times with different
algorithms is the strongest internal-correctness evidence available
without the authors' reference implementation.
"""

import numpy as np
import pytest

from repro.data.binary_images import paper_dataset
from repro.network import QuantumAutoencoder, QuantumNetwork
from repro.optics.interferometer import Interferometer
from repro.optics.mesh import circuit_from_orthogonal, circuit_from_unitary
from repro.simulator.density import DensityMatrix
from repro.simulator.measurement import sample_counts
from repro.simulator.state import QuantumState


@pytest.fixture
def net(rng):
    return QuantumNetwork(8, 4).initialize("uniform", rng=rng)


class TestKernelVsMatrix:
    def test_forward_equals_unitary_product(self, net, rng):
        x = rng.normal(size=(8, 6))
        assert np.allclose(net.forward(x), net.unitary() @ x, atol=1e-12)

    def test_layer_product_equals_network_unitary(self, net):
        u = np.eye(8)
        for layer in net.layers:
            u = layer.unitary() @ u
        assert np.allclose(u, net.unitary(), atol=1e-12)

    def test_circuit_expansion_equals_network(self, net, rng):
        x = rng.normal(size=8)
        assert np.allclose(
            net.as_circuit().apply(x), net.forward(x), atol=1e-12
        )


class TestStatevectorVsDensityMatrix:
    def test_full_pipeline_probabilities_agree(self, rng):
        """|Psi><Psi| computed as a density matrix must reproduce the
        statevector pipeline's Born probabilities exactly."""
        X = paper_dataset(num_samples=5).matrix()
        ae = QuantumAutoencoder(16, 4, 3, 3).initialize("uniform", rng=rng)
        enc = ae.codec.encode(X)
        sv_out = ae.forward_encoded(enc)
        u_c, u_r = ae.uc.unitary(), ae.ur.unitary()
        p1 = ae.projection.matrix()
        for i in range(5):
            rho = DensityMatrix.from_state(enc.amplitudes()[:, i])
            rho = rho.evolve(u_c)
            rho = rho.apply_kraus([p1])  # trace-decreasing, no renorm
            rho = rho.evolve(u_r)
            sv_probs = np.abs(sv_out.output_amplitudes[:, i]) ** 2
            assert np.allclose(rho.probabilities(), sv_probs, atol=1e-12)

    def test_purity_equals_retained_mass_squared_ratio(self, rng):
        """After an unnormalised projection the (sub-trace) 'purity'
        relates to the statevector norm: Tr(rho^2) = (norm^2)^2 for a
        projected pure state."""
        s = QuantumState(rng.normal(size=8))
        from repro.network.projection import Projection

        proj = Projection.last(8, 4)
        projected = proj.apply(np.asarray(s.amplitudes))
        norm2 = float(np.sum(projected**2))
        rho = DensityMatrix.from_state(s).apply_kraus([proj.matrix()])
        purity = float(np.real(np.trace(rho.matrix @ rho.matrix)))
        assert purity == pytest.approx(norm2**2, abs=1e-12)


class TestDeviceVsNetworkVsSynthesis:
    def test_three_way_agreement(self, net, rng):
        x = rng.normal(size=(8, 3))
        by_network = net.forward(x)
        by_device = Interferometer.from_network(net).apply(x)
        by_synthesis = np.stack(
            [
                circuit_from_orthogonal(net.unitary()).apply(x[:, i])
                for i in range(3)
            ],
            axis=1,
        )
        assert np.allclose(by_device, by_network, atol=1e-12)
        assert np.allclose(by_synthesis, by_network, atol=1e-8)

    def test_unitary_synthesis_agrees_with_complex_network(self, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 2.0, net.num_parameters))
        u = net.unitary()
        c = circuit_from_unitary(u)
        x = rng.normal(size=4) + 1j * rng.normal(size=4)
        x /= np.linalg.norm(x)
        assert np.allclose(c.apply(x), u @ x, atol=1e-9)


class TestSamplingVsExact:
    def test_empirical_frequencies_within_binomial_bounds(self, rng):
        """Each mode's count is Binomial(shots, p): check all modes sit
        within 5 sigma of expectation (overwhelming probability)."""
        s = QuantumState(rng.normal(size=8))
        p = s.probabilities()
        shots = 100_000
        counts = sample_counts(s, shots, rng=rng)
        sigma = np.sqrt(shots * p * (1 - p)) + 1e-9
        z = np.abs(counts - shots * p) / sigma
        assert np.all(z < 5.0)
