"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed end to
end (marked slow are the multi-second training demos, still run in the
full suite).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    # The three mandated examples plus the domain-specific ones.
    assert "quickstart.py" in names
    assert "paper_experiment.py" in names
    assert "csc_comparison.py" in names
    assert len(names) >= 8


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
)
def test_example_has_docstring_and_main(path):
    source = path.read_text()
    assert source.lstrip().startswith(('"""', '#!')), path.name
    assert "def main()" in source, path.name
    assert '__name__ == "__main__"' in source, path.name


@pytest.mark.slow
def test_quickstart_executes():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "reconstruction accuracy" in result.stdout


@pytest.mark.slow
def test_paper_experiment_reduced_budget_executes():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "paper_experiment.py"),
            "--iterations",
            "10",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Fig. 4a" in result.stdout
