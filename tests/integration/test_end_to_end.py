"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    QuantumAutoencoder,
    Trainer,
    paper_accuracy,
)
from repro.data import paper_dataset, rank_limited_binary_dataset
from repro.io.model_io import load_autoencoder, save_autoencoder
from repro.network.targets import TruncatedInputTarget
from repro.optics.interferometer import Interferometer
from repro.parallel.batch import ChunkedPipeline
from repro.simulator.measurement import estimate_amplitudes
from repro.training.optimizers import Adam


@pytest.fixture(scope="module")
def trained():
    """One converged (Adam, 120 iters) paper-config autoencoder."""
    ds = paper_dataset()
    X = ds.matrix()
    ae = QuantumAutoencoder(16, 4, 12, 14).initialize(
        "uniform", rng=np.random.default_rng(7)
    )
    strat = TruncatedInputTarget.from_pca(ae.projection, X)
    result = Trainer(
        iterations=120,
        gradient_method="adjoint",
        optimizer_factory=lambda: Adam(0.05),
        record_theta_every=None,
    ).train(ae, X, target_strategy=strat)
    return ae, X, result


class TestTrainedPipeline:
    def test_high_accuracy_reached(self, trained):
        _, X, result = trained
        # Full convergence lands ~97-100% (see EXPERIMENTS.md); the
        # reduced 120-iteration budget used here reliably clears 90%.
        assert result.final_accuracy > 90.0

    def test_losses_near_zero(self, trained):
        _, _, result = trained
        assert result.final_loss_c < 0.05
        assert result.final_loss_r < 0.05

    def test_compression_really_compresses(self, trained):
        ae, X, _ = trained
        out = ae.forward(X)
        assert out.compact_codes.shape == (4, 25)
        assert np.mean(out.retained_probability) > 0.98

    def test_generalisation_to_unseen_same_structure(self, trained):
        """Unseen unions of the same base patterns reconstruct well."""
        ae, _, _ = trained
        fresh = paper_dataset(num_samples=40, seed=999).matrix()
        out = ae.forward(fresh)
        assert paper_accuracy(out.x_hat, fresh) > 85.0

    def test_save_load_preserves_behaviour(self, trained, tmp_path):
        ae, X, _ = trained
        path = tmp_path / "trained.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        assert np.allclose(
            clone.forward(X).x_hat, ae.forward(X).x_hat, atol=1e-12
        )

    def test_interferometer_deployment_exact(self, trained):
        ae, X, _ = trained
        enc = ae.codec.encode(X)
        dev_c = Interferometer.from_network(ae.uc)
        dev_r = Interferometer.from_network(ae.ur)
        compressed = dev_c.apply(enc.amplitudes())
        ae.projection.apply_inplace(compressed)
        b = dev_r.apply(compressed)
        direct = ae.forward_encoded(enc).output_amplitudes
        assert np.allclose(b, direct, atol=1e-10)

    def test_finite_shots_approach_exact(self, trained):
        ae, X, _ = trained
        enc = ae.codec.encode(X)
        out = ae.forward_encoded(enc)
        exact = np.abs(out.output_amplitudes)
        est = estimate_amplitudes(
            out.output_amplitudes, shots=200000,
            rng=np.random.default_rng(0),
        )
        assert np.max(np.abs(est - exact)) < 0.02

    def test_chunked_pipeline_on_bulk_data(self, trained):
        ae, _, _ = trained
        bulk = rank_limited_binary_dataset(
            num_samples=300, rank=4, image_size=4, seed=1
        ).matrix()
        # rank_limited uses stripe patterns; accuracy is not meaningful
        # here, but the streamed path must agree with the direct one.
        direct = ae.forward(bulk).x_hat
        streamed = ChunkedPipeline(ae, chunk_size=64).reconstruct(bulk)
        assert np.allclose(direct, streamed)


class TestFailurePaths:
    def test_zero_image_rejected_end_to_end(self):
        ae = QuantumAutoencoder(4, 2, 1, 1)
        X = np.zeros((2, 4))
        X[0, 0] = 1.0
        from repro.exceptions import NormalizationError

        with pytest.raises(NormalizationError):
            ae.forward(X)

    def test_wrong_width_rejected_end_to_end(self):
        ae = QuantumAutoencoder(4, 2, 1, 1)
        from repro.exceptions import DimensionError

        with pytest.raises(DimensionError):
            ae.forward(np.ones((2, 8)))

    def test_trainer_rejects_nan_images(self):
        ae = QuantumAutoencoder(4, 2, 1, 1)
        X = np.ones((2, 4))
        X[0, 0] = np.nan
        from repro.exceptions import DimensionError

        with pytest.raises(DimensionError):
            Trainer(iterations=1).train(ae, X)
