"""Tests for repro.encoding.amplitude (Eqs. 1-2 of the paper)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.encoding.amplitude import (
    AmplitudeCodec,
    EncodedBatch,
    decode_batch,
    decode_vector,
    encode_batch,
    encode_vector,
)
from repro.exceptions import (
    DimensionError,
    EncodingError,
    NormalizationError,
)
from repro.simulator.state import StateBatch


class TestEncodeVector:
    def test_paper_rule(self):
        # Eq. (1): A_j = x_j / sqrt(sum x^2)
        state, sq = encode_vector([3.0, 4.0])
        assert sq == pytest.approx(25.0)
        assert state.amplitudes.tolist() == pytest.approx([0.6, 0.8])

    def test_unit_norm_output(self):
        state, _ = encode_vector([1.0, 2.0, 3.0, 4.0])
        assert state.norm() == pytest.approx(1.0)

    def test_zero_vector_rejected(self):
        with pytest.raises(NormalizationError, match="all-zero"):
            encode_vector([0.0, 0.0])

    def test_non_power_of_two_rejected(self):
        with pytest.raises(DimensionError):
            encode_vector([1.0, 2.0, 3.0])

    def test_padding_to_power_of_two(self):
        state, sq = encode_vector([1.0, 1.0, 1.0], pad_to_power_of_two=True)
        assert state.dim == 4
        assert state.amplitudes[3] == 0.0
        assert sq == pytest.approx(3.0)

    @given(
        arrays(
            np.float64,
            st.sampled_from([2, 4, 8, 16]),
            elements=st.floats(0, 100, allow_nan=False),
        ).filter(lambda v: np.dot(v, v) > 1e-8)
    )
    def test_property_roundtrip(self, x):
        state, sq = encode_vector(x)
        recovered = decode_vector(state.amplitudes, sq)
        assert np.allclose(recovered, np.abs(x), atol=1e-9)


class TestDecodeVector:
    def test_eq2(self):
        # x_hat = sqrt(B^2 * sum x^2)
        out = decode_vector(np.array([0.6, 0.8]), 25.0)
        assert out.tolist() == pytest.approx([3.0, 4.0])

    def test_sign_lost(self):
        out = decode_vector(np.array([-0.6, 0.8]), 25.0)
        assert out.tolist() == pytest.approx([3.0, 4.0])

    def test_complex_amplitudes_magnitudes(self):
        out = decode_vector(np.array([0.6j, 0.8]), 25.0)
        assert out.tolist() == pytest.approx([3.0, 4.0])

    def test_invalid_norm_rejected(self):
        with pytest.raises(EncodingError):
            decode_vector(np.array([1.0, 0.0]), 0.0)
        with pytest.raises(EncodingError):
            decode_vector(np.array([1.0, 0.0]), -1.0)
        with pytest.raises(EncodingError):
            decode_vector(np.array([1.0, 0.0]), np.nan)

    def test_2d_rejected(self):
        with pytest.raises(DimensionError):
            decode_vector(np.eye(2), 1.0)


class TestEncodeBatch:
    def test_shapes_and_layout(self, paper_images):
        enc = encode_batch(paper_images)
        assert enc.states.data.shape == (16, 25)  # columns = samples
        assert enc.squared_norms.shape == (25,)

    def test_columns_unit_norm(self, paper_images):
        enc = encode_batch(paper_images)
        assert np.allclose(enc.states.norms(), 1.0)

    def test_zero_row_rejected(self):
        X = np.ones((3, 4))
        X[1] = 0.0
        with pytest.raises(NormalizationError, match="sample 1"):
            encode_batch(X)

    def test_padding(self):
        enc = encode_batch(np.ones((2, 3)), pad_to_power_of_two=True)
        assert enc.dim == 4

    def test_decode_batch_roundtrip(self, paper_images):
        enc = encode_batch(paper_images)
        out = decode_batch(enc.states.data, enc.squared_norms)
        assert np.allclose(out, paper_images, atol=1e-10)

    def test_decode_accepts_statebatch(self, paper_images):
        enc = encode_batch(paper_images)
        out = decode_batch(enc.states, enc.squared_norms)
        assert out.shape == paper_images.shape

    def test_decode_norm_count_mismatch(self, paper_images):
        enc = encode_batch(paper_images)
        with pytest.raises(DimensionError):
            decode_batch(enc.states.data, enc.squared_norms[:-1])

    def test_decode_invalid_norms(self, paper_images):
        enc = encode_batch(paper_images)
        bad = enc.squared_norms.copy()
        bad[0] = -1.0
        with pytest.raises(EncodingError):
            decode_batch(enc.states.data, bad)


class TestEncodedBatch:
    def test_norm_count_validation(self, paper_images):
        enc = encode_batch(paper_images)
        with pytest.raises(DimensionError):
            EncodedBatch(enc.states, enc.squared_norms[:-1])

    def test_nonpositive_norm_rejected(self):
        batch = StateBatch(np.eye(2))
        with pytest.raises(NormalizationError):
            EncodedBatch(batch, np.array([1.0, 0.0]))

    def test_amplitudes_view(self, paper_images):
        enc = encode_batch(paper_images)
        assert enc.amplitudes() is enc.states.data


class TestAmplitudeCodec:
    def test_roundtrip(self):
        codec = AmplitudeCodec(4)
        X = np.array([[1.0, 0.0, 1.0, 0.0], [0.5, 0.5, 0.0, 0.0]])
        assert np.allclose(codec.roundtrip(X), X, atol=1e-12)

    def test_dim_checked_on_encode(self):
        with pytest.raises(DimensionError, match="bound to dim"):
            AmplitudeCodec(4).encode(np.ones((2, 8)))

    def test_non_power_of_two_dim_rejected(self):
        with pytest.raises(DimensionError):
            AmplitudeCodec(10)

    def test_num_qubits(self):
        assert AmplitudeCodec(16).num_qubits == 4

    def test_decode_width_checked(self):
        codec = AmplitudeCodec(4)
        with pytest.raises(DimensionError):
            codec.decode(np.ones((8, 2)), np.ones(2))
