"""Tests for repro.encoding.images."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.encoding.images import (
    amplitude_binary_threshold,
    apply_paper_threshold,
    binarize,
    flatten_images,
    unflatten_images,
)
from repro.exceptions import DimensionError, EncodingError


class TestFlattenUnflatten:
    def test_roundtrip(self, rng):
        imgs = rng.random((5, 4, 4))
        assert np.allclose(unflatten_images(flatten_images(imgs)), imgs)

    def test_single_image_promoted(self):
        out = flatten_images(np.zeros((4, 4)))
        assert out.shape == (1, 16)

    def test_row_major_order(self):
        img = np.arange(4.0).reshape(2, 2)
        assert flatten_images(img)[0].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_4d_rejected(self):
        with pytest.raises(DimensionError):
            flatten_images(np.zeros((2, 2, 2, 2)))

    def test_unflatten_non_square_needs_shape(self):
        with pytest.raises(DimensionError, match="perfect square"):
            unflatten_images(np.ones((2, 8)))

    def test_unflatten_explicit_shape(self):
        out = unflatten_images(np.ones((2, 8)), shape=(2, 4))
        assert out.shape == (2, 2, 4)

    def test_unflatten_bad_shape(self):
        with pytest.raises(DimensionError, match="incompatible"):
            unflatten_images(np.ones((2, 8)), shape=(3, 3))

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.just(3), st.just(3)),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    def test_property_roundtrip(self, imgs):
        assert np.array_equal(
            unflatten_images(flatten_images(imgs), (3, 3)), imgs
        )


class TestBinarize:
    def test_default_threshold(self):
        out = binarize(np.array([0.2, 0.5, 0.9]))
        assert out.tolist() == [0.0, 1.0, 1.0]

    def test_custom_threshold(self):
        assert binarize(np.array([0.2]), threshold=0.1).tolist() == [1.0]

    def test_nonfinite_threshold_rejected(self):
        with pytest.raises(EncodingError):
            binarize(np.zeros(2), threshold=np.nan)


class TestPaperThreshold:
    def test_snapping_rule(self):
        # Section IV-B: x <= 0.01 -> 0; x >= 0.99 -> 1; middle untouched.
        out = apply_paper_threshold(np.array([0.005, 0.01, 0.5, 0.99, 0.999]))
        assert out.tolist() == [0.0, 0.0, 0.5, 1.0, 1.0]

    def test_custom_bounds(self):
        out = apply_paper_threshold(np.array([0.1, 0.5, 0.9]), low=0.2, high=0.8)
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_invalid_bounds(self):
        with pytest.raises(EncodingError):
            apply_paper_threshold(np.zeros(2), low=0.9, high=0.1)
        with pytest.raises(EncodingError):
            apply_paper_threshold(np.zeros(2), low=-0.1, high=0.5)

    def test_input_not_mutated(self):
        x = np.array([0.005])
        apply_paper_threshold(x)
        assert x[0] == 0.005

    @given(
        arrays(
            np.float64, 16, elements=st.floats(0, 1, allow_nan=False)
        )
    )
    def test_property_idempotent(self, x):
        once = apply_paper_threshold(x)
        assert np.array_equal(apply_paper_threshold(once), once)


class TestAmplitudeBinaryThreshold:
    def test_hard_cut(self):
        # Section IV-B: "R will be 0 if lower than 0.5; otherwise 1"
        out = amplitude_binary_threshold(np.array([0.49, 0.5, 0.51]))
        assert out.tolist() == [0.0, 1.0, 1.0]

    def test_output_strictly_binary(self, rng):
        out = amplitude_binary_threshold(rng.random(100))
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_nonfinite_cut_rejected(self):
        with pytest.raises(EncodingError):
            amplitude_binary_threshold(np.zeros(2), cut=np.inf)
