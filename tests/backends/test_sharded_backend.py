"""Tests for the sharded multi-process backend.

Cheap contract checks (spec parsing, lazy pools, fused fallback) run
everywhere; tests that spawn worker processes are marked ``slow``.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.backends import ShardedBackend, make_backend, validate_backend_name
from repro.backends.sharded import _PoolSlot
from repro.exceptions import BackendError, GateError
from repro.network import QuantumAutoencoder, QuantumNetwork


def sharded_net(dim=6, layers=3, seed=4, workers=2, min_shard=64, **kwargs):
    backend = ShardedBackend(
        num_workers=workers, min_shard_columns=min_shard
    )
    return QuantumNetwork(dim, layers, backend=backend, **kwargs).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


def fused_twin(net):
    twin = QuantumNetwork(
        net.dim,
        net.num_layers,
        descending=net.descending,
        allow_phase=net.allow_phase,
        backend="fused",
    )
    twin.set_flat_params(net.get_flat_params())
    return twin


class TestSpecParsing:
    def test_registry_spelling(self):
        backend = make_backend("sharded:3")
        assert isinstance(backend, ShardedBackend)
        assert backend.worker_count == 3

    def test_plain_name_uses_affinity_default(self):
        from repro.parallel.pool import default_worker_count

        assert make_backend("sharded").worker_count == default_worker_count()

    def test_validate_normalises(self):
        assert validate_backend_name("SHARDED:2") == "sharded:2"

    @pytest.mark.parametrize("bad", ["sharded:x", "sharded:", "sharded:0",
                                     "sharded:-1"])
    def test_bad_worker_count_rejected(self, bad):
        with pytest.raises(BackendError):
            make_backend(bad)

    def test_validate_uses_caller_error_class(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            validate_backend_name("sharded:zero", ExperimentError)

    def test_constructor_validation(self):
        with pytest.raises(BackendError):
            ShardedBackend(num_workers=0)
        with pytest.raises(BackendError):
            ShardedBackend(min_shard_columns=0)


class TestLazyPool:
    def test_selection_spawns_nothing(self):
        net = QuantumNetwork(4, 2, backend="sharded:2")
        assert net.backend._slot.pool is None

    def test_narrow_batch_stays_in_process(self, rng):
        net = sharded_net(min_shard=1024)
        ref = fused_twin(net)
        x = rng.normal(size=(6, 10))
        assert np.allclose(net.forward(x), ref.forward(x))
        assert net.backend._slot.pool is None  # fused fallback, no pool

    def test_gradient_workspace_served_in_process(self, rng):
        net = sharded_net()
        ws = net.backend.gradient_workspace(rng.normal(size=(6, 5)))
        assert ws is not None
        assert net.backend.supports_cached_gradients
        assert net.backend._slot.pool is None

    def test_spawn_shares_pool_slot(self):
        backend = ShardedBackend(num_workers=2)
        clone = backend.spawn()
        assert isinstance(clone, ShardedBackend)
        assert clone._slot is backend._slot
        assert clone.min_shard_columns == backend.min_shard_columns

    def test_autoencoder_networks_share_one_slot(self):
        ae = QuantumAutoencoder(4, 2, 2, 2, backend="sharded:2")
        uc_backend, ur_backend = ae.uc.backend, ae.ur.backend
        assert isinstance(uc_backend, ShardedBackend)
        assert uc_backend is not ur_backend
        assert uc_backend._slot is ur_backend._slot

    def test_set_backend_shares_one_slot(self):
        ae = QuantumAutoencoder(4, 2, 2, 2).set_backend("sharded:2")
        assert ae.uc.backend._slot is ae.ur.backend._slot

    def test_pool_slot_close_without_pool_is_noop(self):
        slot = _PoolSlot(num_workers=2)
        slot.close()  # nothing spawned, nothing to do
        assert slot.pool is None

    def test_close_idempotent(self):
        backend = ShardedBackend(num_workers=2)
        backend.close()
        backend.close()


@pytest.mark.slow
class TestShardedExecution:
    def test_wide_real_batch_matches_fused(self, rng):
        net = sharded_net()
        ref = fused_twin(net)
        x = rng.normal(size=(6, 300))
        try:
            assert np.allclose(
                net.forward(x), ref.forward(x), atol=1e-12, rtol=0
            )
            rt = net.forward(net.forward(x), inverse=True)
            assert np.allclose(rt, x, atol=1e-10, rtol=0)
        finally:
            net.backend.close()
        assert mp.active_children() == []

    def test_wide_complex_batch_matches_fused(self, rng):
        net = sharded_net(allow_phase=True, seed=9)
        ref = fused_twin(net)
        x = rng.normal(size=(6, 256)) + 1j * rng.normal(size=(6, 256))
        try:
            assert np.allclose(
                net.forward(x), ref.forward(x), atol=1e-12, rtol=0
            )
        finally:
            net.backend.close()

    def test_parameter_update_reaches_workers(self, rng):
        net = sharded_net()
        x = rng.normal(size=(6, 200))
        try:
            before = net.forward(x)
            net.set_flat_params(net.get_flat_params() * 0.5)
            after = net.forward(x)
            assert not np.allclose(before, after)
            assert np.allclose(after, fused_twin(net).forward(x), atol=1e-12)
        finally:
            net.backend.close()

    def test_phase_network_rejects_real_wide_batch(self, rng):
        net = sharded_net(allow_phase=True, seed=9)
        try:
            with pytest.raises(GateError, match="complex state batch"):
                net.forward_inplace(rng.normal(size=(6, 256)))
            # The contract error surfaces parent-side, before any spawn.
            assert net.backend._slot.pool is None
        finally:
            net.backend.close()

    def test_autoencoder_round_trip_on_shared_pool(self, rng):
        ae = QuantumAutoencoder(4, 2, 2, 2, backend="sharded:2")
        for netw in (ae.uc, ae.ur):
            netw.backend._min_shard_columns = 32
        ae.initialize("uniform", rng=np.random.default_rng(2))
        ref = QuantumAutoencoder(4, 2, 2, 2, backend="fused")
        ref.uc.set_flat_params(ae.uc.get_flat_params())
        ref.ur.set_flat_params(ae.ur.get_flat_params())
        X = np.abs(rng.normal(size=(120, 4))) + 0.1
        try:
            out = ae.forward(X)
            assert np.allclose(out.x_hat, ref.forward(X).x_hat, atol=1e-12)
            # Both networks ran on one pool.
            assert ae.uc.backend._slot.pool is ae.ur.backend._slot.pool
        finally:
            ae.uc.backend.close()
        assert mp.active_children() == []


class TestHigherLayerWiring:
    def test_codec_spec_accepts_sharded_spelling(self):
        from repro.api import CodecSpec

        spec = CodecSpec(backend="sharded:2")
        assert spec.backend == "sharded:2"
        assert CodecSpec.from_dict(spec.to_dict()) == spec

    def test_codec_spec_rejects_bad_worker_count(self):
        from repro.api import CodecSpec
        from repro.exceptions import NetworkConfigError

        with pytest.raises(NetworkConfigError):
            CodecSpec(backend="sharded:nope")

    def test_trainer_runs_on_sharded_backend(self, rng):
        """Narrow training batches fall through to the in-process fused
        delegate — same losses, no worker processes spawned."""
        from repro.training.trainer import Trainer

        def train(backend):
            ae = QuantumAutoencoder(4, 2, 2, 2, backend=backend)
            ae.initialize("uniform", rng=np.random.default_rng(6))
            X = np.abs(np.random.default_rng(7).normal(size=(8, 4))) + 0.1
            return ae, Trainer(iterations=3).train(ae, X)

        sharded_ae, sharded_result = train("sharded:2")
        _, fused_result = train("fused")
        assert sharded_result.history.loss_r == pytest.approx(
            fused_result.history.loss_r
        )
        assert sharded_ae.uc.backend._slot.pool is None  # never spawned

    def test_run_sweep_backend_injection_accepts_sharded(self):
        from repro.parallel import run_sweep

        results = run_sweep(
            _echo_backend, [{"x": 1}], processes=0, backend="sharded:2"
        )
        assert results[0].result == "sharded:2"


def _echo_backend(config, seed):
    return config["backend"]
