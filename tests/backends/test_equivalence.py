"""Backend-equivalence suite: loop vs fused must agree everywhere.

The loop backend is the bit-exact reference (the seed implementation's
kernels); the fused backend reassociates the same arithmetic into GEMMs,
so outputs agree to rounding (~1e-15 per pass) but not bitwise.

Gradient tolerances are per-method: the exact methods (``derivative``,
``adjoint``) agree to 1e-12; the finite-difference methods carry their own
cancellation noise floor of ``~ulp(loss)/delta`` — ``delta = 1e-8``
(forward) and ``1e-6`` (central) put that floor near 1e-8 and 1e-10
respectively, far above the backends' 1e-15 forward agreement, so those
methods are compared at the floor, not at 1e-12.

The same floors govern the engine comparison (``looped`` vs ``batched``
drive of the cached workspace): both engines consume the identical cached
prefix/suffix arrays, so any disagreement is pure reassociation noise —
``<= 1e-8`` for every method is the acceptance bar
(``benchmarks/bench_gradients.py`` gates it at the paper configuration).
"""

import numpy as np
import pytest

from repro.backends.cached import PrefixSuffixWorkspace
from repro.backends.program import compile_program
from repro.network import Projection, QuantumNetwork
from repro.training.gradients import loss_and_gradient

DIMS = [3, 5, 8]  # includes non-power-of-two dims
GRAD_TOL = {
    "fd": 1e-6,
    "central": 1e-9,
    "derivative": 1e-12,
    "adjoint": 1e-12,
}
ENGINE_TOL = {
    "fd": 1e-8,
    "central": 1e-10,
    "derivative": 1e-12,
    # Batched adjoint is the vectorised/jitted sweep, looped the per-gate
    # reference walk — exact methods both, agreeing at rounding level.
    "adjoint": 1e-12,
}


def engine_tol(method, loss_value):
    """Per-method engine tolerance, floored at fd's own cancellation noise.

    Both engines evaluate ``(loss(plus) - base) / delta`` from the same
    cached arrays; their results can only differ by reassociation noise in
    ``loss(plus)``, which enters the quotient in quanta of
    ``ulp(loss)/delta``.  At the paper scale (mean-reduced loss ~1e-3)
    that floor sits far below 1e-8 — the benchmark gates the absolute bar
    there — but tiny unit-test problems have O(0.1) losses whose quanta
    are ~5e-9, so the bound must scale with the observed loss.
    """
    tol = ENGINE_TOL[method]
    if method == "fd":
        tol = max(tol, 8.0 * np.spacing(abs(loss_value)) / 1e-8)
    return tol


def make_network(dim, layers=3, descending=False, allow_phase=False, seed=11):
    rng = np.random.default_rng(seed)
    net = QuantumNetwork(
        dim, layers, descending=descending, allow_phase=allow_phase
    )
    net.initialize("uniform", rng=rng)
    if allow_phase:
        params = net.get_flat_params()
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def loop_and_fused(dim, **kwargs):
    net = make_network(dim, **kwargs)
    return net, net.copy().set_backend("fused")


def batch(dim, m=7, complex_=False, seed=5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(dim, m))
    if complex_:
        x = x + 1j * rng.normal(size=(dim, m))
    return x / np.linalg.norm(x, axis=0)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
class TestForwardEquivalence:
    def test_forward_real(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim)
        assert np.allclose(loop.forward(x), fused.forward(x), atol=1e-12)

    def test_forward_complex_input(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim, complex_=True)
        assert np.allclose(loop.forward(x), fused.forward(x), atol=1e-12)

    def test_forward_allow_phase(self, dim, descending):
        loop, fused = loop_and_fused(
            dim, descending=descending, allow_phase=True
        )
        x = batch(dim)
        out_loop = loop.forward(x)
        out_fused = fused.forward(x)
        assert np.iscomplexobj(out_loop) and np.iscomplexobj(out_fused)
        assert np.allclose(out_loop, out_fused, atol=1e-12)

    def test_inverse(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim)
        assert np.allclose(
            loop.forward(x, inverse=True),
            fused.forward(x, inverse=True),
            atol=1e-12,
        )

    def test_inverse_roundtrip(self, dim, descending):
        _, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim)
        assert np.allclose(
            fused.forward(fused.forward(x), inverse=True), x, atol=1e-12
        )

    def test_inverse_allow_phase(self, dim, descending):
        loop, fused = loop_and_fused(
            dim, descending=descending, allow_phase=True
        )
        x = batch(dim, complex_=True)
        assert np.allclose(
            loop.forward(x, inverse=True),
            fused.forward(x, inverse=True),
            atol=1e-12,
        )

    def test_unitary(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        assert np.allclose(loop.unitary(), fused.unitary(), atol=1e-12)

    def test_single_column(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        v = batch(dim, m=1).ravel()
        assert np.allclose(loop.forward(v), fused.forward(v), atol=1e-12)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
def test_forward_trace_equivalence(dim, descending):
    loop, fused = loop_and_fused(dim, descending=descending)
    x = batch(dim)
    t_loop = loop.forward_trace(x)
    t_fused = fused.forward_trace(x)
    assert np.array_equal(t_loop.output, t_fused.output)
    assert np.array_equal(t_loop.row_tape, t_fused.row_tape)
    assert np.array_equal(t_loop.gate_index, t_fused.gate_index)
    assert np.array_equal(t_loop.modes, t_fused.modes)


@pytest.mark.parametrize("method", sorted(GRAD_TOL))
@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
def test_gradient_equivalence_real(method, dim, descending):
    loop, fused = loop_and_fused(dim, descending=descending)
    x = batch(dim)
    t = batch(dim, seed=6)
    proj = Projection.last(dim, max(1, dim // 2))
    l1, g1 = loss_and_gradient(loop, x, t, projection=proj, method=method)
    l2, g2 = loss_and_gradient(fused, x, t, projection=proj, method=method)
    assert l1 == pytest.approx(l2, abs=1e-12)
    assert np.max(np.abs(g1 - g2)) < GRAD_TOL[method]


@pytest.mark.parametrize("method", ["fd", "central", "derivative"])
@pytest.mark.parametrize("dim", DIMS)
def test_gradient_equivalence_complex(method, dim):
    loop, fused = loop_and_fused(dim, allow_phase=True, descending=True)
    x = batch(dim)
    t = batch(dim, seed=6)
    l1, g1 = loss_and_gradient(loop, x, t, method=method)
    l2, g2 = loss_and_gradient(fused, x, t, method=method)
    assert g1.shape == g2.shape == (2 * loop.num_thetas,)
    assert l1 == pytest.approx(l2, abs=1e-12)
    assert np.max(np.abs(g1 - g2)) < GRAD_TOL[method]


@pytest.mark.parametrize("method", ["fd", "central", "derivative"])
def test_cached_gradient_does_not_mutate_params(method):
    _, fused = loop_and_fused(5)
    before = fused.get_flat_params()
    loss_and_gradient(fused, batch(5), batch(5, seed=6), method=method)
    assert np.array_equal(fused.get_flat_params(), before)


def test_cached_fd_matches_exact_gradient():
    """Cached fd stays within fd's truncation error of the exact gradient."""
    loop, fused = loop_and_fused(8, layers=4)
    x = batch(8)
    t = batch(8, seed=6)
    _, exact = loss_and_gradient(loop, x, t, method="adjoint")
    _, fd = loss_and_gradient(fused, x, t, method="fd")
    assert np.max(np.abs(fd - exact)) < 1e-5


@pytest.mark.parametrize("method", sorted(ENGINE_TOL))
@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
@pytest.mark.parametrize("allow_phase", [False, True])
def test_engine_equivalence(method, dim, descending, allow_phase):
    """Batched vs looped engines across dims, orders and dtypes."""
    _, fused = loop_and_fused(
        dim, descending=descending, allow_phase=allow_phase
    )
    x = batch(dim)
    t = batch(dim, seed=6)
    proj = Projection.last(dim, max(1, dim // 2))
    l1, g1 = loss_and_gradient(
        fused, x, t, projection=proj, method=method, engine="looped"
    )
    l2, g2 = loss_and_gradient(
        fused, x, t, projection=proj, method=method, engine="batched"
    )
    assert g1.shape == g2.shape == (fused.num_parameters,)
    assert l1 == pytest.approx(l2, abs=1e-12)
    assert np.max(np.abs(g1 - g2)) <= engine_tol(method, l1)


@pytest.mark.parametrize("method", ["fd", "central", "derivative"])
@pytest.mark.parametrize("dim", DIMS)
def test_engine_equivalence_complex_inputs(method, dim):
    """Engines agree for complex input batches on real networks too."""
    _, fused = loop_and_fused(dim)
    x = batch(dim, complex_=True)
    t = batch(dim, complex_=True, seed=6)
    l1, g1 = loss_and_gradient(fused, x, t, method=method, engine="looped")
    _, g2 = loss_and_gradient(fused, x, t, method=method, engine="batched")
    assert np.max(np.abs(g1 - g2)) <= engine_tol(method, l1)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
@pytest.mark.parametrize("allow_phase", [False, True])
class TestWorkspaceBatchedMethods:
    """The stacked workspace methods slice-for-slice match the looped ones."""

    def workspace(self, dim, descending, allow_phase, m=5):
        net = make_network(
            dim, descending=descending, allow_phase=allow_phase
        )
        ws = PrefixSuffixWorkspace(net, compile_program(net), batch(dim, m=m))
        return net, ws

    def test_perturbed_outputs_stack(self, dim, descending, allow_phase):
        _, ws = self.workspace(dim, descending, allow_phase)
        idx = np.arange(ws.num_parameters)
        stack = ws.perturbed_outputs(idx, 1e-4)
        for i in range(ws.num_parameters):
            assert np.allclose(
                stack[i], ws.perturbed_output(i, 1e-4), atol=1e-13
            )

    def test_perturbed_outputs_keep_restricts(self, dim, descending, allow_phase):
        _, ws = self.workspace(dim, descending, allow_phase)
        proj = Projection.last(dim, max(1, dim // 2))
        idx = np.arange(ws.num_parameters)
        restricted = ws.perturbed_outputs(idx, 1e-4, keep=proj.mask)
        assert restricted.shape[1] == proj.compressed_dim
        full = ws.perturbed_outputs(idx, 1e-4)
        assert np.allclose(restricted, full[:, proj.mask], atol=1e-13)

    def test_derivative_outputs_stack(self, dim, descending, allow_phase):
        _, ws = self.workspace(dim, descending, allow_phase)
        idx = np.arange(ws.num_parameters)
        stack = ws.derivative_outputs(idx)
        for i in range(ws.num_parameters):
            assert np.allclose(stack[i], ws.derivative_output(i), atol=1e-13)

    def test_derivative_gradients_contraction(
        self, dim, descending, allow_phase
    ):
        _, ws = self.workspace(dim, descending, allow_phase)
        rng = np.random.default_rng(3)
        lam = rng.normal(size=ws.base_output.shape).astype(ws.dtype)
        if np.iscomplexobj(lam):
            lam = lam + 1j * rng.normal(size=ws.base_output.shape)
        idx = np.arange(ws.num_parameters)
        grads = ws.derivative_gradients(idx, lam)
        expected = np.array(
            [
                float(np.real(np.sum(np.conj(lam) * ws.derivative_output(i))))
                for i in range(ws.num_parameters)
            ]
        )
        assert np.allclose(grads, expected, atol=1e-12)

    def test_param_chunks_cover_all_parameters(
        self, dim, descending, allow_phase
    ):
        _, ws = self.workspace(dim, descending, allow_phase)
        seen = np.concatenate(list(ws.param_chunks()))
        assert sorted(seen.tolist()) == list(range(ws.num_parameters))
        per_layer = np.concatenate(list(ws.layer_param_chunks()))
        assert sorted(per_layer.tolist()) == list(range(ws.num_parameters))

    def test_param_chunks_respect_budget(self, dim, descending, allow_phase):
        _, ws = self.workspace(dim, descending, allow_phase)
        chunks = list(ws.param_chunks(max_elements=1))
        assert len(chunks) == len(list(ws.layer_param_chunks()))


def test_vectorized_build_matches_reference_sweep():
    """GEMM-assembled workspaces equal the per-gate reference sweep."""
    for descending in (False, True):
        for allow_phase in (False, True):
            net = make_network(
                6, layers=4, descending=descending, allow_phase=allow_phase
            )
            prog = compile_program(net)
            x = batch(6)
            ws = PrefixSuffixWorkspace(net, prog, x)
            ref = PrefixSuffixWorkspace.__new__(PrefixSuffixWorkspace)
            ref.program, ref.dtype = prog, ws.dtype
            ref.num_thetas = ws.num_thetas
            ref.num_parameters = ws.num_parameters
            ref._thetas, ref._alphas = ws._thetas, ws._alphas
            ref._gate_of_param = ws._gate_of_param
            ref._build_reference(np.asarray(x))
            assert np.allclose(ws.base_output, ref.base_output, atol=1e-13)
            assert np.allclose(ws.row_tape, ref.row_tape, atol=1e-13)
            assert np.allclose(ws.suffix_cols, ref.suffix_cols, atol=1e-13)


def test_gradient_after_parameter_update():
    """The workspace is rebuilt per evaluation — no stale caching."""
    loop, fused = loop_and_fused(5)
    x, t = batch(5), batch(5, seed=6)
    loss_and_gradient(fused, x, t, method="derivative")
    rng = np.random.default_rng(99)
    new = rng.normal(size=loop.num_parameters)
    loop.set_flat_params(new)
    fused.set_flat_params(new)
    _, g1 = loss_and_gradient(loop, x, t, method="derivative")
    _, g2 = loss_and_gradient(fused, x, t, method="derivative")
    assert np.max(np.abs(g1 - g2)) < 1e-12
