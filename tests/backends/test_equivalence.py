"""Backend-equivalence suite: loop vs fused must agree everywhere.

The loop backend is the bit-exact reference (the seed implementation's
kernels); the fused backend reassociates the same arithmetic into GEMMs,
so outputs agree to rounding (~1e-15 per pass) but not bitwise.

Gradient tolerances are per-method: the exact methods (``derivative``,
``adjoint``) agree to 1e-12; the finite-difference methods carry their own
cancellation noise floor of ``~ulp(loss)/delta`` — ``delta = 1e-8``
(forward) and ``1e-6`` (central) put that floor near 1e-8 and 1e-10
respectively, far above the backends' 1e-15 forward agreement, so those
methods are compared at the floor, not at 1e-12.
"""

import numpy as np
import pytest

from repro.network import Projection, QuantumNetwork
from repro.training.gradients import loss_and_gradient

DIMS = [3, 5, 8]  # includes non-power-of-two dims
GRAD_TOL = {
    "fd": 1e-6,
    "central": 1e-9,
    "derivative": 1e-12,
    "adjoint": 1e-12,
}


def make_network(dim, layers=3, descending=False, allow_phase=False, seed=11):
    rng = np.random.default_rng(seed)
    net = QuantumNetwork(
        dim, layers, descending=descending, allow_phase=allow_phase
    )
    net.initialize("uniform", rng=rng)
    if allow_phase:
        params = net.get_flat_params()
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def loop_and_fused(dim, **kwargs):
    net = make_network(dim, **kwargs)
    return net, net.copy().set_backend("fused")


def batch(dim, m=7, complex_=False, seed=5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(dim, m))
    if complex_:
        x = x + 1j * rng.normal(size=(dim, m))
    return x / np.linalg.norm(x, axis=0)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
class TestForwardEquivalence:
    def test_forward_real(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim)
        assert np.allclose(loop.forward(x), fused.forward(x), atol=1e-12)

    def test_forward_complex_input(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim, complex_=True)
        assert np.allclose(loop.forward(x), fused.forward(x), atol=1e-12)

    def test_forward_allow_phase(self, dim, descending):
        loop, fused = loop_and_fused(
            dim, descending=descending, allow_phase=True
        )
        x = batch(dim)
        out_loop = loop.forward(x)
        out_fused = fused.forward(x)
        assert np.iscomplexobj(out_loop) and np.iscomplexobj(out_fused)
        assert np.allclose(out_loop, out_fused, atol=1e-12)

    def test_inverse(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim)
        assert np.allclose(
            loop.forward(x, inverse=True),
            fused.forward(x, inverse=True),
            atol=1e-12,
        )

    def test_inverse_roundtrip(self, dim, descending):
        _, fused = loop_and_fused(dim, descending=descending)
        x = batch(dim)
        assert np.allclose(
            fused.forward(fused.forward(x), inverse=True), x, atol=1e-12
        )

    def test_inverse_allow_phase(self, dim, descending):
        loop, fused = loop_and_fused(
            dim, descending=descending, allow_phase=True
        )
        x = batch(dim, complex_=True)
        assert np.allclose(
            loop.forward(x, inverse=True),
            fused.forward(x, inverse=True),
            atol=1e-12,
        )

    def test_unitary(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        assert np.allclose(loop.unitary(), fused.unitary(), atol=1e-12)

    def test_single_column(self, dim, descending):
        loop, fused = loop_and_fused(dim, descending=descending)
        v = batch(dim, m=1).ravel()
        assert np.allclose(loop.forward(v), fused.forward(v), atol=1e-12)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
def test_forward_trace_equivalence(dim, descending):
    loop, fused = loop_and_fused(dim, descending=descending)
    x = batch(dim)
    t_loop = loop.forward_trace(x)
    t_fused = fused.forward_trace(x)
    assert np.array_equal(t_loop.output, t_fused.output)
    assert np.array_equal(t_loop.row_tape, t_fused.row_tape)
    assert np.array_equal(t_loop.gate_index, t_fused.gate_index)
    assert np.array_equal(t_loop.modes, t_fused.modes)


@pytest.mark.parametrize("method", sorted(GRAD_TOL))
@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
def test_gradient_equivalence_real(method, dim, descending):
    loop, fused = loop_and_fused(dim, descending=descending)
    x = batch(dim)
    t = batch(dim, seed=6)
    proj = Projection.last(dim, max(1, dim // 2))
    l1, g1 = loss_and_gradient(loop, x, t, projection=proj, method=method)
    l2, g2 = loss_and_gradient(fused, x, t, projection=proj, method=method)
    assert l1 == pytest.approx(l2, abs=1e-12)
    assert np.max(np.abs(g1 - g2)) < GRAD_TOL[method]


@pytest.mark.parametrize("method", ["fd", "central", "derivative"])
@pytest.mark.parametrize("dim", DIMS)
def test_gradient_equivalence_complex(method, dim):
    loop, fused = loop_and_fused(dim, allow_phase=True, descending=True)
    x = batch(dim)
    t = batch(dim, seed=6)
    l1, g1 = loss_and_gradient(loop, x, t, method=method)
    l2, g2 = loss_and_gradient(fused, x, t, method=method)
    assert g1.shape == g2.shape == (2 * loop.num_thetas,)
    assert l1 == pytest.approx(l2, abs=1e-12)
    assert np.max(np.abs(g1 - g2)) < GRAD_TOL[method]


@pytest.mark.parametrize("method", ["fd", "central", "derivative"])
def test_cached_gradient_does_not_mutate_params(method):
    _, fused = loop_and_fused(5)
    before = fused.get_flat_params()
    loss_and_gradient(fused, batch(5), batch(5, seed=6), method=method)
    assert np.array_equal(fused.get_flat_params(), before)


def test_cached_fd_matches_exact_gradient():
    """Cached fd stays within fd's truncation error of the exact gradient."""
    loop, fused = loop_and_fused(8, layers=4)
    x = batch(8)
    t = batch(8, seed=6)
    _, exact = loss_and_gradient(loop, x, t, method="adjoint")
    _, fd = loss_and_gradient(fused, x, t, method="fd")
    assert np.max(np.abs(fd - exact)) < 1e-5


def test_gradient_after_parameter_update():
    """The workspace is rebuilt per evaluation — no stale caching."""
    loop, fused = loop_and_fused(5)
    x, t = batch(5), batch(5, seed=6)
    loss_and_gradient(fused, x, t, method="derivative")
    rng = np.random.default_rng(99)
    new = rng.normal(size=loop.num_parameters)
    loop.set_flat_params(new)
    fused.set_flat_params(new)
    _, g1 = loss_and_gradient(loop, x, t, method="derivative")
    _, g2 = loss_and_gradient(fused, x, t, method="derivative")
    assert np.max(np.abs(g1 - g2)) < 1e-12
