"""Backend selection plumbing across network, trainer, experiments, CLI."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.cli import build_parser
from repro.experiments.config import PaperConfig
from repro.network import QuantumAutoencoder, QuantumNetwork
from repro.parallel.batch import chunked_forward
from repro.parallel.sweep import run_sweep, sweep_grid
from repro.training.trainer import Trainer


class TestNetworkWiring:
    def test_default_backend_is_loop(self):
        assert QuantumNetwork(4, 2).backend.name == "loop"

    def test_constructor_backend(self):
        assert QuantumNetwork(4, 2, backend="fused").backend.name == "fused"

    def test_set_backend_returns_self(self):
        net = QuantumNetwork(4, 2)
        assert net.set_backend("fused") is net
        assert net.backend.name == "fused"

    def test_repr_mentions_backend(self):
        assert "backend=fused" in repr(QuantumNetwork(4, 2, backend="fused"))

    def test_copy_preserves_backend(self):
        net = QuantumNetwork(4, 2, backend="fused")
        assert net.copy().backend.name == "fused"

    def test_reversed_structure_preserves_backend(self):
        net = QuantumNetwork(4, 2, backend="fused")
        assert net.reversed_structure().backend.name == "fused"

    def test_copy_preserves_unregistered_custom_backend(self):
        """Regression: copy() used the registry name, breaking custom
        (unregistered) Backend instances the constructor accepts."""
        from repro.backends import LoopBackend

        class CustomBackend(LoopBackend):
            name = "custom-unregistered"

        net = QuantumNetwork(4, 2, backend=CustomBackend())
        assert net.copy().backend.name == "custom-unregistered"
        assert (
            net.reversed_structure().backend.name == "custom-unregistered"
        )

    def test_spawn_carries_backend_configuration(self):
        """Configured backends survive copy() via Backend.spawn()."""
        from repro.backends import LoopBackend

        class TiledBackend(LoopBackend):
            name = "tiled"

            def __init__(self, tile: int = 8) -> None:
                super().__init__()
                self.tile = tile

            def spawn(self):
                return TiledBackend(self.tile)

        net = QuantumNetwork(4, 2, backend=TiledBackend(tile=32))
        assert net.copy().backend.tile == 32

    def test_switch_back_to_loop(self):
        net = QuantumNetwork(4, 2, backend="fused").initialize(
            "uniform", rng=np.random.default_rng(0)
        )
        x = np.random.default_rng(1).normal(size=(4, 3))
        fused_out = net.forward(x)
        loop_out = net.set_backend("loop").forward(x)
        assert np.allclose(fused_out, loop_out, atol=1e-12)


class TestAutoencoderWiring:
    def test_constructor_backend(self):
        ae = QuantumAutoencoder(4, 2, 2, 2, backend="fused")
        assert ae.backend_name == "fused"
        assert ae.uc.backend.name == "fused"
        assert ae.ur.backend.name == "fused"

    def test_set_backend(self):
        ae = QuantumAutoencoder(4, 2, 2, 2)
        assert ae.set_backend("fused") is ae
        assert ae.backend_name == "fused"

    def test_pipeline_output_matches_loop(self):
        rng = np.random.default_rng(4)
        X = np.abs(rng.normal(size=(10, 4))) + 0.1
        ae_loop = QuantumAutoencoder(4, 2, 2, 2).initialize(
            rng=np.random.default_rng(0)
        )
        ae_fused = QuantumAutoencoder(4, 2, 2, 2, backend="fused").initialize(
            rng=np.random.default_rng(0)
        )
        out_loop = ae_loop.forward(X)
        out_fused = ae_fused.forward(X)
        assert np.allclose(out_loop.x_hat, out_fused.x_hat, atol=1e-10)
        assert np.allclose(
            out_loop.compact_codes, out_fused.compact_codes, atol=1e-10
        )


class TestTrainerWiring:
    @pytest.mark.parametrize("method", ["fd", "derivative"])
    def test_fused_training_matches_loop(self, method):
        X = np.array(
            [[1.0, 0, 0, 1], [0, 1, 1, 0], [1, 1, 0, 0], [0, 0, 1, 1]]
        )

        def train(backend):
            ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
                rng=np.random.default_rng(0)
            )
            trainer = Trainer(
                iterations=5, gradient_method=method, backend=backend
            )
            return trainer.train(ae, X)

        loop_result = train("loop")
        fused_result = train("fused")
        assert np.allclose(
            loop_result.history.loss_r,
            fused_result.history.loss_r,
            atol=1e-6,
        )
        assert np.allclose(
            loop_result.autoencoder.uc.get_flat_params(),
            fused_result.autoencoder.uc.get_flat_params(),
            atol=1e-6,
        )

    def test_trainer_applies_backend(self):
        ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
            rng=np.random.default_rng(0)
        )
        X = np.abs(np.random.default_rng(1).normal(size=(4, 4))) + 0.1
        Trainer(iterations=1, backend="fused").train(ae, X)
        assert ae.backend_name == "fused"

    def test_trainer_none_keeps_existing_backend(self):
        ae = QuantumAutoencoder(4, 2, 2, 2, backend="fused").initialize(
            rng=np.random.default_rng(0)
        )
        X = np.abs(np.random.default_rng(1).normal(size=(4, 4))) + 0.1
        Trainer(iterations=1).train(ae, X)
        assert ae.backend_name == "fused"


class TestExperimentWiring:
    def test_config_default(self):
        assert PaperConfig().backend == "loop"

    def test_config_builds_fused_autoencoder(self):
        cfg = PaperConfig(backend="fused", compression_layers=2,
                          reconstruction_layers=2, iterations=2)
        assert cfg.build_autoencoder().backend_name == "fused"
        assert cfg.build_trainer().backend == "fused"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ExperimentError, match="unknown backend"):
            PaperConfig(backend="cuda")

    def test_config_backend_name_case_insensitive(self):
        """Config validation accepts what make_backend accepts."""
        cfg = PaperConfig(backend="FUSED", compression_layers=2,
                          reconstruction_layers=2)
        assert cfg.build_autoencoder().backend_name == "fused"

    def test_cli_backend_flag(self):
        args = build_parser().parse_args(["fig4", "--backend", "fused"])
        assert args.backend == "fused"

    def test_cli_backend_default(self):
        args = build_parser().parse_args(["fig4"])
        assert args.backend == "loop"

    def test_cli_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--backend", "cuda"])


class TestGradEngineWiring:
    def test_cli_grad_engine_default(self):
        args = build_parser().parse_args(["fig4"])
        assert args.grad_engine == "batched"

    def test_cli_grad_engine_flag(self):
        args = build_parser().parse_args(
            ["table1", "--grad-engine", "looped"]
        )
        assert args.grad_engine == "looped"

    def test_cli_rejects_unknown_grad_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--grad-engine", "magic"])

    def test_cli_help_epilog_documents_grad_engine(self):
        assert "--grad-engine" in build_parser().epilog

    def test_config_passes_engine_to_trainer(self):
        cfg = PaperConfig(grad_engine="looped", compression_layers=2,
                          reconstruction_layers=2, iterations=2)
        assert cfg.build_trainer().grad_engine == "looped"

    def test_trainer_rejects_unknown_engine(self):
        from repro.exceptions import TrainingError

        with pytest.raises(TrainingError, match="unknown gradient engine"):
            Trainer(grad_engine="magic")

    def test_engines_train_to_same_parameters(self):
        X = np.array(
            [[1.0, 0, 0, 1], [0, 1, 1, 0], [1, 1, 0, 0], [0, 0, 1, 1]]
        )

        def train(engine):
            ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
                rng=np.random.default_rng(0)
            )
            trainer = Trainer(
                iterations=5,
                gradient_method="fd",
                backend="fused",
                grad_engine=engine,
            )
            return trainer.train(ae, X)

        looped = train("looped")
        batched = train("batched")
        assert np.allclose(
            looped.autoencoder.uc.get_flat_params(),
            batched.autoencoder.uc.get_flat_params(),
            atol=1e-7,
        )
        assert np.allclose(
            looped.history.loss_r, batched.history.loss_r, atol=1e-7
        )


def _echo_backend(config, seed):
    return config.get("backend")


class TestSweepWiring:
    def test_backend_injected_into_configs(self):
        results = run_sweep(
            _echo_backend,
            sweep_grid(layers=[1, 2]),
            processes=0,
            backend="fused",
        )
        assert [r.result for r in results] == ["fused", "fused"]
        assert all(r.config["backend"] == "fused" for r in results)

    def test_explicit_config_backend_wins(self):
        results = run_sweep(
            _echo_backend,
            [{"layers": 1, "backend": "loop"}],
            processes=0,
            backend="fused",
        )
        assert results[0].result == "loop"

    def test_no_backend_leaves_configs_untouched(self):
        results = run_sweep(_echo_backend, [{"layers": 1}], processes=0)
        assert results[0].result is None

    def test_unknown_backend_raises(self):
        with pytest.raises(ExperimentError, match="unknown backend"):
            run_sweep(_echo_backend, [{}], processes=0, backend="cuda")


class TestParallelBatchWiring:
    def test_chunked_forward_uses_network_backend(self):
        net = QuantumNetwork(4, 2, backend="fused").initialize(
            "uniform", rng=np.random.default_rng(0)
        )
        x = np.random.default_rng(1).normal(size=(4, 10))
        ref = QuantumNetwork(4, 2)
        ref.set_flat_params(net.get_flat_params())
        assert np.allclose(
            chunked_forward(net, x, chunk_size=3), ref.forward(x), atol=1e-12
        )
