"""Tests for repro.backends.program (GateProgram compilation)."""

import numpy as np
import pytest

from repro.backends import GateProgram, compile_program
from repro.exceptions import BackendError
from repro.network import QuantumNetwork


class TestCompileProgram:
    def test_gate_count(self):
        prog = compile_program(QuantumNetwork(5, 3))
        assert prog.num_gates == 3 * 4
        assert prog.num_thetas == 12
        assert prog.num_parameters == 12

    def test_ascending_order(self):
        prog = compile_program(QuantumNetwork(4, 2))
        assert prog.modes.tolist() == [0, 1, 2, 0, 1, 2]
        assert prog.layer_index.tolist() == [0, 0, 0, 1, 1, 1]
        assert prog.theta_index.tolist() == [0, 1, 2, 3, 4, 5]

    def test_descending_order(self):
        prog = compile_program(QuantumNetwork(4, 2, descending=True))
        assert prog.modes.tolist() == [2, 1, 0, 2, 1, 0]
        # theta index i always means the gate at modes (i, i+1).
        assert prog.theta_index.tolist() == [2, 1, 0, 5, 4, 3]

    def test_real_network_has_no_alpha_indices(self):
        prog = compile_program(QuantumNetwork(4, 2))
        assert not prog.allow_phase
        assert np.all(prog.alpha_index == -1)

    def test_phase_network_alpha_indices(self):
        net = QuantumNetwork(4, 2, allow_phase=True)
        prog = compile_program(net)
        assert prog.allow_phase
        assert prog.num_parameters == 2 * net.num_thetas
        assert np.array_equal(
            prog.alpha_index, prog.theta_index + net.num_thetas
        )

    def test_matches_as_circuit_order(self):
        net = QuantumNetwork(5, 2, descending=True)
        prog = compile_program(net)
        circuit_modes = [g.mode for g in net.as_circuit().gates]
        assert prog.modes.tolist() == circuit_modes

    def test_gate_for_parameter_roundtrip(self):
        net = QuantumNetwork(6, 3, descending=True, allow_phase=True)
        prog = compile_program(net)
        gate_of = prog.gate_for_parameter()
        for g in range(prog.num_gates):
            assert gate_of[prog.theta_index[g]] == g
            assert gate_of[prog.alpha_index[g]] == g

    def test_structural_only(self):
        """The program ignores parameter values entirely."""
        net = QuantumNetwork(4, 2)
        before = compile_program(net)
        net.initialize("uniform", rng=np.random.default_rng(0))
        after = compile_program(net)
        assert np.array_equal(before.modes, after.modes)
        assert np.array_equal(before.theta_index, after.theta_index)

    def test_shape_validation(self):
        with pytest.raises(BackendError, match="shape"):
            GateProgram(
                dim=4,
                num_layers=1,
                allow_phase=False,
                modes=np.zeros(3, dtype=np.int64),
                layer_index=np.zeros(2, dtype=np.int64),
                theta_index=np.zeros(3, dtype=np.int64),
                alpha_index=np.full(3, -1, dtype=np.int64),
            )
