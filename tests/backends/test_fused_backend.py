"""Tests for the fused backend's caching, inspection, and error parity."""

import numpy as np
import pytest

from repro.backends import (
    FusedBackend,
    LoopBackend,
    available_backends,
    make_backend,
)
from repro.exceptions import BackendError, GateError
from repro.network import QuantumNetwork


def make_net(dim=5, layers=3, seed=2, **kwargs):
    return QuantumNetwork(dim, layers, backend="fused", **kwargs).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


class TestRegistry:
    def test_available(self):
        assert available_backends() == [
            "fused",
            "jax",
            "loop",
            "numba",
            "sharded",
        ]

    def test_make_by_name(self):
        assert isinstance(make_backend("fused"), FusedBackend)
        assert isinstance(make_backend("LOOP"), LoopBackend)

    def test_spec_argument_rejected_without_parser(self):
        with pytest.raises(BackendError, match="takes no ':' argument"):
            make_backend("loop:3")
        with pytest.raises(BackendError, match="takes no ':' argument"):
            make_backend("fused:2")

    def test_make_by_class_and_instance(self):
        assert isinstance(make_backend(FusedBackend), FusedBackend)
        inst = FusedBackend()
        assert make_backend(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError, match="unknown backend"):
            make_backend("tensorflow")

    def test_backend_cannot_be_shared(self):
        net = make_net()
        with pytest.raises(BackendError, match="already bound"):
            QuantumNetwork(5, 3, backend=net.backend)

    def test_unbound_backend_rejects_use(self):
        with pytest.raises(BackendError, match="not bound"):
            FusedBackend().forward_inplace(np.eye(4))


class TestUnitaryCache:
    def test_unitary_matches_network(self):
        net = make_net()
        ref = QuantumNetwork(5, 3)
        ref.set_flat_params(net.get_flat_params())
        assert np.allclose(net.backend.unitary(), ref.unitary(), atol=1e-12)

    def test_layer_product_equals_network_unitary(self):
        net = make_net()
        prod = np.eye(net.dim)
        for lu in net.backend.layer_unitaries():
            prod = lu @ prod
        assert np.allclose(prod, net.backend.unitary(), atol=1e-12)

    def test_set_flat_params_invalidates(self):
        net = make_net()
        x = np.random.default_rng(0).normal(size=(5, 4))
        before = net.forward(x)
        params = net.get_flat_params()
        params[0] += 0.5
        net.set_flat_params(params)
        after = net.forward(x)
        assert not np.allclose(before, after)
        # And the refreshed result matches a fresh loop network.
        ref = QuantumNetwork(5, 3)
        ref.set_flat_params(params)
        assert np.allclose(after, ref.forward(x), atol=1e-12)

    def test_direct_theta_mutation_is_picked_up(self):
        """The cache validates against live parameters, not just invalidate()."""
        net = make_net()
        x = np.random.default_rng(0).normal(size=(5, 4))
        before = net.forward(x)
        net.layers[0].thetas[0] += 0.7  # bypasses set_flat_params
        after = net.forward(x)
        assert not np.allclose(before, after)
        ref = QuantumNetwork(5, 3)
        ref.set_flat_params(net.get_flat_params())
        assert np.allclose(after, ref.forward(x), atol=1e-12)

    def test_repeated_forward_is_consistent(self):
        net = make_net()
        x = np.random.default_rng(0).normal(size=(5, 4))
        assert np.array_equal(net.forward(x), net.forward(x))


class TestErrorParity:
    def test_phase_network_real_buffer_raises(self):
        """Matches the loop kernel's GateError contract exactly."""
        net = QuantumNetwork(4, 2, allow_phase=True, backend="fused")
        params = net.get_flat_params()
        params[net.num_thetas :] = 0.3
        net.set_flat_params(params)
        buf = np.eye(4)  # real buffer, phase-bearing network
        with pytest.raises(GateError, match="complex state batch"):
            net.forward_inplace(buf)

    def test_zero_alpha_phase_network_real_buffer_ok(self):
        net = QuantumNetwork(4, 2, allow_phase=True, backend="fused")
        params = net.get_flat_params()
        params[: net.num_thetas] = np.random.default_rng(1).normal(
            size=net.num_thetas
        )
        net.set_flat_params(params)
        # alphas stay zero -> the network is real, real buffers are fine
        buf = np.eye(4)
        net.forward_inplace(buf)
        ref = QuantumNetwork(4, 2, allow_phase=True)
        ref.set_flat_params(net.get_flat_params())
        out = np.eye(4)
        ref.forward_inplace(out)
        assert np.allclose(buf, out, atol=1e-12)


class TestWorkspace:
    def test_base_output_matches_loop_forward(self):
        # The workspace assembles the forward pass from per-layer GEMMs
        # (vectorised construction), so it agrees with the loop kernel to
        # rounding rather than bitwise.
        net = make_net()
        x = np.random.default_rng(3).normal(size=(5, 6))
        ws = net.backend.gradient_workspace(x)
        loop = QuantumNetwork(5, 3)
        loop.set_flat_params(net.get_flat_params())
        assert np.allclose(ws.base_output, loop.forward(x), atol=1e-14)

    def test_perturbed_output_matches_full_rerun(self):
        net = make_net()
        x = np.random.default_rng(3).normal(size=(5, 6))
        ws = net.backend.gradient_workspace(x)
        delta = 1e-4
        for i in [0, 3, net.num_parameters - 1]:
            params = net.get_flat_params()
            params[i] += delta
            ref = QuantumNetwork(5, 3)
            ref.set_flat_params(params)
            assert np.allclose(
                ws.perturbed_output(i, delta), ref.forward(x), atol=1e-12
            )

    def test_bad_param_index_raises(self):
        from repro.exceptions import GradientError

        net = make_net()
        ws = net.backend.gradient_workspace(np.eye(5))
        with pytest.raises(GradientError, match="out of range"):
            ws.perturbed_output(net.num_parameters, 1e-8)

    def test_bad_input_shape_raises(self):
        net = make_net()
        with pytest.raises(BackendError, match="inputs must be"):
            net.backend.gradient_workspace(np.eye(4))

    def test_loop_backend_has_no_workspace(self):
        net = QuantumNetwork(5, 3)
        assert not net.backend.supports_cached_gradients
        assert net.backend.gradient_workspace(np.eye(5)) is None
