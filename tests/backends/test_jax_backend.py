"""The ``jax`` XLA backend: registry, soft gating, equivalence.

The registry and error-path tests run on every host; the execution and
gradient tests need the optional jax package and *skip cleanly* without
it (the jax-free CI legs prove the soft-dependency gating, the jax leg
proves the kernels).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    JAX_AVAILABLE,
    JaxBackend,
    available_backends,
    backend_status,
    make_backend,
)
from repro.backends import jax as jax_mod
from repro.backends.sharded import ShardedBackend
from repro.exceptions import BackendError, GateError, NetworkConfigError
from repro.network.quantum_network import QuantumNetwork
from repro.training.gradients import loss_and_gradient

needs_jax = pytest.mark.skipif(
    not JAX_AVAILABLE, reason="optional jax package not installed"
)


def make_network(dim, layers, descending=False, allow_phase=False, seed=11,
                 backend="loop"):
    rng = np.random.default_rng(seed)
    net = QuantumNetwork(
        dim, layers, descending=descending, allow_phase=allow_phase,
        backend=backend,
    ).initialize("uniform", rng=rng)
    if allow_phase:
        params = net.get_flat_params()
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def batch(dim, m=6, complex_=False, seed=5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(dim, m))
    if complex_:
        x = x + 1j * rng.normal(size=(dim, m))
    return x / np.linalg.norm(x, axis=0)


# ----------------------------------------------------------------------
# registry / soft-dependency gating (runs with and without jax)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_always_registered(self):
        assert "jax" in available_backends()

    def test_rejects_spec_argument(self):
        with pytest.raises(BackendError, match="takes no ':' argument"):
            make_backend("jax:gpu")

    def test_missing_jax_message(self, monkeypatch):
        """Without jax, construction fails with an install hint."""
        monkeypatch.setattr(jax_mod, "JAX_AVAILABLE", False)
        with pytest.raises(BackendError, match="pip install jax"):
            JaxBackend()

    def test_status_reports_availability(self):
        status = backend_status()
        assert status["jax"]["available"] is JAX_AVAILABLE
        assert "jax" in status["jax"]["hint"]

    def test_jax_not_imported_at_package_import(self):
        """Availability is probed with find_spec — merely importing the
        backends package must not pay the jax/XLA startup cost."""
        import os
        import pathlib
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(pathlib.Path(__file__).parents[2] / "src")
        env["PYTHONPATH"] = src
        code = (
            "import sys; import repro.backends; "
            "sys.exit(1 if 'jax' in sys.modules else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == 0

    @pytest.mark.skipif(JAX_AVAILABLE, reason="jax is installed")
    def test_selecting_jax_without_jax(self):
        """`make_backend("jax")` names the missing dependency, and the
        spec layer rejects it at validation time (not first use)."""
        from repro.api.spec import CodecSpec

        with pytest.raises(BackendError, match="jax"):
            make_backend("jax")
        with pytest.raises(NetworkConfigError, match="jax"):
            CodecSpec(backend="jax")
        with pytest.raises(BackendError, match="jax"):
            make_backend("sharded:2:jax")


class TestShardedDelegateSpec:
    def test_jax_listed_as_delegate(self):
        from repro.backends.sharded import SHARD_DELEGATES

        assert "jax" in SHARD_DELEGATES

    @needs_jax
    def test_jax_delegate_parses(self):
        b = ShardedBackend.from_spec("2:jax")
        assert b.delegate_name == "jax"
        assert b.worker_count == 2
        assert b.spawn().delegate_name == "jax"

    @needs_jax
    def test_jax_delegate_serves_adjoint_kernels(self):
        """sharded[:K]:jax routes the jitted adjoint through its
        delegate (the docs/gradients.md backend-matrix row)."""
        net = QuantumNetwork(
            5, 3, backend=ShardedBackend(num_workers=1, delegate="jax")
        ).initialize("uniform", rng=np.random.default_rng(4))
        assert net.backend.supports_adjoint_kernels is True
        ref = net.copy().set_backend("loop")
        x, t = batch(5), batch(5, seed=9)
        _, g1 = loss_and_gradient(ref, x, t, method="adjoint",
                                  engine="looped")
        _, g2 = loss_and_gradient(net, x, t, method="adjoint",
                                  engine="batched")
        assert np.max(np.abs(g1 - g2)) < 1e-10


# ----------------------------------------------------------------------
# execution equivalence (jax only)
# ----------------------------------------------------------------------
@needs_jax
@settings(max_examples=25, deadline=None)
@given(
    dim=st.integers(min_value=2, max_value=9),
    layers=st.integers(min_value=1, max_value=4),
    descending=st.booleans(),
    allow_phase=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_jax_matches_loop_and_fused(dim, layers, descending, allow_phase,
                                    seed):
    """Property: random networks agree with loop/fused to bit tolerance."""
    loop = make_network(dim, layers, descending, allow_phase, seed)
    xla = loop.copy().set_backend("jax")
    fused = loop.copy().set_backend("fused")
    x = batch(dim, complex_=allow_phase, seed=seed % 97)
    for inverse in (False, True):
        ref = loop.forward(x, inverse=inverse)
        assert np.allclose(
            xla.forward(x, inverse=inverse), ref, atol=1e-10
        )
        assert np.allclose(
            fused.forward(x, inverse=inverse), ref, atol=1e-10
        )


@needs_jax
class TestJaxExecution:
    def test_roundtrip(self):
        net = make_network(6, 3, backend="jax")
        x = batch(6)
        assert np.allclose(net.forward(net.forward(x), inverse=True), x)

    def test_complex_input_on_real_network(self):
        net = make_network(5, 2, backend="jax")
        ref = make_network(5, 2, backend="loop")
        x = batch(5, complex_=True)
        assert np.allclose(net.forward(x), ref.forward(x), atol=1e-10)

    def test_phase_requires_complex_batch(self):
        net = make_network(4, 2, allow_phase=True, backend="jax")
        with pytest.raises(GateError, match="complex state batch"):
            net.forward(batch(4))

    def test_set_flat_params_invalidates(self):
        net = make_network(4, 2, backend="jax")
        x = batch(4)
        before = net.forward(x)
        params = net.get_flat_params()
        net.set_flat_params(params + 0.1)
        after = net.forward(x)
        assert not np.allclose(before, after)
        ref = make_network(4, 2, backend="loop")
        ref.set_flat_params(params + 0.1)
        assert np.allclose(after, ref.forward(x), atol=1e-10)

    def test_zero_phase_network_takes_real_kernel(self):
        """allow_phase with all alphas zero runs the phase-free sweep."""
        net = QuantumNetwork(4, 2, allow_phase=True, backend="jax")
        rng = np.random.default_rng(0)
        params = net.get_flat_params()
        params[: net.num_thetas] = rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
        ref = QuantumNetwork(4, 2, allow_phase=True, backend="loop")
        ref.set_flat_params(params)
        x = batch(4, complex_=True)
        assert np.allclose(net.forward(x), ref.forward(x), atol=1e-10)

    def test_x64_enabled(self):
        """The kernels run in float64 (the ~1e-10 gates need it)."""
        make_network(3, 1, backend="jax")
        from repro.backends.jax_kernels import jax_modules

        jax, _ = jax_modules()
        assert jax.config.jax_enable_x64 is True

    def test_sharded_jax_delegate_forward(self):
        """Narrow batches on sharded:jax run the in-process XLA path."""
        net = QuantumNetwork(
            5, 3, backend=ShardedBackend(num_workers=1, delegate="jax")
        ).initialize("uniform", rng=np.random.default_rng(4))
        ref = net.copy().set_backend("fused")
        x = batch(5)
        assert np.allclose(net.forward(x), ref.forward(x), atol=1e-10)


# ----------------------------------------------------------------------
# jitted adjoint tape/sweep (jax only)
# ----------------------------------------------------------------------
@needs_jax
class TestJaxAdjoint:
    def test_tape_matches_forward_trace(self):
        for allow_phase in (False, True):
            net = make_network(5, 3, allow_phase=allow_phase, backend="jax")
            x = batch(5, complex_=allow_phase)
            out, tape = net.backend.adjoint_tape(x)
            trace = net.copy().set_backend("loop").forward_trace(
                x.astype(out.dtype)
            )
            assert np.allclose(out, trace.output, atol=1e-10)
            assert np.allclose(np.asarray(tape), trace.row_tape, atol=1e-10)

    @pytest.mark.parametrize("descending", [False, True])
    @pytest.mark.parametrize("allow_phase", [False, True])
    def test_adjoint_gradient_matches_reference(self, descending,
                                                allow_phase):
        net = make_network(
            6, 3, descending=descending, allow_phase=allow_phase,
            backend="jax",
        )
        ref = net.copy().set_backend("loop")
        x = batch(6, complex_=allow_phase)
        t = batch(6, complex_=allow_phase, seed=9)
        l1, g1 = loss_and_gradient(
            ref, x, t, method="adjoint", engine="looped"
        )
        l2, g2 = loss_and_gradient(
            net, x, t, method="adjoint", engine="batched"
        )
        assert l1 == pytest.approx(l2, abs=1e-10)
        assert np.max(np.abs(g1 - g2)) < 1e-10

    def test_adjoint_gradient_complex_inputs_real_network(self):
        net = make_network(5, 2, backend="jax")
        ref = net.copy().set_backend("loop")
        x = batch(5, complex_=True)
        t = batch(5, complex_=True, seed=9)
        _, g1 = loss_and_gradient(ref, x, t, method="adjoint",
                                  engine="looped")
        _, g2 = loss_and_gradient(net, x, t, method="adjoint",
                                  engine="batched")
        assert np.max(np.abs(g1 - g2)) < 1e-10

    def test_workspace_methods_served(self):
        """fd/central/derivative ride the prefix/suffix workspace."""
        net = make_network(5, 2, backend="jax")
        ref = net.copy().set_backend("fused")
        x, t = batch(5), batch(5, seed=9)
        for method in ("fd", "central", "derivative"):
            _, g1 = loss_and_gradient(net, x, t, method=method)
            _, g2 = loss_and_gradient(ref, x, t, method=method)
            assert np.max(np.abs(g1 - g2)) < 1e-9
