"""Tests for repro.simulator.circuit."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.simulator.circuit import Circuit
from repro.simulator.gates import BeamsplitterGate, PhaseGate
from repro.simulator.state import QuantumState, StateBatch


def random_circuit(dim, n_gates, seed=0):
    rng = np.random.default_rng(seed)
    c = Circuit(dim)
    for _ in range(n_gates):
        c.append(
            BeamsplitterGate(int(rng.integers(dim - 1)), float(rng.uniform(0, 2 * np.pi)))
        )
    return c


class TestConstruction:
    def test_empty_circuit_is_identity(self):
        assert np.allclose(Circuit(4).unitary(), np.eye(4))

    def test_invalid_dim(self):
        with pytest.raises(CircuitError):
            Circuit(1)

    def test_gate_out_of_range_rejected(self):
        with pytest.raises(CircuitError, match="fit"):
            Circuit(3).append(BeamsplitterGate(2, 0.1))

    def test_phase_gate_fits_last_mode(self):
        c = Circuit(3).append(PhaseGate(2, 0.1))
        assert c.num_gates == 1

    def test_extend_and_len(self):
        c = Circuit(4)
        c.extend([BeamsplitterGate(0, 0.1), BeamsplitterGate(1, 0.2)])
        assert len(c) == 2

    def test_thetas_order(self):
        c = Circuit(4)
        c.append(BeamsplitterGate(0, 0.1))
        c.append(PhaseGate(1, 9.9))  # not a theta
        c.append(BeamsplitterGate(2, 0.3))
        assert c.thetas().tolist() == [0.1, 0.3]

    def test_is_real(self):
        c = Circuit(4).append(BeamsplitterGate(0, 0.1))
        assert c.is_real
        c.append(BeamsplitterGate(1, 0.1, alpha=0.5))
        assert not c.is_real


class TestApplication:
    def test_apply_matches_unitary(self):
        c = random_circuit(5, 12)
        v = np.arange(1.0, 6.0)
        assert np.allclose(c.apply(v), c.unitary() @ v)

    def test_apply_quantum_state(self):
        c = random_circuit(4, 6)
        s = QuantumState.uniform(4)
        out = c.apply(s)
        assert isinstance(out, QuantumState)
        assert out.norm() == pytest.approx(1.0)

    def test_apply_state_batch(self):
        c = random_circuit(4, 6)
        b = StateBatch(np.eye(4), normalize=False)
        out = c.apply(b)
        assert isinstance(out, StateBatch)
        assert np.allclose(out.data, c.unitary())

    def test_apply_dim_mismatch(self):
        with pytest.raises(CircuitError):
            random_circuit(4, 3).apply(QuantumState.uniform(8))

    def test_inverse_application_roundtrip(self):
        c = random_circuit(6, 20)
        v = np.random.default_rng(1).normal(size=6)
        assert np.allclose(c.apply(c.apply(v), inverse=True), v)

    def test_apply_does_not_mutate_input(self):
        c = random_circuit(4, 4)
        v = np.ones(4)
        c.apply(v)
        assert np.allclose(v, 1.0)

    @given(st.integers(0, 2**30))
    def test_property_unitary(self, seed):
        c = random_circuit(4, 8, seed)
        u = c.unitary()
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-12)


class TestAlgebra:
    def test_inverse_circuit_exact(self):
        c = random_circuit(5, 10)
        inv = c.inverse()
        assert np.allclose(inv.unitary() @ c.unitary(), np.eye(5))

    def test_inverse_of_complex_bs_raises(self):
        c = Circuit(4).append(BeamsplitterGate(0, 0.3, alpha=0.4))
        with pytest.raises(CircuitError, match="complex"):
            c.inverse()

    def test_inverse_handles_phase_gates(self):
        c = Circuit(3)
        c.append(PhaseGate(0, 0.6))
        c.append(BeamsplitterGate(1, 0.2))
        inv = c.inverse()
        assert np.allclose(inv.unitary() @ c.unitary(), np.eye(3))

    def test_reversed_order_structure(self):
        c = Circuit(4)
        c.append(BeamsplitterGate(0, 0.1))
        c.append(BeamsplitterGate(2, 0.2))
        r = c.reversed_order()
        assert [g.mode for g in r.gates] == [2, 0]
        # same parameters, different order -> generally different unitary
        assert r.thetas().tolist() == [0.2, 0.1]

    def test_compose(self):
        a = random_circuit(4, 3, seed=1)
        b = random_circuit(4, 4, seed=2)
        ab = a.compose(b)
        assert np.allclose(ab.unitary(), b.unitary() @ a.unitary())

    def test_compose_dim_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(4).compose(Circuit(8))

    def test_iteration(self):
        c = random_circuit(4, 5)
        assert len(list(iter(c))) == 5
