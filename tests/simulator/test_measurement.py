"""Tests for repro.simulator.measurement."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.simulator.measurement import (
    born_probabilities,
    estimate_amplitudes,
    estimate_probabilities,
    measurement_expectation,
    sample_counts,
)
from repro.simulator.state import QuantumState, StateBatch


class TestBornProbabilities:
    def test_single_state(self):
        s = QuantumState([0.6, 0.8])
        assert born_probabilities(s).tolist() == pytest.approx([0.36, 0.64])

    def test_batch_shape(self, unit_batch):
        probs = born_probabilities(StateBatch(unit_batch))
        assert probs.shape == (8, 5)
        assert np.allclose(probs.sum(axis=0), 1.0)

    def test_raw_1d_array(self):
        assert born_probabilities(np.array([1.0, 0.0])).shape == (2,)

    def test_complex_amplitudes(self):
        s = np.array([1.0, 1j]) / np.sqrt(2)
        assert np.allclose(born_probabilities(s), [0.5, 0.5])

    def test_3d_rejected(self):
        with pytest.raises(MeasurementError):
            born_probabilities(np.zeros((2, 2, 2)))


class TestSampling:
    def test_counts_sum_to_shots(self, rng):
        s = QuantumState([1.0, 1.0, 1.0, 1.0])
        counts = sample_counts(s, shots=1000, rng=rng)
        assert counts.sum() == 1000

    def test_batch_counts_per_column(self, rng, unit_batch):
        counts = sample_counts(StateBatch(unit_batch), 50, rng=rng)
        assert np.all(counts.sum(axis=0) == 50)

    def test_deterministic_state_sampling(self, rng):
        counts = sample_counts(QuantumState.basis(4, 2), 100, rng=rng)
        assert counts[2] == 100

    def test_invalid_shots(self):
        with pytest.raises(MeasurementError):
            sample_counts(QuantumState.basis(2, 0), 0)
        with pytest.raises(MeasurementError):
            sample_counts(QuantumState.basis(2, 0), -5)
        with pytest.raises(MeasurementError):
            sample_counts(QuantumState.basis(2, 0), 1.5)

    def test_estimate_converges(self, rng):
        s = QuantumState([1.0, 2.0, 1.0, 0.0])
        est = estimate_probabilities(s, shots=200000, rng=rng)
        assert np.allclose(est, s.probabilities(), atol=0.01)

    def test_estimate_none_is_exact(self):
        s = QuantumState([0.6, 0.8])
        assert np.allclose(
            estimate_probabilities(s, None), s.probabilities()
        )

    def test_estimate_amplitudes_loses_sign(self, rng):
        s = np.array([-0.6, 0.8])
        amps = estimate_amplitudes(s, None)
        assert np.allclose(amps, [0.6, 0.8])

    def test_seeded_reproducibility(self):
        s = QuantumState([1.0, 1.0])
        a = sample_counts(s, 100, rng=np.random.default_rng(5))
        b = sample_counts(s, 100, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestExpectation:
    def test_scalar_for_single_state(self):
        s = QuantumState([1.0, 1.0])
        val = measurement_expectation(s, np.array([0.0, 2.0]))
        assert val == pytest.approx(1.0)

    def test_vector_for_batch(self, unit_batch):
        vals = measurement_expectation(
            StateBatch(unit_batch), np.arange(8.0)
        )
        assert vals.shape == (5,)

    def test_size_mismatch_raises(self):
        with pytest.raises(MeasurementError):
            measurement_expectation(QuantumState([1.0, 0.0]), np.ones(3))

    def test_batch_size_mismatch_raises(self, unit_batch):
        with pytest.raises(MeasurementError):
            measurement_expectation(StateBatch(unit_batch), np.ones(3))
