"""Tests for repro.simulator.gates."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GateError
from repro.simulator.gates import (
    BeamsplitterGate,
    PhaseGate,
    apply_givens,
    apply_givens_batch,
)

angles = st.floats(-2 * np.pi, 2 * np.pi, allow_nan=False)


class TestApplyGivens:
    def test_identity_at_zero(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(apply_givens(v, 0, 0.0), v)

    def test_quarter_rotation_swaps_with_sign(self):
        v = np.array([1.0, 0.0])
        out = apply_givens(v, 0, np.pi / 2)
        assert np.allclose(out, [0.0, 1.0])

    def test_inverse_roundtrip(self):
        v = np.array([0.3, 0.4, 0.5])
        out = apply_givens(apply_givens(v, 1, 0.7), 1, 0.7, inverse=True)
        assert np.allclose(out, v)

    def test_mode_out_of_range(self):
        with pytest.raises(GateError, match="out of range"):
            apply_givens(np.ones(3), 2, 0.1)

    def test_batch_inplace(self):
        data = np.eye(4)
        apply_givens_batch(data, 1, 0.5)
        assert not np.allclose(data, np.eye(4))
        assert np.allclose(data.T @ data, np.eye(4))  # still orthogonal

    def test_alpha_on_real_batch_raises(self):
        with pytest.raises(GateError, match="complex"):
            apply_givens_batch(np.eye(4), 0, 0.3, alpha=0.5)

    def test_complex_alpha_unitary(self):
        data = np.eye(4, dtype=np.complex128)
        apply_givens_batch(data, 0, 0.3, alpha=0.7)
        assert np.allclose(np.conj(data.T) @ data, np.eye(4))

    def test_complex_inverse_roundtrip(self):
        data = np.eye(4, dtype=np.complex128)
        apply_givens_batch(data, 1, 0.4, alpha=1.1)
        apply_givens_batch(data, 1, 0.4, alpha=1.1, inverse=True)
        assert np.allclose(data, np.eye(4))

    @given(theta=angles)
    def test_property_norm_preserved(self, theta):
        v = np.array([0.6, 0.8, 0.0])
        out = apply_givens(v, 0, theta)
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-12)

    @given(theta=angles, k=st.integers(0, 2))
    def test_property_matches_matrix(self, theta, k):
        g = BeamsplitterGate(k, theta)
        v = np.arange(1.0, 5.0)
        assert np.allclose(apply_givens(v, k, theta), g.embed(4) @ v)


class TestBeamsplitterGate:
    def test_matrix_orthogonal(self):
        m = BeamsplitterGate(0, 0.37).matrix2()
        assert np.allclose(m.T @ m, np.eye(2))

    def test_reflectivity(self):
        assert BeamsplitterGate(0, 0.0).reflectivity == pytest.approx(1.0)
        assert BeamsplitterGate(0, np.pi / 2).reflectivity == pytest.approx(
            0.0, abs=1e-15
        )

    def test_derivative_is_shifted_rotation(self):
        g = BeamsplitterGate(0, 0.9)
        shifted = BeamsplitterGate(0, 0.9 + np.pi / 2)
        assert np.allclose(g.dmatrix2_dtheta(), shifted.matrix2())

    def test_dalpha_derivative_complex(self):
        g = BeamsplitterGate(0, 0.5, alpha=0.3)
        d = g.dmatrix2_dalpha()
        num = (
            BeamsplitterGate(0, 0.5, alpha=0.3 + 1e-7).matrix2()
            - BeamsplitterGate(0, 0.5, alpha=0.3 - 1e-7).matrix2()
        ) / 2e-7
        assert np.allclose(d, num, atol=1e-6)

    def test_embed_placement(self):
        u = BeamsplitterGate(2, 0.3).embed(5)
        assert np.allclose(u[:2, :2], np.eye(2))
        assert u[4, 4] == 1.0
        assert not np.allclose(u[2:4, 2:4], np.eye(2))

    def test_embed_too_small_raises(self):
        with pytest.raises(GateError, match="fit"):
            BeamsplitterGate(3, 0.1).embed(4)

    def test_negative_mode_raises(self):
        with pytest.raises(GateError):
            BeamsplitterGate(-1, 0.1)

    def test_nonfinite_theta_raises(self):
        with pytest.raises(GateError, match="finite"):
            BeamsplitterGate(0, np.inf)

    def test_inverse_gate_real(self):
        g = BeamsplitterGate(0, 0.6)
        assert np.allclose(
            g.inverse().matrix2() @ g.matrix2(), np.eye(2)
        )

    def test_inverse_complex_gate_raises(self):
        """Regression: T(-theta, -alpha) is not the dagger for alpha != 0."""
        g = BeamsplitterGate(0, 0.6, alpha=1.1)
        with pytest.raises(GateError, match="inverse=True"):
            g.inverse()
        # The would-be "inverse" really is wrong — document the reason:
        wrong = BeamsplitterGate(0, -0.6, alpha=-1.1).matrix2()
        assert not np.allclose(wrong @ g.matrix2(), np.eye(2))
        # while the dagger applied via the kernel is exact:
        assert np.allclose(np.conj(g.matrix2().T) @ g.matrix2(), np.eye(2))

    def test_with_theta(self):
        g = BeamsplitterGate(1, 0.1, alpha=0.0)
        g2 = g.with_theta(0.9)
        assert g2.theta == 0.9 and g2.mode == 1

    def test_complex_matrix_unitary(self):
        m = BeamsplitterGate(0, 0.4, alpha=1.2).matrix2()
        assert np.allclose(np.conj(m.T) @ m, np.eye(2))

    def test_is_real_flag(self):
        assert BeamsplitterGate(0, 0.5).is_real
        assert not BeamsplitterGate(0, 0.5, alpha=0.1).is_real


class TestPhaseGate:
    def test_embed_unitary(self):
        u = PhaseGate(1, 0.7).embed(3)
        assert np.allclose(np.conj(u.T) @ u, np.eye(3))
        assert u[1, 1] == pytest.approx(np.exp(1j * 0.7))

    def test_apply_requires_complex(self):
        with pytest.raises(GateError, match="complex"):
            PhaseGate(0, 0.5).apply(np.eye(2))

    def test_apply_inverse_roundtrip(self):
        data = np.eye(3, dtype=np.complex128)
        g = PhaseGate(2, 1.3)
        g.apply(data)
        g.apply(data, inverse=True)
        assert np.allclose(data, np.eye(3))

    def test_embed_out_of_range(self):
        with pytest.raises(GateError):
            PhaseGate(3, 0.1).embed(3)

    def test_negative_mode_raises(self):
        with pytest.raises(GateError):
            PhaseGate(-2, 0.0)
