"""Tests for repro.simulator.density."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError, NormalizationError
from repro.simulator.density import (
    DensityMatrix,
    amplitude_damping_kraus,
    dephasing_channel,
    depolarizing_channel,
)
from repro.simulator.state import QuantumState
from repro.simulator.unitary import haar_random_unitary


class TestConstruction:
    def test_pure_state_properties(self):
        rho = DensityMatrix.from_state(QuantumState([0.6, 0.8]))
        assert rho.dim == 2
        assert rho.purity() == pytest.approx(1.0)
        assert rho.is_pure()

    def test_maximally_mixed(self):
        rho = DensityMatrix.maximally_mixed(4)
        assert rho.purity() == pytest.approx(0.25)
        assert not rho.is_pure()
        assert rho.von_neumann_entropy() == pytest.approx(2.0)

    def test_mixture(self):
        rho = DensityMatrix.mixture(
            [QuantumState.basis(2, 0), QuantumState.basis(2, 1)],
            [0.5, 0.5],
        )
        assert rho.purity() == pytest.approx(0.5)

    def test_mixture_weights_validated(self):
        with pytest.raises(NormalizationError):
            DensityMatrix.mixture([QuantumState.basis(2, 0)], [0.7])

    def test_non_hermitian_rejected(self):
        bad = np.array([[0.5, 0.5], [0.0, 0.5]])
        with pytest.raises(NormalizationError, match="Hermitian"):
            DensityMatrix(bad)

    def test_wrong_trace_rejected(self):
        with pytest.raises(NormalizationError, match="trace"):
            DensityMatrix(np.eye(2))

    def test_negative_eigenvalue_rejected(self):
        bad = np.diag([1.5, -0.5])
        with pytest.raises(NormalizationError, match="negative"):
            DensityMatrix(bad)

    def test_non_square_rejected(self):
        with pytest.raises(DimensionError):
            DensityMatrix(np.ones((2, 3)))


class TestQuantities:
    def test_probabilities_match_pure_state(self):
        s = QuantumState([1.0, 2.0, 3.0, 4.0])
        rho = DensityMatrix.from_state(s)
        assert np.allclose(rho.probabilities(), s.probabilities())

    def test_fidelity_with_pure_self(self):
        s = QuantumState([0.6, 0.8])
        assert DensityMatrix.from_state(s).fidelity_with_pure(s) == \
            pytest.approx(1.0)

    def test_fidelity_with_orthogonal(self):
        rho = DensityMatrix.from_state(QuantumState.basis(3, 0))
        assert rho.fidelity_with_pure(QuantumState.basis(3, 1)) == \
            pytest.approx(0.0)

    def test_fidelity_dim_check(self):
        rho = DensityMatrix.maximally_mixed(2)
        with pytest.raises(DimensionError):
            rho.fidelity_with_pure(QuantumState.basis(4, 0))

    def test_entropy_pure_is_zero(self):
        rho = DensityMatrix.from_state(QuantumState([1.0, 1.0]))
        assert rho.von_neumann_entropy() == pytest.approx(0.0, abs=1e-9)


class TestEvolution:
    def test_unitary_preserves_purity(self, rng):
        rho = DensityMatrix.from_state(QuantumState([1.0, 2.0, 0.0, 1.0]))
        u = haar_random_unitary(4, rng)
        out = rho.evolve(u)
        assert out.purity() == pytest.approx(1.0)

    def test_unitary_matches_statevector(self, rng):
        s = QuantumState([1.0, 1.0, 0.0, 0.0])
        u = haar_random_unitary(4, rng)
        evolved_vec = u @ s.amplitudes
        rho = DensityMatrix.from_state(s).evolve(u)
        expected = np.outer(evolved_vec, np.conj(evolved_vec))
        assert np.allclose(rho.matrix, expected)

    def test_unitary_dim_check(self):
        with pytest.raises(DimensionError):
            DensityMatrix.maximally_mixed(2).evolve(np.eye(3))


class TestChannels:
    def test_dephasing_kills_coherence(self):
        rho = DensityMatrix.from_state(QuantumState([1.0, 1.0]))
        out = rho.apply_kraus(dephasing_channel(2, 1.0))
        assert np.allclose(out.matrix, np.diag([0.5, 0.5]), atol=1e-12)

    def test_dephasing_partial(self):
        rho = DensityMatrix.from_state(QuantumState([1.0, 1.0]))
        out = rho.apply_kraus(dephasing_channel(2, 0.5))
        assert abs(out.matrix[0, 1]) == pytest.approx(0.25)

    def test_dephasing_preserves_probabilities(self, rng):
        s = QuantumState(rng.normal(size=4))
        rho = DensityMatrix.from_state(s)
        out = rho.apply_kraus(dephasing_channel(4, 0.7))
        assert np.allclose(out.probabilities(), rho.probabilities())

    def test_depolarizing_full_strength_is_maximally_mixed(self, rng):
        s = QuantumState(rng.normal(size=4))
        rho = DensityMatrix.from_state(s)
        out = rho.apply_kraus(depolarizing_channel(4, 1.0))
        assert np.allclose(out.matrix, np.eye(4) / 4, atol=1e-10)

    def test_depolarizing_zero_strength_identity(self, rng):
        s = QuantumState(rng.normal(size=3))
        rho = DensityMatrix.from_state(s)
        out = rho.apply_kraus(depolarizing_channel(3, 0.0))
        assert np.allclose(out.matrix, rho.matrix, atol=1e-12)

    @given(st.floats(0.0, 1.0), st.integers(0, 50))
    @settings(max_examples=20)
    def test_property_depolarizing_formula(self, p, seed):
        rng = np.random.default_rng(seed)
        s = QuantumState(rng.normal(size=3))
        rho = DensityMatrix.from_state(s)
        out = rho.apply_kraus(depolarizing_channel(3, p))
        expected = (1 - p) * rho.matrix + p * np.eye(3) / 3
        assert np.allclose(out.matrix, expected, atol=1e-9)

    def test_amplitude_damping_trace_decreases(self):
        rho = DensityMatrix.from_state(QuantumState([1.0, 1.0]))
        kraus = amplitude_damping_kraus(2, mode=0, gamma=0.5)
        out = rho.apply_kraus(kraus)
        assert float(np.real(np.trace(out.matrix))) < 1.0

    def test_amplitude_damping_postselected(self):
        rho = DensityMatrix.from_state(QuantumState([1.0, 1.0]))
        kraus = amplitude_damping_kraus(2, mode=0, gamma=0.5)
        out = rho.apply_kraus(kraus, renormalize=True)
        assert float(np.real(np.trace(out.matrix))) == pytest.approx(1.0)
        # Mode 0 lost amplitude, so mode 1 gains relative weight.
        probs = out.probabilities()
        assert probs[1] > probs[0]

    def test_total_damping_annihilation_guard(self):
        rho = DensityMatrix.from_state(QuantumState.basis(2, 0))
        kraus = amplitude_damping_kraus(2, mode=0, gamma=1.0)
        with pytest.raises(NormalizationError, match="annihilated"):
            rho.apply_kraus(kraus, renormalize=True)

    def test_trace_increasing_rejected(self):
        rho = DensityMatrix.maximally_mixed(2)
        with pytest.raises(NormalizationError, match="increased"):
            rho.apply_kraus([np.eye(2) * 1.1])

    def test_channel_validation(self):
        with pytest.raises(DimensionError):
            dephasing_channel(2, 1.5)
        with pytest.raises(DimensionError):
            depolarizing_channel(1, 0.5)
        with pytest.raises(DimensionError):
            amplitude_damping_kraus(2, mode=5, gamma=0.5)
        rho = DensityMatrix.maximally_mixed(2)
        with pytest.raises(DimensionError):
            rho.apply_kraus([])
        with pytest.raises(DimensionError):
            rho.apply_kraus([np.eye(3)])
