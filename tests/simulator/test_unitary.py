"""Tests for repro.simulator.unitary."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.simulator.unitary import (
    closest_unitary,
    haar_random_unitary,
    is_orthogonal,
    is_unitary,
    random_orthogonal,
    unitarity_defect,
)


class TestHaarRandomUnitary:
    def test_is_unitary(self, rng):
        assert is_unitary(haar_random_unitary(8, rng))

    def test_deterministic_with_seed(self):
        a = haar_random_unitary(4, np.random.default_rng(1))
        b = haar_random_unitary(4, np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_invalid_dim(self):
        with pytest.raises(DimensionError):
            haar_random_unitary(0)

    @given(st.integers(1, 12))
    def test_property_unitary_all_dims(self, dim):
        u = haar_random_unitary(dim, np.random.default_rng(dim))
        assert unitarity_defect(u) < 1e-10


class TestRandomOrthogonal:
    def test_is_real_orthogonal(self, rng):
        q = random_orthogonal(6, rng)
        assert q.dtype == np.float64
        assert is_orthogonal(q)

    def test_special_has_det_one(self, rng):
        for seed in range(5):
            q = random_orthogonal(5, np.random.default_rng(seed), special=True)
            assert np.linalg.det(q) == pytest.approx(1.0)

    def test_invalid_dim(self):
        with pytest.raises(DimensionError):
            random_orthogonal(-2)


class TestChecks:
    def test_identity_is_unitary(self):
        assert is_unitary(np.eye(5))

    def test_scaled_identity_is_not(self):
        assert not is_unitary(2 * np.eye(3))

    def test_complex_matrix_not_orthogonal(self):
        u = haar_random_unitary(4, np.random.default_rng(0))
        # generic Haar unitary has nonzero imaginary part
        assert not is_orthogonal(u)

    def test_defect_rejects_non_square(self):
        with pytest.raises(DimensionError):
            unitarity_defect(np.zeros((2, 3)))

    def test_defect_zero_for_unitary(self, rng):
        assert unitarity_defect(haar_random_unitary(4, rng)) < 1e-12


class TestClosestUnitary:
    def test_projects_to_unitary(self, rng):
        a = rng.normal(size=(5, 5))
        u = closest_unitary(a)
        assert is_unitary(u, atol=1e-9)

    def test_unitary_is_fixed_point(self, rng):
        q = random_orthogonal(4, rng)
        assert np.allclose(closest_unitary(q), q, atol=1e-10)

    def test_repairs_small_drift(self, rng):
        q = random_orthogonal(6, rng)
        drifted = q + 1e-8 * rng.normal(size=(6, 6))
        repaired = closest_unitary(drifted)
        assert unitarity_defect(repaired) < 1e-12
        assert np.max(np.abs(repaired - q)) < 1e-7

    def test_non_square_rejected(self):
        with pytest.raises(DimensionError):
            closest_unitary(np.zeros((3, 4)))
