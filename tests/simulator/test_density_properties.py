"""Property-based tests for repro.simulator.density channel builders.

Hypothesis sweeps dimensions, strengths and random mixed states to pin
the algebraic contracts the noise stack (repro.noise) builds on: Kraus
completeness, trace behaviour, positivity, and fidelity bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.density import (
    DensityMatrix,
    amplitude_damping_kraus,
    dephasing_channel,
    depolarizing_channel,
)

dims = st.integers(min_value=2, max_value=6)
strengths = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _kraus_sum(ops):
    """``sum_k K_k^dagger K_k``."""
    return sum(op.conj().T @ op for op in ops)


def _random_rho(dim: int, seed: int) -> DensityMatrix:
    """A full-rank-ish random mixed state, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    states = rng.normal(size=(3, dim)) + 1j * rng.normal(size=(3, dim))
    weights = rng.uniform(0.1, 1.0, size=3)
    weights /= weights.sum()
    rho = sum(
        w * np.outer(s / np.linalg.norm(s), (s / np.linalg.norm(s)).conj())
        for w, s in zip(weights, states)
    )
    return DensityMatrix(rho, validate=False)


class TestKrausCompleteness:
    """``sum K^dag K = I`` — every CPTP builder is exactly complete."""

    @settings(max_examples=40)
    @given(dim=dims, strength=strengths)
    def test_dephasing_complete(self, dim, strength):
        total = _kraus_sum(dephasing_channel(dim, strength))
        assert np.allclose(total, np.eye(dim), atol=1e-12)

    @settings(max_examples=25)
    @given(dim=dims, strength=strengths)
    def test_depolarizing_complete(self, dim, strength):
        total = _kraus_sum(depolarizing_channel(dim, strength))
        assert np.allclose(total, np.eye(dim), atol=1e-10)

    @settings(max_examples=40)
    @given(dim=dims, gamma=strengths, data=st.data())
    def test_amplitude_damping_heralded_complete(self, dim, gamma, data):
        mode = data.draw(st.integers(min_value=0, max_value=dim - 1))
        total = _kraus_sum(amplitude_damping_kraus(dim, mode, gamma, herald=True))
        assert np.allclose(total, np.eye(dim), atol=1e-12)

    @settings(max_examples=40)
    @given(dim=dims, gamma=strengths, data=st.data())
    def test_amplitude_damping_default_subunitary(self, dim, gamma, data):
        # The default single-Kraus branch is trace-*decreasing* by exactly
        # gamma on the damped mode — never trace-increasing.
        mode = data.draw(st.integers(min_value=0, max_value=dim - 1))
        total = _kraus_sum(amplitude_damping_kraus(dim, mode, gamma))
        expected = np.eye(dim, dtype=np.complex128)
        expected[mode, mode] = 1.0 - gamma
        assert np.allclose(total, expected, atol=1e-12)


class TestChannelAction:
    """apply_kraus of a complete set preserves trace and positivity."""

    @settings(max_examples=25)
    @given(dim=dims, strength=strengths, seed=seeds)
    def test_dephasing_trace_and_psd(self, dim, strength, seed):
        rho = _random_rho(dim, seed)
        out = rho.apply_kraus(dephasing_channel(dim, strength))
        assert abs(float(np.real(np.trace(out.matrix))) - 1.0) < 1e-10
        assert np.linalg.eigvalsh(out.matrix).min() > -1e-10

    @settings(max_examples=15)
    @given(dim=dims, strength=strengths, seed=seeds)
    def test_depolarizing_trace_and_psd(self, dim, strength, seed):
        rho = _random_rho(dim, seed)
        out = rho.apply_kraus(depolarizing_channel(dim, strength))
        assert abs(float(np.real(np.trace(out.matrix))) - 1.0) < 1e-8
        assert np.linalg.eigvalsh(out.matrix).min() > -1e-8

    @settings(max_examples=25)
    @given(dim=dims, gamma=strengths, seed=seeds, data=st.data())
    def test_heralded_damping_trace_and_psd(self, dim, gamma, seed, data):
        mode = data.draw(st.integers(min_value=0, max_value=dim - 1))
        rho = _random_rho(dim, seed)
        out = rho.apply_kraus(
            amplitude_damping_kraus(dim, mode, gamma, herald=True)
        )
        assert abs(float(np.real(np.trace(out.matrix))) - 1.0) < 1e-10
        assert np.linalg.eigvalsh(out.matrix).min() > -1e-10

    @settings(max_examples=25)
    @given(dim=dims, strength=strengths, seed=seeds)
    def test_depolarizing_matches_closed_form(self, dim, strength, seed):
        # The generalized-Pauli construction realises exactly
        # (1-p) rho + p I/N — the identity the probability-space channel
        # formula in repro.noise.trajectory relies on.
        rho = _random_rho(dim, seed)
        out = rho.apply_kraus(depolarizing_channel(dim, strength))
        expected = (1.0 - strength) * rho.matrix + strength * np.eye(dim) / dim
        assert np.allclose(out.matrix, expected, atol=1e-9)


class TestFidelityBounds:
    @settings(max_examples=40)
    @given(dim=dims, seed=seeds)
    def test_fidelity_with_pure_in_unit_interval(self, dim, seed):
        rng = np.random.default_rng(seed + 1)
        rho = _random_rho(dim, seed)
        psi = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        fid = rho.fidelity_with_pure(psi)
        assert -1e-12 <= fid <= 1.0 + 1e-12

    @settings(max_examples=25)
    @given(dim=dims, seed=seeds)
    def test_fidelity_of_own_eigenvector_vs_purity(self, dim, seed):
        # <psi|rho|psi> maximised over pure psi equals the top eigenvalue.
        rho = _random_rho(dim, seed)
        eigvals, eigvecs = np.linalg.eigh(rho.matrix)
        top = eigvecs[:, -1]
        assert abs(rho.fidelity_with_pure(top) - eigvals[-1]) < 1e-9
