"""Tests for repro.simulator.state."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DimensionError, NormalizationError
from repro.simulator.state import QuantumState, StateBatch


class TestQuantumState:
    def test_normalizes_by_default(self):
        s = QuantumState([3.0, 4.0])
        assert s.norm() == pytest.approx(1.0)
        assert s.amplitudes.tolist() == pytest.approx([0.6, 0.8])

    def test_normalize_false_keeps_values(self):
        s = QuantumState([0.5, 0.5], normalize=False)
        assert s.norm() == pytest.approx(np.sqrt(0.5))

    def test_zero_vector_rejected(self):
        with pytest.raises(NormalizationError):
            QuantumState([0.0, 0.0])

    def test_nan_rejected(self):
        with pytest.raises(NormalizationError):
            QuantumState([np.nan, 1.0])

    def test_2d_rejected(self):
        with pytest.raises(DimensionError):
            QuantumState(np.eye(2))

    def test_single_amplitude_rejected(self):
        with pytest.raises(DimensionError):
            QuantumState([1.0])

    def test_probabilities_sum_to_one(self):
        s = QuantumState([1.0, 2.0, 3.0, 4.0])
        assert s.probabilities().sum() == pytest.approx(1.0)

    def test_num_qubits(self):
        assert QuantumState(np.ones(16)).num_qubits == 4

    def test_fidelity_self_is_one(self):
        s = QuantumState([1.0, 1.0, 0.0, 0.0])
        assert s.fidelity(s) == pytest.approx(1.0)

    def test_fidelity_orthogonal_is_zero(self):
        a = QuantumState.basis(4, 0)
        b = QuantumState.basis(4, 1)
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_fidelity_dim_mismatch_raises(self):
        with pytest.raises(DimensionError):
            QuantumState.basis(4, 0).fidelity(QuantumState.basis(2, 0))

    def test_overlap_complex(self):
        a = QuantumState(np.array([1.0, 1j]) / np.sqrt(2), normalize=False)
        b = QuantumState(np.array([1.0, -1j]) / np.sqrt(2), normalize=False)
        assert abs(a.overlap(b)) == pytest.approx(0.0)

    def test_tensor_dimensions(self):
        t = QuantumState.uniform(2).tensor(QuantumState.uniform(4))
        assert t.dim == 8
        assert t.norm() == pytest.approx(1.0)

    def test_basis_out_of_range(self):
        with pytest.raises(DimensionError):
            QuantumState.basis(4, 4)

    def test_uniform_amplitudes(self):
        s = QuantumState.uniform(8)
        assert np.allclose(s.amplitudes, 1 / np.sqrt(8))

    def test_amplitudes_readonly(self):
        s = QuantumState([1.0, 0.0])
        with pytest.raises(ValueError):
            s.amplitudes[0] = 5.0

    def test_equality(self):
        assert QuantumState([1.0, 0.0]) == QuantumState([1.0, 0.0])
        assert QuantumState([1.0, 0.0]) != QuantumState([0.0, 1.0])

    def test_is_real_flag(self):
        assert QuantumState([1.0, 0.0]).is_real
        assert not QuantumState(np.array([1.0 + 0j, 0])).is_real

    def test_to_batch_roundtrip(self):
        s = QuantumState([0.6, 0.8])
        b = s.to_batch()
        assert b.num_states == 1
        assert b.state(0) == s

    @given(
        arrays(
            np.float64,
            st.integers(2, 32),
            elements=st.floats(-10, 10, allow_nan=False),
        ).filter(lambda v: np.linalg.norm(v) > 1e-6)
    )
    def test_property_normalization(self, vec):
        s = QuantumState(vec)
        assert s.norm() == pytest.approx(1.0, abs=1e-10)
        assert s.probabilities().sum() == pytest.approx(1.0, abs=1e-10)


class TestStateBatch:
    def test_shape_properties(self, unit_batch):
        b = StateBatch(unit_batch)
        assert (b.dim, b.num_states) == (8, 5)

    def test_normalize_columns(self, rng):
        raw = rng.normal(size=(4, 3)) * 5
        b = StateBatch(raw, normalize=True)
        assert np.allclose(b.norms(), 1.0)

    def test_zero_column_rejected_when_normalizing(self):
        data = np.zeros((4, 2))
        data[:, 0] = 1.0
        with pytest.raises(NormalizationError, match="column 1"):
            StateBatch(data, normalize=True)

    def test_1d_rejected(self):
        with pytest.raises(DimensionError):
            StateBatch(np.ones(4))

    def test_state_extraction(self, unit_batch):
        b = StateBatch(unit_batch)
        s = b.state(2)
        assert np.allclose(s.amplitudes, unit_batch[:, 2])

    def test_state_index_out_of_range(self, unit_batch):
        with pytest.raises(DimensionError):
            StateBatch(unit_batch).state(99)

    def test_fidelities_self(self, unit_batch):
        b = StateBatch(unit_batch)
        assert np.allclose(b.fidelities(b), 1.0)

    def test_fidelities_shape_mismatch(self, unit_batch):
        b = StateBatch(unit_batch)
        with pytest.raises(DimensionError):
            b.fidelities(StateBatch(np.eye(4)))

    def test_from_states(self):
        batch = StateBatch.from_states(
            [QuantumState.basis(4, i) for i in range(3)]
        )
        assert batch.num_states == 3
        assert np.allclose(batch.data, np.eye(4)[:, :3])

    def test_from_states_empty_raises(self):
        with pytest.raises(DimensionError):
            StateBatch.from_states([])

    def test_iteration_yields_states(self, unit_batch):
        states = list(StateBatch(unit_batch))
        assert len(states) == 5
        assert all(isinstance(s, QuantumState) for s in states)

    def test_probabilities_shape(self, unit_batch):
        assert StateBatch(unit_batch).probabilities().shape == (8, 5)

    def test_copy_is_independent(self, unit_batch):
        b = StateBatch(unit_batch)
        c = b.copy()
        c.data[0, 0] = 99.0
        assert b.data[0, 0] != 99.0
