"""Edge-case tests for circuits mixing gate kinds and dtypes."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.simulator.circuit import Circuit
from repro.simulator.gates import BeamsplitterGate, PhaseGate
from repro.simulator.state import QuantumState


class TestMixedGateCircuits:
    def test_phase_then_rotation_unitary(self):
        c = Circuit(3)
        c.append(PhaseGate(0, 0.5))
        c.append(BeamsplitterGate(0, 0.3))
        c.append(PhaseGate(2, -1.0))
        u = c.unitary()
        assert u.dtype == np.complex128
        assert np.allclose(np.conj(u.T) @ u, np.eye(3), atol=1e-12)

    def test_complex_circuit_on_real_state_raises(self):
        c = Circuit(2).append(PhaseGate(0, 0.5))
        with pytest.raises(Exception):
            c.apply_inplace(np.eye(2))  # real buffer cannot hold phases

    def test_complex_circuit_on_complex_state(self):
        c = Circuit(2).append(PhaseGate(0, np.pi))
        out = c.apply(np.eye(2, dtype=np.complex128))
        assert out[0, 0] == pytest.approx(-1.0)

    def test_inverse_application_of_mixed_circuit(self):
        c = Circuit(3)
        c.append(PhaseGate(1, 0.7))
        c.append(BeamsplitterGate(1, 0.4, alpha=0.2))
        v = np.array([0.6, 0.0, 0.8], dtype=np.complex128)
        out = c.apply(c.apply(v), inverse=True)
        assert np.allclose(out, v, atol=1e-12)

    def test_real_gate_alpha_zero_stays_real(self):
        c = Circuit(2).append(BeamsplitterGate(0, 0.3, alpha=0.0))
        assert c.is_real
        assert c.unitary().dtype == np.float64


class TestDeepCircuits:
    def test_thousand_gate_numerical_stability(self, rng):
        """Accumulated float error over 1000 gates stays tiny."""
        c = Circuit(8)
        for _ in range(1000):
            c.append(
                BeamsplitterGate(
                    int(rng.integers(7)), float(rng.uniform(0, 2 * np.pi))
                )
            )
        u = c.unitary()
        from repro.simulator.unitary import unitarity_defect

        assert unitarity_defect(u) < 1e-12

    def test_deep_inverse_roundtrip(self, rng):
        c = Circuit(6)
        for _ in range(500):
            c.append(
                BeamsplitterGate(
                    int(rng.integers(5)), float(rng.uniform(0, 2 * np.pi))
                )
            )
        s = QuantumState.uniform(6)
        back = c.apply(c.apply(s), inverse=True)
        assert back.fidelity(s) == pytest.approx(1.0, abs=1e-12)

    def test_compose_associativity(self, rng):
        def rand_circuit(seed):
            r = np.random.default_rng(seed)
            c = Circuit(4)
            for _ in range(5):
                c.append(
                    BeamsplitterGate(
                        int(r.integers(3)), float(r.uniform(0, 6))
                    )
                )
            return c

        a, b, c3 = rand_circuit(1), rand_circuit(2), rand_circuit(3)
        left = a.compose(b).compose(c3).unitary()
        right = a.compose(b.compose(c3)).unitary()
        assert np.allclose(left, right, atol=1e-12)
