"""Tests for the exception hierarchy contract."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exc.__all__:
            cls = getattr(exc, name)
            assert issubclass(cls, exc.ReproError), name

    def test_value_error_family(self):
        """Validation errors double as ValueError so callers using plain
        ValueError handling keep working."""
        for cls in (
            exc.DimensionError,
            exc.EncodingError,
            exc.GateError,
            exc.CircuitError,
            exc.ProjectionError,
            exc.NetworkConfigError,
            exc.DatasetError,
            exc.DecompositionError,
            exc.MeasurementError,
            exc.SerializationError,
            exc.BaselineError,
        ):
            assert issubclass(cls, ValueError), cls.__name__

    def test_runtime_error_family(self):
        for cls in (exc.TrainingError, exc.ExperimentError):
            assert issubclass(cls, RuntimeError), cls.__name__

    def test_gradient_is_training_error(self):
        assert issubclass(exc.GradientError, exc.TrainingError)
        assert issubclass(exc.OptimizerError, exc.TrainingError)

    def test_normalization_is_encoding_error(self):
        assert issubclass(exc.NormalizationError, exc.EncodingError)

    def test_single_catch_all(self):
        """One except clause suffices for any library failure."""
        with pytest.raises(exc.ReproError):
            from repro.network import Projection

            Projection(4, [])

    def test_docstrings_present(self):
        for name in exc.__all__:
            assert getattr(exc, name).__doc__, name
