"""Tests for repro.baselines.pca."""

import numpy as np
import pytest

from repro.baselines.pca import PCACompressor
from repro.exceptions import BaselineError
from repro.training.metrics import paper_accuracy


class TestPCACompressor:
    def test_codes_shape(self, paper_images):
        pca = PCACompressor(num_components=4).fit(paper_images)
        assert pca.transform(paper_images).shape == (4, 25)

    def test_rank4_data_reconstructed_exactly(self, paper_images):
        pca = PCACompressor(num_components=4).fit(paper_images)
        x_hat = pca.reconstruct(paper_images)
        assert paper_accuracy(x_hat, paper_images) == pytest.approx(100.0)
        assert np.allclose(x_hat, paper_images, atol=1e-8)

    def test_insufficient_components_lossy(self, paper_images):
        pca = PCACompressor(num_components=2).fit(paper_images)
        x_hat = pca.reconstruct(paper_images)
        assert not np.allclose(x_hat, paper_images, atol=1e-3)

    def test_explained_energy_increases_with_d(self, paper_images):
        energies = [
            PCACompressor(num_components=d)
            .fit(paper_images)
            .explained_energy(paper_images)
            for d in (1, 2, 4)
        ]
        assert energies[0] <= energies[1] <= energies[2]
        assert energies[2] == pytest.approx(1.0)

    def test_requires_fit(self, paper_images):
        with pytest.raises(BaselineError, match="fit"):
            PCACompressor(4).transform(paper_images)
        with pytest.raises(BaselineError, match="fit"):
            PCACompressor(4).reconstruct(paper_images)

    def test_invalid_components(self):
        with pytest.raises(BaselineError):
            PCACompressor(0)

    def test_too_many_components(self, paper_images):
        with pytest.raises(BaselineError, match="exceeds"):
            PCACompressor(num_components=17).fit(paper_images)

    def test_centering_option(self, paper_images):
        centered = PCACompressor(4, center=True).fit(paper_images)
        assert centered.mean is not None
        assert not np.allclose(centered.mean, 0.0)

    def test_components_orthonormal(self, paper_images):
        pca = PCACompressor(4).fit(paper_images)
        gram = pca.components @ pca.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-10)
