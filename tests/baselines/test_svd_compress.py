"""Tests for repro.baselines.svd_compress."""

import numpy as np
import pytest

from repro.baselines.svd_compress import (
    svd_energy_profile,
    truncated_svd_reconstruction,
)
from repro.exceptions import BaselineError


class TestTruncatedSVD:
    def test_rank1_exact_for_rank1_matrix(self):
        X = np.outer([1.0, 2.0, 3.0], [4.0, 5.0])
        x_hat, err = truncated_svd_reconstruction(X, 1)
        assert err == pytest.approx(0.0, abs=1e-20)
        assert np.allclose(x_hat, X)

    def test_error_matches_tail_energy(self, rng):
        X = rng.normal(size=(6, 8))
        s = np.linalg.svd(X, compute_uv=False)
        _, err = truncated_svd_reconstruction(X, 3)
        assert err == pytest.approx(np.sum(s[3:] ** 2))

    def test_error_decreases_with_rank(self, rng):
        X = rng.normal(size=(6, 8))
        errs = [truncated_svd_reconstruction(X, r)[1] for r in (1, 3, 6)]
        assert errs[0] >= errs[1] >= errs[2]

    def test_eckart_young_optimality(self, rng):
        """The SVD reconstruction beats any random rank-d projection."""
        X = rng.normal(size=(10, 12))
        d = 3
        _, err_svd = truncated_svd_reconstruction(X, d)
        q, _ = np.linalg.qr(rng.normal(size=(10, d)))
        err_rand = np.linalg.norm(X - q @ (q.T @ X)) ** 2
        assert err_svd <= err_rand + 1e-9

    def test_paper_dataset_rank4_floor(self, paper_images):
        _, err = truncated_svd_reconstruction(paper_images, 4)
        assert err == pytest.approx(0.0, abs=1e-18)

    def test_invalid_rank(self, rng):
        X = rng.normal(size=(4, 6))
        with pytest.raises(BaselineError):
            truncated_svd_reconstruction(X, 0)
        with pytest.raises(BaselineError):
            truncated_svd_reconstruction(X, 5)

    def test_1d_rejected(self):
        with pytest.raises(BaselineError):
            truncated_svd_reconstruction(np.ones(4), 1)


class TestEnergyProfile:
    def test_monotone_to_one(self, rng):
        prof = svd_energy_profile(rng.normal(size=(5, 7)))
        assert np.all(np.diff(prof) >= -1e-12)
        assert prof[-1] == pytest.approx(1.0)

    def test_rank4_saturates_at_four(self, paper_images):
        prof = svd_energy_profile(paper_images)
        assert prof[3] == pytest.approx(1.0)

    def test_zero_matrix_rejected(self):
        with pytest.raises(BaselineError):
            svd_energy_profile(np.zeros((3, 3)))
