"""Tests for repro.baselines.dictionary."""

import numpy as np
import pytest

from repro.baselines.dictionary import (
    gradient_dictionary_step,
    ksvd_update,
    mod_update,
    normalize_dictionary,
    svd_init_dictionary,
)
from repro.baselines.omp import omp_batch
from repro.exceptions import BaselineError


class TestNormalize:
    def test_unit_columns(self, rng):
        d = normalize_dictionary(rng.normal(size=(6, 10)) * 7)
        assert np.allclose(np.linalg.norm(d, axis=0), 1.0)

    def test_dead_atom_replaced(self):
        d = np.zeros((4, 3))
        d[:, 0] = [1, 0, 0, 0]
        out = normalize_dictionary(d)
        assert np.allclose(np.linalg.norm(out, axis=0), 1.0)

    def test_1d_rejected(self):
        with pytest.raises(BaselineError):
            normalize_dictionary(np.ones(4))


class TestSVDInit:
    def test_square_dictionary_orthonormal(self, rng):
        y = rng.normal(size=(8, 20))
        d = svd_init_dictionary(y)
        assert d.shape == (8, 8)
        assert np.allclose(d.T @ d, np.eye(8), atol=1e-10)

    def test_first_atom_is_top_singular_direction(self, rng):
        y = rng.normal(size=(8, 30))
        d = svd_init_dictionary(y)
        u, _, _ = np.linalg.svd(y, full_matrices=False)
        assert abs(np.dot(d[:, 0], u[:, 0])) == pytest.approx(1.0)

    def test_overcomplete_padded(self, rng):
        d = svd_init_dictionary(rng.normal(size=(4, 10)), num_atoms=6)
        assert d.shape == (4, 6)
        assert np.allclose(np.linalg.norm(d, axis=0), 1.0)

    def test_undercomplete(self, rng):
        d = svd_init_dictionary(rng.normal(size=(8, 10)), num_atoms=3)
        assert d.shape == (8, 3)

    def test_invalid(self, rng):
        with pytest.raises(BaselineError):
            svd_init_dictionary(np.ones(4))
        with pytest.raises(BaselineError):
            svd_init_dictionary(np.ones((4, 4)), num_atoms=0)


class TestMODUpdate:
    def test_reduces_residual(self, rng):
        y = rng.normal(size=(8, 20))
        d0 = svd_init_dictionary(y)
        codes = omp_batch(d0, y, sparsity=3)
        d1_raw = y @ codes.T @ np.linalg.pinv(codes @ codes.T)
        d1 = mod_update(y, codes)
        # normalised MOD may rescale, but with refit codes the residual of
        # the (unnormalised) LS solution bounds anything d0 achieved
        err0 = np.linalg.norm(y - d0 @ codes)
        err_ls = np.linalg.norm(y - d1_raw @ codes)
        assert err_ls <= err0 + 1e-9
        assert d1.shape == d0.shape

    def test_exact_for_consistent_system(self, rng):
        d_true = normalize_dictionary(rng.normal(size=(6, 6)))
        codes = rng.normal(size=(6, 30))
        y = d_true @ codes
        d_hat = mod_update(y, codes)
        assert np.allclose(np.abs(d_hat.T @ d_true).max(axis=0), 1.0, atol=1e-6)

    def test_shape_mismatch(self, rng):
        with pytest.raises(BaselineError):
            mod_update(np.ones((4, 5)), np.ones((3, 6)))


class TestKSVDUpdate:
    def test_monotone_improvement(self, rng):
        y = rng.normal(size=(8, 25))
        d = svd_init_dictionary(y)
        codes = omp_batch(d, y, sparsity=3)
        err_before = np.linalg.norm(y - d @ codes)
        d2, codes2 = ksvd_update(y, d, codes, rng=rng)
        err_after = np.linalg.norm(y - d2 @ codes2)
        assert err_after <= err_before + 1e-9

    def test_atoms_stay_unit_norm(self, rng):
        y = rng.normal(size=(6, 15))
        d = svd_init_dictionary(y)
        codes = omp_batch(d, y, sparsity=2)
        d2, _ = ksvd_update(y, d, codes, rng=rng)
        assert np.allclose(np.linalg.norm(d2, axis=0), 1.0)

    def test_unused_atom_reseeded(self, rng):
        y = rng.normal(size=(4, 8))
        d = svd_init_dictionary(y)
        codes = np.zeros((4, 8))
        codes[0] = 1.0  # only atom 0 used
        d2, _ = ksvd_update(y, d, codes, rng=rng)
        assert np.allclose(np.linalg.norm(d2, axis=0), 1.0)

    def test_shape_mismatch(self, rng):
        with pytest.raises(BaselineError):
            ksvd_update(np.ones((4, 5)), np.ones((4, 6)), np.ones((3, 5)))


class TestGradientStep:
    def test_descends_objective(self, rng):
        y = rng.normal(size=(8, 20))
        d = svd_init_dictionary(y)
        # Deliberately perturb so there is a gradient to follow.
        d = normalize_dictionary(d + 0.3 * rng.normal(size=d.shape))
        codes = omp_batch(d, y, sparsity=3)
        err0 = np.linalg.norm(y - d @ codes)
        d1 = gradient_dictionary_step(y, d, codes, lr=0.01)
        err1 = np.linalg.norm(y - d1 @ codes)
        assert err1 < err0

    def test_atoms_renormalised(self, rng):
        y = rng.normal(size=(4, 10))
        d = svd_init_dictionary(y)
        codes = rng.normal(size=(4, 10))
        d1 = gradient_dictionary_step(y, d, codes, lr=0.1)
        assert np.allclose(np.linalg.norm(d1, axis=0), 1.0)

    def test_invalid_lr(self, rng):
        with pytest.raises(BaselineError):
            gradient_dictionary_step(
                np.ones((4, 2)), np.eye(4), np.ones((4, 2)), lr=0.0
            )

    def test_shape_mismatch(self):
        with pytest.raises(BaselineError):
            gradient_dictionary_step(
                np.ones((4, 2)), np.eye(4), np.ones((3, 2)), lr=0.1
            )
