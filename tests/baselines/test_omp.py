"""Tests for repro.baselines.omp."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.omp import omp, omp_batch
from repro.exceptions import BaselineError


class TestOMP:
    def test_exact_recovery_identity_dictionary(self):
        y = np.array([0.0, 3.0, 0.0, -2.0])
        s = omp(np.eye(4), y, sparsity=2)
        assert np.allclose(s, y)

    def test_sparsity_respected(self, rng):
        d = rng.normal(size=(8, 16))
        d /= np.linalg.norm(d, axis=0)
        s = omp(d, rng.normal(size=8), sparsity=3)
        assert np.count_nonzero(s) <= 3

    def test_residual_decreases_with_sparsity(self, rng):
        d = rng.normal(size=(8, 16))
        d /= np.linalg.norm(d, axis=0)
        y = rng.normal(size=8)
        errs = [
            np.linalg.norm(y - d @ omp(d, y, sparsity=k)) for k in (1, 4, 8)
        ]
        assert errs[0] >= errs[1] >= errs[2]

    def test_full_sparsity_exact_for_square_dictionary(self, rng):
        q, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        y = rng.normal(size=6)
        s = omp(q, y, sparsity=6)
        assert np.allclose(q @ s, y, atol=1e-10)

    def test_tol_early_exit(self):
        y = np.array([1.0, 0.0, 0.0])
        s = omp(np.eye(3), y, sparsity=3, tol=1e-6)
        assert np.count_nonzero(s) == 1

    def test_zero_signal_returns_zero_code(self):
        s = omp(np.eye(4), np.zeros(4), sparsity=2)
        assert np.allclose(s, 0.0)

    def test_exact_recovery_of_planted_sparse_code(self, rng):
        """Well-conditioned instance: OMP recovers the planted support."""
        d = rng.normal(size=(32, 16))
        d /= np.linalg.norm(d, axis=0)
        truth = np.zeros(16)
        truth[[2, 9]] = [1.5, -2.0]
        y = d @ truth
        s = omp(d, y, sparsity=2)
        assert np.allclose(s, truth, atol=1e-8)

    @given(st.integers(0, 200))
    @settings(max_examples=20)
    def test_property_residual_orthogonal_to_support(self, seed):
        """After OMP, the residual is orthogonal to selected atoms (the
        defining property of the least-squares refit)."""
        rng = np.random.default_rng(seed)
        d = rng.normal(size=(8, 12))
        d /= np.linalg.norm(d, axis=0)
        y = rng.normal(size=8)
        s = omp(d, y, sparsity=3)
        support = np.nonzero(s)[0]
        residual = y - d @ s
        if support.size:
            assert np.max(np.abs(d[:, support].T @ residual)) < 1e-8


class TestValidation:
    def test_invalid_sparsity(self):
        with pytest.raises(BaselineError):
            omp(np.eye(4), np.ones(4), sparsity=0)
        with pytest.raises(BaselineError):
            omp(np.eye(4), np.ones(4), sparsity=5)

    def test_length_mismatch(self):
        with pytest.raises(BaselineError):
            omp(np.eye(4), np.ones(3), sparsity=1)

    def test_negative_tol(self):
        with pytest.raises(BaselineError):
            omp(np.eye(4), np.ones(4), sparsity=1, tol=-1.0)

    def test_1d_dictionary_rejected(self):
        with pytest.raises(BaselineError):
            omp(np.ones(4), np.ones(4), sparsity=1)


class TestOMPBatch:
    def test_batch_matches_loop(self, rng):
        d = rng.normal(size=(8, 10))
        d /= np.linalg.norm(d, axis=0)
        ys = rng.normal(size=(8, 4))
        batch = omp_batch(d, ys, sparsity=2)
        for m in range(4):
            assert np.allclose(batch[:, m], omp(d, ys[:, m], 2))

    def test_batch_shape(self, rng):
        d = np.eye(6)
        assert omp_batch(d, rng.normal(size=(6, 3)), 2).shape == (6, 3)

    def test_1d_signals_rejected(self):
        with pytest.raises(BaselineError):
            omp_batch(np.eye(4), np.ones(4), 1)
