"""Tests for repro.baselines.dct."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.dct import DCTCompressor, dct2, idct2, zigzag_indices
from repro.exceptions import BaselineError


class TestTransforms:
    def test_dct_idct_roundtrip(self, rng):
        img = rng.random((8, 8))
        assert np.allclose(idct2(dct2(img)), img, atol=1e-12)

    def test_orthonormal_energy_preserved(self, rng):
        img = rng.random((4, 4))
        assert np.sum(dct2(img) ** 2) == pytest.approx(np.sum(img**2))

    def test_constant_image_is_dc_only(self):
        c = dct2(np.full((4, 4), 0.5))
        assert abs(c[0, 0]) > 0
        c[0, 0] = 0.0
        assert np.allclose(c, 0.0, atol=1e-12)

    def test_1d_rejected(self):
        with pytest.raises(BaselineError):
            dct2(np.ones(4))
        with pytest.raises(BaselineError):
            idct2(np.ones(4))


_shapes = st.tuples(st.integers(1, 12), st.integers(1, 12))


class TestTransformProperties:
    """Hypothesis contracts: the DCT pair inverts exactly and zig-zag
    ordering is a permutation — the invariants ``repro.imaging`` builds
    its coefficient pipeline on."""

    @given(image=_shapes.flatmap(lambda s: arrays(
        np.float64, s,
        elements=st.floats(-1e3, 1e3, allow_nan=False,
                           allow_infinity=False),
    )))
    @settings(max_examples=60)
    def test_idct2_inverts_dct2(self, image):
        assert np.allclose(idct2(dct2(image)), image, atol=1e-8)

    @given(image=_shapes.flatmap(lambda s: arrays(
        np.float64, s,
        elements=st.floats(-1e3, 1e3, allow_nan=False,
                           allow_infinity=False),
    )))
    @settings(max_examples=60)
    def test_dct2_preserves_energy(self, image):
        assert np.sum(dct2(image) ** 2) == pytest.approx(
            np.sum(image**2), rel=1e-9, abs=1e-9
        )

    @given(size=st.integers(1, 32))
    @settings(max_examples=32)
    def test_zigzag_is_permutation(self, size):
        zz = zigzag_indices(size)
        assert zz.shape == (size * size, 2)
        flat = zz[:, 0] * size + zz[:, 1]
        assert np.array_equal(np.sort(flat), np.arange(size * size))

    @given(size=st.integers(1, 16))
    @settings(max_examples=16)
    def test_zigzag_antidiagonals_nondecreasing(self, size):
        zz = zigzag_indices(size)
        assert np.all(np.diff(zz.sum(axis=1)) >= 0)


class TestZigzag:
    def test_starts_at_dc(self):
        zz = zigzag_indices(4)
        assert zz[0].tolist() == [0, 0]

    def test_covers_all_positions(self):
        zz = zigzag_indices(4)
        assert len({tuple(p) for p in zz.tolist()}) == 16

    def test_antidiagonal_ordering(self):
        zz = zigzag_indices(3)
        sums = zz.sum(axis=1)
        assert np.all(np.diff(sums) >= 0)

    def test_invalid_size(self):
        with pytest.raises(BaselineError):
            zigzag_indices(0)


class TestDCTCompressor:
    def test_full_budget_exact(self, rng):
        imgs = rng.random((3, 4, 4))
        out = DCTCompressor(num_coefficients=16).reconstruct(imgs)
        assert np.allclose(out, imgs, atol=1e-10)

    def test_sparsity_of_codes(self, rng):
        imgs = rng.random((2, 4, 4))
        codes = DCTCompressor(num_coefficients=5).transform(imgs)
        assert np.all(
            np.count_nonzero(codes.reshape(2, -1), axis=1) <= 5
        )

    def test_error_decreases_with_budget(self, rng):
        imgs = rng.random((4, 8, 8))
        errs = [
            DCTCompressor(num_coefficients=k).compression_error(imgs)
            for k in (2, 8, 32, 64)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_magnitude_beats_zigzag_on_random(self, rng):
        """Adaptive coefficient selection is at least as good as the
        fixed zig-zag support on non-smooth images."""
        imgs = rng.random((5, 8, 8))
        mag = DCTCompressor(8, mode="magnitude").compression_error(imgs)
        zz = DCTCompressor(8, mode="zigzag").compression_error(imgs)
        assert mag <= zz + 1e-9

    def test_smooth_image_compresses_well(self):
        from repro.data.grayscale import gradient_image

        img = gradient_image(8)
        err = DCTCompressor(num_coefficients=4).compression_error(img[None])
        assert err < 0.05 * np.sum(img**2)

    def test_single_image_shape(self, rng):
        img = rng.random((4, 4))
        out = DCTCompressor(4).reconstruct(img)
        assert out.shape == (4, 4)

    def test_output_clipped(self, rng):
        imgs = rng.random((3, 4, 4))
        out = DCTCompressor(3).reconstruct(imgs)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_validation(self, rng):
        with pytest.raises(BaselineError):
            DCTCompressor(0)
        with pytest.raises(BaselineError):
            DCTCompressor(4, mode="spiral")
        with pytest.raises(BaselineError):
            DCTCompressor(99).transform(rng.random((2, 4, 4)))
        with pytest.raises(BaselineError):
            DCTCompressor(4).transform(rng.random((2, 3, 4)))
