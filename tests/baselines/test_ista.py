"""Tests for repro.baselines.ista."""

import numpy as np
import pytest

from repro.baselines.ista import fista, ista, soft_threshold
from repro.exceptions import BaselineError


class TestSoftThreshold:
    def test_shrinks_towards_zero(self):
        out = soft_threshold(np.array([3.0, -3.0, 0.5]), 1.0)
        assert out.tolist() == [2.0, -2.0, 0.0]

    def test_zero_tau_is_identity(self, rng):
        x = rng.normal(size=10)
        assert np.allclose(soft_threshold(x, 0.0), x)

    def test_negative_tau_rejected(self):
        with pytest.raises(BaselineError):
            soft_threshold(np.ones(2), -0.1)


def lasso_objective(d, y, s, lam):
    return 0.5 * np.sum((y - d @ s) ** 2) + lam * np.sum(np.abs(s))


class TestISTA:
    def test_zero_lam_solves_least_squares(self, rng):
        q, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        y = rng.normal(size=6)
        s = ista(q, y, lam=0.0, max_iter=500)
        assert np.allclose(q @ s, y, atol=1e-5)

    def test_large_lam_gives_zero(self, rng):
        d = np.eye(4)
        s = ista(d, np.array([0.1, 0.1, 0.1, 0.1]), lam=10.0, max_iter=50)
        assert np.allclose(s, 0.0)

    def test_objective_decreases_vs_zero_init(self, rng):
        d = rng.normal(size=(8, 12))
        d /= np.linalg.norm(d, axis=0)
        y = rng.normal(size=8)
        lam = 0.05
        s = ista(d, y, lam=lam, max_iter=300)
        assert lasso_objective(d, y, s, lam) <= lasso_objective(
            d, y, np.zeros(12), lam
        )

    def test_batch_matches_single(self, rng):
        d = rng.normal(size=(6, 8))
        d /= np.linalg.norm(d, axis=0)
        ys = rng.normal(size=(6, 3))
        batch = ista(d, ys, lam=0.02, max_iter=200)
        for m in range(3):
            single = ista(d, ys[:, m], lam=0.02, max_iter=200)
            assert np.allclose(batch[:, m], single, atol=1e-8)

    def test_identity_dictionary_closed_form(self):
        """For D=I, the lasso solution is soft-thresholding of y."""
        y = np.array([2.0, -0.5, 0.05, 0.0])
        lam = 0.1
        s = ista(np.eye(4), y, lam=lam, max_iter=500)
        assert np.allclose(s, soft_threshold(y, lam), atol=1e-8)

    def test_invalid_args(self):
        with pytest.raises(BaselineError):
            ista(np.eye(4), np.ones(4), lam=-1.0)
        with pytest.raises(BaselineError):
            ista(np.eye(4), np.ones(4), max_iter=0)
        with pytest.raises(BaselineError):
            ista(np.eye(4), np.ones(3))
        with pytest.raises(BaselineError):
            ista(np.zeros((4, 4)), np.ones(4))


class TestFISTA:
    def test_matches_ista_fixed_point(self, rng):
        d = rng.normal(size=(8, 10))
        d /= np.linalg.norm(d, axis=0)
        y = rng.normal(size=8)
        s_i = ista(d, y, lam=0.05, max_iter=3000, tol=0)
        s_f = fista(d, y, lam=0.05, max_iter=3000, tol=0)
        assert lasso_objective(d, y, s_f, 0.05) == pytest.approx(
            lasso_objective(d, y, s_i, 0.05), abs=1e-6
        )

    def test_faster_than_ista(self, rng):
        """FISTA reaches a lower objective within a small budget."""
        d = rng.normal(size=(16, 32))
        d /= np.linalg.norm(d, axis=0)
        y = rng.normal(size=16)
        lam = 0.02
        budget = 15
        s_i = ista(d, y, lam=lam, max_iter=budget, tol=0)
        s_f = fista(d, y, lam=lam, max_iter=budget, tol=0)
        assert lasso_objective(d, y, s_f, lam) <= lasso_objective(
            d, y, s_i, lam
        ) + 1e-10

    def test_single_vector_shape(self, rng):
        out = fista(np.eye(4), rng.normal(size=4))
        assert out.shape == (4,)
