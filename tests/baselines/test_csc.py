"""Tests for repro.baselines.csc (the Fig. 5 / Table I comparator)."""

import numpy as np
import pytest

from repro.baselines.csc import CSCCompressor
from repro.exceptions import BaselineError
from repro.training.metrics import paper_accuracy


class TestConfiguration:
    def test_paper_matrix_size(self):
        assert CSCCompressor(dim=16).matrix_size == "16*16"

    def test_invalid_sparsity(self):
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16, sparsity=0)
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16, sparsity=17)

    def test_unknown_update(self):
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16, update="newton")

    def test_unknown_coder(self):
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16, coder="lars")

    def test_invalid_lr_lam(self):
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16, lr=0.0)
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16, lam=-0.1)


class TestTraining:
    @pytest.mark.parametrize(
        "update,coder", [("gradient", "ista"), ("mod", "omp"), ("ksvd", "omp")]
    )
    def test_loss_decreases(self, paper_images, update, coder):
        csc = CSCCompressor(
            dim=16, sparsity=4, update=update, coder=coder, seed=0
        )
        history = csc.fit(paper_images, iterations=10)
        assert history.loss[-1] <= history.loss[0] + 1e-9

    def test_history_length_and_timing(self, paper_images):
        csc = CSCCompressor(dim=16, sparsity=4)
        history = csc.fit(paper_images, iterations=7)
        assert history.num_iterations == 7
        assert history.wall_seconds > 0

    def test_mod_omp_solves_rank4_exactly(self, paper_images):
        """Closed-form classical updates crack the rank-4 set."""
        csc = CSCCompressor(dim=16, sparsity=4, update="mod", coder="omp")
        history = csc.fit(paper_images, iterations=15)
        assert history.min_loss() < 1e-6
        assert paper_accuracy(csc.reconstruct(paper_images), paper_images) \
            == pytest.approx(100.0)

    def test_invalid_iterations(self, paper_images):
        with pytest.raises(BaselineError):
            CSCCompressor(dim=16).fit(paper_images, iterations=0)

    def test_dim_mismatch(self):
        with pytest.raises(BaselineError):
            CSCCompressor(dim=8).fit(np.ones((4, 16)), iterations=1)


class TestTransformReconstruct:
    def test_transform_requires_fit(self, paper_images):
        with pytest.raises(BaselineError, match="fit"):
            CSCCompressor(dim=16).transform(paper_images)

    def test_reconstruct_requires_fit(self, paper_images):
        with pytest.raises(BaselineError, match="fit"):
            CSCCompressor(dim=16).reconstruct(paper_images)

    def test_codes_shape(self, paper_images):
        csc = CSCCompressor(dim=16, sparsity=4, coder="omp", update="mod")
        csc.fit(paper_images, iterations=3)
        assert csc.transform(paper_images).shape == (16, 25)

    def test_omp_codes_sparse(self, paper_images):
        csc = CSCCompressor(dim=16, sparsity=4, coder="omp", update="mod")
        csc.fit(paper_images, iterations=3)
        codes = csc.transform(paper_images)
        assert np.all(np.count_nonzero(codes, axis=0) <= 4)

    def test_reconstruction_shape_and_nonnegative(self, paper_images):
        csc = CSCCompressor(dim=16, sparsity=4)
        csc.fit(paper_images, iterations=5)
        x_hat = csc.reconstruct(paper_images)
        assert x_hat.shape == paper_images.shape
        assert np.all(x_hat >= 0)

    def test_debias_improves_ista_accuracy(self, paper_images):
        csc = CSCCompressor(dim=16, sparsity=4, update="gradient", coder="ista")
        csc.fit(paper_images, iterations=30)
        raw = paper_accuracy(csc.reconstruct(paper_images), paper_images)
        debiased = paper_accuracy(
            csc.reconstruct(paper_images, debias=True), paper_images
        )
        assert debiased >= raw

    def test_deterministic_given_seed(self, paper_images):
        runs = []
        for _ in range(2):
            csc = CSCCompressor(dim=16, sparsity=4, update="ksvd",
                                coder="omp", seed=3)
            h = csc.fit(paper_images, iterations=4)
            runs.append(h.loss[-1])
        assert runs[0] == pytest.approx(runs[1])
