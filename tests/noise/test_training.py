"""Tests for noise-aware training (repro.noise.training + Trainer wiring).

The PR's reproducibility contract, verified here at test scale:

- same ``(seed, noise, epoch)`` -> bitwise-identical averaged gradients,
  run to run;
- the worker-pool sharded average is bitwise identical to the
  single-process average at any pool size (pool:2 == pool:4 == none);
- ``theta_sigma = 0`` short-circuits to the plain (noise-blind) gradient.
"""

import numpy as np
import pytest

from repro.exceptions import NoiseError, TrainingError
from repro.network.quantum_network import QuantumNetwork
from repro.noise import NoiseModel, draw_jitter, noisy_loss_and_gradient
from repro.training.gradients import loss_and_gradient
from repro.training.trainer import Trainer


def _ae_params(ae):
    return np.concatenate(
        [ae.uc.get_flat_params(), ae.ur.get_flat_params()]
    )


def _network(seed=11, dim=8, layers=3, backend="fused"):
    return QuantumNetwork(dim, layers, backend=backend).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


def _batch(dim=8, m=10, seed=7):
    rng = np.random.default_rng(seed)
    x = np.abs(rng.normal(size=(dim, m))) + 0.1
    x /= np.linalg.norm(x, axis=0, keepdims=True)
    t = np.abs(rng.normal(size=(dim, m))) + 0.1
    t /= np.linalg.norm(t, axis=0, keepdims=True)
    return x, t


JITTERY = NoiseModel(theta_sigma=0.05)


class TestDrawJitter:
    def test_only_thetas_perturbed(self):
        eps = draw_jitter(10, 6, 0.1, seed=3, epoch=0, realization=0)
        assert eps.shape == (10,)
        assert np.all(eps[6:] == 0.0)
        assert np.any(eps[:6] != 0.0)

    def test_keyed_on_realization_and_epoch(self):
        a = draw_jitter(8, 8, 0.1, seed=3, epoch=0, realization=0)
        b = draw_jitter(8, 8, 0.1, seed=3, epoch=0, realization=1)
        c = draw_jitter(8, 8, 0.1, seed=3, epoch=1, realization=0)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.array_equal(
            a, draw_jitter(8, 8, 0.1, seed=3, epoch=0, realization=0)
        )


class TestNoisyGradient:
    def test_zero_sigma_equals_plain_gradient_bitwise(self):
        net = _network()
        x, t = _batch()
        ref_v, ref_g = loss_and_gradient(net, x, t)
        value, grad = noisy_loss_and_gradient(
            net, x, t, model=NoiseModel(), trajectories=4, seed=0
        )
        assert value == ref_v
        assert np.array_equal(grad, ref_g)

    def test_matches_manual_average(self):
        net = _network()
        x, t = _batch()
        K = 3
        base = net.get_flat_params().copy()
        grads, values = [], []
        for r in range(K):
            eps = draw_jitter(
                base.size, net.num_thetas, JITTERY.theta_sigma,
                seed=5, epoch=2, realization=r, stream=1,
            )
            net.set_flat_params(base + eps)
            v, g = loss_and_gradient(net, x, t)
            values.append(v)
            grads.append(g)
        net.set_flat_params(base)
        value, grad = noisy_loss_and_gradient(
            net, x, t, model=JITTERY, trajectories=K, seed=5, epoch=2,
            stream=1,
        )
        from repro.parallel.reducer import tree_reduce

        assert value == float(tree_reduce(values) / K)
        assert np.array_equal(grad, tree_reduce(grads) / K)

    def test_run_to_run_bitwise(self):
        net = _network()
        x, t = _batch()
        kwargs = dict(model=JITTERY, trajectories=4, seed=9, epoch=1)
        v1, g1 = noisy_loss_and_gradient(net, x, t, **kwargs)
        v2, g2 = noisy_loss_and_gradient(net, x, t, **kwargs)
        assert v1 == v2
        assert np.array_equal(g1, g2)

    def test_params_restored_after_call(self):
        net = _network()
        x, t = _batch()
        before = net.get_flat_params().copy()
        noisy_loss_and_gradient(
            net, x, t, model=JITTERY, trajectories=3, seed=0
        )
        assert np.array_equal(net.get_flat_params(), before)

    def test_epoch_decorrelates(self):
        net = _network()
        x, t = _batch()
        _, g0 = noisy_loss_and_gradient(
            net, x, t, model=JITTERY, trajectories=4, seed=9, epoch=0
        )
        _, g1 = noisy_loss_and_gradient(
            net, x, t, model=JITTERY, trajectories=4, seed=9, epoch=1
        )
        assert not np.array_equal(g0, g1)

    def test_bad_trajectories_rejected(self):
        net = _network()
        x, t = _batch()
        with pytest.raises(NoiseError):
            noisy_loss_and_gradient(
                net, x, t, model=JITTERY, trajectories=0, seed=0
            )


class TestTrainerWiring:
    def test_trainer_validates_noise(self):
        with pytest.raises(NoiseError):
            Trainer(noise="not-a-preset")
        with pytest.raises(TrainingError):
            Trainer(noise="mild", noise_trajectories=0)

    def test_noise_jitter_disables_fused_step(self):
        jittery = Trainer(noise="harsh", backend="fused")
        channel_only = Trainer(noise='{"dephasing": 0.05}', backend="fused")
        assert jittery._noise_jitter_active()
        assert not channel_only._noise_jitter_active()

    def test_noise_aware_training_is_deterministic(self):
        from repro.network.autoencoder import QuantumAutoencoder

        X = np.abs(np.random.default_rng(1).normal(size=(8, 16))) + 0.1

        def train_once():
            ae = QuantumAutoencoder(16, 4, 3, 3, backend="fused")
            ae.initialize("uniform", rng=np.random.default_rng(0))
            Trainer(
                iterations=3, backend="fused", noise="harsh",
                noise_trajectories=3,
            ).train(ae, X)
            return _ae_params(ae)

        assert np.array_equal(train_once(), train_once())

    def test_noise_aware_differs_from_blind(self):
        from repro.network.autoencoder import QuantumAutoencoder

        X = np.abs(np.random.default_rng(1).normal(size=(8, 16))) + 0.1

        def train_once(noise):
            ae = QuantumAutoencoder(16, 4, 3, 3, backend="fused")
            ae.initialize("uniform", rng=np.random.default_rng(0))
            Trainer(
                iterations=3, backend="fused", noise=noise,
                noise_trajectories=3,
            ).train(ae, X)
            return _ae_params(ae)

        assert not np.array_equal(train_once("harsh"), train_once(None))


@pytest.mark.slow
class TestPoolDeterminism:
    """The satellite contract: pool:2 == pool:4 == in-process, bitwise."""

    def test_pool_size_invariant_gradients(self):
        from repro.parallel.reducer import GradientReducer

        net = _network()
        x, t = _batch()
        kwargs = dict(model=JITTERY, trajectories=5, seed=3, epoch=2)
        ref_v, ref_g = noisy_loss_and_gradient(net, x, t, **kwargs)
        for workers in (2, 4):
            with GradientReducer(num_workers=workers, seed=0) as reducer:
                v, g = reducer.noisy_loss_and_gradient(net, x, t, **kwargs)
            assert v == ref_v, workers
            assert np.array_equal(g, ref_g), workers

    def test_pool_trained_parameters_bitwise_equal(self):
        from repro.network.autoencoder import QuantumAutoencoder

        X = np.abs(np.random.default_rng(1).normal(size=(8, 16))) + 0.1

        def train_once(parallel):
            ae = QuantumAutoencoder(16, 4, 3, 3, backend="fused")
            ae.initialize("uniform", rng=np.random.default_rng(0))
            Trainer(
                iterations=2, backend="fused", noise="harsh",
                noise_trajectories=4, parallel=parallel,
            ).train(ae, X)
            return _ae_params(ae)

        single = train_once(None)
        assert np.array_equal(single, train_once("pool:2"))
        assert np.array_equal(single, train_once("pool:4"))
