"""Tests for the noise wiring of the public API layer.

CodecSpec carries the canonical spec string, Codec.evaluate merges noisy
metrics, InferenceSession emulates the channel at serve time, and the
CLI / serve-bench surfaces accept the same ``--noise`` forms everywhere.
"""

import numpy as np
import pytest

from repro.api import Codec, CodecSpec, InferenceSession
from repro.api.benchmark import measure_serving
from repro.exceptions import NetworkConfigError, NoiseError, ServingError
from repro.experiments.cli import build_parser
from repro.network.autoencoder import QuantumAutoencoder
from repro.noise import NOISE_PRESETS, NoiseModel

SMALL = dict(
    dim=4, compressed_dim=2, compression_layers=2, reconstruction_layers=2,
    iterations=2, backend="fused",
)


def _autoencoder(seed=0, **kwargs):
    return QuantumAutoencoder(4, 2, 2, 2, **kwargs).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


def _data(m=6, n=4, seed=1):
    return np.abs(np.random.default_rng(seed).normal(size=(m, n))) + 0.1


class TestCodecSpec:
    def test_noise_canonicalized_to_spec_string(self):
        spec = CodecSpec(**SMALL, noise="mild")
        assert spec.noise == "mild"
        spec = CodecSpec(**SMALL, noise={"dephasing": 0.05})
        assert spec.noise == NoiseModel(dephasing=0.05).spec_string()
        assert CodecSpec(**SMALL).noise is None

    def test_noise_round_trips_through_dict(self):
        spec = CodecSpec(**SMALL, noise="lossy", noise_trajectories=4)
        back = CodecSpec.from_dict(spec.to_dict())
        assert back.noise == "lossy"
        assert back.noise_trajectories == 4

    def test_invalid_noise_rejected(self):
        with pytest.raises(NetworkConfigError, match="noise"):
            CodecSpec(**SMALL, noise="extreme")
        with pytest.raises(NetworkConfigError, match="noise_trajectories"):
            CodecSpec(**SMALL, noise_trajectories=0)
        with pytest.raises(NetworkConfigError, match="noise_trajectories"):
            CodecSpec(**SMALL, noise_trajectories=True)

    def test_build_noise_model(self):
        assert CodecSpec(**SMALL).build_noise_model() is None
        model = CodecSpec(**SMALL, noise="harsh").build_noise_model()
        assert model == NOISE_PRESETS["harsh"]


class TestCodecEvaluate:
    @pytest.fixture(scope="class")
    def codec(self):
        codec = Codec(CodecSpec(**SMALL))
        codec.fit(_data())
        return codec

    def test_clean_evaluate_unchanged(self, codec):
        metrics = codec.evaluate(_data())
        assert "accuracy" in metrics
        assert not any(k.startswith("noisy_") for k in metrics)

    def test_noisy_evaluate_merges_keys(self, codec):
        metrics = codec.evaluate(_data(), noise="mild", noise_trajectories=4)
        assert "accuracy" in metrics
        for key in ("noisy_accuracy", "noisy_psnr_db", "mean_fidelity",
                    "mean_transmission"):
            assert key in metrics, key
        assert metrics["trajectories"] == 4

    def test_degradation_curve_defaults_to_spec_noise(self):
        codec = Codec(CodecSpec(**SMALL, noise="mild"))
        codec.fit(_data())
        records = codec.degradation_curve(
            _data(), scales=(0.0, 1.0), noise_trajectories=4
        )
        assert [r["scale"] for r in records] == [0.0, 1.0]
        assert records[0]["mean_fidelity"] >= records[1]["mean_fidelity"]

    def test_degradation_curve_requires_noise(self, codec):
        with pytest.raises(NoiseError, match="noise model"):
            codec.degradation_curve(_data())


class TestNoisySession:
    def test_zero_noise_session_matches_clean(self):
        ae = _autoencoder()
        clean = InferenceSession(ae)
        noisy = InferenceSession(ae, noise=NoiseModel())
        X = _data()
        np.testing.assert_allclose(
            noisy.reconstruct(X), np.abs(clean.reconstruct(X)), atol=1e-9,
            rtol=0,
        )

    def test_noise_properties_and_repr(self):
        session = InferenceSession(
            _autoencoder(), noise="mild", noise_trajectories=4
        )
        assert session.noise == NOISE_PRESETS["mild"]
        assert session.noise_trajectories == 4
        assert "noise=" in repr(session)

    def test_compress_stays_clean(self):
        ae = _autoencoder()
        X = _data()
        noisy = InferenceSession(ae, noise="harsh")
        clean = InferenceSession(ae)
        np.testing.assert_allclose(
            noisy.compress(X).codes, clean.compress(X).codes,
            atol=1e-12, rtol=0,
        )

    def test_noisy_decompress_is_receiver_side(self):
        ae = _autoencoder()
        X = _data()
        session = InferenceSession(ae, noise="mild", noise_seed=3)
        payload = session.compress(X)
        out = session.decompress(payload)
        assert out.shape == X.shape
        assert np.all(np.isfinite(out))

    def test_renormalize_rejected_with_noise(self):
        ae = _autoencoder(renormalize=True)
        with pytest.raises(ServingError, match="renormaliz"):
            InferenceSession(ae, noise="mild")

    def test_bad_trajectories_rejected(self):
        with pytest.raises(ServingError):
            InferenceSession(_autoencoder(), noise="mild",
                             noise_trajectories=0)

    def test_noisy_session_reproducible_per_seed(self):
        ae = _autoencoder()
        X = _data()
        a = InferenceSession(ae, noise="harsh", noise_seed=7).reconstruct(X)
        b = InferenceSession(ae, noise="harsh", noise_seed=7).reconstruct(X)
        c = InferenceSession(ae, noise="harsh", noise_seed=8).reconstruct(X)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestServeBench:
    def test_clean_report_has_no_noise_keys(self):
        report = measure_serving(_autoencoder(), _data(m=8), 4)
        assert "noise" not in report
        assert "noisy_req_per_s" not in report

    def test_noisy_report_keys(self):
        report = measure_serving(
            _autoencoder(), _data(m=8), 4, noise="mild",
            noise_trajectories=2,
        )
        for key in (
            "noise", "noise_trajectories", "noisy_session_seconds",
            "noisy_req_per_s", "noisy_vs_clean_mse",
            "clean_p50_ms", "clean_p99_ms", "noisy_p50_ms", "noisy_p99_ms",
        ):
            assert key in report, key
        assert report["noise"] == "mild"
        assert report["noisy_vs_clean_mse"] >= 0.0
        assert report["clean_p50_ms"] <= report["clean_p99_ms"]
        assert report["noisy_p50_ms"] <= report["noisy_p99_ms"]


TRAIN = ["train", "--checkpoint", "ckpt.json"]


class TestCli:
    def test_noise_flags_parse_and_canonicalize(self):
        parser = build_parser()
        args = parser.parse_args(TRAIN + ["--noise", '{"dephasing": 0.05}'])
        assert args.noise == NoiseModel(dephasing=0.05).spec_string()
        args = parser.parse_args(TRAIN + ["--noise-preset", "lossy",
                                          "--noise-trajectories", "4"])
        assert args.noise_preset == "lossy"
        assert args.noise_trajectories == 4

    def test_noise_and_preset_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                TRAIN + ["--noise", "mild", "--noise-preset", "harsh"]
            )
        capsys.readouterr()

    def test_bad_noise_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(TRAIN + ["--noise", "extreme"])
        capsys.readouterr()

    @pytest.mark.parametrize(
        "argv",
        [
            TRAIN,
            ["compress", "--checkpoint", "c.json", "--output", "o.json"],
            ["serve"],
            ["serve-bench"],
        ],
        ids=["train", "compress", "serve", "serve-bench"],
    )
    def test_all_surfaces_take_noise(self, argv):
        args = build_parser().parse_args(argv + ["--noise-preset", "mild"])
        from repro.experiments.cli import _noise_from_args

        assert _noise_from_args(args) == "mild"
        assert args.noise_trajectories == 8
