"""Tests for the two noisy execution paths (density vs trajectory).

The load-bearing contracts:

- at ``theta_sigma = 0`` nothing is stochastic, so the trajectory path
  must agree with the exact density fold to rounding (not statistics);
- with jitter, the trajectory mean converges to the density path (the
  full statistical gate lives in ``benchmarks/bench_noise.py``);
- the ideal model reports fidelity exactly 1 and reproduces the clean
  pipeline's probabilities;
- all quantities are unconditional: transmission tracks lost photons.
"""

import numpy as np
import pytest

from repro.exceptions import NoiseError
from repro.network.autoencoder import QuantumAutoencoder
from repro.noise import (
    NoiseModel,
    clean_mesh_matrix,
    density_forward,
    realization_rng,
    sample_mesh_matrix,
    trajectory_forward,
)
from repro.noise.trajectory import (
    STREAM_UC,
    channel_probabilities,
    measure_probabilities,
)


@pytest.fixture(scope="module")
def ae():
    ae = QuantumAutoencoder(8, 3, 4, 4, backend="fused")
    ae.initialize("uniform", rng=np.random.default_rng(3))
    return ae


@pytest.fixture(scope="module")
def amplitudes():
    rng = np.random.default_rng(5)
    a = np.abs(rng.normal(size=(8, 6))) + 0.1
    return a / np.linalg.norm(a, axis=0, keepdims=True)


class TestMeshSampling:
    def test_clean_mesh_is_unitary(self, ae):
        u = clean_mesh_matrix(ae.uc, ae.uc.get_flat_params())
        assert np.allclose(u.T @ u, np.eye(8), atol=1e-12)

    def test_lossy_mesh_is_subunitary(self, ae):
        model = NoiseModel(loss_per_gate=0.01)
        u = sample_mesh_matrix(ae.uc, ae.uc.get_flat_params(), model, None)
        sv = np.linalg.svd(u, compute_uv=False)
        assert sv.max() < 1.0

    def test_jitter_requires_rng(self, ae):
        with pytest.raises(NoiseError, match="rng"):
            sample_mesh_matrix(
                ae.uc, ae.uc.get_flat_params(),
                NoiseModel(theta_sigma=0.1), None,
            )

    def test_allow_phase_rejected(self):
        complex_ae = QuantumAutoencoder(4, 2, 2, 2, allow_phase=True)
        complex_ae.initialize("uniform", rng=np.random.default_rng(0))
        with pytest.raises(NoiseError, match="phase"):
            sample_mesh_matrix(
                complex_ae.uc,
                complex_ae.uc.get_flat_params(),
                NoiseModel(),
                None,
            )

    def test_realization_rng_keyed_not_shared(self):
        a = realization_rng(3, 1, 7, STREAM_UC).normal(size=4)
        b = realization_rng(3, 1, 7, STREAM_UC).normal(size=4)
        c = realization_rng(3, 1, 8, STREAM_UC).normal(size=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestIdealLimit:
    def test_ideal_fidelity_is_one_to_rounding(self, ae, amplitudes):
        # Conditional fidelity: projection loss must NOT read as infidelity.
        for forward in (trajectory_forward, density_forward):
            result = forward(ae, amplitudes, NoiseModel())
            assert np.allclose(result.fidelity, 1.0, atol=1e-12)
            assert np.all(result.fidelity <= 1.0)

    def test_ideal_probabilities_match_clean_pipeline(self, ae, amplitudes):
        uc = clean_mesh_matrix(ae.uc, ae.uc.get_flat_params())
        ur = clean_mesh_matrix(ae.ur, ae.ur.get_flat_params())
        phi = uc @ amplitudes
        mask = np.zeros(8, dtype=bool)
        mask[ae.projection.keep] = True
        phi[~mask] = 0.0
        expected = np.abs(ur @ phi) ** 2
        for forward in (trajectory_forward, density_forward):
            result = forward(ae, amplitudes, NoiseModel())
            assert np.allclose(result.probabilities, expected, atol=1e-10)

    def test_transmission_is_retained_probability(self, ae, amplitudes):
        result = trajectory_forward(ae, amplitudes, NoiseModel())
        assert np.all(result.transmission <= 1.0 + 1e-12)
        assert np.allclose(
            result.transmission, result.probabilities.sum(axis=0), atol=1e-12
        )


class TestPathAgreement:
    def test_deterministic_channels_agree_exactly(self, ae, amplitudes):
        """No jitter -> no sampling -> the paths must match to rounding."""
        model = NoiseModel(
            loss_per_gate=0.01, dephasing=0.07, depolarizing=0.03
        )
        tr = trajectory_forward(ae, amplitudes, model, trajectories=1)
        de = density_forward(ae, amplitudes, model)
        assert np.allclose(tr.probabilities, de.probabilities, atol=1e-10)
        assert np.allclose(tr.fidelity, de.fidelity, atol=1e-10)
        assert np.allclose(tr.transmission, de.transmission, atol=1e-10)

    def test_jittered_trajectory_converges_to_density(self, ae, amplitudes):
        model = NoiseModel(theta_sigma=0.05, dephasing=0.02)
        de = density_forward(ae, amplitudes, model)
        tr = trajectory_forward(ae, amplitudes, model, trajectories=256)
        assert np.max(np.abs(tr.probabilities - de.probabilities)) < 0.01
        assert np.max(np.abs(tr.fidelity - de.fidelity)) < 0.02

    def test_measurement_stream_shared(self, ae, amplitudes):
        """Finite shots draw the same stream on both paths."""
        model = NoiseModel(dephasing=0.05, shots=2048)
        tr = trajectory_forward(ae, amplitudes, model, trajectories=1, seed=9)
        de = density_forward(ae, amplitudes, model, seed=9)
        # Identical multinomial draws; only the unconditional rescale can
        # differ at rounding level between the two folds.
        assert np.allclose(tr.probabilities, de.probabilities, atol=1e-12)


class TestChannels:
    def test_channel_probabilities_preserve_trace_without_loss(self, ae):
        rng = np.random.default_rng(11)
        phi = rng.normal(size=(8, 4))
        phi /= np.linalg.norm(phi, axis=0, keepdims=True)
        ur = clean_mesh_matrix(ae.ur, ae.ur.get_flat_params())
        for model in (
            NoiseModel(dephasing=0.3),
            NoiseModel(depolarizing=0.4),
            NoiseModel(dephasing=0.2, depolarizing=0.2),
        ):
            probs, _ = channel_probabilities(ur, phi, model)
            assert np.allclose(probs.sum(axis=0), 1.0, atol=1e-10)

    def test_measure_probabilities_exact_when_shots_none(self):
        p = np.array([[0.4, 0.1], [0.2, 0.3]])
        assert measure_probabilities(p, None) is p

    def test_measure_probabilities_unbiased_scaling(self):
        """Column totals (transmission) survive sampling in expectation."""
        rng = np.random.default_rng(0)
        p = np.array([[0.3], [0.15]])  # sub-normalized: total 0.45
        est = measure_probabilities(np.tile(p, (1, 2000)), 64, rng)
        assert abs(est.sum(axis=0).mean() - 0.45) < 0.01

    def test_measure_requires_rng(self):
        with pytest.raises(NoiseError):
            measure_probabilities(np.array([[1.0]]), 100, None)


class TestDegradation:
    def test_curve_monotone_under_scaling(self, ae, amplitudes):
        from repro.noise import degradation_curve

        records = degradation_curve(
            ae,
            np.abs(np.random.default_rng(2).normal(size=(6, 8))) + 0.1,
            NoiseModel(theta_sigma=0.05, loss_per_gate=0.01, dephasing=0.08),
            scales=(0.0, 0.5, 1.0),
            trajectories=16,
        )
        fids = [r["mean_fidelity"] for r in records]
        trans = [r["mean_transmission"] for r in records]
        assert fids[0] == pytest.approx(1.0)
        assert fids[0] >= fids[1] >= fids[2]
        assert trans[0] >= trans[1] >= trans[2]
        assert [r["scale"] for r in records] == [0.0, 0.5, 1.0]

    def test_evaluate_noisy_keys_and_paths(self, ae):
        from repro.noise import evaluate_noisy

        X = np.abs(np.random.default_rng(4).normal(size=(5, 8))) + 0.1
        model = NoiseModel(dephasing=0.05)
        for path in ("trajectory", "density"):
            metrics = evaluate_noisy(ae, X, model, trajectories=4, path=path)
            for key in (
                "noisy_accuracy",
                "noisy_pixel_accuracy",
                "noisy_mse",
                "noisy_psnr_db",
                "mean_fidelity",
                "mean_transmission",
                "trajectories",
            ):
                assert key in metrics, (path, key)

    def test_evaluate_noisy_rejects_unknown_path(self, ae):
        from repro.noise import evaluate_noisy

        X = np.abs(np.random.default_rng(4).normal(size=(3, 8))) + 0.1
        with pytest.raises(NoiseError, match="path"):
            evaluate_noisy(ae, X, NoiseModel(), path="statevector")
