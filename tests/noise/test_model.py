"""Tests for repro.noise.model — the frozen NoiseModel description."""

import json

import numpy as np
import pytest

from repro.exceptions import NoiseError
from repro.noise import NOISE_PRESETS, NoiseModel, noise_preset


class TestValidation:
    def test_defaults_are_ideal(self):
        model = NoiseModel()
        assert model.is_ideal
        assert not model.has_channel_noise
        assert model.shots is None

    @pytest.mark.parametrize(
        "field", ["theta_sigma", "loss_per_gate", "dephasing", "depolarizing"]
    )
    def test_negative_rejected(self, field):
        with pytest.raises(NoiseError):
            NoiseModel(**{field: -0.1})

    @pytest.mark.parametrize("field", ["dephasing", "depolarizing"])
    def test_fraction_above_one_rejected(self, field):
        with pytest.raises(NoiseError):
            NoiseModel(**{field: 1.5})

    def test_full_loss_rejected(self):
        with pytest.raises(NoiseError):
            NoiseModel(loss_per_gate=1.0)

    @pytest.mark.parametrize("shots", [0, -5, 2.5, True])
    def test_bad_shots_rejected(self, shots):
        with pytest.raises(NoiseError):
            NoiseModel(shots=shots)

    def test_nan_rejected(self):
        with pytest.raises(NoiseError):
            NoiseModel(theta_sigma=float("nan"))


class TestSerialization:
    def test_json_round_trip(self):
        model = NoiseModel(
            theta_sigma=0.02, loss_per_gate=0.01, dephasing=0.05, shots=4096
        )
        assert NoiseModel.from_json(model.to_json()) == model

    def test_dict_round_trip(self):
        model = NoiseModel(depolarizing=0.1)
        assert NoiseModel.from_dict(model.to_dict()) == model

    def test_unknown_keys_rejected(self):
        with pytest.raises(NoiseError):
            NoiseModel.from_dict({"theta_sigma": 0.1, "bogus": 1})

    def test_canonical_json_is_sorted_and_stable(self):
        a = NoiseModel(dephasing=0.05).to_json()
        assert a == NoiseModel.from_json(a).to_json()
        assert list(json.loads(a)) == sorted(json.loads(a))

    def test_spec_string_prefers_preset_name(self):
        for name, model in NOISE_PRESETS.items():
            assert model.spec_string() == name
        custom = NoiseModel(dephasing=0.123)
        assert custom.spec_string().startswith("{")


class TestFromSpec:
    def test_none_and_empty(self):
        assert NoiseModel.from_spec(None) is None
        assert NoiseModel.from_spec("") is None

    def test_model_passthrough(self):
        model = NoiseModel(dephasing=0.05)
        assert NoiseModel.from_spec(model) is model

    def test_preset_names(self):
        for name in ("mild", "lossy", "harsh"):
            assert NoiseModel.from_spec(name) == NOISE_PRESETS[name]
            assert noise_preset(name) == NOISE_PRESETS[name]

    def test_json_string(self):
        model = NoiseModel.from_spec('{"theta_sigma": 0.03}')
        assert model.theta_sigma == 0.03

    def test_mapping(self):
        model = NoiseModel.from_spec({"shots": 128})
        assert model.shots == 128

    def test_unknown_preset_raises(self):
        with pytest.raises(NoiseError):
            NoiseModel.from_spec("extreme")
        with pytest.raises(NoiseError):
            noise_preset("extreme")

    def test_malformed_json_raises(self):
        with pytest.raises(NoiseError):
            NoiseModel.from_spec('{"theta_sigma": }')


class TestScaling:
    def test_scaled_zero_is_ideal_with_shots_kept(self):
        model = NOISE_PRESETS["lossy"].scaled(0.0)
        assert model.theta_sigma == 0.0
        assert model.loss_per_gate == 0.0
        assert model.shots == NOISE_PRESETS["lossy"].shots

    def test_scaled_clips_fractions(self):
        model = NoiseModel(dephasing=0.6).scaled(2.0)
        assert model.dephasing == 1.0

    def test_presets_strictly_ordered(self):
        mild, lossy, harsh = (
            NOISE_PRESETS["mild"],
            NOISE_PRESETS["lossy"],
            NOISE_PRESETS["harsh"],
        )
        for field in ("theta_sigma", "loss_per_gate", "dephasing",
                      "depolarizing"):
            assert (
                getattr(mild, field)
                < getattr(lossy, field)
                < getattr(harsh, field)
            )
        assert mild.shots > lossy.shots > harsh.shots
