"""Tests for repro.analysis.compressibility."""

import numpy as np
import pytest

from repro.analysis.compressibility import (
    accuracy_ceiling,
    compressibility_report,
)
from repro.data import paper_dataset, random_binary_dataset
from repro.exceptions import DimensionError


class TestAccuracyCeiling:
    def test_rank4_data_perfect_at_d4(self, paper_images):
        out = accuracy_ceiling(paper_images, d=4)
        assert out["accuracy_ceiling_pct"] == pytest.approx(100.0)
        assert out["retained_energy"] == pytest.approx(1.0)
        assert out["residual_loss_floor"] == pytest.approx(0.0, abs=1e-9)

    def test_below_rank_is_lossy(self, paper_images):
        out = accuracy_ceiling(paper_images, d=2)
        assert out["accuracy_ceiling_pct"] < 100.0
        assert out["retained_energy"] < 1.0
        assert out["residual_loss_floor"] > 0.0

    def test_full_budget_always_perfect(self, paper_images):
        out = accuracy_ceiling(paper_images, d=16)
        assert out["accuracy_ceiling_pct"] == pytest.approx(100.0)

    def test_ceiling_bounds_trained_network(self, paper_images):
        """A trained network can never beat the ceiling."""
        from repro import QuantumAutoencoder, Trainer, paper_accuracy
        from repro.network.targets import TruncatedInputTarget
        from repro.training.optimizers import Adam

        ceiling = accuracy_ceiling(paper_images, d=4)["accuracy_ceiling_pct"]
        ae = QuantumAutoencoder(16, 4, 8, 10).initialize(
            "uniform", rng=np.random.default_rng(0)
        )
        Trainer(
            iterations=60,
            optimizer_factory=lambda: Adam(0.05),
            record_theta_every=None,
        ).train(
            ae,
            paper_images,
            target_strategy=TruncatedInputTarget.from_pca(
                ae.projection, paper_images
            ),
        )
        measured = paper_accuracy(ae.forward(paper_images).x_hat, paper_images)
        assert measured <= ceiling + 1e-9

    def test_validation(self, paper_images):
        with pytest.raises(DimensionError):
            accuracy_ceiling(paper_images, d=0)
        with pytest.raises(DimensionError):
            accuracy_ceiling(paper_images, d=17)
        with pytest.raises(DimensionError):
            accuracy_ceiling(np.ones(4), d=1)


class TestReport:
    def test_monotone_energy(self, paper_images):
        records = compressibility_report(paper_images, max_d=8)
        energies = [r["retained_energy"] for r in records]
        assert energies == sorted(energies)

    def test_knee_at_rank(self, paper_images):
        records = compressibility_report(paper_images, max_d=6)
        by_d = {r["d"]: r for r in records}
        assert by_d[4]["retained_energy"] == pytest.approx(1.0)
        assert by_d[3]["retained_energy"] < 1.0

    def test_random_data_has_no_sharp_knee(self):
        X = random_binary_dataset(30, image_size=4, seed=0).matrix()
        records = compressibility_report(X, max_d=16)
        # Full-rank data keeps gaining energy all the way out.
        assert records[3]["retained_energy"] < 0.99

    def test_invalid_max_d(self, paper_images):
        with pytest.raises(DimensionError):
            compressibility_report(paper_images, max_d=0)
