"""Tests for repro.analysis.feasibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.feasibility import (
    gram_matrix,
    unitary_map_exists,
    unitary_map_residual,
)
from repro.encoding.amplitude import encode_batch
from repro.exceptions import DimensionError
from repro.simulator.unitary import haar_random_unitary, random_orthogonal


class TestGramMatrix:
    def test_orthonormal_family(self):
        assert np.allclose(gram_matrix(np.eye(4)[:, :2]), np.eye(2))

    def test_hermitian(self, rng):
        x = rng.normal(size=(5, 3)) + 1j * rng.normal(size=(5, 3))
        g = gram_matrix(x)
        assert np.allclose(g, np.conj(g.T))

    def test_1d_rejected(self):
        with pytest.raises(DimensionError):
            gram_matrix(np.ones(4))


class TestUnitaryMapExists:
    @given(st.integers(0, 300))
    @settings(max_examples=25)
    def test_property_unitary_images_always_feasible(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(6, 4))
        x /= np.linalg.norm(x, axis=0)
        u = random_orthogonal(6, rng)
        assert unitary_map_exists(x, u @ x)

    def test_collapsed_targets_infeasible(self):
        x = np.eye(4)[:, :3]
        y = np.tile(np.eye(4)[:, :1], (1, 3))
        assert not unitary_map_exists(x, y)

    def test_paper_uniform_target_infeasible(self, paper_images):
        """The EXPERIMENTS.md ambiguity #3, as a theorem-level check."""
        amps = encode_batch(paper_images).amplitudes()
        uniform = np.zeros_like(amps)
        uniform[12:, :] = 0.5  # |b|^2 uniform over the last 4 of 16
        assert not unitary_map_exists(amps, uniform)

    def test_pca_targets_feasible_on_rank4(self, paper_images):
        from repro.network.projection import Projection
        from repro.network.targets import TruncatedInputTarget

        enc = encode_batch(paper_images)
        proj = Projection.last(16, 4)
        strat = TruncatedInputTarget.from_pca(proj, paper_images)
        assert unitary_map_exists(enc.amplitudes(), strat.targets(enc))

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            unitary_map_exists(np.eye(3), np.eye(4))


class TestUnitaryMapResidual:
    def test_zero_for_feasible(self, rng):
        x = rng.normal(size=(5, 3))
        x /= np.linalg.norm(x, axis=0)
        u = random_orthogonal(5, rng)
        residual, u_star = unitary_map_residual(x, u @ x)
        assert residual == pytest.approx(0.0, abs=1e-10)
        assert np.allclose(u_star @ x, u @ x, atol=1e-10)

    def test_recovered_unitary_is_unitary(self, rng):
        x = rng.normal(size=(4, 6))
        y = rng.normal(size=(4, 6))
        _, u_star = unitary_map_residual(x, y)
        assert np.allclose(np.conj(u_star.T) @ u_star, np.eye(4), atol=1e-10)

    def test_positive_for_infeasible(self):
        x = np.eye(4)[:, :2]
        y = np.tile(np.eye(4)[:, :1], (1, 2))
        residual, _ = unitary_map_residual(x, y)
        assert residual > 0.5

    def test_residual_is_lower_bound_for_any_unitary(self, rng):
        """Procrustes optimality: a random unitary never beats U*."""
        x = rng.normal(size=(4, 5))
        y = rng.normal(size=(4, 5))
        residual, _ = unitary_map_residual(x, y)
        u_rand = random_orthogonal(4, rng)
        rand_loss = float(np.sum((u_rand @ x - y) ** 2))
        assert residual <= rand_loss + 1e-9

    def test_complex_families(self, rng):
        x = rng.normal(size=(3, 2)) + 1j * rng.normal(size=(3, 2))
        x /= np.linalg.norm(x, axis=0)
        u = haar_random_unitary(3, rng)
        residual, _ = unitary_map_residual(x, u @ x)
        assert residual == pytest.approx(0.0, abs=1e-9)

    def test_uniform_target_has_large_full_map_floor(self, paper_images):
        """The uniform target is far from unitarily reachable: the
        full-map Procrustes floor is large.  (The *trained* L_C plateau,
        ~2.9 in EXPERIMENTS.md, is lower because Eq. (5)'s projection
        exempts the trash rows from the loss — the floor here bounds the
        unprojected map and upper-bounds how bad the target choice is.)"""
        amps = encode_batch(paper_images).amplitudes()
        uniform = np.zeros_like(amps)
        uniform[12:, :] = 0.5
        residual, _ = unitary_map_residual(amps, uniform)
        assert residual > 5.0  # nowhere near feasible
        # Compare: the PCA-mixed targets have a (near-)zero floor.
        from repro.network.projection import Projection
        from repro.network.targets import TruncatedInputTarget

        enc = encode_batch(paper_images)
        strat = TruncatedInputTarget.from_pca(
            Projection.last(16, 4), paper_images
        )
        good_residual, _ = unitary_map_residual(
            enc.amplitudes(), strat.targets(enc)
        )
        assert good_residual == pytest.approx(0.0, abs=1e-8)
