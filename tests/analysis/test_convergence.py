"""Tests for repro.analysis.convergence."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    budget_study,
    loss_half_life,
    plateau_iteration,
)
from repro.exceptions import ExperimentError


class TestHalfLife:
    def test_exact_exponential(self):
        curve = [2.0 ** (-t) for t in range(30)]
        assert loss_half_life(curve, floor=0.0) == pytest.approx(1.0)

    def test_slower_decay_longer_half_life(self):
        fast = [2.0 ** (-t) for t in range(20)]
        slow = [2.0 ** (-t / 4) for t in range(20)]
        assert loss_half_life(slow, floor=0.0) > loss_half_life(
            fast, floor=0.0
        )

    def test_non_decreasing_is_infinite(self):
        assert loss_half_life([1.0, 1.0, 1.0, 1.1]) == float("inf")

    def test_too_short_rejected(self):
        with pytest.raises(ExperimentError):
            loss_half_life([1.0])

    def test_nan_rejected(self):
        with pytest.raises(ExperimentError):
            loss_half_life([1.0, np.nan])


class TestPlateau:
    def test_step_curve(self):
        curve = [10.0] * 3 + [1.0] * 20
        p = plateau_iteration(curve, rel_tol=0.05, window=5)
        assert 2 <= p <= 4

    def test_constant_curve_plateaus_immediately(self):
        assert plateau_iteration([5.0] * 10) == 0

    def test_never_plateaus_returns_last(self):
        curve = list(np.linspace(10, 0, 20))
        p = plateau_iteration(curve, rel_tol=0.01, window=3)
        assert p >= 15

    def test_real_training_curve(self):
        """Plateau detection on an actual Fig.-4-style curve."""
        from repro.experiments.config import PaperConfig
        from repro.experiments.fig4 import run_fig4

        result = run_fig4(PaperConfig(iterations=60))
        p = plateau_iteration(result.history.loss_r)
        assert 0 < p < 60

    def test_validation(self):
        with pytest.raises(ExperimentError):
            plateau_iteration([1.0, 0.5], rel_tol=0.0)
        with pytest.raises(ExperimentError):
            plateau_iteration([1.0, 0.5], window=0)


class TestBudgetStudy:
    def test_records_per_budget(self):
        from repro.experiments.config import PaperConfig

        records = budget_study(
            budgets=(5, 10),
            config=PaperConfig(
                compression_layers=4, reconstruction_layers=4
            ),
        )
        assert [r["iterations"] for r in records] == [5, 10]
        assert all("max_accuracy_pct" in r for r in records)

    def test_longer_budget_not_worse_loss(self):
        from repro.experiments.config import PaperConfig

        records = budget_study(
            budgets=(10, 40),
            config=PaperConfig(
                compression_layers=6, reconstruction_layers=6
            ),
        )
        short, long = records
        assert long["min_loss_r"] <= short["min_loss_r"] + 1e-9

    def test_empty_budgets_rejected(self):
        with pytest.raises(ExperimentError):
            budget_study(budgets=())

    def test_invalid_budget_rejected(self):
        with pytest.raises(ExperimentError):
            budget_study(budgets=(0,))
