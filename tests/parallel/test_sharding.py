"""Tests for repro.parallel.sharding (pure planning, no processes)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.parallel.sharding import Shard, plan_shards, shard_views


class TestPlanShards:
    def test_balanced_partition(self):
        widths = [s.num_columns for s in plan_shards(10, 3)]
        assert widths == [4, 3, 3]

    def test_exact_division(self):
        assert [s.num_columns for s in plan_shards(8, 4)] == [2, 2, 2, 2]

    def test_never_more_shards_than_columns(self):
        plan = plan_shards(3, 8)
        assert len(plan) == 3
        assert all(s.num_columns == 1 for s in plan)

    def test_min_columns_narrows_plan(self):
        plan = plan_shards(100, 4, min_columns=40)
        assert len(plan) == 2
        assert [s.num_columns for s in plan] == [50, 50]

    def test_min_columns_always_yields_one_shard(self):
        plan = plan_shards(10, 4, min_columns=1000)
        assert len(plan) == 1
        assert plan[0].slice == slice(0, 10)

    def test_indices_sequential(self):
        assert [s.index for s in plan_shards(20, 5)] == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_inputs_rejected(self, bad):
        with pytest.raises(DimensionError):
            plan_shards(bad, 2)
        with pytest.raises(DimensionError):
            plan_shards(4, bad)
        with pytest.raises(DimensionError):
            plan_shards(4, 2, min_columns=bad)

    def test_shard_validates_range(self):
        with pytest.raises(DimensionError):
            Shard(index=0, start=3, stop=3)
        with pytest.raises(DimensionError):
            Shard(index=0, start=-1, stop=2)

    @given(
        m=st.integers(min_value=1, max_value=500),
        k=st.integers(min_value=1, max_value=32),
        min_cols=st.integers(min_value=1, max_value=64),
    )
    def test_plan_covers_exactly_and_balances(self, m, k, min_cols):
        plan = plan_shards(m, k, min_columns=min_cols)
        # Contiguous, ordered, complete cover of [0, m).
        assert plan[0].start == 0 and plan[-1].stop == m
        for prev, cur in zip(plan, plan[1:]):
            assert prev.stop == cur.start
        widths = [s.num_columns for s in plan]
        assert min(widths) >= 1
        assert max(widths) - min(widths) <= 1
        assert len(plan) <= k
        if len(plan) > 1:
            assert min(widths) >= min_cols


class TestShardViews:
    def test_views_alias_columns(self):
        x = np.arange(12.0).reshape(3, 4)
        views = list(shard_views(x, plan_shards(4, 2)))
        views[0][:] = -1.0
        assert np.all(x[:, :2] == -1.0)
        assert np.all(x[:, 2:] == np.arange(12.0).reshape(3, 4)[:, 2:])

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionError):
            list(shard_views(np.ones(5), plan_shards(5, 2)))
