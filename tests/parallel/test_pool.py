"""Tests for repro.parallel.pool — lifecycle, transfer, clean shutdown.

Tests that actually spawn worker processes are marked ``slow`` (each
spawn re-imports numpy in the child); the cheap contract checks run
unconditionally.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.exceptions import DimensionError, ExperimentError
from repro.parallel.pool import (
    WorkerPool,
    default_worker_count,
    worker_index,
    worker_rng,
)


def _rng_probe(_):
    """Worker-side probe: (stream index, first draws of the seeded RNG)."""
    return worker_index(), worker_rng().random(3).tolist()


def _probe_unseeded(_):
    """In an unseeded pool the worker RNG must stay unset (raises on use)."""
    try:
        worker_rng()
    except ExperimentError:
        return worker_index() is None
    return False


class TestDefaults:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_affinity_mask_respected(self):
        # On Linux the affinity mask is the authoritative CPU budget
        # (containerized CI may expose fewer CPUs than the host has).
        import os

        if hasattr(os, "sched_getaffinity"):
            assert default_worker_count() == len(os.sched_getaffinity(0))

    def test_invalid_process_count_rejected(self):
        with pytest.raises(ExperimentError):
            WorkerPool(processes=0)

    def test_construction_spawns_nothing(self):
        pool = WorkerPool(processes=2)
        assert not pool.running
        assert "idle" in repr(pool)

    def test_zero_width_batch_short_circuits(self):
        """Empty batches follow chunked_apply's contract (and must not
        spawn workers just to compute nothing)."""
        pool = WorkerPool(processes=2)
        out = pool.apply_dense(np.ones((3, 4)), np.empty((4, 0)))
        assert out.shape == (3, 0)
        data = np.empty((5, 0))
        assert pool.scatter_gather(len, data) is data
        assert not pool.running

    def test_empty_map_returns_without_spawning(self):
        """``map([])`` answers ``[]`` directly — no workers for no work."""
        pool = WorkerPool(processes=2)
        assert pool.map(len, []) == []
        assert pool.map(len, iter(())) == []
        assert not pool.running

    def test_parent_process_has_no_worker_rng(self):
        assert worker_index() is None
        with pytest.raises(ExperimentError):
            worker_rng()

    def test_apply_dense_validates_shapes_before_spawn(self):
        pool = WorkerPool(processes=2)
        with pytest.raises(DimensionError):
            pool.apply_dense(np.ones((3, 4)), np.ones((5, 6)))
        with pytest.raises(DimensionError):
            pool.apply_dense(
                np.ones((3, 4)), np.ones((4, 6)), out=np.empty((3, 5))
            )
        with pytest.raises(DimensionError):
            pool.apply_dense(
                np.ones((3, 4)),
                np.ones((4, 6)),
                out=np.empty((3, 6), dtype=np.int64),
            )
        assert not pool.running  # validation never started workers


@pytest.mark.slow
class TestPoolExecution:
    @pytest.fixture(scope="class")
    def pool(self):
        with WorkerPool(processes=2) as pool:
            yield pool

    def test_map_ordered(self, pool):
        assert pool.map(len, [[1, 2], [3], []]) == [2, 1, 0]

    def test_apply_dense_matches_matmul(self, pool, rng):
        m = rng.normal(size=(5, 8))
        x = rng.normal(size=(8, 97))
        assert np.allclose(pool.apply_dense(m, x), m @ x)

    def test_apply_dense_complex_promotion(self, pool, rng):
        m = rng.normal(size=(4, 4))
        x = rng.normal(size=(4, 33)) + 1j * rng.normal(size=(4, 33))
        out = pool.apply_dense(m, x)
        assert out.dtype == np.complex128
        assert np.allclose(out, m @ x)

    def test_apply_dense_caller_out_buffer(self, pool, rng):
        m = rng.normal(size=(3, 6))
        x = rng.normal(size=(6, 41))
        out = np.empty((3, 41))
        result = pool.apply_dense(m, x, out=out)
        assert result is out
        assert np.allclose(out, m @ x)

    def test_apply_dense_does_not_mutate_input(self, pool, rng):
        m = rng.normal(size=(3, 3))
        x = rng.normal(size=(3, 29))
        x_before = x.copy()
        pool.apply_dense(m, x)
        assert np.array_equal(x, x_before)

    def test_operator_shipped_once(self, pool, rng):
        m = rng.normal(size=(4, 4))
        x = rng.normal(size=(4, 20))
        pool.apply_dense(m, x)
        segments_after_first = set(pool._state["segments"])
        cached_after_first = len(pool._operator_names)
        pool.apply_dense(m, rng.normal(size=(4, 30)))
        # Same operator content -> same cached segment, no second copy.
        assert set(pool._state["segments"]) == segments_after_first
        assert len(pool._operator_names) == cached_after_first

    def test_min_columns_forwarded(self, pool, rng):
        m = rng.normal(size=(2, 2))
        x = rng.normal(size=(2, 10))
        assert np.allclose(
            pool.apply_dense(m, x, min_columns=10), m @ x
        )


@pytest.mark.slow
class TestPoolLifecycle:
    def test_close_reaps_workers_and_segments(self, rng):
        pool = WorkerPool(processes=2)
        pool.apply_dense(rng.normal(size=(3, 3)), rng.normal(size=(3, 12)))
        assert pool.running
        assert len(pool._state["segments"]) == 1  # the cached operator
        pool.close()
        assert not pool.running
        assert pool._state["segments"] == {}
        assert pool._operator_names == {}
        assert mp.active_children() == []

    def test_close_idempotent_and_restartable(self):
        pool = WorkerPool(processes=2)
        assert pool.map(len, [[1]]) == [1]
        pool.close()
        pool.close()
        # The pool respawns lazily after close (deploy-cycle friendly).
        assert pool.map(len, [[1, 2]]) == [2]
        pool.close()
        assert mp.active_children() == []

    def test_context_manager_closes(self):
        with WorkerPool(processes=2) as pool:
            pool.map(len, [[1]])
            assert pool.running
        assert not pool.running
        assert mp.active_children() == []

    def test_seeded_worker_rng_streams(self):
        """Each worker gets the SeedSequence(seed, spawn_key=(i,)) stream:
        stream ``i`` depends only on ``(seed, i)``, not on spawn order or
        task assignment.  The stream persists across tasks, so worker
        ``i``'s successive probes are successive chunks of it."""
        with WorkerPool(processes=2, seed=123) as pool:
            probes = pool.map(_rng_probe, list(range(8)))
        per_worker: dict = {}
        for index, draws in probes:
            per_worker.setdefault(index, []).extend(draws)
        assert set(per_worker) <= {0, 1}
        for index, draws in per_worker.items():
            stream = np.random.default_rng(
                np.random.SeedSequence(123, spawn_key=(index,))
            )
            assert draws == stream.random(len(draws)).tolist()

    def test_unseeded_pool_leaves_worker_rng_unset(self):
        with WorkerPool(processes=2) as pool:
            probes = pool.map(_probe_unseeded, list(range(4)))
        assert all(probes)

    def test_finalizer_shuts_down_on_gc(self):
        pool = WorkerPool(processes=2)
        pool.map(len, [[1]])
        state = pool._state
        del pool
        import gc

        gc.collect()
        assert state["pool"] is None
        assert state["segments"] == {}
        assert mp.active_children() == []


def _sleepy(seconds):
    import time as _time

    _time.sleep(seconds)
    return seconds


class TestDrainHook:
    def test_fresh_pool_is_idle(self):
        pool = WorkerPool(processes=2)
        assert pool.inflight == 0
        assert pool.drain(timeout=0.01) is True
        assert not pool.running  # drain alone never spawns workers


@pytest.mark.slow
class TestDrainUnderLoad:
    def test_drain_waits_for_inflight_map(self):
        """The serving front-end's shutdown hook: drain() times out
        while a map is in flight, succeeds once it lands, and the pool
        stays usable afterwards."""
        import threading
        import time

        with WorkerPool(processes=2) as pool:
            pool.map(len, [[1]])  # spawn workers up front
            done = []

            def run():
                done.append(pool.map(_sleepy, [0.4]))

            thread = threading.Thread(target=run)
            thread.start()
            deadline = time.monotonic() + 5.0
            while pool.inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert pool.inflight == 1
            assert pool.drain(timeout=0.05) is False  # map still running
            assert pool.drain(timeout=10.0) is True
            thread.join(timeout=10.0)
            assert done == [[0.4]]
            assert pool.inflight == 0
            assert pool.map(len, [[1, 2]]) == [2]  # still serviceable
