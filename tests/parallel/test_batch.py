"""Tests for repro.parallel.batch."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.network import QuantumAutoencoder, QuantumNetwork
from repro.parallel.batch import ChunkedPipeline, chunked_apply, chunked_forward


class TestChunkedForward:
    def test_matches_direct_forward(self, rng):
        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 50))
        assert np.allclose(
            chunked_forward(net, x, chunk_size=7), net.forward(x)
        )

    def test_chunk_larger_than_batch(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 3))
        assert np.allclose(
            chunked_forward(net, x, chunk_size=100), net.forward(x)
        )

    def test_out_buffer_used(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 10))
        out = np.empty_like(x)
        result = chunked_forward(net, x, chunk_size=4, out=out)
        assert result is out

    def test_out_shape_validated(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((4, 3)), out=np.empty((4, 5)))

    def test_invalid_chunk_size(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((4, 3)), chunk_size=0)

    def test_dim_mismatch(self):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((8, 3)))

    def test_input_not_mutated(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = np.ones((4, 6))
        chunked_forward(net, x, chunk_size=2)
        assert np.all(x == 1.0)

    def test_complex_input_preserved(self, rng):
        """Regression: complex inputs used to crash on float64 coercion."""
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 11)) + 1j * rng.normal(size=(4, 11))
        out = chunked_forward(net, x, chunk_size=3)
        assert np.iscomplexobj(out)
        assert np.allclose(out, net.forward(x))

    def test_allow_phase_network_promotes_real_input(self, rng):
        """Regression: phase networks need complex chunks for real data."""
        net = QuantumNetwork(4, 2, allow_phase=True)
        params = rng.normal(size=net.num_parameters) * 0.4
        net.set_flat_params(params)
        x = rng.normal(size=(4, 9))
        out = chunked_forward(net, x, chunk_size=4)
        assert np.iscomplexobj(out)
        assert np.allclose(out, net.forward(x))

    def test_real_out_buffer_rejected_for_complex_result(self, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.normal(size=net.num_parameters))
        with pytest.raises(DimensionError, match="complex"):
            chunked_forward(net, np.ones((4, 3)), out=np.empty((4, 3)))

    def test_lossy_out_buffer_rejected(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        with pytest.raises(DimensionError, match="cannot safely hold"):
            chunked_forward(
                net, np.ones((4, 3)), out=np.empty((4, 3), dtype=np.int64)
            )

    def test_complex_out_buffer_accepted(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 5)) + 1j * rng.normal(size=(4, 5))
        out = np.empty((4, 5), dtype=np.complex128)
        result = chunked_forward(net, x, chunk_size=2, out=out)
        assert result is out
        assert np.allclose(out, net.forward(x))


class TestChunkedPipeline:
    @pytest.fixture
    def ae(self, rng):
        return QuantumAutoencoder(4, 2, 2, 2).initialize("uniform", rng=rng)

    def test_reconstruct_matches_direct(self, ae, rng):
        X = np.abs(rng.normal(size=(30, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=7).reconstruct(X)
        direct = ae.forward(X).x_hat
        assert np.allclose(chunked, direct)

    def test_codes_match_direct(self, ae, rng):
        X = np.abs(rng.normal(size=(20, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=6).compact_codes(X)
        direct = ae.forward(X).compact_codes
        assert np.allclose(chunked, direct)

    def test_invalid_chunk_size(self, ae):
        with pytest.raises(DimensionError):
            ChunkedPipeline(ae, chunk_size=0)

    def test_1d_input_rejected(self, ae):
        with pytest.raises(DimensionError):
            ChunkedPipeline(ae).reconstruct(np.ones(4))

    def test_allow_phase_codes_keep_imaginary_part(self, rng):
        """Regression: complex codes were written into a float64 buffer."""
        ae = QuantumAutoencoder(4, 2, 2, 2, allow_phase=True)
        ae.uc.set_flat_params(rng.normal(size=ae.uc.num_parameters) * 0.5)
        ae.ur.set_flat_params(rng.normal(size=ae.ur.num_parameters) * 0.5)
        X = np.abs(rng.normal(size=(12, 4))) + 0.1
        codes = ChunkedPipeline(ae, chunk_size=5).compact_codes(X)
        direct = ae.forward(X).compact_codes
        assert np.iscomplexobj(codes)
        assert np.any(np.abs(codes.imag) > 1e-12)
        assert np.allclose(codes, direct)

    def test_allow_phase_reconstruct(self, rng):
        ae = QuantumAutoencoder(4, 2, 2, 2, allow_phase=True)
        ae.uc.set_flat_params(rng.normal(size=ae.uc.num_parameters) * 0.5)
        ae.ur.set_flat_params(rng.normal(size=ae.ur.num_parameters) * 0.5)
        X = np.abs(rng.normal(size=(12, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=5).reconstruct(X)
        assert np.allclose(chunked, ae.forward(X).x_hat)

    def test_reconstruct_dtype_follows_pipeline_result(self, rng):
        """Regression: the output buffer must take the dtype the pipeline
        decodes to, not the input's — chunked and direct reconstructions
        of a phase-bearing autoencoder must agree bitwise in dtype."""
        ae = QuantumAutoencoder(4, 2, 2, 2, allow_phase=True)
        ae.uc.set_flat_params(rng.normal(size=ae.uc.num_parameters) * 0.5)
        ae.ur.set_flat_params(rng.normal(size=ae.ur.num_parameters) * 0.5)
        X = np.abs(rng.normal(size=(9, 4))) + 0.1
        direct = ae.forward(X).x_hat
        chunked = ChunkedPipeline(ae, chunk_size=4).reconstruct(X)
        assert chunked.dtype == direct.dtype
        assert np.allclose(chunked, direct)

    def test_reconstruct_empty_batch(self, ae):
        out = ChunkedPipeline(ae).reconstruct(np.empty((0, 4)))
        assert out.shape == (0, 4)
        assert out.dtype == np.float64


class TestChunkedApply:
    def test_matches_matmul(self, rng):
        m = rng.normal(size=(3, 5))
        x = rng.normal(size=(5, 17))
        assert np.allclose(chunked_apply(m, x, chunk_size=4), m @ x)

    @given(
        rows=st.integers(min_value=1, max_value=6),
        inner=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=40),
        chunk=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_caller_out_never_aliases_or_mutates_input(
        self, rows, inner, cols, chunk, seed
    ):
        """Property: with a caller-owned out buffer, the input batch is
        bitwise untouched and the result shares no memory with it."""
        gen = np.random.default_rng(seed)
        m = gen.normal(size=(rows, inner))
        x = gen.normal(size=(inner, cols))
        x_before = x.copy()
        out = np.full((rows, cols), np.nan)
        result = chunked_apply(m, x, chunk_size=chunk, out=out)
        assert result is out
        assert not np.shares_memory(result, x)
        assert not np.shares_memory(result, m)
        assert np.array_equal(x, x_before)
        assert np.allclose(result, m @ x)
