"""Tests for repro.parallel.batch."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.network import QuantumAutoencoder, QuantumNetwork
from repro.parallel.batch import ChunkedPipeline, chunked_forward


class TestChunkedForward:
    def test_matches_direct_forward(self, rng):
        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 50))
        assert np.allclose(
            chunked_forward(net, x, chunk_size=7), net.forward(x)
        )

    def test_chunk_larger_than_batch(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 3))
        assert np.allclose(
            chunked_forward(net, x, chunk_size=100), net.forward(x)
        )

    def test_out_buffer_used(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 10))
        out = np.empty_like(x)
        result = chunked_forward(net, x, chunk_size=4, out=out)
        assert result is out

    def test_out_shape_validated(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((4, 3)), out=np.empty((4, 5)))

    def test_invalid_chunk_size(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((4, 3)), chunk_size=0)

    def test_dim_mismatch(self):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((8, 3)))

    def test_input_not_mutated(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = np.ones((4, 6))
        chunked_forward(net, x, chunk_size=2)
        assert np.all(x == 1.0)


class TestChunkedPipeline:
    @pytest.fixture
    def ae(self, rng):
        return QuantumAutoencoder(4, 2, 2, 2).initialize("uniform", rng=rng)

    def test_reconstruct_matches_direct(self, ae, rng):
        X = np.abs(rng.normal(size=(30, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=7).reconstruct(X)
        direct = ae.forward(X).x_hat
        assert np.allclose(chunked, direct)

    def test_codes_match_direct(self, ae, rng):
        X = np.abs(rng.normal(size=(20, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=6).compact_codes(X)
        direct = ae.forward(X).compact_codes
        assert np.allclose(chunked, direct)

    def test_invalid_chunk_size(self, ae):
        with pytest.raises(DimensionError):
            ChunkedPipeline(ae, chunk_size=0)

    def test_1d_input_rejected(self, ae):
        with pytest.raises(DimensionError):
            ChunkedPipeline(ae).reconstruct(np.ones(4))
