"""Tests for repro.parallel.batch."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.network import QuantumAutoencoder, QuantumNetwork
from repro.parallel.batch import ChunkedPipeline, chunked_forward


class TestChunkedForward:
    def test_matches_direct_forward(self, rng):
        net = QuantumNetwork(8, 3).initialize("uniform", rng=rng)
        x = rng.normal(size=(8, 50))
        assert np.allclose(
            chunked_forward(net, x, chunk_size=7), net.forward(x)
        )

    def test_chunk_larger_than_batch(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 3))
        assert np.allclose(
            chunked_forward(net, x, chunk_size=100), net.forward(x)
        )

    def test_out_buffer_used(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 10))
        out = np.empty_like(x)
        result = chunked_forward(net, x, chunk_size=4, out=out)
        assert result is out

    def test_out_shape_validated(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((4, 3)), out=np.empty((4, 5)))

    def test_invalid_chunk_size(self, rng):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((4, 3)), chunk_size=0)

    def test_dim_mismatch(self):
        net = QuantumNetwork(4, 2)
        with pytest.raises(DimensionError):
            chunked_forward(net, np.ones((8, 3)))

    def test_input_not_mutated(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = np.ones((4, 6))
        chunked_forward(net, x, chunk_size=2)
        assert np.all(x == 1.0)

    def test_complex_input_preserved(self, rng):
        """Regression: complex inputs used to crash on float64 coercion."""
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 11)) + 1j * rng.normal(size=(4, 11))
        out = chunked_forward(net, x, chunk_size=3)
        assert np.iscomplexobj(out)
        assert np.allclose(out, net.forward(x))

    def test_allow_phase_network_promotes_real_input(self, rng):
        """Regression: phase networks need complex chunks for real data."""
        net = QuantumNetwork(4, 2, allow_phase=True)
        params = rng.normal(size=net.num_parameters) * 0.4
        net.set_flat_params(params)
        x = rng.normal(size=(4, 9))
        out = chunked_forward(net, x, chunk_size=4)
        assert np.iscomplexobj(out)
        assert np.allclose(out, net.forward(x))

    def test_real_out_buffer_rejected_for_complex_result(self, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.normal(size=net.num_parameters))
        with pytest.raises(DimensionError, match="complex"):
            chunked_forward(net, np.ones((4, 3)), out=np.empty((4, 3)))

    def test_lossy_out_buffer_rejected(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        with pytest.raises(DimensionError, match="cannot safely hold"):
            chunked_forward(
                net, np.ones((4, 3)), out=np.empty((4, 3), dtype=np.int64)
            )

    def test_complex_out_buffer_accepted(self, rng):
        net = QuantumNetwork(4, 2).initialize("uniform", rng=rng)
        x = rng.normal(size=(4, 5)) + 1j * rng.normal(size=(4, 5))
        out = np.empty((4, 5), dtype=np.complex128)
        result = chunked_forward(net, x, chunk_size=2, out=out)
        assert result is out
        assert np.allclose(out, net.forward(x))


class TestChunkedPipeline:
    @pytest.fixture
    def ae(self, rng):
        return QuantumAutoencoder(4, 2, 2, 2).initialize("uniform", rng=rng)

    def test_reconstruct_matches_direct(self, ae, rng):
        X = np.abs(rng.normal(size=(30, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=7).reconstruct(X)
        direct = ae.forward(X).x_hat
        assert np.allclose(chunked, direct)

    def test_codes_match_direct(self, ae, rng):
        X = np.abs(rng.normal(size=(20, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=6).compact_codes(X)
        direct = ae.forward(X).compact_codes
        assert np.allclose(chunked, direct)

    def test_invalid_chunk_size(self, ae):
        with pytest.raises(DimensionError):
            ChunkedPipeline(ae, chunk_size=0)

    def test_1d_input_rejected(self, ae):
        with pytest.raises(DimensionError):
            ChunkedPipeline(ae).reconstruct(np.ones(4))

    def test_allow_phase_codes_keep_imaginary_part(self, rng):
        """Regression: complex codes were written into a float64 buffer."""
        ae = QuantumAutoencoder(4, 2, 2, 2, allow_phase=True)
        ae.uc.set_flat_params(rng.normal(size=ae.uc.num_parameters) * 0.5)
        ae.ur.set_flat_params(rng.normal(size=ae.ur.num_parameters) * 0.5)
        X = np.abs(rng.normal(size=(12, 4))) + 0.1
        codes = ChunkedPipeline(ae, chunk_size=5).compact_codes(X)
        direct = ae.forward(X).compact_codes
        assert np.iscomplexobj(codes)
        assert np.any(np.abs(codes.imag) > 1e-12)
        assert np.allclose(codes, direct)

    def test_allow_phase_reconstruct(self, rng):
        ae = QuantumAutoencoder(4, 2, 2, 2, allow_phase=True)
        ae.uc.set_flat_params(rng.normal(size=ae.uc.num_parameters) * 0.5)
        ae.ur.set_flat_params(rng.normal(size=ae.ur.num_parameters) * 0.5)
        X = np.abs(rng.normal(size=(12, 4))) + 0.1
        chunked = ChunkedPipeline(ae, chunk_size=5).reconstruct(X)
        assert np.allclose(chunked, ae.forward(X).x_hat)
