"""Tests for repro.parallel.reducer — spec parsing, deterministic
reduction, and multi-process gradient agreement.

Pool-spawning tests are marked ``slow`` and share one 2-worker reducer
per class; the contract checks (spec validation, tree topology, the
single-worker in-process short-circuit) run unconditionally.
"""

import numpy as np
import pytest

from repro.exceptions import ExperimentError, GradientError
from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork
from repro.parallel.reducer import (
    GradientReducer,
    resolve_parallel_workers,
    tree_reduce,
    validate_parallel_spec,
)
from repro.parallel.pool import WorkerPool, default_worker_count
from repro.training.gradients import loss_and_gradient
from repro.training.loss import SquaredErrorLoss


def _network(seed=11, dim=8, layers=3, backend="fused"):
    return QuantumNetwork(dim, layers, backend=backend).initialize(
        "uniform", rng=np.random.default_rng(seed)
    )


def _batch(dim=8, m=12, seed=7):
    rng = np.random.default_rng(seed)
    x = np.abs(rng.normal(size=(dim, m))) + 0.1
    x /= np.linalg.norm(x, axis=0, keepdims=True)
    t = np.abs(rng.normal(size=(dim, m))) + 0.1
    t /= np.linalg.norm(t, axis=0, keepdims=True)
    return x, t


class TestParallelSpec:
    @pytest.mark.parametrize("value", [None, "", "none", "off", "NONE"])
    def test_disabled_spellings(self, value):
        assert validate_parallel_spec(value) is None

    def test_pool_spellings_normalised(self):
        assert validate_parallel_spec("pool") == "pool"
        assert validate_parallel_spec("POOL:3") == "pool:3"
        assert validate_parallel_spec(" pool:2 ") == "pool:2"

    @pytest.mark.parametrize("bad", ["pool:x", "pool:0", "pool:-1", "mpi"])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(GradientError):
            validate_parallel_spec(bad)

    def test_custom_error_class(self):
        with pytest.raises(ExperimentError):
            validate_parallel_spec("nope", ExperimentError)

    def test_resolve_workers(self):
        assert resolve_parallel_workers(None) is None
        assert resolve_parallel_workers("pool:5") == 5
        assert resolve_parallel_workers("pool") == default_worker_count()


class TestTreeReduce:
    def test_single_value(self):
        assert tree_reduce([3.5]) == 3.5

    def test_fixed_topology_fold(self):
        # [a, b, c, d, e] -> ((a+b) + (c+d)) + e, bitwise.
        vals = [0.1, 0.7, 1e-9, 3.3, 2.2]
        a, b, c, d, e = vals
        assert tree_reduce(vals) == ((a + b) + (c + d)) + e

    def test_arrays_reduce_elementwise(self):
        arrays = [np.full(3, float(i)) for i in range(4)]
        assert np.array_equal(tree_reduce(arrays), np.full(3, 6.0))

    def test_empty_rejected(self):
        with pytest.raises(GradientError):
            tree_reduce([])


class TestReducerContracts:
    def test_invalid_worker_count(self):
        with pytest.raises(GradientError):
            GradientReducer(num_workers=0)

    def test_unknown_method_rejected(self):
        net = _network()
        x, t = _batch()
        with pytest.raises(GradientError):
            GradientReducer(num_workers=1).loss_and_gradient(
                net, x, t, method="nope"
            )

    def test_unknown_shard_mode_rejected(self):
        net = _network()
        x, t = _batch()
        with pytest.raises(GradientError):
            GradientReducer(num_workers=1).loss_and_gradient(
                net, x, t, shard="rows"
            )

    def test_adjoint_param_sharding_rejected(self):
        net = _network()
        x, t = _batch()
        with pytest.raises(GradientError):
            GradientReducer(num_workers=2).loss_and_gradient(
                net, x, t, method="adjoint", shard="params"
            )

    def test_single_worker_short_circuits_in_process(self):
        """num_workers=1 never spawns: bit-identical to the plain engine."""
        net = _network()
        x, t = _batch()
        reducer = GradientReducer(num_workers=1)
        value, grad = reducer.loss_and_gradient(net, x, t)
        ref_v, ref_g = loss_and_gradient(net, x, t)
        assert value == ref_v
        assert np.array_equal(grad, ref_g)
        assert reducer._pool is None  # lazy pool never materialised
        reducer.close()

    def test_single_column_short_circuits(self):
        """One shard is no scatter: runs in-process even at 4 workers."""
        net = _network()
        x, t = _batch(m=1)
        reducer = GradientReducer(num_workers=4)
        value, grad = reducer.loss_and_gradient(net, x, t)
        assert reducer._pool is None
        ref_v, ref_g = loss_and_gradient(net, x, t)
        assert value == ref_v
        assert np.array_equal(grad, ref_g)

    def test_context_manager_and_repr(self):
        with GradientReducer(num_workers=2) as reducer:
            assert "owned" in repr(reducer)
        borrowed_pool = WorkerPool(processes=2)
        reducer = GradientReducer(pool=borrowed_pool)
        assert reducer.num_workers == 2
        assert "borrowed" in repr(reducer)
        reducer.close()  # must leave the borrowed pool untouched
        assert not borrowed_pool.running


@pytest.mark.slow
class TestReducerAgreement:
    """2-worker reduced gradients vs the single-process engine."""

    @pytest.fixture(scope="class")
    def reducer(self):
        with GradientReducer(num_workers=2, seed=0) as reducer:
            yield reducer

    @pytest.mark.parametrize("method", ["adjoint", "derivative"])
    @pytest.mark.parametrize("reduction", ["sum", "mean"])
    def test_batch_sharded_methods_match(self, reducer, method, reduction):
        net = _network()
        x, t = _batch()
        loss = SquaredErrorLoss(reduction=reduction)
        ref_v, ref_g = loss_and_gradient(net, x, t, loss=loss, method=method)
        value, grad = reducer.loss_and_gradient(
            net, x, t, loss=loss, method=method
        )
        assert value == pytest.approx(ref_v, abs=1e-12)
        assert np.max(np.abs(grad - ref_g)) < 1e-10

    @pytest.mark.parametrize("method", ["fd", "central"])
    def test_param_sharded_methods_bitwise(self, reducer, method):
        """Perturbation-stack shards reproduce the one-process stencil
        arithmetic parameter-by-parameter — exactly, not approximately."""
        net = _network()
        x, t = _batch()
        loss = SquaredErrorLoss(reduction="sum")
        ref_v, ref_g = loss_and_gradient(net, x, t, loss=loss, method=method)
        value, grad = reducer.loss_and_gradient(
            net, x, t, loss=loss, method=method
        )
        assert value == ref_v
        assert np.array_equal(grad, ref_g)

    def test_projection_masked_gradient_matches(self, reducer):
        net = _network()
        x, t = _batch()
        projection = Projection.last(8, 2)
        t_proj = projection.apply(t)
        ref_v, ref_g = loss_and_gradient(net, x, t_proj, projection=projection)
        value, grad = reducer.loss_and_gradient(
            net, x, t_proj, projection=projection
        )
        assert value == pytest.approx(ref_v, abs=1e-12)
        assert np.max(np.abs(grad - ref_g)) < 1e-10

    def test_rerun_bitwise_deterministic(self, reducer):
        """The determinism contract: same inputs -> same bits, rerun."""
        net = _network()
        x, t = _batch()
        first = reducer.loss_and_gradient(net, x, t)
        second = reducer.loss_and_gradient(net, x, t)
        assert first[0] == second[0]
        assert np.array_equal(first[1], second[1])

    def test_looped_engine_bitwise_vs_single_process(self, reducer):
        """The looped per-parameter drive shards bitwise-exactly too."""
        net = _network()
        x, t = _batch()
        loss = SquaredErrorLoss(reduction="sum")
        ref = loss_and_gradient(
            net, x, t, loss=loss, method="fd", engine="looped"
        )
        par = reducer.loss_and_gradient(
            net, x, t, loss=loss, method="fd", engine="looped"
        )
        assert par[0] == ref[0]
        assert np.array_equal(par[1], ref[1])
