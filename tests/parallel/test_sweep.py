"""Tests for repro.parallel.sweep."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.parallel.sweep import run_sweep, sweep_grid


def _square_worker(config, seed):
    """Module-level worker (picklable for the process-pool path)."""
    return config["x"] ** 2 + seed % 2


def _seed_worker(config, seed):
    return seed


class TestSweepGrid:
    def test_cartesian_product(self):
        grid = sweep_grid(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6
        assert {"a": 2, "b": "z"} in grid

    def test_single_axis(self):
        assert sweep_grid(lr=[0.1]) == [{"lr": 0.1}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            sweep_grid(a=[])

    def test_no_axes_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_grid()


class TestRunSweepSerial:
    def test_results_in_order(self):
        configs = [{"x": i} for i in range(5)]
        results = run_sweep(_square_worker, configs, processes=0)
        assert [r.config["x"] for r in results] == list(range(5))

    def test_worker_receives_config(self):
        results = run_sweep(_square_worker, [{"x": 3}], processes=0)
        assert results[0].result in (9, 10)  # 9 + seed parity

    def test_seeds_independent(self):
        results = run_sweep(
            _seed_worker, [{"i": i} for i in range(8)], processes=0
        )
        seeds = [r.seed for r in results]
        assert len(set(seeds)) == 8

    def test_seeds_deterministic_from_base(self):
        a = run_sweep(_seed_worker, [{}, {}], processes=0, base_seed=1)
        b = run_sweep(_seed_worker, [{}, {}], processes=0, base_seed=1)
        assert [r.seed for r in a] == [r.seed for r in b]

    def test_different_base_seed_differs(self):
        a = run_sweep(_seed_worker, [{}], processes=0, base_seed=1)
        b = run_sweep(_seed_worker, [{}], processes=0, base_seed=2)
        assert a[0].seed != b[0].seed

    def test_empty_configs_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep(_square_worker, [], processes=0)


class TestRunSweepParallel:
    def test_pool_matches_serial(self):
        configs = [{"x": i} for i in range(6)]
        serial = run_sweep(_square_worker, configs, processes=0, base_seed=3)
        parallel = run_sweep(_square_worker, configs, processes=2, base_seed=3)
        assert [r.result for r in serial] == [r.result for r in parallel]

    def test_pool_preserves_order(self):
        configs = [{"x": i} for i in range(10)]
        results = run_sweep(_square_worker, configs, processes=3)
        assert [r.config["x"] for r in results] == list(range(10))
