"""Tests for repro.parallel.sweep."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.parallel.sweep import run_sweep, sweep_grid


def _square_worker(config, seed):
    """Module-level worker (picklable for the process-pool path)."""
    return config["x"] ** 2 + seed % 2


def _seed_worker(config, seed):
    return seed


class TestSweepGrid:
    def test_cartesian_product(self):
        grid = sweep_grid(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6
        assert {"a": 2, "b": "z"} in grid

    def test_single_axis(self):
        assert sweep_grid(lr=[0.1]) == [{"lr": 0.1}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            sweep_grid(a=[])

    def test_no_axes_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_grid()

    def test_generator_axis_materialised(self):
        """Regression: generators used to raise TypeError on len()."""
        grid = sweep_grid(layers=(n for n in (2, 4)), lr=iter([0.1, 0.2]))
        assert len(grid) == 4
        assert {"layers": 4, "lr": 0.2} in grid

    def test_empty_generator_axis_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            sweep_grid(a=(n for n in ()))

    def test_range_axis(self):
        assert len(sweep_grid(layers=range(3))) == 3


class TestRunSweepSerial:
    def test_results_in_order(self):
        configs = [{"x": i} for i in range(5)]
        results = run_sweep(_square_worker, configs, processes=0)
        assert [r.config["x"] for r in results] == list(range(5))

    def test_worker_receives_config(self):
        results = run_sweep(_square_worker, [{"x": 3}], processes=0)
        assert results[0].result in (9, 10)  # 9 + seed parity

    def test_seeds_independent(self):
        results = run_sweep(
            _seed_worker, [{"i": i} for i in range(8)], processes=0
        )
        seeds = [r.seed for r in results]
        assert len(set(seeds)) == 8

    def test_seeds_deterministic_from_base(self):
        a = run_sweep(_seed_worker, [{}, {}], processes=0, base_seed=1)
        b = run_sweep(_seed_worker, [{}, {}], processes=0, base_seed=1)
        assert [r.seed for r in a] == [r.seed for r in b]

    def test_different_base_seed_differs(self):
        a = run_sweep(_seed_worker, [{}], processes=0, base_seed=1)
        b = run_sweep(_seed_worker, [{}], processes=0, base_seed=2)
        assert a[0].seed != b[0].seed

    def test_empty_configs_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep(_square_worker, [], processes=0)


class TestAffinityDefault:
    def test_default_processes_respect_affinity(self):
        """The implicit pool size is the usable-CPU count, not the host
        core count (containerized CI must not oversubscribe)."""
        from repro.parallel.pool import default_worker_count
        from repro.parallel import sweep

        seen = {}

        class _Recorded(Exception):
            pass

        class Recorder:
            def __init__(self, processes=None, **kwargs):
                seen["processes"] = processes
                raise _Recorded  # never actually spawn 64 tasks

        original = sweep.WorkerPool
        sweep.WorkerPool = Recorder
        try:
            configs = [{"x": i} for i in range(64)]
            try:
                run_sweep(_square_worker, configs, processes=None)
            except _Recorded:
                pass
        finally:
            sweep.WorkerPool = original
        expected = min(64, default_worker_count())
        if expected <= 1:
            # Single-CPU hosts run in-process; no pool is ever built.
            assert "processes" not in seen
        else:
            assert seen["processes"] == expected


@pytest.mark.slow
class TestRunSweepParallel:
    def test_pool_matches_serial(self):
        """The spawn path returns records identical to in-process runs:
        same results, same derived child seeds, same ordering."""
        configs = [{"x": i} for i in range(6)]
        serial = run_sweep(_square_worker, configs, processes=0, base_seed=3)
        parallel = run_sweep(_square_worker, configs, processes=2, base_seed=3)
        assert [r.result for r in serial] == [r.result for r in parallel]
        assert [r.seed for r in serial] == [r.seed for r in parallel]
        assert [r.config for r in serial] == [r.config for r in parallel]

    def test_pool_preserves_order(self):
        configs = [{"x": i} for i in range(10)]
        results = run_sweep(_square_worker, configs, processes=3)
        assert [r.config["x"] for r in results] == list(range(10))

    def test_no_processes_leak(self):
        import multiprocessing as mp

        run_sweep(_square_worker, [{"x": i} for i in range(4)], processes=2)
        assert mp.active_children() == []
