"""Tests for repro.io.results_io."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.io.results_io import load_results, save_results


class TestRoundtrip:
    def test_mixed_payload(self, tmp_path):
        payload = {
            "accuracy": 97.75,
            "iterations": 150,
            "name": "fig4",
            "converged": True,
            "none_field": None,
            "losses": np.array([1.0, 0.5, 0.1]),
            "curve_int": np.arange(4),
            "nested": {"inner": np.eye(2), "list": [1, 2, 3]},
        }
        path = tmp_path / "r.json"
        save_results(payload, path)
        out = load_results(path)
        assert out["accuracy"] == 97.75
        assert out["iterations"] == 150
        assert out["converged"] is True
        assert out["none_field"] is None
        assert np.allclose(out["losses"], payload["losses"])
        assert out["curve_int"].dtype == np.int64
        assert np.allclose(out["nested"]["inner"], np.eye(2))

    def test_numpy_scalars_become_python(self, tmp_path):
        path = tmp_path / "s.json"
        save_results({"x": np.float64(1.5), "n": np.int32(3)}, path)
        out = load_results(path)
        assert isinstance(out["x"], float)
        assert isinstance(out["n"], int)

    def test_nonfinite_floats_roundtrip(self, tmp_path):
        path = tmp_path / "inf.json"
        save_results({"psnr": float("inf")}, path)
        assert load_results(path)["psnr"] == float("inf")

    def test_tuple_becomes_list(self, tmp_path):
        path = tmp_path / "t.json"
        save_results({"pair": (1, 2)}, path)
        assert load_results(path)["pair"] == [1, 2]

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot serialise"):
            save_results({"fn": lambda x: x}, tmp_path / "bad.json")

    def test_non_dict_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_results([1, 2, 3], tmp_path / "bad.json")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="corrupt"):
            load_results(path)

    def test_non_dict_file_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(SerializationError):
            load_results(path)
