"""Tests for repro.io.model_io."""

import json

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.io.model_io import (
    load_autoencoder,
    load_network,
    read_model_meta,
    save_autoencoder,
    save_network,
)
from repro.network import Projection, QuantumAutoencoder, QuantumNetwork


def _write_v1_autoencoder(path, ae):
    """A byte-faithful v1 archive (no renormalize/backend fields)."""
    meta = {
        "format_version": 1,
        "kind": "QuantumAutoencoder",
        "dim": ae.dim,
        "compressed_dim": ae.compressed_dim,
        "compression_layers": ae.uc.num_layers,
        "reconstruction_layers": ae.ur.num_layers,
        "allow_phase": ae.uc.allow_phase,
        "keep": ae.projection.keep.tolist(),
    }
    np.savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        params=np.concatenate(
            [ae.uc.get_flat_params(), ae.ur.get_flat_params()]
        ),
    )


class TestNetworkRoundtrip:
    def test_parameters_identical(self, tmp_path, rng):
        net = QuantumNetwork(8, 3, descending=True).initialize(
            "uniform", rng=rng
        )
        path = tmp_path / "net.npz"
        save_network(net, path)
        clone = load_network(path)
        assert clone.dim == 8
        assert clone.num_layers == 3
        assert clone.descending is True
        assert np.allclose(clone.get_flat_params(), net.get_flat_params())
        assert np.allclose(clone.unitary(), net.unitary())

    def test_phase_network_roundtrip(self, tmp_path, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0, 1, net.num_parameters))
        path = tmp_path / "c.npz"
        save_network(net, path)
        clone = load_network(path)
        assert clone.allow_phase
        assert np.allclose(clone.get_flat_params(), net.get_flat_params())

    def test_wrong_kind_rejected(self, tmp_path, rng):
        ae = QuantumAutoencoder(4, 2, 1, 1)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        with pytest.raises(SerializationError, match="QuantumNetwork"):
            load_network(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(SerializationError, match="meta"):
            load_network(path)


class TestAutoencoderRoundtrip:
    def test_full_roundtrip(self, tmp_path, rng):
        ae = QuantumAutoencoder(
            16, 4, 3, 4, projection=Projection.first(16, 4)
        ).initialize("uniform", rng=rng)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        assert clone.projection == ae.projection
        assert clone.uc.num_layers == 3
        assert clone.ur.num_layers == 4
        assert np.allclose(
            clone.uc.get_flat_params(), ae.uc.get_flat_params()
        )
        assert np.allclose(
            clone.ur.get_flat_params(), ae.ur.get_flat_params()
        )

    def test_outputs_identical_after_reload(self, tmp_path, rng, paper_images):
        ae = QuantumAutoencoder(16, 4, 2, 2).initialize("uniform", rng=rng)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        assert np.allclose(
            clone.forward(paper_images).x_hat,
            ae.forward(paper_images).x_hat,
        )

    def test_wrong_kind_rejected(self, tmp_path, rng):
        net = QuantumNetwork(4, 2)
        path = tmp_path / "net.npz"
        save_network(net, path)
        with pytest.raises(SerializationError, match="QuantumAutoencoder"):
            load_autoencoder(path)


class TestPipelineStatePersistence:
    """format v2: renormalize + backend survive the round trip."""

    def test_renormalize_and_backend_round_trip(self, tmp_path, rng):
        ae = QuantumAutoencoder(
            8, 2, 2, 2, backend="fused", renormalize=True
        ).initialize("uniform", rng=rng)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        assert clone.renormalize is True
        assert clone.backend_name == "fused"

    def test_renormalizing_roundtrip_outputs_identical(self, tmp_path, rng):
        ae = QuantumAutoencoder(8, 2, 2, 2, renormalize=True).initialize(
            "uniform", rng=rng
        )
        X = np.abs(rng.normal(size=(5, 8))) + 0.1
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        # v1's bug: renormalize was dropped, so the reloaded pipeline fed
        # the sub-normalised state to U_R and produced different outputs.
        assert np.array_equal(
            clone.forward(X).x_hat, ae.forward(X).x_hat
        )

    def test_network_backend_round_trip(self, tmp_path, rng):
        net = QuantumNetwork(4, 2, backend="fused").initialize(
            "uniform", rng=rng
        )
        path = tmp_path / "net.npz"
        save_network(net, path)
        assert load_network(path).backend.name == "fused"

    def test_v1_archive_loads_with_defaults(self, tmp_path, rng):
        ae = QuantumAutoencoder(8, 2, 2, 2).initialize("uniform", rng=rng)
        path = tmp_path / "v1.npz"
        _write_v1_autoencoder(path, ae)
        clone = load_autoencoder(path)
        assert clone.renormalize is False
        assert clone.backend_name == "loop"
        X = np.abs(rng.normal(size=(4, 8))) + 0.1
        assert np.array_equal(clone.forward(X).x_hat, ae.forward(X).x_hat)

    def test_unsupported_version_rejected(self, tmp_path):
        meta = {"format_version": 3, "kind": "QuantumNetwork"}
        path = tmp_path / "v3.npz"
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            params=np.zeros(3),
        )
        with pytest.raises(SerializationError, match="version"):
            load_network(path)

    def test_extra_meta_round_trips(self, tmp_path, rng):
        ae = QuantumAutoencoder(4, 2, 1, 1).initialize("uniform", rng=rng)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path, extra={"note": {"tag": "v2-test"}})
        meta = read_model_meta(path, "QuantumAutoencoder")
        assert meta["extra"]["note"]["tag"] == "v2-test"
        assert meta["format_version"] == 2

    def test_read_model_meta_checks_kind(self, tmp_path, rng):
        net = QuantumNetwork(4, 1)
        path = tmp_path / "net.npz"
        save_network(net, path)
        with pytest.raises(SerializationError, match="QuantumAutoencoder"):
            read_model_meta(path, "QuantumAutoencoder")
