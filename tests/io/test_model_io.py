"""Tests for repro.io.model_io."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.io.model_io import (
    load_autoencoder,
    load_network,
    save_autoencoder,
    save_network,
)
from repro.network import Projection, QuantumAutoencoder, QuantumNetwork


class TestNetworkRoundtrip:
    def test_parameters_identical(self, tmp_path, rng):
        net = QuantumNetwork(8, 3, descending=True).initialize(
            "uniform", rng=rng
        )
        path = tmp_path / "net.npz"
        save_network(net, path)
        clone = load_network(path)
        assert clone.dim == 8
        assert clone.num_layers == 3
        assert clone.descending is True
        assert np.allclose(clone.get_flat_params(), net.get_flat_params())
        assert np.allclose(clone.unitary(), net.unitary())

    def test_phase_network_roundtrip(self, tmp_path, rng):
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0, 1, net.num_parameters))
        path = tmp_path / "c.npz"
        save_network(net, path)
        clone = load_network(path)
        assert clone.allow_phase
        assert np.allclose(clone.get_flat_params(), net.get_flat_params())

    def test_wrong_kind_rejected(self, tmp_path, rng):
        ae = QuantumAutoencoder(4, 2, 1, 1)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        with pytest.raises(SerializationError, match="QuantumNetwork"):
            load_network(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(SerializationError, match="meta"):
            load_network(path)


class TestAutoencoderRoundtrip:
    def test_full_roundtrip(self, tmp_path, rng):
        ae = QuantumAutoencoder(
            16, 4, 3, 4, projection=Projection.first(16, 4)
        ).initialize("uniform", rng=rng)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        assert clone.projection == ae.projection
        assert clone.uc.num_layers == 3
        assert clone.ur.num_layers == 4
        assert np.allclose(
            clone.uc.get_flat_params(), ae.uc.get_flat_params()
        )
        assert np.allclose(
            clone.ur.get_flat_params(), ae.ur.get_flat_params()
        )

    def test_outputs_identical_after_reload(self, tmp_path, rng, paper_images):
        ae = QuantumAutoencoder(16, 4, 2, 2).initialize("uniform", rng=rng)
        path = tmp_path / "ae.npz"
        save_autoencoder(ae, path)
        clone = load_autoencoder(path)
        assert np.allclose(
            clone.forward(paper_images).x_hat,
            ae.forward(paper_images).x_hat,
        )

    def test_wrong_kind_rejected(self, tmp_path, rng):
        net = QuantumNetwork(4, 2)
        path = tmp_path / "net.npz"
        save_network(net, path)
        with pytest.raises(SerializationError, match="QuantumAutoencoder"):
            load_autoencoder(path)
