"""Tests for repro.io.image_io."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.io.image_io import read_pbm, read_pgm, write_pbm, write_pgm


class TestPGM:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.random((4, 6))
        path = tmp_path / "img.pgm"
        write_pgm(img, path)
        back = read_pgm(path)
        assert back.shape == (4, 6)
        assert np.allclose(back, img, atol=1 / 255 + 1e-9)

    def test_16bit_precision(self, tmp_path, rng):
        img = rng.random((3, 3))
        path = tmp_path / "img16.pgm"
        write_pgm(img, path, max_value=65535)
        assert np.allclose(read_pgm(path), img, atol=1 / 65535 + 1e-9)

    def test_header_format(self, tmp_path):
        path = tmp_path / "x.pgm"
        write_pgm(np.zeros((2, 3)), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "P2"
        assert lines[1] == "3 2"

    def test_out_of_range_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pgm(np.full((2, 2), 1.5), tmp_path / "bad.pgm")

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pgm(np.zeros(4), tmp_path / "bad.pgm")

    def test_invalid_max_value(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pgm(np.zeros((2, 2)), tmp_path / "bad.pgm", max_value=0)

    def test_read_rejects_non_pgm(self, tmp_path):
        path = tmp_path / "not.pgm"
        path.write_text("P5 binary stuff")
        with pytest.raises(SerializationError):
            read_pgm(path)

    def test_read_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_text("P2\n2 2\n255\n1 2 3\n")  # one pixel short
        with pytest.raises(SerializationError, match="promises"):
            read_pgm(path)

    def test_read_skips_comments(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_text("P2\n# a comment\n1 1\n255\n128\n")
        img = read_pgm(path)
        assert img[0, 0] == pytest.approx(128 / 255)


class TestBinaryPGM:
    def test_p5_roundtrip(self, tmp_path, rng):
        img = rng.random((5, 7))
        path = tmp_path / "img.pgm"
        write_pgm(img, path, binary=True)
        assert path.read_bytes()[:2] == b"P5"
        assert np.allclose(read_pgm(path), img, atol=1 / 255 + 1e-9)

    def test_p5_16bit_big_endian(self, tmp_path, rng):
        img = rng.random((3, 4))
        path = tmp_path / "img16.pgm"
        write_pgm(img, path, max_value=65535, binary=True)
        assert np.allclose(read_pgm(path), img, atol=1 / 65535 + 1e-9)
        # Raster must be big-endian 16-bit per the Netpbm spec.
        raster = path.read_bytes().split(b"65535\n", 1)[1]
        decoded = np.frombuffer(raster, dtype=">u2").reshape(3, 4)
        assert np.array_equal(decoded, np.rint(img * 65535))

    def test_p5_levels_exact(self, tmp_path, rng):
        levels = rng.integers(0, 256, size=(6, 6))
        path = tmp_path / "lv.pgm"
        write_pgm(levels / 255.0, path, binary=True)
        assert np.array_equal(np.rint(read_pgm(path) * 255), levels)

    def test_p5_raster_byte_count_enforced(self, tmp_path):
        path = tmp_path / "short.pgm"
        path.write_bytes(b"P5\n2 2\n255\n\x00\x01\x02")  # one byte short
        with pytest.raises(SerializationError, match="raster"):
            read_pgm(path)

    def test_p5_header_comment(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# comment\n1 1\n255\n\x80")
        assert read_pgm(path)[0, 0] == pytest.approx(128 / 255)

    def test_ascii_binary_agree(self, tmp_path, rng):
        img = rng.random((4, 9))
        ascii_path, bin_path = tmp_path / "a.pgm", tmp_path / "b.pgm"
        write_pgm(img, ascii_path)
        write_pgm(img, bin_path, binary=True)
        assert np.array_equal(read_pgm(ascii_path), read_pgm(bin_path))


class TestReadPBM:
    def test_p1_roundtrip(self, tmp_path, rng):
        img = (rng.random((6, 11)) > 0.5).astype(float)
        path = tmp_path / "b.pbm"
        write_pbm(img, path)
        assert np.array_equal(read_pbm(path), img)

    def test_p1_packed_raster_without_whitespace(self, tmp_path):
        # The P1 spec allows pixels with no separating whitespace.
        path = tmp_path / "p.pbm"
        path.write_text("P1\n# c\n3 2\n011\n100\n")
        assert np.array_equal(
            read_pbm(path), [[0.0, 1.0, 1.0], [1.0, 0.0, 0.0]]
        )

    def test_p4_roundtrip_non_byte_multiple_width(self, tmp_path, rng):
        # Width 13 exercises the per-row bit padding of P4.
        img = (rng.random((5, 13)) > 0.5).astype(float)
        path = tmp_path / "b4.pbm"
        write_pbm(img, path, binary=True)
        assert path.read_bytes()[:2] == b"P4"
        assert np.array_equal(read_pbm(path), img)

    def test_p4_row_padding_layout(self, tmp_path):
        img = np.ones((2, 9))
        path = tmp_path / "pad.pbm"
        write_pbm(img, path, binary=True)
        raster = path.read_bytes().split(b"9 2\n", 1)[1]
        assert len(raster) == 2 * 2  # ceil(9/8) = 2 bytes per row

    def test_p4_raster_byte_count_enforced(self, tmp_path):
        path = tmp_path / "short.pbm"
        path.write_bytes(b"P4\n9 2\n\xff\xff\xff")  # needs 4 bytes
        with pytest.raises(SerializationError, match="raster"):
            read_pbm(path)

    def test_rejects_non_pbm(self, tmp_path):
        path = tmp_path / "x.pbm"
        path.write_text("P2\n1 1\n255\n0\n")
        with pytest.raises(SerializationError):
            read_pbm(path)

    def test_rejects_non_binary_digits(self, tmp_path):
        path = tmp_path / "bad.pbm"
        path.write_text("P1\n2 1\n0 2\n")
        with pytest.raises(SerializationError, match="binary"):
            read_pbm(path)


class TestPBM:
    def test_binary_written(self, tmp_path):
        img = np.array([[1.0, 0.0], [0.0, 1.0]])
        path = tmp_path / "b.pbm"
        write_pbm(img, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "P1"
        assert lines[2] == "1 0"

    def test_grayscale_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="binary"):
            write_pbm(np.full((2, 2), 0.5), tmp_path / "bad.pbm")

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pbm(np.zeros(4), tmp_path / "bad.pbm")
