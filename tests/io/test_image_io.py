"""Tests for repro.io.image_io."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.io.image_io import read_pgm, write_pbm, write_pgm


class TestPGM:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.random((4, 6))
        path = tmp_path / "img.pgm"
        write_pgm(img, path)
        back = read_pgm(path)
        assert back.shape == (4, 6)
        assert np.allclose(back, img, atol=1 / 255 + 1e-9)

    def test_16bit_precision(self, tmp_path, rng):
        img = rng.random((3, 3))
        path = tmp_path / "img16.pgm"
        write_pgm(img, path, max_value=65535)
        assert np.allclose(read_pgm(path), img, atol=1 / 65535 + 1e-9)

    def test_header_format(self, tmp_path):
        path = tmp_path / "x.pgm"
        write_pgm(np.zeros((2, 3)), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "P2"
        assert lines[1] == "3 2"

    def test_out_of_range_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pgm(np.full((2, 2), 1.5), tmp_path / "bad.pgm")

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pgm(np.zeros(4), tmp_path / "bad.pgm")

    def test_invalid_max_value(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pgm(np.zeros((2, 2)), tmp_path / "bad.pgm", max_value=0)

    def test_read_rejects_non_pgm(self, tmp_path):
        path = tmp_path / "not.pgm"
        path.write_text("P5 binary stuff")
        with pytest.raises(SerializationError):
            read_pgm(path)

    def test_read_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_text("P2\n2 2\n255\n1 2 3\n")  # one pixel short
        with pytest.raises(SerializationError, match="promises"):
            read_pgm(path)

    def test_read_skips_comments(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_text("P2\n# a comment\n1 1\n255\n128\n")
        img = read_pgm(path)
        assert img[0, 0] == pytest.approx(128 / 255)


class TestPBM:
    def test_binary_written(self, tmp_path):
        img = np.array([[1.0, 0.0], [0.0, 1.0]])
        path = tmp_path / "b.pbm"
        write_pbm(img, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "P1"
        assert lines[2] == "1 0"

    def test_grayscale_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="binary"):
            write_pbm(np.full((2, 2), 0.5), tmp_path / "bad.pbm")

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_pbm(np.zeros(4), tmp_path / "bad.pbm")
