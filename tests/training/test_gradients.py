"""Tests for repro.training.gradients — all four engines must agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GradientError
from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork
from repro.training.gradients import (
    PAPER_DELTA,
    available_gradient_methods,
    loss_and_gradient,
)
from repro.training.loss import FidelityLoss, SquaredErrorLoss


def make_problem(dim=8, layers=3, m=4, seed=0, descending=False):
    rng = np.random.default_rng(seed)
    net = QuantumNetwork(dim, layers, descending=descending).initialize(
        "uniform", rng=rng
    )
    x = rng.normal(size=(dim, m))
    x /= np.linalg.norm(x, axis=0)
    t = rng.normal(size=(dim, m))
    t /= np.linalg.norm(t, axis=0)
    return net, x, t


class TestMethodAgreement:
    def test_all_methods_registered(self):
        assert available_gradient_methods() == [
            "adjoint",
            "central",
            "derivative",
            "fd",
        ]

    def test_exact_methods_agree_tightly(self):
        net, x, t = make_problem()
        _, g_adj = loss_and_gradient(net, x, t, method="adjoint")
        _, g_der = loss_and_gradient(net, x, t, method="derivative")
        assert np.allclose(g_adj, g_der, atol=1e-12)

    def test_fd_close_to_exact(self):
        net, x, t = make_problem()
        _, g_fd = loss_and_gradient(net, x, t, method="fd")
        _, g_adj = loss_and_gradient(net, x, t, method="adjoint")
        assert np.allclose(g_fd, g_adj, atol=1e-5)

    def test_central_more_accurate_than_fd(self):
        net, x, t = make_problem(seed=3)
        _, g_exact = loss_and_gradient(net, x, t, method="adjoint")
        _, g_fd = loss_and_gradient(net, x, t, method="fd")
        _, g_cd = loss_and_gradient(net, x, t, method="central")
        assert np.max(np.abs(g_cd - g_exact)) <= np.max(
            np.abs(g_fd - g_exact)
        ) + 1e-12

    def test_agreement_with_projection(self):
        net, x, t = make_problem()
        proj = Projection.last(8, 4)
        tp = proj.apply(t)
        tp /= np.linalg.norm(tp, axis=0)
        grads = {}
        for m in available_gradient_methods():
            _, grads[m] = loss_and_gradient(
                net, x, tp, projection=proj, method=m
            )
        for m in ("fd", "central", "derivative"):
            assert np.allclose(grads[m], grads["adjoint"], atol=1e-5), m

    def test_agreement_descending_network(self):
        net, x, t = make_problem(descending=True, seed=5)
        _, g_adj = loss_and_gradient(net, x, t, method="adjoint")
        _, g_der = loss_and_gradient(net, x, t, method="derivative")
        assert np.allclose(g_adj, g_der, atol=1e-12)

    @given(st.integers(0, 500))
    @settings(max_examples=15)
    def test_property_adjoint_equals_derivative(self, seed):
        net, x, t = make_problem(dim=4, layers=2, m=2, seed=seed)
        _, a = loss_and_gradient(net, x, t, method="adjoint")
        _, d = loss_and_gradient(net, x, t, method="derivative")
        assert np.allclose(a, d, atol=1e-11)

    def test_loss_value_identical_across_methods(self):
        net, x, t = make_problem()
        values = [
            loss_and_gradient(net, x, t, method=m)[0]
            for m in available_gradient_methods()
        ]
        assert np.allclose(values, values[0])


class TestSemantics:
    def test_parameters_restored_after_fd(self):
        net, x, t = make_problem()
        before = net.get_flat_params().copy()
        loss_and_gradient(net, x, t, method="fd")
        assert np.allclose(net.get_flat_params(), before)

    def test_gradient_descends_loss(self):
        net, x, t = make_problem()
        loss0, grad = loss_and_gradient(net, x, t, method="adjoint")
        params = net.get_flat_params()
        net.set_flat_params(params - 1e-3 * grad)
        loss1, _ = loss_and_gradient(net, x, t, method="adjoint")
        assert loss1 < loss0

    def test_zero_gradient_at_optimum(self):
        # target == network output -> loss 0, gradient 0.
        net, x, _ = make_problem()
        t = net.forward(x)
        loss, grad = loss_and_gradient(net, x, t, method="adjoint")
        assert loss == pytest.approx(0.0, abs=1e-20)
        assert np.allclose(grad, 0.0, atol=1e-12)

    def test_sum_vs_mean_scaling(self):
        net, x, t = make_problem()
        l_sum, g_sum = loss_and_gradient(
            net, x, t, loss=SquaredErrorLoss("sum"), method="adjoint"
        )
        l_mean, g_mean = loss_and_gradient(
            net, x, t, loss=SquaredErrorLoss("mean"), method="adjoint"
        )
        scale = x.size
        assert l_sum == pytest.approx(l_mean * scale)
        assert np.allclose(g_sum, g_mean * scale)

    def test_fidelity_loss_gradient_fd_check(self):
        net, x, t = make_problem(seed=9)
        loss = FidelityLoss("sum")
        _, g_exact = loss_and_gradient(
            net, x, t, loss=loss, method="adjoint"
        )
        _, g_fd = loss_and_gradient(
            net, x, t, loss=loss, method="central", delta=1e-6
        )
        assert np.allclose(g_exact, g_fd, atol=1e-6)

    def test_paper_delta_constant(self):
        # Eq. (8): Delta "uniformly set to 1e-8".
        assert PAPER_DELTA == 1e-8

    def test_complex_network_uses_derivative(self):
        rng = np.random.default_rng(2)
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 1.0, net.num_parameters))
        x = np.eye(4)[:, :2]
        t = np.eye(4)[:, 2:4]
        _, g_der = loss_and_gradient(net, x, t, method="derivative")
        _, g_fd = loss_and_gradient(net, x, t, method="fd", delta=1e-7)
        assert g_der.shape == (net.num_parameters,)
        assert np.allclose(g_der, g_fd, atol=1e-4)


class TestValidation:
    def test_unknown_method(self):
        net, x, t = make_problem()
        with pytest.raises(GradientError, match="unknown gradient method"):
            loss_and_gradient(net, x, t, method="magic")

    def test_adjoint_supports_complex_network(self):
        rng = np.random.default_rng(5)
        net = QuantumNetwork(4, 2, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 1.0, net.num_parameters))
        x = np.eye(4)[:, :3]
        t = np.eye(4)[:, 1:4]
        _, g_adj = loss_and_gradient(net, x, t, method="adjoint")
        _, g_der = loss_and_gradient(net, x, t, method="derivative")
        assert g_adj.shape == (net.num_parameters,)
        assert np.allclose(g_adj, g_der, atol=1e-12)

    def test_fidelity_loss_complex_gradient_fd_check(self):
        """Regression: the fidelity adjoint lam is -2<t|o>t, not its
        conjugate — wrong conjugation only shows up for complex states."""
        rng = np.random.default_rng(8)
        net = QuantumNetwork(4, 3, allow_phase=True)
        net.set_flat_params(rng.uniform(0.1, 1.0, net.num_parameters))
        x = np.eye(4)[:, :3]
        t = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
        t /= np.linalg.norm(t, axis=0)
        loss = FidelityLoss("sum")
        _, g_adj = loss_and_gradient(net, x, t, loss=loss, method="adjoint")
        _, g_der = loss_and_gradient(
            net, x, t, loss=loss, method="derivative"
        )
        _, g_fd = loss_and_gradient(
            net, x, t, loss=loss, method="central", delta=1e-6
        )
        assert np.allclose(g_adj, g_fd, atol=1e-6)
        assert np.allclose(g_der, g_fd, atol=1e-6)

    def test_adjoint_supports_complex_inputs(self):
        net, x, t = make_problem()
        xc = x.astype(complex)
        _, g_adj = loss_and_gradient(net, xc, t, method="adjoint")
        _, g_der = loss_and_gradient(net, xc, t, method="derivative")
        assert np.allclose(g_adj, g_der, atol=1e-12)

    def test_unknown_engine(self):
        net, x, t = make_problem()
        with pytest.raises(GradientError, match="unknown gradient engine"):
            loss_and_gradient(net, x, t, engine="vectorised")

    def test_shape_mismatch(self):
        net, x, t = make_problem()
        with pytest.raises(GradientError, match="targets shape"):
            loss_and_gradient(net, x, t[:, :2])

    def test_wrong_input_dim(self):
        net, _, _ = make_problem()
        with pytest.raises(GradientError, match="inputs must be"):
            loss_and_gradient(net, np.ones((4, 2)), np.ones((4, 2)))

    def test_projection_dim_mismatch(self):
        net, x, t = make_problem()
        with pytest.raises(GradientError, match="projection dim"):
            loss_and_gradient(
                net, x, t, projection=Projection.last(4, 2)
            )

    def test_nonpositive_delta_rejected(self):
        net, x, t = make_problem()
        with pytest.raises(GradientError, match="delta"):
            loss_and_gradient(net, x, t, method="fd", delta=0.0)
