"""The vectorised adjoint sweep vs the per-gate reference walk.

Since the jit PR, ``method="adjoint"`` with the default
``engine="batched"`` pulls the loss adjoint back through stacked
per-layer GEMMs (the prefix/suffix workspace's cross-layer recurrence)
instead of walking gates in Python; ``engine="looped"`` keeps the
original walk as the bit-exact reference.  Both are exact reverse-mode,
so they agree at rounding level on every dim / order / dtype / backend
combination — including the complex (``allow_phase``) extension, whose
theta *and* alpha gradients read off the same tape.
"""

import numpy as np
import pytest

from repro.network import Projection, QuantumNetwork
from repro.training.gradients import loss_and_gradient

DIMS = [3, 5, 8]


def make_network(dim, layers=3, descending=False, allow_phase=False,
                 seed=11, backend="loop"):
    rng = np.random.default_rng(seed)
    net = QuantumNetwork(
        dim, layers, descending=descending, allow_phase=allow_phase,
        backend=backend,
    ).initialize("uniform", rng=rng)
    if allow_phase:
        params = net.get_flat_params()
        params[net.num_thetas :] = 0.4 * rng.normal(size=net.num_thetas)
        net.set_flat_params(params)
    return net


def batch(dim, m=7, complex_=False, seed=5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(dim, m))
    if complex_:
        x = x + 1j * rng.normal(size=(dim, m))
    return x / np.linalg.norm(x, axis=0)


@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("descending", [False, True])
@pytest.mark.parametrize("allow_phase", [False, True])
@pytest.mark.parametrize("backend", ["loop", "fused"])
def test_vectorized_adjoint_matches_walk(dim, descending, allow_phase,
                                         backend):
    net = make_network(
        dim, descending=descending, allow_phase=allow_phase, backend=backend
    )
    x = batch(dim, complex_=allow_phase)
    t = batch(dim, complex_=allow_phase, seed=6)
    proj = Projection.last(dim, max(1, dim // 2))
    l1, g1 = loss_and_gradient(
        net, x, t, projection=proj, method="adjoint", engine="looped"
    )
    l2, g2 = loss_and_gradient(
        net, x, t, projection=proj, method="adjoint", engine="batched"
    )
    assert g1.shape == g2.shape == (net.num_parameters,)
    assert l1 == pytest.approx(l2, abs=1e-12)
    assert np.max(np.abs(g1 - g2)) < 1e-12


@pytest.mark.parametrize("dim", DIMS)
def test_vectorized_adjoint_complex_network_vs_derivative(dim):
    """Adjoint (reverse) and derivative (forward) exact modes agree on
    phase-bearing networks — both gradients off one parameterisation."""
    net = make_network(dim, allow_phase=True, descending=True,
                       backend="fused")
    x = batch(dim, complex_=True)
    t = batch(dim, complex_=True, seed=6)
    _, g_adj = loss_and_gradient(net, x, t, method="adjoint",
                                 engine="batched")
    _, g_der = loss_and_gradient(net, x, t, method="derivative",
                                 engine="batched")
    assert np.max(np.abs(g_adj - g_der)) < 1e-10


def test_vectorized_adjoint_backend_independent():
    """The vectorised sweep gives the same gradient on loop and fused
    (loop builds its workspace directly from the compiled program)."""
    loop = make_network(6, 4)
    fused = loop.copy().set_backend("fused")
    x, t = batch(6), batch(6, seed=6)
    _, g1 = loss_and_gradient(loop, x, t, method="adjoint", engine="batched")
    _, g2 = loss_and_gradient(fused, x, t, method="adjoint", engine="batched")
    assert np.max(np.abs(g1 - g2)) < 1e-12


def test_vectorized_adjoint_complex_inputs_real_network():
    """Complex data on a real network: the imaginary adjoint component
    is dropped identically in both drives."""
    net = make_network(5, 3)
    x = batch(5, complex_=True)
    t = batch(5, complex_=True, seed=6)
    _, g1 = loss_and_gradient(net, x, t, method="adjoint", engine="looped")
    _, g2 = loss_and_gradient(net, x, t, method="adjoint", engine="batched")
    assert np.max(np.abs(g1 - g2)) < 1e-12


def test_vectorized_adjoint_does_not_mutate_params():
    net = make_network(5, 3)
    before = net.get_flat_params()
    loss_and_gradient(net, batch(5), batch(5, seed=6), method="adjoint",
                      engine="batched")
    assert np.array_equal(net.get_flat_params(), before)


def test_trainer_default_uses_vectorized_adjoint():
    """End-to-end: a few default-engine training iterations land within
    rounding of the looped-engine run (same optimiser trajectory)."""
    from repro.network.autoencoder import QuantumAutoencoder
    from repro.training.trainer import Trainer

    rng = np.random.default_rng(1)
    X = np.abs(rng.normal(size=(5, 4))) + 0.1
    results = {}
    for engine in ("batched", "looped"):
        ae = QuantumAutoencoder(
            dim=4, compressed_dim=2, compression_layers=2,
            reconstruction_layers=2, backend="fused",
        ).initialize("uniform", rng=np.random.default_rng(3))
        trainer = Trainer(iterations=5, gradient_method="adjoint",
                          grad_engine=engine)
        results[engine] = trainer.train(ae, X).final_loss_r
    assert results["batched"] == pytest.approx(results["looped"], abs=1e-10)
