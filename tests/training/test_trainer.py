"""Tests for repro.training.trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.targets import TruncatedInputTarget, UniformSubspaceTarget
from repro.training.callbacks import LambdaCallback
from repro.training.optimizers import Adam, MomentumGD
from repro.training.trainer import Trainer


@pytest.fixture
def tiny_problem(rng):
    """4-dim, rank-2 binary data plus a small autoencoder."""
    X = np.array(
        [
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
            [1.0, 1.0, 1.0, 1.0],
            [1.0, 1.0, 0.0, 0.0],
        ]
    )
    ae = QuantumAutoencoder(4, 2, 3, 3).initialize("uniform", rng=rng)
    return ae, X


class TestBasicRuns:
    def test_history_lengths(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(iterations=5).train(ae, X)
        h = result.history
        assert h.num_iterations == 5
        assert len(h.loss_c) == len(h.loss_r) == 5
        assert len(h.accuracy) == len(h.raw_accuracy) == 5
        assert len(h.grad_norm_c) == len(h.grad_norm_r) == 5

    def test_losses_decrease(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(
            iterations=60,
            optimizer_factory=lambda: Adam(0.05),
        ).train(ae, X)
        h = result.history
        assert h.loss_c[-1] < h.loss_c[0]
        assert h.loss_r[-1] < h.loss_r[0]

    def test_theta_snapshots_recorded(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(iterations=4, record_theta_every=2).train(ae, X)
        assert len(result.history.theta_c) == 2  # iterations 0 and 2
        assert result.history.theta_c[0].shape == (ae.uc.num_parameters,)

    def test_trace_sample_recorded(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(iterations=3, trace_sample=1).train(ae, X)
        assert len(result.history.output_trace) == 3
        assert result.history.output_trace[0].shape == (4,)

    def test_default_target_is_truncated_input(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(iterations=2).train(ae, X)  # no strategy given
        assert result.history.num_iterations == 2

    def test_wall_time_recorded(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(iterations=2).train(ae, X)
        assert result.history.wall_seconds > 0

    def test_result_consistency(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(iterations=3).train(ae, X)
        assert result.final_loss_c == result.history.loss_c[-1]
        assert result.final_loss_r == result.history.loss_r[-1]
        assert result.final_x_hat.shape == X.shape


class TestGradientMethodsInTraining:
    @pytest.mark.parametrize("method", ["fd", "adjoint", "derivative"])
    def test_methods_converge_identically(self, method):
        """FD with Delta=1e-8 and the exact methods produce the same
        trajectory to ~1e-4 over a few iterations."""
        X = np.array([[1.0, 0.0, 1.0, 0.0], [0.0, 1.0, 0.0, 1.0]])
        ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
            "uniform", rng=np.random.default_rng(0)
        )
        result = Trainer(iterations=5, gradient_method=method).train(ae, X)
        ref_ae = QuantumAutoencoder(4, 2, 2, 2).initialize(
            "uniform", rng=np.random.default_rng(0)
        )
        ref = Trainer(iterations=5, gradient_method="adjoint").train(ref_ae, X)
        assert result.history.loss_r[-1] == pytest.approx(
            ref.history.loss_r[-1], abs=1e-4
        )


class TestSchedules:
    def test_sequential_schedule_runs(self, tiny_problem):
        ae, X = tiny_problem
        result = Trainer(
            iterations=10,
            schedule="sequential",
            optimizer_factory=lambda: Adam(0.05),
            trace_sample=0,
        ).train(ae, X)
        h = result.history
        assert len(h.loss_c) == 10
        assert len(h.loss_r) == 10
        assert len(h.output_trace) == 10

    def test_joint_and_sequential_both_learn(self, rng):
        X = np.array([[1.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 1.0]])
        finals = {}
        for schedule in ("joint", "sequential"):
            ae = QuantumAutoencoder(4, 2, 3, 3).initialize(
                "uniform", rng=np.random.default_rng(1)
            )
            # PCA-mixed targets: the raw restrict-target is degenerate for
            # inputs orthogonal to the kept subspace (see test_targets).
            strat = TruncatedInputTarget.from_pca(ae.projection, X)
            res = Trainer(
                iterations=80,
                schedule=schedule,
                optimizer_factory=lambda: Adam(0.05),
            ).train(ae, X, target_strategy=strat)
            finals[schedule] = res.history.loss_r[-1]
        assert finals["joint"] < 0.1
        assert finals["sequential"] < 0.1

    def test_invalid_schedule(self):
        with pytest.raises(TrainingError):
            Trainer(schedule="alternating")


class TestCallbacksIntegration:
    def test_early_stop_via_callback(self, tiny_problem):
        ae, X = tiny_problem
        stop_at = 3
        cb = LambdaCallback(lambda i, rec: i >= stop_at)
        result = Trainer(iterations=100, callbacks=[cb]).train(ae, X)
        assert result.history.num_iterations == stop_at + 1

    def test_nan_guard_always_installed(self):
        from repro.training.callbacks import NaNGuard

        trainer = Trainer(iterations=1)
        assert isinstance(trainer.callbacks[0], NaNGuard)

    def test_huge_lr_does_not_crash(self, tiny_problem):
        """Rotation parameters keep amplitudes bounded, so even absurd
        learning rates oscillate rather than overflow — training must
        finish and report finite losses."""
        ae, X = tiny_problem
        result = Trainer(iterations=20, learning_rate=50.0).train(ae, X)
        assert np.isfinite(result.history.loss_r).all()


class TestValidation:
    def test_invalid_iterations(self):
        with pytest.raises(TrainingError):
            Trainer(iterations=0)

    def test_invalid_record_every(self):
        with pytest.raises(TrainingError):
            Trainer(record_theta_every=0)

    def test_trace_sample_out_of_range(self, tiny_problem):
        ae, X = tiny_problem
        with pytest.raises(TrainingError, match="trace_sample"):
            Trainer(iterations=1, trace_sample=99).train(ae, X)

    def test_target_strategy_dim_checked(self, tiny_problem):
        ae, X = tiny_problem
        from repro.network.projection import Projection

        bad = UniformSubspaceTarget(Projection.last(8, 2))
        with pytest.raises(TrainingError, match="projection dim"):
            Trainer(iterations=1).train(ae, X, target_strategy=bad)

    def test_update_reduction_mean_slows_convergence(self, rng):
        """Documented Algorithm-1 ambiguity: mean normalisation with
        eta=0.01 barely moves in a few iterations."""
        X = np.array([[1.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 1.0]])

        def final_loss(reduction):
            ae = QuantumAutoencoder(4, 2, 3, 3).initialize(
                "uniform", rng=np.random.default_rng(2)
            )
            res = Trainer(
                iterations=30, update_reduction=reduction
            ).train(ae, X)
            return res.history.loss_r[-1]

        assert final_loss("sum") < final_loss("mean")
