"""Tests for repro.training.metrics (Eq. 10 and friends)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DimensionError
from repro.training.metrics import (
    batch_fidelities,
    mse,
    paper_accuracy,
    per_sample_accuracy,
    pixel_accuracy,
    psnr,
    ssim,
)


class TestPixelAccuracy:
    def test_eq10_tolerance(self):
        # |x_hat - x| <= 0.01 counts as similar.
        x = np.array([0.0, 1.0, 0.5, 0.2])
        x_hat = np.array([0.005, 0.995, 0.492, 0.3])
        assert pixel_accuracy(x_hat, x) == pytest.approx(75.0)

    def test_perfect_is_100(self, rng):
        x = rng.random((5, 16))
        assert pixel_accuracy(x, x.copy()) == 100.0

    def test_boundary_inclusive(self):
        assert pixel_accuracy(np.array([0.01]), np.array([0.0])) == 100.0

    def test_negative_tol_rejected(self):
        with pytest.raises(DimensionError):
            pixel_accuracy(np.zeros(2), np.zeros(2), tol=-0.1)

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            pixel_accuracy(np.zeros(2), np.zeros(3))

    @given(
        arrays(np.float64, 16, elements=st.floats(0, 1, allow_nan=False))
    )
    def test_property_bounds(self, x):
        acc = pixel_accuracy(x, np.zeros(16))
        assert 0.0 <= acc <= 100.0


class TestPerSampleAccuracy:
    def test_per_row(self):
        x = np.zeros((2, 4))
        x_hat = np.array([[0.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]])
        out = per_sample_accuracy(x_hat, x)
        assert out.tolist() == [100.0, 0.0]

    def test_1d_promoted(self):
        out = per_sample_accuracy(np.zeros(4), np.zeros(4))
        assert out.shape == (1,)

    def test_mean_matches_global(self, rng):
        x = rng.random((5, 8))
        x_hat = x + rng.normal(0, 0.02, size=x.shape)
        assert np.mean(per_sample_accuracy(x_hat, x)) == pytest.approx(
            pixel_accuracy(x_hat, x)
        )


class TestPaperAccuracy:
    def test_threshold_rescues_near_binary(self):
        x = np.array([0.0, 1.0])
        x_hat = np.array([0.005, 0.995])  # within the snap bands
        # raw tolerance 0.01 already passes 0.005; snapping makes it exact
        assert paper_accuracy(x_hat, x) == 100.0

    def test_mid_values_not_rescued(self):
        x = np.array([0.0])
        x_hat = np.array([0.3])
        assert paper_accuracy(x_hat, x) == 0.0

    def test_snapping_can_beat_raw(self):
        # At tol=0.001 a value inside the snap band passes only after
        # snapping (with the paper's tol=0.01 the bands coincide with the
        # tolerance, so snapping is a no-op there).
        x = np.array([1.0])
        x_hat = np.array([0.995])
        assert pixel_accuracy(x_hat, x, tol=0.001) == 0.0
        assert paper_accuracy(x_hat, x, tol=0.001) == 100.0


class TestSignalMetrics:
    def test_mse_zero_for_match(self, rng):
        x = rng.random((3, 3))
        assert mse(x, x.copy()) == 0.0

    def test_psnr_infinite_for_match(self):
        assert psnr(np.ones(4), np.ones(4)) == float("inf")

    def test_psnr_known_value(self):
        x = np.zeros(4)
        x_hat = np.full(4, 0.1)
        assert psnr(x_hat, x) == pytest.approx(20.0)  # 10*log10(1/0.01)

    def test_psnr_invalid_range(self):
        with pytest.raises(DimensionError):
            psnr(np.ones(2), np.ones(2), data_range=0.0)

    def test_ssim_identity_is_one(self, rng):
        x = rng.random((4, 4))
        assert ssim(x, x.copy()) == pytest.approx(1.0)

    def test_ssim_inverted_is_low(self):
        x = np.zeros((4, 4))
        x[:2] = 1.0
        assert ssim(1.0 - x, x) < 0.2

    def test_ssim_bounded(self, rng):
        a, b = rng.random((4, 4)), rng.random((4, 4))
        assert -1.0 <= ssim(a, b) <= 1.0


class TestBatchFidelities:
    def test_identical_unit_states(self, unit_batch):
        f = batch_fidelities(unit_batch, unit_batch)
        assert np.allclose(f, 1.0)

    def test_orthogonal_states(self):
        f = batch_fidelities(np.eye(4)[:, :2], np.eye(4)[:, 2:4])
        assert np.allclose(f, 0.0)

    def test_subnormalised_below_one(self, unit_batch):
        f = batch_fidelities(0.5 * unit_batch, unit_batch)
        assert np.allclose(f, 0.25)

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            batch_fidelities(np.ones(4), np.ones(4))
