"""Tests for repro.training.callbacks."""

import pytest

from repro.exceptions import TrainingError
from repro.training.callbacks import (
    EarlyStopping,
    LambdaCallback,
    NaNGuard,
    ProgressPrinter,
)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        cb = EarlyStopping(monitor="loss_r", patience=3, min_delta=0.0)
        cb.on_train_start({})
        stops = [cb.on_iteration_end(i, {"loss_r": 1.0}) for i in range(5)]
        # first iteration improves from inf; then 3 stale -> stop at i=3
        assert stops == [False, False, False, True, True]

    def test_improvement_resets_counter(self):
        cb = EarlyStopping(monitor="loss_r", patience=2)
        cb.on_train_start({})
        assert not cb.on_iteration_end(0, {"loss_r": 1.0})
        assert not cb.on_iteration_end(1, {"loss_r": 0.5})
        assert not cb.on_iteration_end(2, {"loss_r": 0.5})
        assert cb.on_iteration_end(3, {"loss_r": 0.5})
        assert cb.stopped_at == 3

    def test_min_delta_counts_as_stale(self):
        cb = EarlyStopping(monitor="loss_r", patience=1, min_delta=0.1)
        cb.on_train_start({})
        cb.on_iteration_end(0, {"loss_r": 1.0})
        assert cb.on_iteration_end(1, {"loss_r": 0.95})  # < min_delta gain

    def test_missing_key_raises(self):
        cb = EarlyStopping(monitor="nope")
        with pytest.raises(TrainingError, match="monitors"):
            cb.on_iteration_end(0, {"loss_r": 1.0})

    def test_invalid_patience(self):
        with pytest.raises(TrainingError):
            EarlyStopping(patience=0)

    def test_restart_resets_state(self):
        cb = EarlyStopping(patience=1)
        cb.on_train_start({})
        cb.on_iteration_end(0, {"loss_r": 1.0})
        cb.on_iteration_end(1, {"loss_r": 1.0})
        cb.on_train_start({})
        assert cb.stale == 0
        assert cb.stopped_at is None


class TestNaNGuard:
    def test_passes_finite(self):
        assert not NaNGuard().on_iteration_end(0, {"loss_c": 1.0, "loss_r": 2.0})

    def test_raises_on_nan(self):
        with pytest.raises(TrainingError, match="non-finite"):
            NaNGuard().on_iteration_end(3, {"loss_c": float("nan")})

    def test_raises_on_inf(self):
        with pytest.raises(TrainingError):
            NaNGuard().on_iteration_end(0, {"loss_r": float("inf")})

    def test_ignores_missing_keys(self):
        assert not NaNGuard().on_iteration_end(0, {"accuracy": 50.0})


class TestProgressPrinter:
    def test_prints_every_n(self):
        lines = []
        cb = ProgressPrinter(every=2, sink=lines.append)
        for i in range(5):
            cb.on_iteration_end(i, {"loss_c": 1.0, "loss_r": 2.0})
        assert len(lines) == 3  # iterations 0, 2, 4

    def test_includes_metrics(self):
        lines = []
        cb = ProgressPrinter(every=1, sink=lines.append)
        cb.on_iteration_end(0, {"loss_c": 1.5, "accuracy": 90.0})
        assert "loss_c=1.5" in lines[0]
        assert "accuracy=90" in lines[0]

    def test_never_requests_stop(self):
        cb = ProgressPrinter(every=1, sink=lambda _s: None)
        assert cb.on_iteration_end(0, {}) is False

    def test_invalid_every(self):
        with pytest.raises(TrainingError):
            ProgressPrinter(every=0)


class TestLambdaCallback:
    def test_wraps_function(self):
        seen = []
        cb = LambdaCallback(lambda i, rec: seen.append(i) or (i >= 2))
        assert not cb.on_iteration_end(0, {})
        assert not cb.on_iteration_end(1, {})
        assert cb.on_iteration_end(2, {})
        assert seen == [0, 1, 2]

    def test_none_return_is_false(self):
        cb = LambdaCallback(lambda i, rec: None)
        assert cb.on_iteration_end(0, {}) is False
