"""Tests for mini-batch training (Trainer.batch_size)."""

import numpy as np
import pytest

from repro.data.binary_images import paper_dataset
from repro.exceptions import TrainingError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.targets import TruncatedInputTarget
from repro.training.optimizers import Adam
from repro.training.trainer import Trainer


def make_ae(layers=(8, 10)):
    return QuantumAutoencoder(16, 4, *layers).initialize(
        "uniform", rng=np.random.default_rng(3)
    )


@pytest.fixture
def problem():
    X = paper_dataset().matrix()
    ae = make_ae((4, 4))
    strat = TruncatedInputTarget.from_pca(ae.projection, X)
    return ae, X, strat


class TestMiniBatch:
    def test_minibatch_training_learns(self):
        X = paper_dataset().matrix()
        ae = make_ae()  # 8/10 layers: deep enough for this dataset
        strat = TruncatedInputTarget.from_pca(ae.projection, X)
        result = Trainer(
            iterations=150,
            batch_size=16,
            optimizer_factory=lambda: Adam(0.05),
            record_theta_every=None,
        ).train(ae, X, target_strategy=strat)
        # Mini-batch updates reach a near-zero full-set reconstruction
        # loss (accuracy needs longer due to gradient noise; the metric
        # asserted here is the robust one).
        assert result.history.loss_r[-1] < 0.2

    def test_batch_size_larger_than_data_is_full_batch(self, problem):
        ae, X, strat = problem
        full = Trainer(iterations=5, record_theta_every=None)
        batched = Trainer(
            iterations=5, batch_size=1000, record_theta_every=None
        )
        ae2 = QuantumAutoencoder(16, 4, 4, 4).initialize(
            "uniform", rng=np.random.default_rng(3)
        )
        r1 = full.train(ae, X, target_strategy=strat)
        r2 = batched.train(
            ae2, X,
            target_strategy=TruncatedInputTarget.from_pca(ae2.projection, X),
        )
        assert np.allclose(r1.history.loss_r, r2.history.loss_r)

    def test_minibatch_losses_are_batch_scale(self, problem):
        """With batch_size=b the recorded Eq. (5) sum covers b samples."""
        ae, X, strat = problem
        r = Trainer(
            iterations=3, batch_size=5, record_theta_every=None
        ).train(ae, X, target_strategy=strat)
        # Unit-norm states bound each sample's contribution by ~4, so a
        # 5-sample batch loss stays well under the 25-sample scale.
        assert r.history.loss_c[0] < 20.0

    def test_batch_seed_reproducible(self, problem):
        _, X, _ = problem

        def run(seed):
            ae = QuantumAutoencoder(16, 4, 4, 4).initialize(
                "uniform", rng=np.random.default_rng(3)
            )
            strat = TruncatedInputTarget.from_pca(ae.projection, X)
            return Trainer(
                iterations=4, batch_size=8, batch_seed=seed,
                record_theta_every=None,
            ).train(ae, X, target_strategy=strat).history.loss_r

        assert np.allclose(run(1), run(1))
        assert not np.allclose(run(1), run(2))

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            Trainer(batch_size=0)
