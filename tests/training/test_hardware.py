"""Tests for repro.training.hardware (shot-based training + SPSA)."""

import numpy as np
import pytest

from repro.data.binary_images import paper_dataset
from repro.exceptions import MeasurementError, OptimizerError, TrainingError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.quantum_network import QuantumNetwork
from repro.network.targets import TruncatedInputTarget
from repro.training.hardware import (
    SPSA,
    ShotBasedObjective,
    train_hardware_style,
)


@pytest.fixture
def setup():
    X = paper_dataset(num_samples=10).matrix()
    ae = QuantumAutoencoder(16, 4, 4, 4).initialize(
        "uniform", rng=np.random.default_rng(1)
    )
    enc = ae.codec.encode(X)
    strat = TruncatedInputTarget.from_pca(ae.projection, X)
    q = strat.targets(enc) ** 2
    return ae, enc, q


class TestShotBasedObjective:
    def test_exact_mode_deterministic(self, setup):
        ae, enc, q = setup
        obj = ShotBasedObjective(
            ae.uc, enc.amplitudes(), q,
            projection=ae.projection, shots=None,
        )
        p = ae.uc.get_flat_params()
        assert obj(p) == pytest.approx(obj(p))

    def test_sampled_mode_noisy(self, setup):
        ae, enc, q = setup
        obj = ShotBasedObjective(
            ae.uc, enc.amplitudes(), q,
            projection=ae.projection, shots=64,
            rng=np.random.default_rng(0),
        )
        p = ae.uc.get_flat_params()
        assert obj(p) != obj(p)  # fresh shot noise per call

    def test_shot_estimates_converge_to_exact(self, setup):
        ae, enc, q = setup
        p = ae.uc.get_flat_params()
        exact = ShotBasedObjective(
            ae.uc, enc.amplitudes(), q,
            projection=ae.projection, shots=None,
        )(p)
        heavy = ShotBasedObjective(
            ae.uc, enc.amplitudes(), q,
            projection=ae.projection, shots=400_000,
            rng=np.random.default_rng(2),
        )(p)
        assert heavy == pytest.approx(exact, abs=0.05)

    def test_parameters_restored(self, setup):
        ae, enc, q = setup
        obj = ShotBasedObjective(
            ae.uc, enc.amplitudes(), q,
            projection=ae.projection, shots=None,
        )
        before = ae.uc.get_flat_params().copy()
        obj(before + 0.3)
        assert np.allclose(ae.uc.get_flat_params(), before)

    def test_evaluation_counter(self, setup):
        ae, enc, q = setup
        obj = ShotBasedObjective(
            ae.uc, enc.amplitudes(), q,
            projection=ae.projection, shots=None,
        )
        p = ae.uc.get_flat_params()
        obj(p), obj(p), obj(p)
        assert obj.evaluations == 3

    def test_validation(self, setup):
        ae, enc, q = setup
        with pytest.raises(TrainingError, match="target shape"):
            ShotBasedObjective(ae.uc, enc.amplitudes(), q[:, :2])
        with pytest.raises(TrainingError, match="\\[0, 1\\]"):
            ShotBasedObjective(ae.uc, enc.amplitudes(), q * 5)
        with pytest.raises(MeasurementError):
            ShotBasedObjective(ae.uc, enc.amplitudes(), q, shots=0)
        with pytest.raises(TrainingError, match="inputs must be"):
            ShotBasedObjective(ae.uc, np.ones((4, 2)), np.ones((4, 2)) / 4)


class TestSPSA:
    def test_converges_on_quadratic(self):
        opt = SPSA(a=0.2, c=0.1, rng=np.random.default_rng(0))
        f = lambda p: float(np.sum(p**2))
        p = np.array([3.0, -2.0, 1.0])
        for _ in range(300):
            p = opt.step(f, p)
        assert np.linalg.norm(p) < 0.5

    def test_two_evaluations_per_step(self):
        calls = []
        f = lambda p: calls.append(1) or float(np.sum(p**2))
        opt = SPSA(rng=np.random.default_rng(1))
        opt.step(f, np.zeros(5))
        assert len(calls) == 2

    def test_robust_to_noise(self):
        rng = np.random.default_rng(3)
        f = lambda p: float(np.sum(p**2)) + float(rng.normal(0, 0.05))
        opt = SPSA(a=0.2, c=0.2, rng=np.random.default_rng(4))
        p = np.array([2.0, 2.0])
        for _ in range(400):
            p = opt.step(f, p)
        assert np.linalg.norm(p) < 1.0

    def test_gain_sequences_decay(self):
        """The ak/ck schedules shrink with k (Spall's conditions)."""
        opt = SPSA(a=1.0, c=1.0, rng=np.random.default_rng(0))
        f = lambda p: float(np.sum(p**2))
        p = np.array([1.0])
        for _ in range(5):
            p = opt.step(f, p)
        a0 = 1.0 / (1 + opt.stability) ** opt.alpha
        ak = 1.0 / (opt.k + 1 + opt.stability) ** opt.alpha
        ck = 1.0 / (opt.k + 1) ** opt.gamma
        assert ak < a0
        assert ck < 1.0

    def test_nonfinite_objective_rejected(self):
        opt = SPSA(rng=np.random.default_rng(0))
        with pytest.raises(OptimizerError, match="non-finite"):
            opt.step(lambda p: float("nan"), np.zeros(2))

    def test_validation(self):
        with pytest.raises(OptimizerError):
            SPSA(a=0.0)
        with pytest.raises(OptimizerError):
            SPSA(c=-1.0)
        with pytest.raises(OptimizerError):
            SPSA(alpha=0.4)
        with pytest.raises(OptimizerError):
            SPSA(gamma=0.6)

    def test_reset(self):
        opt = SPSA(rng=np.random.default_rng(0))
        opt.step(lambda p: 0.0, np.zeros(2))
        opt.reset()
        assert opt.k == 0


class TestHardwareTraining:
    def test_exact_shots_none_learns(self, setup):
        ae, enc, q = setup
        result = train_hardware_style(
            ae, enc, q, iterations=100, shots=None, seed=5
        )
        assert result.num_iterations == 100
        # Median of late losses below median of early losses.
        early = float(np.median(result.loss_c[:10]))
        late = float(np.median(result.loss_c[-10:]))
        assert late < early

    def test_finite_shots_learns(self, setup):
        ae, enc, q = setup
        result = train_hardware_style(
            ae, enc, q, iterations=120, shots=4096, seed=6
        )
        early = float(np.median(result.loss_r[:15]))
        late = float(np.median(result.loss_r[-15:]))
        assert late < early

    def test_measurement_budget_recorded(self, setup):
        ae, enc, q = setup
        result = train_hardware_style(
            ae, enc, q, iterations=5, shots=128, seed=0
        )
        # 3 U_C evaluations (2 SPSA + 1 record) and 3 U_R per iteration.
        assert result.total_measurement_rounds == 5 * 6
        assert result.shots == 128

    def test_invalid_iterations(self, setup):
        ae, enc, q = setup
        with pytest.raises(TrainingError):
            train_hardware_style(ae, enc, q, iterations=0)
