"""Tests for repro.training.optimizers (Eq. 9 and variants)."""

import numpy as np
import pytest

from repro.exceptions import OptimizerError
from repro.training.optimizers import (
    Adam,
    ConstantSchedule,
    ExponentialDecay,
    GradientDescent,
    MomentumGD,
    StepDecay,
)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.01)
        assert s(0) == s(100) == 0.01

    def test_constant_invalid(self):
        with pytest.raises(OptimizerError):
            ConstantSchedule(0.0)
        with pytest.raises(OptimizerError):
            ConstantSchedule(-1.0)

    def test_exponential(self):
        s = ExponentialDecay(1.0, decay=0.5)
        assert s(0) == 1.0
        assert s(2) == pytest.approx(0.25)

    def test_exponential_invalid_decay(self):
        with pytest.raises(OptimizerError):
            ExponentialDecay(1.0, decay=1.5)

    def test_step_decay(self):
        s = StepDecay(1.0, step_size=10, factor=0.5)
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25

    def test_negative_iteration_rejected(self):
        with pytest.raises(OptimizerError):
            ConstantSchedule(0.1)(-1)


class TestGradientDescent:
    def test_eq9_update(self):
        # theta(t+1) = theta(t) - eta * grad
        opt = GradientDescent(lr=0.5)
        out = opt.step(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        assert out.tolist() == [0.5, 2.5]

    def test_iteration_counter_advances(self):
        opt = GradientDescent(ExponentialDecay(1.0, 0.5))
        p = np.array([0.0])
        g = np.array([1.0])
        p1 = opt.step(p, g)       # lr = 1.0
        p2 = opt.step(p1, g)      # lr = 0.5
        assert p1[0] == pytest.approx(-1.0)
        assert p2[0] == pytest.approx(-1.5)

    def test_shape_mismatch(self):
        with pytest.raises(OptimizerError):
            GradientDescent(0.1).step(np.ones(2), np.ones(3))

    def test_nan_gradient_rejected(self):
        with pytest.raises(OptimizerError, match="diverged"):
            GradientDescent(0.1).step(np.ones(2), np.array([np.nan, 0.0]))

    def test_reset(self):
        opt = GradientDescent(0.1)
        opt.step(np.zeros(1), np.zeros(1))
        opt.reset()
        assert opt.t == 0


class TestMomentum:
    def test_accumulates_velocity(self):
        opt = MomentumGD(lr=1.0, momentum=0.5)
        p = np.array([0.0])
        g = np.array([1.0])
        p = opt.step(p, g)   # v = -1   -> p = -1
        p = opt.step(p, g)   # v = -1.5 -> p = -2.5
        assert p[0] == pytest.approx(-2.5)

    def test_zero_momentum_equals_gd(self, rng):
        p = rng.normal(size=5)
        g = rng.normal(size=5)
        a = MomentumGD(0.1, momentum=0.0).step(p, g)
        b = GradientDescent(0.1).step(p, g)
        assert np.allclose(a, b)

    def test_invalid_momentum(self):
        with pytest.raises(OptimizerError):
            MomentumGD(0.1, momentum=1.0)
        with pytest.raises(OptimizerError):
            MomentumGD(0.1, momentum=-0.1)

    def test_shape_change_rejected(self):
        opt = MomentumGD(0.1)
        opt.step(np.ones(2), np.ones(2))
        with pytest.raises(OptimizerError, match="shape changed"):
            opt.step(np.ones(3), np.ones(3))

    def test_reset_clears_velocity(self):
        opt = MomentumGD(1.0, 0.9)
        opt.step(np.zeros(1), np.ones(1))
        opt.reset()
        out = opt.step(np.zeros(1), np.ones(1))
        assert out[0] == pytest.approx(-1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        opt = Adam(lr=0.1)
        out = opt.step(np.array([0.0]), np.array([5.0]))
        # bias-corrected first step has magnitude ~lr regardless of grad.
        assert abs(out[0]) == pytest.approx(0.1, rel=1e-6)

    def test_converges_on_quadratic(self):
        opt = Adam(lr=0.1)
        p = np.array([5.0])
        for _ in range(500):
            p = opt.step(p, 2 * p)  # d/dp p^2
        assert abs(p[0]) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(OptimizerError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(OptimizerError):
            Adam(0.1, beta2=-0.1)

    def test_invalid_eps(self):
        with pytest.raises(OptimizerError):
            Adam(0.1, eps=0.0)

    def test_reset_clears_moments(self):
        opt = Adam(0.1)
        opt.step(np.zeros(2), np.ones(2))
        opt.reset()
        assert opt.t == 0
        out = opt.step(np.zeros(2), np.ones(2))
        assert np.allclose(np.abs(out), 0.1, rtol=1e-6)

    def test_faster_than_gd_on_ill_conditioned(self, rng):
        """Adam's per-parameter scaling wins on badly scaled quadratics."""
        scales = np.array([100.0, 0.01])

        def run(opt, steps=200):
            p = np.array([1.0, 1.0])
            for _ in range(steps):
                p = opt.step(p, 2 * scales * p)
            return np.abs(p).max()

        assert run(Adam(0.05)) < run(GradientDescent(0.001))
