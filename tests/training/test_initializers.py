"""Tests for repro.training.initializers."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.training.initializers import (
    available_initializers,
    get_initializer,
    register_initializer,
)


class TestRegistry:
    def test_builtins_present(self):
        names = available_initializers()
        for expected in ("uniform", "zeros", "constant", "small",
                         "perturbed-identity"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_initializer("UNIFORM") is get_initializer("uniform")

    def test_unknown_raises(self):
        with pytest.raises(TrainingError, match="unknown initializer"):
            get_initializer("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TrainingError, match="already registered"):
            register_initializer("uniform")(lambda n, rng=None: np.zeros(n))


class TestBehaviour:
    def test_uniform_range(self, rng):
        out = get_initializer("uniform")(1000, rng=rng)
        assert out.min() >= 0.0
        assert out.max() < 2 * np.pi

    def test_uniform_custom_range(self, rng):
        out = get_initializer("uniform")(100, rng=rng, low=-1.0, high=1.0)
        assert out.min() >= -1.0 and out.max() < 1.0

    def test_uniform_invalid_range(self, rng):
        with pytest.raises(TrainingError):
            get_initializer("uniform")(10, rng=rng, low=1.0, high=0.0)

    def test_zeros(self):
        assert np.all(get_initializer("zeros")(5) == 0.0)

    def test_constant_default_is_balanced_splitter(self):
        out = get_initializer("constant")(3)
        assert np.allclose(out, np.pi / 4)

    def test_constant_nonfinite_rejected(self):
        with pytest.raises(TrainingError):
            get_initializer("constant")(3, value=np.inf)

    def test_small_scale(self, rng):
        out = get_initializer("small")(10000, rng=rng, scale=0.1)
        assert abs(out.std() - 0.1) < 0.01

    def test_small_invalid_scale(self, rng):
        with pytest.raises(TrainingError):
            get_initializer("small")(10, rng=rng, scale=0.0)

    def test_perturbed_identity_near_zero(self, rng):
        out = get_initializer("perturbed-identity")(100, rng=rng)
        assert np.max(np.abs(out)) <= 1e-3

    def test_deterministic_given_seed(self):
        a = get_initializer("uniform")(8, rng=np.random.default_rng(1))
        b = get_initializer("uniform")(8, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)
