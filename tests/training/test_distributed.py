"""Tests for Trainer(parallel=...) — multi-process training equivalence.

The contract: ``parallel="pool:K"`` changes *where* gradients are
computed, never *what* the training run records — history, callbacks and
the final model must match single-process training at the same batch
order (to the reduction's rounding floor).  Pool-spawning tests are
marked ``slow``.
"""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.network.autoencoder import QuantumAutoencoder
from repro.training.callbacks import Callback
from repro.training.trainer import FloatSeries, Trainer

DIM, D, LC, LR = 4, 2, 2, 2
ITERS = 4


class CountingCallback(Callback):
    """Records every iteration index it sees (must be once each)."""

    def __init__(self):
        self.iterations = []
        self.records = []
        self.started = 0
        self.ended = 0

    def on_train_start(self, context):
        self.started += 1

    def on_iteration_end(self, iteration, record):
        self.iterations.append(iteration)
        self.records.append(dict(record))
        return False

    def on_train_end(self, context):
        self.ended += 1


def _autoencoder(seed=0):
    return QuantumAutoencoder(DIM, D, LC, LR).initialize(
        rng=np.random.default_rng(seed)
    )


def _data(rng_seed=3, m=6):
    rng = np.random.default_rng(rng_seed)
    return np.abs(rng.normal(size=(m, DIM))) + 0.1


def _run(parallel, callbacks=(), batch_size=None, schedule="joint"):
    trainer = Trainer(
        iterations=ITERS,
        gradient_method="adjoint",
        schedule=schedule,
        backend="fused",
        batch_size=batch_size,
        callbacks=callbacks,
        parallel=parallel,
    )
    return trainer.train(_autoencoder(), _data())


class TestParallelSpecOnTrainer:
    def test_invalid_spec_raises_training_error(self):
        with pytest.raises(TrainingError):
            Trainer(parallel="cluster")

    def test_none_spellings_disable(self):
        assert Trainer(parallel="none").parallel is None
        assert Trainer(parallel=None).parallel is None

    def test_spec_normalised(self):
        assert Trainer(parallel="pool:2").parallel == "pool:2"

    def test_pool_one_trains_in_process(self):
        """pool:1 resolves to no reducer at all — zero spawn overhead."""
        single = _run(None)
        pooled = _run("pool:1")
        assert np.array_equal(
            np.asarray(single.history.loss_r), np.asarray(pooled.history.loss_r)
        )


@pytest.mark.slow
class TestDistributedEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        """(single-process, pool:2) result pairs for both schedules."""
        out = {}
        for schedule in ("joint", "sequential"):
            cb_s, cb_p = CountingCallback(), CountingCallback()
            out[schedule] = (
                _run(None, callbacks=(cb_s,), schedule=schedule),
                _run("pool:2", callbacks=(cb_p,), schedule=schedule),
                cb_s,
                cb_p,
            )
        return out

    @pytest.mark.parametrize("schedule", ["joint", "sequential"])
    def test_history_matches_single_process(self, runs, schedule):
        single, pooled, _, _ = runs[schedule]
        a, b = single.history.as_arrays(), pooled.history.as_arrays()
        for key in ("loss_c", "loss_r", "accuracy", "raw_accuracy",
                    "grad_norm_c", "grad_norm_r", "retained_probability"):
            np.testing.assert_allclose(a[key], b[key], atol=1e-9, rtol=1e-9)
        np.testing.assert_allclose(
            a["theta_c"], b["theta_c"], atol=1e-9
        )
        np.testing.assert_allclose(
            single.final_x_hat, pooled.final_x_hat, atol=1e-9
        )

    @pytest.mark.parametrize("schedule", ["joint", "sequential"])
    def test_callbacks_fire_once_per_iteration(self, runs, schedule):
        """Sharding must not multiply callback invocations (one per
        iteration, not one per shard or per worker)."""
        _, _, cb_single, cb_pooled = runs[schedule]
        assert cb_pooled.iterations == list(range(ITERS))
        assert cb_pooled.iterations == cb_single.iterations
        assert cb_pooled.started == cb_pooled.ended == 1
        for rec_s, rec_p in zip(cb_single.records, cb_pooled.records):
            assert rec_s.keys() == rec_p.keys()
            for key in ("loss_c", "loss_r"):
                assert rec_p[key] == pytest.approx(rec_s[key], abs=1e-9)

    @pytest.mark.parametrize("schedule", ["joint", "sequential"])
    def test_as_arrays_shapes_under_pool(self, runs, schedule):
        _, pooled, _, _ = runs[schedule]
        arrays = pooled.history.as_arrays()
        assert arrays["loss_r"].shape == (ITERS,)
        assert arrays["loss_r"].dtype == np.float64
        assert arrays["theta_r"].shape[0] == ITERS
        assert isinstance(pooled.history.loss_r, FloatSeries)

    def test_minibatch_pool_matches_single_process(self):
        """Same seeded MiniBatchStream schedule on both sides -> same run."""
        single = _run(None, batch_size=3)
        pooled = _run("pool:2", batch_size=3)
        np.testing.assert_allclose(
            np.asarray(single.history.loss_r),
            np.asarray(pooled.history.loss_r),
            atol=1e-9,
        )

    def test_reducer_cleared_after_train(self):
        trainer = Trainer(
            iterations=2, backend="fused", parallel="pool:2"
        )
        trainer.train(_autoencoder(), _data())
        assert trainer._reducer is None


class TestMiniBatchTraining:
    def test_batched_run_deterministic(self):
        a = _run(None, batch_size=3)
        b = _run(None, batch_size=3)
        assert np.asarray(a.history.loss_r).tolist() == (
            np.asarray(b.history.loss_r).tolist()
        )

    def test_batch_seed_changes_schedule(self):
        base = Trainer(
            iterations=ITERS, backend="fused", batch_size=2, batch_seed=0
        ).train(_autoencoder(), _data())
        other = Trainer(
            iterations=ITERS, backend="fused", batch_size=2, batch_seed=1
        ).train(_autoencoder(), _data())
        assert not np.array_equal(
            np.asarray(base.history.loss_r), np.asarray(other.history.loss_r)
        )

    def test_full_batch_when_batch_size_covers_samples(self):
        wide = _run(None, batch_size=100)
        full = _run(None)
        assert np.array_equal(
            np.asarray(wide.history.loss_r), np.asarray(full.history.loss_r)
        )
