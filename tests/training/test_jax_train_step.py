"""The fused one-``jax.jit`` train step: eligibility and exact parity.

Eligibility logic is pure python and runs on every host; the parity
tests (fused step vs the generic adjoint path, iteration for iteration)
need the optional jax package and skip cleanly without it.
"""

import numpy as np
import pytest

from repro.backends import JAX_AVAILABLE
from repro.network.autoencoder import QuantumAutoencoder
from repro.training.jax_step import (
    fused_train_step_supported,
    maybe_fused_step,
)
from repro.training.loss import FidelityLoss, SquaredErrorLoss
from repro.training.optimizers import (
    Adam,
    ConstantSchedule,
    ExponentialDecay,
    GradientDescent,
    MomentumGD,
)
from repro.training.trainer import Trainer

needs_jax = pytest.mark.skipif(
    not JAX_AVAILABLE, reason="optional jax package not installed"
)


def make_ae(backend, seed=3, allow_phase=False):
    return QuantumAutoencoder(
        8, 4, 3, 3, allow_phase=allow_phase, backend=backend
    ).initialize(rng=np.random.default_rng(seed))


def dataset(m=5, n=8, seed=7):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(size=(m, n))) + 0.1


# ----------------------------------------------------------------------
# eligibility (runs with and without jax)
# ----------------------------------------------------------------------
class TestSupported:
    def test_plain_optimizers_supported(self):
        assert fused_train_step_supported(GradientDescent(0.01))
        assert fused_train_step_supported(MomentumGD(0.01, momentum=0.9))
        assert fused_train_step_supported(Adam(0.05))

    def test_schedule_must_be_constant(self):
        assert not fused_train_step_supported(
            GradientDescent(ExponentialDecay(0.01))
        )

    def test_subclass_rejected(self):
        """An overridden step() would silently change semantics."""

        class Tweaked(Adam):
            def step(self, params, grad):
                return params

        assert not fused_train_step_supported(Tweaked(0.01))

    def test_stepped_optimizer_rejected(self):
        opt = GradientDescent(0.01)
        opt.step(np.zeros(2), np.zeros(2))
        assert not fused_train_step_supported(opt)

    def test_non_jax_backend_returns_none(self):
        ae = make_ae("fused")
        assert (
            maybe_fused_step(
                ae.uc, Adam(0.05), ae.projection, SquaredErrorLoss()
            )
            is None
        )

    @needs_jax
    def test_non_sq_loss_returns_none(self):
        ae = make_ae("jax")
        assert (
            maybe_fused_step(ae.uc, Adam(0.05), None, FidelityLoss())
            is None
        )

    @needs_jax
    def test_eligible_pair_returns_step(self):
        ae = make_ae("jax")
        step = maybe_fused_step(
            ae.uc, Adam(0.05), ae.projection, SquaredErrorLoss()
        )
        assert step is not None

    def test_trainer_falls_back_without_fusion(self):
        """On non-jax backends training is byte-for-byte the old path."""
        result = Trainer(
            iterations=3, gradient_method="adjoint", backend="fused"
        ).train(make_ae("fused"), dataset())
        assert result.history.num_iterations == 3


# ----------------------------------------------------------------------
# parity (jax only): the fused step IS the generic trajectory
# ----------------------------------------------------------------------
@needs_jax
class TestParity:
    def _run(self, backend, opt_factory, **kwargs):
        trainer = Trainer(
            iterations=6,
            gradient_method="adjoint",
            optimizer_factory=opt_factory,
            backend=backend,
            **kwargs,
        )
        return trainer.train(make_ae(backend), dataset())

    @pytest.mark.parametrize(
        "opt_factory",
        [
            lambda: GradientDescent(0.05),
            lambda: MomentumGD(0.05, momentum=0.9),
            lambda: Adam(0.05),
        ],
        ids=["gd", "momentum", "adam"],
    )
    def test_trajectory_matches_generic_path(self, opt_factory):
        fused = self._run("fused", opt_factory)
        jaxed = self._run("jax", opt_factory)
        np.testing.assert_allclose(
            np.asarray(jaxed.history.loss_c),
            np.asarray(fused.history.loss_c),
            rtol=0, atol=1e-9,
        )
        np.testing.assert_allclose(
            np.asarray(jaxed.history.loss_r),
            np.asarray(fused.history.loss_r),
            rtol=0, atol=1e-9,
        )
        np.testing.assert_allclose(
            jaxed.autoencoder.uc.get_flat_params(),
            fused.autoencoder.uc.get_flat_params(),
            rtol=0, atol=1e-9,
        )

    def test_mean_reduction_matches(self):
        fused = self._run(
            "fused", lambda: Adam(0.05), update_reduction="mean"
        )
        jaxed = self._run(
            "jax", lambda: Adam(0.05), update_reduction="mean"
        )
        np.testing.assert_allclose(
            np.asarray(jaxed.history.loss_r),
            np.asarray(fused.history.loss_r),
            rtol=0, atol=1e-9,
        )

    def test_allow_phase_trajectory_matches(self):
        ae_f = make_ae("fused", allow_phase=True)
        ae_j = make_ae("jax", allow_phase=True)
        X = dataset()
        t_f = Trainer(iterations=4, gradient_method="adjoint",
                      optimizer_factory=lambda: Adam(0.05)).train(ae_f, X)
        t_j = Trainer(iterations=4, gradient_method="adjoint",
                      optimizer_factory=lambda: Adam(0.05)).train(ae_j, X)
        np.testing.assert_allclose(
            ae_j.uc.get_flat_params(), ae_f.uc.get_flat_params(),
            rtol=0, atol=1e-9,
        )
        np.testing.assert_allclose(
            np.asarray(t_j.history.loss_r),
            np.asarray(t_f.history.loss_r),
            rtol=0, atol=1e-9,
        )

    def test_grad_norm_series_matches(self):
        fused = self._run("fused", lambda: GradientDescent(0.05))
        jaxed = self._run("jax", lambda: GradientDescent(0.05))
        np.testing.assert_allclose(
            np.asarray(jaxed.history.grad_norm_c),
            np.asarray(fused.history.grad_norm_c),
            rtol=0, atol=1e-9,
        )

    def test_optimizer_t_advances(self):
        opts = []

        def factory():
            opt = Adam(0.05)
            opts.append(opt)
            return opt

        self._run("jax", factory)
        assert all(opt.t == 6 for opt in opts)


@needs_jax
class TestGradients:
    def test_loss_and_grad_matches_engine(self):
        from repro.training.gradients import loss_and_gradient

        ae = make_ae("jax")
        step = maybe_fused_step(
            ae.uc, Adam(0.05), ae.projection, SquaredErrorLoss()
        )
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 5))
        x /= np.linalg.norm(x, axis=0)
        t = ae.projection.apply(x)
        l1, g1 = step.loss_and_grad(x, t)
        l2, g2 = loss_and_gradient(
            ae.uc, x, t, projection=ae.projection, method="adjoint"
        )
        assert l1 == pytest.approx(l2, abs=1e-10)
        assert np.max(np.abs(g1 - g2)) < 1e-10

    def test_autodiff_matches_adjoint(self):
        """jax.grad through the scan agrees with our adjoint tape."""
        for allow_phase in (False, True):
            ae = make_ae("jax", allow_phase=allow_phase)
            step = maybe_fused_step(
                ae.uc, Adam(0.05), ae.projection, SquaredErrorLoss()
            )
            rng = np.random.default_rng(2)
            x = rng.normal(size=(8, 5))
            x /= np.linalg.norm(x, axis=0)
            t = ae.projection.apply(x)
            l1, g1 = step.loss_and_grad(x, t)
            l2, g2 = step.loss_and_grad_autodiff(x, t)
            assert l1 == pytest.approx(l2, abs=1e-10)
            assert np.max(np.abs(g1 - g2)) < 1e-8
