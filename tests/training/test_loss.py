"""Tests for repro.training.loss (Eq. 5 and variants)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DimensionError, TrainingError
from repro.training.loss import (
    FidelityLoss,
    SquaredErrorLoss,
    compression_loss,
    reconstruction_loss,
)


class TestSquaredErrorLoss:
    def test_eq5_sum(self):
        out = np.array([[1.0, 0.0], [0.0, 1.0]])
        tgt = np.zeros((2, 2))
        assert SquaredErrorLoss("sum").value(out, tgt) == pytest.approx(2.0)

    def test_mean_normalisation(self):
        out = np.ones((4, 5))
        tgt = np.zeros((4, 5))
        assert SquaredErrorLoss("mean").value(out, tgt) == pytest.approx(1.0)

    def test_zero_at_match(self, rng):
        x = rng.normal(size=(8, 3))
        assert SquaredErrorLoss().value(x, x.copy()) == 0.0

    def test_gradient_formula(self):
        out = np.array([1.0, 2.0])
        tgt = np.array([0.5, 2.5])
        g = SquaredErrorLoss("sum").dvalue(out, tgt)
        assert np.allclose(g, [1.0, -1.0])

    def test_gradient_mean_scaled(self):
        out = np.ones(4)
        tgt = np.zeros(4)
        g = SquaredErrorLoss("mean").dvalue(out, tgt)
        assert np.allclose(g, 0.5)

    def test_complex_magnitude(self):
        out = np.array([1j])
        tgt = np.array([0.0 + 0j])
        assert SquaredErrorLoss("sum").value(out, tgt) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            SquaredErrorLoss().value(np.ones(3), np.ones(4))

    def test_3d_rejected(self):
        with pytest.raises(DimensionError):
            SquaredErrorLoss().value(np.ones((2, 2, 2)), np.ones((2, 2, 2)))

    def test_invalid_reduction(self):
        with pytest.raises(TrainingError):
            SquaredErrorLoss("median")

    def test_gradient_is_derivative(self, rng):
        """dvalue must be the numerical derivative of value."""
        loss = SquaredErrorLoss("sum")
        out = rng.normal(size=6)
        tgt = rng.normal(size=6)
        g = loss.dvalue(out, tgt)
        eps = 1e-7
        for i in range(6):
            bumped = out.copy()
            bumped[i] += eps
            num = (loss.value(bumped, tgt) - loss.value(out, tgt)) / eps
            assert num == pytest.approx(g[i], abs=1e-5)

    @given(
        arrays(np.float64, (4, 3), elements=st.floats(-5, 5, allow_nan=False)),
        arrays(np.float64, (4, 3), elements=st.floats(-5, 5, allow_nan=False)),
    )
    def test_property_nonnegative_symmetric(self, a, b):
        loss = SquaredErrorLoss("sum")
        assert loss.value(a, b) >= 0.0
        assert loss.value(a, b) == pytest.approx(loss.value(b, a))


class TestFidelityLoss:
    def test_zero_for_identical_states(self):
        s = np.array([[0.6], [0.8]])
        assert FidelityLoss().value(s, s) == pytest.approx(0.0)

    def test_one_for_orthogonal_states(self):
        a = np.array([[1.0], [0.0]])
        b = np.array([[0.0], [1.0]])
        assert FidelityLoss().value(a, b) == pytest.approx(1.0)

    def test_sign_invariance(self):
        """Fidelity ignores global sign — unlike the Eq. (5) loss."""
        s = np.array([[0.6], [0.8]])
        assert FidelityLoss().value(-s, s) == pytest.approx(0.0)
        assert SquaredErrorLoss().value(-s, s) > 0

    def test_mean_reduction(self):
        a = np.eye(2)
        b = np.eye(2)[:, ::-1].copy()
        assert FidelityLoss("mean").value(a, b) == pytest.approx(1.0)

    def test_gradient_matches_numerical(self, rng):
        loss = FidelityLoss("sum")
        out = rng.normal(size=(4, 2))
        tgt = rng.normal(size=(4, 2))
        tgt /= np.linalg.norm(tgt, axis=0)
        g = loss.dvalue(out, tgt)
        eps = 1e-7
        for i in range(4):
            for j in range(2):
                bumped = out.copy()
                bumped[i, j] += eps
                num = (loss.value(bumped, tgt) - loss.value(out, tgt)) / eps
                assert num == pytest.approx(g[i, j], abs=1e-5)

    def test_invalid_reduction(self):
        with pytest.raises(TrainingError):
            FidelityLoss("max")


class TestConvenience:
    def test_compression_loss_alias(self, rng):
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(4, 2))
        assert compression_loss(a, b) == pytest.approx(
            SquaredErrorLoss("sum").value(a, b)
        )

    def test_reconstruction_loss_alias(self, rng):
        B = rng.normal(size=(4, 2))
        A = rng.normal(size=(4, 2))
        assert reconstruction_loss(B, A) == pytest.approx(
            SquaredErrorLoss("sum").value(B, A)
        )

    def test_paper_loss_units(self, paper_images):
        """L_R between encoded inputs and zero output = sum of squared
        amplitudes = M (unit-norm states)."""
        from repro.encoding.amplitude import encode_batch

        amps = encode_batch(paper_images).amplitudes()
        assert reconstruction_loss(np.zeros_like(amps), amps) == pytest.approx(
            25.0
        )
