"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_power_of_two,
    check_probability_vector,
    num_qubits_for,
)


class TestAsFloatVector:
    def test_list_coerced(self):
        out = as_float_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_2d_rejected(self):
        with pytest.raises(DimensionError, match="1-D"):
            as_float_vector(np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(DimensionError, match="non-empty"):
            as_float_vector([])

    def test_nan_rejected(self):
        with pytest.raises(DimensionError, match="NaN"):
            as_float_vector([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(DimensionError):
            as_float_vector([np.inf])

    def test_contiguous_output(self):
        out = as_float_vector(np.arange(10)[::2].astype(float))
        assert out.flags["C_CONTIGUOUS"]


class TestAsFloatMatrix:
    def test_1d_promoted_to_row(self):
        assert as_float_matrix([1.0, 2.0]).shape == (1, 2)

    def test_3d_rejected(self):
        with pytest.raises(DimensionError, match="2-D"):
            as_float_matrix(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(DimensionError):
            as_float_matrix([[np.nan, 1.0]])

    def test_name_in_message(self):
        with pytest.raises(DimensionError, match="custom"):
            as_float_matrix(np.zeros((0, 3)), name="custom")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 1024])
    def test_accepts_powers(self, n):
        assert check_power_of_two(n) == n

    @pytest.mark.parametrize("n", [0, -4, 3, 6, 12, 100])
    def test_rejects_non_powers(self, n):
        with pytest.raises(DimensionError):
            check_power_of_two(n)

    def test_rejects_float(self):
        with pytest.raises(DimensionError, match="int"):
            check_power_of_two(4.0)


class TestNumQubits:
    @pytest.mark.parametrize(
        "dim,expected", [(1, 0), (2, 1), (4, 2), (16, 4), (17, 5), (1000, 10)]
    )
    def test_ceil_log2(self, dim, expected):
        assert num_qubits_for(dim) == expected

    def test_paper_example(self):
        # "if the data is in 16 dimensions, four qubits are needed"
        assert num_qubits_for(16) == 4

    def test_invalid_raises(self):
        with pytest.raises(DimensionError):
            num_qubits_for(0)


class TestCheckProbabilityVector:
    def test_valid_passes(self):
        out = check_probability_vector(np.array([0.25, 0.75]))
        assert out.sum() == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(DimensionError, match="negative"):
            check_probability_vector(np.array([-0.1, 1.1]))

    def test_bad_sum_rejected(self):
        with pytest.raises(DimensionError, match="sum to 1"):
            check_probability_vector(np.array([0.3, 0.3]))

    def test_tiny_negative_clipped(self):
        out = check_probability_vector(np.array([1.0, -1e-12]))
        assert np.all(out >= 0)
