"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None).random(5)
        b = np.random.default_rng(DEFAULT_SEED).random(5)
        assert np.array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        assert np.array_equal(ensure_rng(7).random(3), ensure_rng(7).random(3))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            ensure_rng(1).random(8), ensure_rng(2).random(8)
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(42, 3)
        draws = [c.random(16) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_deterministic_from_seed(self):
        a = [g.random(4) for g in spawn_rngs(9, 2)]
        b = [g.random(4) for g in spawn_rngs(9, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(1)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2
