"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            sum(range(1000))
        assert sw.wall_seconds > 0
        assert sw.laps == 1

    def test_multiple_laps_accumulate(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                pass
        assert sw.laps == 3

    def test_stop_returns_lap_time(self):
        sw = Stopwatch().start()
        lap = sw.stop()
        assert lap >= 0.0
        assert lap == pytest.approx(sw.wall_seconds)

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError, match="already running"):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_reset_clears_state(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.wall_seconds == 0.0
        assert sw.cpu_seconds == 0.0
        assert sw.laps == 0

    def test_cpu_time_tracked(self):
        sw = Stopwatch()
        with sw:
            total = 0
            while sw.cpu_seconds == 0.0 and total < 50_000_000:
                total += sum(i * i for i in range(200_000))
                # poll the clock without stopping: process_time has coarse
                # granularity on some kernels, so loop until it ticks
                import time as _time

                if _time.process_time() - sw._cpu_start > 0:
                    break
        assert sw.cpu_seconds >= 0.0
        assert sw.laps == 1


class TestTimed:
    def test_timed_emits_label(self):
        messages = []
        with timed("step", sink=messages.append):
            pass
        assert len(messages) == 1
        assert messages[0].startswith("step:")

    def test_timed_yields_stopwatch(self):
        with timed("x", sink=lambda _s: None) as sw:
            assert isinstance(sw, Stopwatch)

    def test_timed_reports_even_on_exception(self):
        messages = []
        with pytest.raises(ValueError):
            with timed("boom", sink=messages.append):
                raise ValueError("boom")
        assert messages and messages[0].startswith("boom:")
