"""Tests for repro.utils.ascii_art."""

import numpy as np
import pytest

from repro.utils.ascii_art import (
    render_curve_ascii,
    render_image_ascii,
    render_table,
)


class TestRenderImage:
    def test_binary_image_endpoints(self):
        out = render_image_ascii(np.array([[0.0, 1.0]]))
        assert "@@" in out
        # dark pixel renders as (stripped) spaces
        assert out.startswith("  ") or out.startswith("@@") is False

    def test_row_count(self):
        out = render_image_ascii(np.zeros((3, 2)))
        assert len(out.split("\n")) == 3

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            render_image_ascii(np.zeros(4))

    def test_bad_range_raises(self):
        with pytest.raises(ValueError, match="vmax"):
            render_image_ascii(np.zeros((2, 2)), vmin=1.0, vmax=0.0)

    def test_values_clipped(self):
        out = render_image_ascii(np.array([[2.0, -1.0]]))
        assert "@@" in out  # clipped to white


class TestRenderCurve:
    def test_contains_extreme_labels(self):
        out = render_curve_ascii([0.0, 5.0, 10.0], width=20, height=5)
        assert "10" in out and "0" in out

    def test_title_included(self):
        out = render_curve_ascii([1, 2], title="loss")
        assert out.startswith("loss")

    def test_constant_series_ok(self):
        out = render_curve_ascii([3.0] * 10)
        assert "*" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            render_curve_ascii([])

    def test_logy_handles_zeros(self):
        out = render_curve_ascii([1.0, 0.1, 0.0], logy=True)
        assert "*" in out

    def test_canvas_height(self):
        out = render_curve_ascii([1, 2, 3], height=7, width=10)
        plot_lines = [l for l in out.split("\n") if "|" in l]
        assert len(plot_lines) == 7


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(
            [{"Method": "QN", "Acc": "97.75%"}, {"Method": "CSC", "Acc": "93%"}]
        )
        lines = out.split("\n")
        assert lines[0].startswith("Method")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_explicit_columns_subset(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.split("\n")[0]

    def test_missing_keys_blank(self):
        out = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in out

    def test_title_prepended(self):
        out = render_table([{"x": 1}], title="TABLE")
        assert out.startswith("TABLE")

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            render_table([])
