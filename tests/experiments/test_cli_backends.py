"""The ``repro backends`` subcommand: availability report surface."""

import json

from repro.backends import JAX_AVAILABLE, NUMBA_AVAILABLE, available_backends
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_backends_parses(self):
        args = build_parser().parse_args(["backends"])
        assert args.experiment == "backends"
        assert args.output is None

    def test_backends_output_flag(self):
        args = build_parser().parse_args(["backends", "--output", "b.json"])
        assert args.output == "b.json"


class TestMain:
    def test_lists_every_registered_backend(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out

    def test_marks_availability(self, capsys):
        main(["backends"])
        out = capsys.readouterr().out
        assert "available" in out
        for name, installed in (
            ("numba", NUMBA_AVAILABLE),
            ("jax", JAX_AVAILABLE),
        ):
            line = next(ln for ln in out.splitlines()
                        if ln.startswith(name))
            assert ("available" if installed else "missing") in line

    def test_missing_backend_shows_install_hint(self, capsys):
        """Soft-dependency backends surface their hint inline (the whole
        point of the subcommand: no BackendError archaeology)."""
        main(["backends"])
        out = capsys.readouterr().out
        if not NUMBA_AVAILABLE:
            assert "pip install numba" in out
        if not JAX_AVAILABLE:
            assert "pip install jax" in out

    def test_output_json_written(self, tmp_path, capsys):
        path = tmp_path / "backends.json"
        assert main(["backends", "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert sorted(payload) == available_backends()
        assert payload["loop"]["available"] is True
        assert payload["loop"]["hint"] is None
        assert payload["jax"]["available"] is JAX_AVAILABLE
        assert payload["numba"]["available"] is NUMBA_AVAILABLE
