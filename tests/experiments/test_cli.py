"""Tests for repro.experiments.cli (python -m repro ...)."""

import json

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main
from repro.io.results_io import load_results


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.iterations == 150
        assert args.optimizer == "momentum"
        assert args.gradient == "adjoint"

    def test_ablation_requires_study(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation"])

    def test_invalid_gradient_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--gradient", "magic"])

    def test_train_parallel_spec_normalised(self):
        args = build_parser().parse_args(
            ["train", "--checkpoint", "m.npz", "--parallel", "POOL:2",
             "--batch-size", "8"]
        )
        assert args.parallel == "pool:2"
        assert args.batch_size == 8
        none = build_parser().parse_args(
            ["train", "--checkpoint", "m.npz", "--parallel", "none"]
        )
        assert none.parallel is None

    def test_train_invalid_parallel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--checkpoint", "m.npz", "--parallel", "cluster"]
            )


class TestMain:
    def test_fig4_runs_and_prints(self, capsys):
        code = main(["fig4", "--iterations", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4a" in out
        assert "Summary vs paper" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--iterations", "3"]) == 0
        assert "CSC-based" in capsys.readouterr().out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "QUANTUM SUPERIORITY" in out

    def test_table1_strong_csc(self, capsys):
        assert main(["table1", "--iterations", "3", "--strong-csc"]) == 0
        assert "CSC-MOD/OMP" in capsys.readouterr().out

    def test_ablation_gradient(self, capsys):
        assert main(
            ["ablation", "--study", "gradient", "--iterations", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "adjoint" in out and "fd" in out

    def test_output_json_written(self, tmp_path, capsys):
        path = tmp_path / "fig5.json"
        assert main(
            ["fig5", "--iterations", "3", "--output", str(path)]
        ) == 0
        results = load_results(path)
        assert "qn_loss" in results
        assert len(results["qn_loss"]) == 3

    def test_fig4_output_contains_curves(self, tmp_path, capsys):
        path = tmp_path / "fig4.json"
        main(["fig4", "--iterations", "4", "--output", str(path)])
        results = load_results(path)
        assert len(results["loss_c"]) == 4
        assert "max_accuracy_pct" in results

    def test_seed_changes_results(self, tmp_path, capsys):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        main(["fig4", "--iterations", "3", "--seed", "1",
              "--output", str(p1)])
        main(["fig4", "--iterations", "3", "--seed", "2",
              "--output", str(p2)])
        a, b = load_results(p1), load_results(p2)
        assert not np.allclose(a["loss_r"], b["loss_r"])
