"""Tests for repro.experiments.fig4 (reduced iteration counts)."""

import numpy as np
import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.fig4 import Fig4Result, run_fig4


@pytest.fixture(scope="module")
def quick_result():
    """A short but real run shared by all assertions in this module."""
    return run_fig4(PaperConfig(iterations=25))


class TestFig4Panels:
    def test_panel_a_inputs(self, quick_result):
        imgs = quick_result.input_images
        assert imgs.shape == (25, 4, 4)
        assert set(np.unique(imgs)) <= {0.0, 1.0}

    def test_panel_b_outputs(self, quick_result):
        out = quick_result.output_images
        assert out.shape == (25, 4, 4)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_panel_c_losses(self, quick_result):
        h = quick_result.history
        assert len(h.loss_c) == 25
        assert h.loss_c[-1] < h.loss_c[0]
        assert h.loss_r[-1] < h.loss_r[0]

    def test_panel_d_accuracy_curve(self, quick_result):
        acc = quick_result.history.accuracy
        assert len(acc) == 25
        assert all(0.0 <= a <= 100.0 for a in acc)

    def test_panel_e_f_traces(self, quick_result):
        assert quick_result.output_trace.shape == (25, 16)
        assert quick_result.compressed_trace.shape == (25, 16)
        # Compressed trace is supported on the kept subspace only.
        keep = quick_result.config.build_autoencoder().projection.keep
        trash = np.setdiff1d(np.arange(16), keep)
        assert np.allclose(quick_result.compressed_trace[:, trash], 0.0)

    def test_panel_g_theta_trajectories(self, quick_result):
        assert quick_result.theta_c.shape == (25, 180)
        assert quick_result.theta_r.shape == (25, 210)
        # Parameters move during training.
        assert not np.allclose(
            quick_result.theta_c[0], quick_result.theta_c[-1]
        )

    def test_summary_keys(self, quick_result):
        s = quick_result.summary()
        for key in (
            "max_accuracy_pct",
            "min_loss_c",
            "min_loss_r",
            "paper_max_accuracy_pct",
        ):
            assert key in s

    def test_paper_reference_constants(self):
        assert Fig4Result.PAPER_MAX_ACCURACY == 97.75
        assert Fig4Result.PAPER_MIN_LOSS_C == 0.017
        assert Fig4Result.PAPER_MIN_LOSS_R == 0.023

    def test_deterministic(self):
        a = run_fig4(PaperConfig(iterations=3))
        b = run_fig4(PaperConfig(iterations=3))
        assert np.allclose(a.history.loss_r, b.history.loss_r)

    def test_rendering_smoke(self, quick_result):
        from repro.experiments.reporting import render_fig4

        text = render_fig4(quick_result)
        assert "Fig. 4a" in text
        assert "Fig. 4g" in text
        assert "97.75%" in text
