"""Tests for repro.experiments.table1."""

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def rows():
    return run_table1(PaperConfig(iterations=30))


class TestTable1:
    def test_row_methods(self, rows):
        assert [r.method for r in rows] == ["QN-based", "CSC-based"]

    def test_accuracy_bounds(self, rows):
        for r in rows:
            assert 0.0 <= r.accuracy_pct <= 100.0

    def test_cpu_seconds_positive(self, rows):
        for r in rows:
            assert r.cpu_seconds >= 0.0

    def test_matrix_sizes(self, rows):
        assert all(r.matrix_size == "16*16" for r in rows)

    def test_as_dict_formatting(self, rows):
        d = rows[0].as_dict()
        assert d["Method"] == "QN-based"
        assert d["Accuracy"].endswith("%")
        assert d["CPU Runs"].endswith("s")

    def test_strong_csc_appended(self):
        rows = run_table1(PaperConfig(iterations=5), include_strong_csc=True)
        assert [r.method for r in rows] == [
            "QN-based",
            "CSC-based",
            "CSC-MOD/OMP",
        ]

    def test_rendering_includes_paper_rows(self, rows):
        from repro.experiments.reporting import render_table1

        text = render_table1(rows)
        assert "QN-based (paper)" in text
        assert "575.67s" in text

    @pytest.mark.slow
    def test_paper_shape_qn_beats_gradient_csc(self):
        """Table I's accuracy ordering at the paper's full budget."""
        rows = run_table1(PaperConfig())
        qn, csc = rows
        assert qn.accuracy_pct > csc.accuracy_pct
