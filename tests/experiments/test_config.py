"""Tests for repro.experiments.config."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import PaperConfig
from repro.network.targets import (
    TruncatedInputTarget,
    UniformSubspaceTarget,
)


class TestDefaults:
    def test_section_iv_a_values(self):
        cfg = PaperConfig()
        assert cfg.dim == 16
        assert cfg.compressed_dim == 4
        assert cfg.compression_layers == 12
        assert cfg.reconstruction_layers == 14
        assert cfg.learning_rate == 0.01
        assert cfg.iterations == 150
        assert cfg.num_samples == 25

    def test_parameter_counts(self):
        cfg = PaperConfig()
        assert cfg.uc_parameter_count == 180  # 12 x 15
        assert cfg.ur_parameter_count == 210  # 14 x 15

    def test_with_functional_update(self):
        cfg = PaperConfig().with_(iterations=10)
        assert cfg.iterations == 10
        assert cfg.dim == 16


class TestValidation:
    def test_d_must_be_smaller_than_n(self):
        with pytest.raises(ExperimentError):
            PaperConfig(compressed_dim=16)

    def test_invalid_iterations(self):
        with pytest.raises(ExperimentError):
            PaperConfig(iterations=0)

    def test_invalid_optimizer(self):
        with pytest.raises(ExperimentError):
            PaperConfig(optimizer="lbfgs")

    def test_invalid_target(self):
        with pytest.raises(ExperimentError):
            PaperConfig(target="identity")

    def test_complex_plus_adjoint_builds(self):
        # The adjoint sweep handles allow_phase networks (pull-back
        # through G^dagger), so this combination is no longer rejected.
        cfg = PaperConfig(allow_phase=True, gradient_method="adjoint")
        trainer = cfg.build_trainer()
        assert trainer.gradient_method == "adjoint"

    def test_invalid_grad_engine(self):
        with pytest.raises(ExperimentError, match="gradient engine"):
            PaperConfig(grad_engine="vectorised")


class TestFactories:
    def test_dataset_matches_config(self):
        ds = PaperConfig().dataset()
        assert ds.num_samples == 25
        assert ds.dim == 16
        assert ds.is_binary

    def test_dataset_deterministic(self):
        a = PaperConfig().dataset().matrix()
        b = PaperConfig().dataset().matrix()
        assert np.array_equal(a, b)

    def test_autoencoder_architecture(self):
        ae = PaperConfig().build_autoencoder()
        assert ae.uc.num_layers == 12
        assert ae.ur.num_layers == 14
        assert ae.compressed_dim == 4

    def test_autoencoder_seeded(self):
        a = PaperConfig().build_autoencoder()
        b = PaperConfig().build_autoencoder()
        assert np.allclose(a.uc.get_flat_params(), b.uc.get_flat_params())

    def test_target_strategies(self):
        cfg = PaperConfig()
        ae = cfg.build_autoencoder()
        X = cfg.dataset().matrix()
        assert isinstance(
            cfg.build_target_strategy(ae, X), TruncatedInputTarget
        )
        assert isinstance(
            cfg.with_(target="uniform").build_target_strategy(ae, X),
            UniformSubspaceTarget,
        )
        restrict = cfg.with_(target="restrict").build_target_strategy(ae, X)
        assert isinstance(restrict, TruncatedInputTarget)
        assert restrict.mixing is None

    def test_trainer_paper_iterations(self):
        trainer = PaperConfig().build_trainer()
        assert trainer.iterations == 150

    def test_trace_sample_disabled_when_out_of_range(self):
        cfg = PaperConfig(num_samples=5)  # trace_sample default 24 invalid
        trainer = cfg.build_trainer()
        assert trainer.trace_sample is None
