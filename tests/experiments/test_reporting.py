"""Tests for repro.experiments.reporting."""

import numpy as np
import pytest

from repro.experiments.reporting import render_image_grid, render_records


class TestImageGrid:
    def test_grid_contains_all_images(self):
        imgs = np.stack([np.eye(2), np.zeros((2, 2)), np.ones((2, 2))])
        out = render_image_grid(imgs, columns=2)
        assert isinstance(out, str)
        assert "@@" in out

    def test_column_wrapping(self):
        imgs = np.ones((5, 2, 2))
        out = render_image_grid(imgs, columns=2)
        # 5 images in 2 columns -> 3 row groups, blank separated.
        groups = [g for g in out.split("\n\n") if g.strip()]
        assert len(groups) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            render_image_grid(np.ones((2, 2)))
        with pytest.raises(ValueError):
            render_image_grid(np.ones((1, 2, 2)), columns=0)


class TestRenderRecords:
    def test_float_formatting(self):
        out = render_records(
            [{"lr": 0.0100001, "acc": 97.753333}], title="sweep"
        )
        assert out.startswith("sweep")
        assert "0.01" in out
        assert "97.75" in out

    def test_mixed_types(self):
        out = render_records([{"method": "fd", "n": 5, "flag": True}])
        assert "fd" in out and "5" in out and "True" in out
