"""Tests for repro.experiments.fig5."""

import numpy as np
import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.fig5 import run_fig5


@pytest.fixture(scope="module")
def result():
    return run_fig5(PaperConfig(iterations=30))


class TestFig5:
    def test_curve_lengths_match_iterations(self, result):
        assert len(result.qn_loss) == 30
        assert len(result.csc_loss) == 30

    def test_both_losses_decrease(self, result):
        assert result.qn_loss[-1] < result.qn_loss[0]
        assert result.csc_loss[-1] <= result.csc_loss[0]

    def test_matrix_sizes_match_paper(self, result):
        assert result.qn_matrix_size == "16*16"
        assert result.csc_matrix_size == "16*16"

    def test_summary_complete(self, result):
        s = result.summary()
        for key in (
            "qn_final_loss",
            "csc_final_loss",
            "qn_wins_loss",
            "qn_cpu_seconds",
            "csc_cpu_seconds",
        ):
            assert key in s

    def test_strong_csc_variant_runs(self):
        r = run_fig5(
            PaperConfig(iterations=5), csc_update="mod", csc_coder="omp"
        )
        assert len(r.csc_loss) == 5

    def test_rendering_smoke(self, result):
        from repro.experiments.reporting import render_fig5

        text = render_fig5(result)
        assert "QN-based" in text
        assert "CSC-based" in text

    @pytest.mark.slow
    def test_paper_shape_qn_wins_at_full_budget(self):
        """The headline Fig. 5c claim at the paper's full budget:
        QN's final reconstruction loss is below the gradient-CSC's."""
        r = run_fig5(PaperConfig())  # full 150 iterations
        assert r.qn_wins_loss
