"""Tests for repro.experiments.ablations (reduced budgets)."""

import numpy as np
import pytest

from repro.experiments import ablations
from repro.experiments.config import PaperConfig


@pytest.fixture(scope="module")
def quick_cfg():
    return PaperConfig(
        iterations=15, compression_layers=6, reconstruction_layers=8
    )


class TestGradientComparison:
    def test_all_methods_reported(self, quick_cfg):
        records = ablations.gradient_method_comparison(quick_cfg)
        assert {r["method"] for r in records} == {
            "fd",
            "central",
            "derivative",
            "adjoint",
        }

    def test_exact_methods_zero_error(self, quick_cfg):
        records = ablations.gradient_method_comparison(quick_cfg)
        by_method = {r["method"]: r for r in records}
        assert by_method["adjoint"]["max_error_vs_adjoint"] == 0.0
        assert by_method["derivative"]["max_error_vs_adjoint"] < 1e-10

    def test_fd_error_small_but_nonzero(self, quick_cfg):
        records = ablations.gradient_method_comparison(quick_cfg)
        by_method = {r["method"]: r for r in records}
        assert 0.0 < by_method["fd"]["max_error_vs_adjoint"] < 1e-4

    def test_adjoint_fastest(self, quick_cfg):
        records = ablations.gradient_method_comparison(quick_cfg)
        by_method = {r["method"]: r for r in records}
        assert (
            by_method["adjoint"]["seconds_per_gradient"]
            < by_method["fd"]["seconds_per_gradient"]
        )


class TestSweeps:
    def test_layer_sweep_records(self, quick_cfg):
        records = ablations.layer_sweep(quick_cfg, layer_counts=(2, 4))
        assert [r["compression_layers"] for r in records] == [2, 4]
        assert all("accuracy_pct" in r for r in records)

    def test_learning_rate_sweep(self, quick_cfg):
        records = ablations.learning_rate_sweep(quick_cfg, rates=(0.01, 0.05))
        assert [r["learning_rate"] for r in records] == [0.01, 0.05]

    def test_compression_dim_sweep_monotone_ratio(self, quick_cfg):
        records = ablations.compression_dim_sweep(quick_cfg, dims=(2, 4))
        ratios = [r["compression_ratio"] for r in records]
        assert ratios == sorted(ratios)

    def test_initializer_comparison(self, quick_cfg):
        records = ablations.initializer_comparison(
            quick_cfg, methods=("uniform", "zeros")
        )
        assert {r["initializer"] for r in records} == {"uniform", "zeros"}


class TestHardwareRealism:
    def test_shot_noise_records_and_convergence(self, quick_cfg):
        records = ablations.shot_noise_study(
            quick_cfg, shots_list=(None, 50, 100000)
        )
        by_shots = {r["shots"]: r["accuracy_pct"] for r in records}
        assert set(by_shots) == {-1, 50, 100000}
        assert all(0.0 <= a <= 100.0 for a in by_shots.values())
        # Heavy sampling approaches the exact-measurement accuracy; at a
        # short training budget noise can accidentally help, so only the
        # closeness (not ordering) is asserted here.  The converged-model
        # ordering is exercised by the hardware-realism bench.
        assert abs(by_shots[100000] - by_shots[-1]) < 10.0

    def test_imperfection_grid_shape(self, quick_cfg):
        records = ablations.imperfection_study(
            quick_cfg, theta_sigmas=(0.0, 0.01), losses=(0.0, 0.01)
        )
        assert len(records) == 4

    def test_ideal_device_matches_trained_accuracy(self, quick_cfg):
        records = ablations.imperfection_study(
            quick_cfg, theta_sigmas=(0.0,), losses=(0.0,)
        )
        assert records[0]["mean_transmission"] == pytest.approx(
            records[0]["mean_transmission"]
        )
        assert records[0]["accuracy_pct"] >= 0.0

    def test_loss_reduces_transmission(self, quick_cfg):
        records = ablations.imperfection_study(
            quick_cfg, theta_sigmas=(0.0,), losses=(0.0, 0.01)
        )
        ideal, lossy = records
        assert lossy["mean_transmission"] < ideal["mean_transmission"]

    def test_complex_network_study(self):
        cfg = PaperConfig(
            iterations=5, compression_layers=2, reconstruction_layers=2
        )
        records = ablations.complex_network_study(cfg)
        real, complex_ = records
        assert real["allow_phase"] is False
        assert complex_["allow_phase"] is True
        assert complex_["num_parameters"] == 2 * real["num_parameters"]
