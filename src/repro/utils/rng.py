"""Deterministic random-number-generation helpers.

All stochastic behaviour in the library flows through
:func:`numpy.random.Generator` objects created here, so that every
experiment, dataset and initializer is reproducible from a single integer
seed.  Functions accept either ``None`` (fresh default seed), an ``int``
seed, or an existing ``Generator`` (returned unchanged), mirroring the
``scikit-learn`` ``check_random_state`` idiom.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["DEFAULT_SEED", "ensure_rng", "spawn_rngs"]

#: Seed used throughout the experiment harness when the caller does not
#: provide one.  2024 matches the paper's publication year and is recorded in
#: EXPERIMENTS.md so every reported number is regenerable bit-for-bit.
DEFAULT_SEED: int = 2024

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for the library default seed, an ``int`` seed, or an
        existing ``Generator`` which is returned unchanged (so functions can
        be composed without re-seeding).

    Raises
    ------
    TypeError
        If ``seed`` is not ``None``, an integer, or a ``Generator``.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, int or numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Used by the multiprocessing sweep executor so each worker gets its own
    stream; children are derived via :class:`numpy.random.SeedSequence`
    spawning, which guarantees independence regardless of worker scheduling.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(
            DEFAULT_SEED if seed is None else int(seed)
        )
    return [np.random.default_rng(child) for child in seq.spawn(n)]
