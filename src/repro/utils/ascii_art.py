"""Terminal rendering of the paper's figures.

The benchmark harness regenerates every figure of the paper as terminal
output: images become character rasters, loss/accuracy curves become ASCII
line plots, and Table I becomes an aligned text table.  Keeping rendering
dependency-free (no matplotlib in the offline environment) makes the
reproduction runnable anywhere pytest runs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

__all__ = ["render_image_ascii", "render_curve_ascii", "render_table"]

# Dark -> light ramp used for grayscale rendering; binary images only use
# the two endpoints.
_RAMP = " .:-=+*#%@"


def render_image_ascii(
    image: np.ndarray,
    charset: str = _RAMP,
    vmin: float = 0.0,
    vmax: float = 1.0,
) -> str:
    """Render a 2-D grayscale image (values in ``[vmin, vmax]``) as text.

    Each pixel becomes two characters wide so the raster is roughly square
    in a terminal font.

    Examples
    --------
    >>> import numpy as np
    >>> print(render_image_ascii(np.eye(2)))
    @@
      @@
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {arr.shape}")
    if vmax <= vmin:
        raise ValueError("vmax must be larger than vmin")
    levels = len(charset) - 1
    scaled = np.clip((arr - vmin) / (vmax - vmin), 0.0, 1.0)
    idx = np.rint(scaled * levels).astype(int)
    rows = ["".join(charset[i] * 2 for i in row) for row in idx]
    return "\n".join(r.rstrip() for r in rows)


def render_curve_ascii(
    ys: Sequence[float] | np.ndarray,
    width: int = 72,
    height: int = 16,
    title: str = "",
    ylabel_format: str = "{:.4g}",
    logy: bool = False,
) -> str:
    """Render a 1-D series as an ASCII line plot.

    Parameters
    ----------
    ys:
        The series (e.g. per-iteration training loss).
    width, height:
        Plot canvas size in characters (excluding the axis gutter).
    logy:
        Plot ``log10(y)``; non-positive values are clipped to the smallest
        positive element (useful for loss curves approaching zero).
    """
    y = np.asarray(ys, dtype=np.float64).ravel()
    if y.size == 0:
        raise ValueError("cannot plot an empty series")
    if logy:
        positive = y[y > 0]
        floor = positive.min() if positive.size else 1e-12
        y = np.log10(np.clip(y, floor, None))
    lo, hi = float(y.min()), float(y.max())
    if hi - lo < 1e-15:
        hi = lo + 1.0
    # Resample the series onto the canvas width.
    xs = np.linspace(0, y.size - 1, width)
    resampled = np.interp(xs, np.arange(y.size), y)
    rows_idx = np.rint((resampled - lo) / (hi - lo) * (height - 1)).astype(int)
    canvas = [[" "] * width for _ in range(height)]
    for col, r in enumerate(rows_idx):
        canvas[height - 1 - r][col] = "*"
    top_label = ylabel_format.format(hi if not logy else 10**hi)
    bot_label = ylabel_format.format(lo if not logy else 10**lo)
    gutter = max(len(top_label), len(bot_label)) + 1
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        if i == 0:
            label = top_label.rjust(gutter - 1)
        elif i == height - 1:
            label = bot_label.rjust(gutter - 1)
        else:
            label = " " * (gutter - 1)
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * (width - 1))
    lines.append(
        " " * gutter + f"0{'iterations'.center(width - 10)}{y.size - 1}"
    )
    return "\n".join(lines)


def render_table(
    rows: Iterable[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of dict rows as an aligned text table (Table I style).

    Examples
    --------
    >>> print(render_table([{"Method": "QN", "Accuracy": "97.75%"}]))
    Method | Accuracy
    ------ | --------
    QN     | 97.75%
    """
    rows = list(rows)
    if not rows:
        raise ValueError("cannot render an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(c) for c in columns}
    str_rows = []
    for row in rows:
        s = {c: str(row.get(c, "")) for c in columns}
        str_rows.append(s)
        for c in columns:
            widths[c] = max(widths[c], len(s[c]))
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    sep = " | ".join("-" * widths[c] for c in columns)
    body = [
        " | ".join(r[c].ljust(widths[c]) for c in columns).rstrip()
        for r in str_rows
    ]
    out = [header.rstrip(), sep] + body
    if title:
        out.insert(0, title)
    return "\n".join(out)
