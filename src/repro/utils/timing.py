"""Lightweight wall-clock / CPU-time instrumentation.

Table I of the paper reports "CPU Runs" (training wall time in seconds) for
the quantum-network and CSC algorithms; :class:`Stopwatch` is the single
timing primitive used by both training loops so the comparison is symmetric.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = ["Stopwatch", "timed"]

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating stopwatch measuring both wall and CPU (process) time.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.wall_seconds >= 0.0
    True
    """

    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    laps: int = 0
    _wall_start: float = field(default=0.0, repr=False)
    _cpu_start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> "Stopwatch":
        if self._running:
            raise RuntimeError("Stopwatch already running")
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self._running = True
        return self

    def stop(self) -> float:
        """Stop and return the wall-time of the lap just finished."""
        if not self._running:
            raise RuntimeError("Stopwatch is not running")
        lap_wall = time.perf_counter() - self._wall_start
        lap_cpu = time.process_time() - self._cpu_start
        self.wall_seconds += lap_wall
        self.cpu_seconds += lap_cpu
        self.laps += 1
        self._running = False
        return lap_wall

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def reset(self) -> None:
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.laps = 0
        self._running = False


@contextmanager
def timed(label: str, sink: Callable[[str], None] = print) -> Iterator[Stopwatch]:
    """Context manager printing ``label: <seconds>s`` when the block exits.

    ``sink`` may be replaced (e.g. with a logger method or a no-op) to keep
    library code silent in tests.
    """
    sw = Stopwatch().start()
    try:
        yield sw
    finally:
        sw.stop()
        sink(f"{label}: {sw.wall_seconds:.3f}s wall / {sw.cpu_seconds:.3f}s cpu")
