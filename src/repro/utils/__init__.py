"""Shared utilities: RNG seeding, timing, validation and ASCII rendering."""

from repro.utils.rng import ensure_rng, spawn_rngs, DEFAULT_SEED
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_power_of_two,
    check_probability_vector,
    num_qubits_for,
)
from repro.utils.ascii_art import (
    render_image_ascii,
    render_curve_ascii,
    render_table,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "DEFAULT_SEED",
    "Stopwatch",
    "timed",
    "as_float_matrix",
    "as_float_vector",
    "check_power_of_two",
    "check_probability_vector",
    "num_qubits_for",
    "render_image_ascii",
    "render_curve_ascii",
    "render_table",
]
