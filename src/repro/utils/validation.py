"""Array-validation helpers shared across subsystems.

These functions centralise the shape/dtype/sanity checks that the paper's
equations implicitly assume (power-of-two dimensions, finite values,
normalised probability vectors) and raise the typed errors from
:mod:`repro.exceptions` with actionable messages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import DimensionError

__all__ = [
    "as_float_vector",
    "as_float_matrix",
    "check_power_of_two",
    "check_probability_vector",
    "num_qubits_for",
]


def as_float_vector(x: np.ndarray | list, name: str = "x") -> np.ndarray:
    """Coerce ``x`` to a contiguous 1-D float64 array, validating finiteness."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise DimensionError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise DimensionError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise DimensionError(f"{name} contains NaN or Inf values")
    return arr


def as_float_matrix(x: np.ndarray | list, name: str = "X") -> np.ndarray:
    """Coerce ``x`` to a contiguous 2-D float64 array, validating finiteness."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise DimensionError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise DimensionError(f"{name} contains NaN or Inf values")
    return arr


def check_power_of_two(n: int, name: str = "dimension") -> int:
    """Validate that ``n`` is a positive power of two and return it.

    Amplitude encoding (Eq. 1) maps ``N``-dimensional data onto
    ``ceil(log2 N)`` qubits; the quantum network itself operates on exactly
    ``N = 2**n`` modes, so network dimensions must be powers of two.
    """
    if not isinstance(n, (int, np.integer)):
        raise DimensionError(f"{name} must be an int, got {type(n).__name__}")
    n = int(n)
    if n < 1 or (n & (n - 1)) != 0:
        raise DimensionError(f"{name} must be a positive power of two, got {n}")
    return n


def num_qubits_for(dim: int) -> int:
    """Number of qubits needed for a ``dim``-dimensional amplitude vector.

    ``ceil(log2(dim))`` per Section II-A of the paper (e.g. 16-dimensional
    data requires 4 qubits).
    """
    if not isinstance(dim, (int, np.integer)) or dim < 1:
        raise DimensionError(f"dim must be a positive int, got {dim!r}")
    return int(np.ceil(np.log2(int(dim)))) if dim > 1 else 0


def check_probability_vector(
    p: np.ndarray, atol: float = 1e-8, name: str = "p"
) -> np.ndarray:
    """Validate that ``p`` is a probability vector (non-negative, sums to 1)."""
    arr = as_float_vector(p, name=name)
    if np.any(arr < -atol):
        raise DimensionError(f"{name} has negative entries (min {arr.min():.3g})")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-12 * arr.size):
        raise DimensionError(f"{name} must sum to 1, got {total:.12g}")
    return np.clip(arr, 0.0, None)
