"""Persistent multi-process execution: :class:`WorkerPool`.

``run_sweep`` historically built an ephemeral ``multiprocessing.Pool``
per call — fine for a one-shot ablation grid, useless for serving, where
the same workers must survive across many scattered batches.  This
module extracts that spawn-pool plumbing into a reusable engine:

- **Lifecycle** — construction is free; workers spawn lazily on first
  use, survive across calls, shut down via :meth:`WorkerPool.close` /
  the context manager, and are reaped by a ``weakref`` finalizer as a
  last resort (no leaked processes, no leaked shared memory).
- **One-time payload shipping** — an ``initializer`` runs once per
  worker at spawn (``run_sweep`` ships its worker callable this way;
  per-task payloads stay small).
- **Shared-memory block transfer** — ``(N, M)`` float64/complex128
  batches move through :mod:`multiprocessing.shared_memory` segments,
  not pickles: :meth:`WorkerPool.scatter_gather` scatters column shards
  to workers that mutate them in place, :meth:`WorkerPool.apply_dense`
  fans a dense-operator GEMM out over shards (operators are shipped
  once per pool and cached worker-side).

Workers are always ``spawn``-context (fork-safety with BLAS threads) and
are pinned to single-threaded BLAS by default so ``K`` workers use ``K``
cores instead of fighting over ``K x num_blas_threads``.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import weakref
from multiprocessing import get_context, shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError, ExperimentError
from repro.parallel.sharding import plan_shards

__all__ = [
    "WorkerPool",
    "default_worker_count",
    "worker_rng",
    "worker_index",
]

#: Environment knobs that cap BLAS threading in spawned workers.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def default_worker_count() -> int:
    """Usable CPUs for this process — affinity-aware, never zero.

    ``len(os.sched_getaffinity(0))`` respects cgroup/container CPU masks
    (a CI job pinned to 2 cores reports 2, where ``mp.cpu_count()``
    reports the host's full core count and oversubscribes); platforms
    without ``sched_getaffinity`` fall back to ``os.cpu_count()``.

    Examples
    --------
    >>> default_worker_count() >= 1
    True
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def attach_shared_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    On Python < 3.13 every ``SharedMemory`` attach *registers* the
    segment with the resource tracker.  Workers share the pool owner's
    tracker process, whose per-type cache is a set, so those duplicate
    registrations are no-ops — but attaching must never *unregister*
    (that would yank the owner's bookkeeping and leak the segment at
    shutdown).  Python 3.13's ``track=False`` would skip registration
    entirely; until then a plain attach is the correct, warning-free
    behaviour, and this helper is the single place to change when the
    stdlib contract moves again.
    """
    return shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# worker-side seeded RNG (per-worker streams for stochastic workloads)
# ----------------------------------------------------------------------
#: Set by :func:`_seeded_initializer` inside each worker of a pool
#: constructed with ``seed=...``; ``None`` in the parent process and in
#: workers of unseeded pools.
_WORKER_RNG: Optional[np.random.Generator] = None
_WORKER_INDEX: Optional[int] = None


def worker_index() -> Optional[int]:
    """This worker's 0-based slot in a seeded pool (``None`` elsewhere)."""
    return _WORKER_INDEX


def worker_rng() -> np.random.Generator:
    """This worker's seeded generator (pools constructed with ``seed=``).

    Each worker claims a distinct index ``i`` at spawn and derives its
    stream from ``SeedSequence(seed, spawn_key=(i,))``, so the *set* of
    streams across the pool is a pure function of ``(seed, processes)``
    — shot-noise and stochastic-gradient workloads are reproducible
    run-to-run.  (Which OS process holds which index is scheduler
    dependent; workloads needing per-*task* determinism should key their
    randomness on the task payload instead.)
    """
    if _WORKER_RNG is None:
        raise ExperimentError(
            "worker_rng() is only defined inside a worker of a "
            "WorkerPool constructed with seed=...; this process has no "
            "seeded stream"
        )
    return _WORKER_RNG


def _seeded_initializer(
    seed: int,
    counter,
    user_initializer: Optional[Callable],
    user_initargs: Tuple,
) -> None:
    """Claim a worker slot, seed this worker's stream, chain the user init."""
    global _WORKER_RNG, _WORKER_INDEX
    with counter.get_lock():
        index = int(counter.value)
        counter.value = index + 1
    _WORKER_INDEX = index
    _WORKER_RNG = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(index,))
    )
    if user_initializer is not None:
        user_initializer(*user_initargs)


# ----------------------------------------------------------------------
# worker-side task functions (module-level: picklable by reference)
# ----------------------------------------------------------------------
#: Per-worker-process cache of dense operators, keyed by the (unique)
#: shared-memory segment name the parent shipped them in.
_OPERATOR_CACHE: Dict[str, np.ndarray] = {}


def _apply_dense_task(payload: Tuple) -> Tuple[int, int]:
    """Compute ``out[:, a:b] = op @ data[:, a:b]`` for one shard."""
    (
        op_name,
        op_shape,
        op_dtype,
        in_name,
        in_shape,
        in_dtype,
        out_name,
        out_dtype,
        start,
        stop,
    ) = payload
    op = _OPERATOR_CACHE.get(op_name)
    if op is None:
        shm = attach_shared_block(op_name)
        try:
            view = np.ndarray(op_shape, dtype=op_dtype, buffer=shm.buf)
            op = np.array(view, copy=True)
            del view
        finally:
            shm.close()
        _OPERATOR_CACHE[op_name] = op
    in_shm = attach_shared_block(in_name)
    out_shm = attach_shared_block(out_name)
    try:
        data = np.ndarray(in_shape, dtype=in_dtype, buffer=in_shm.buf)
        out = np.ndarray(
            (op_shape[0], in_shape[1]), dtype=out_dtype, buffer=out_shm.buf
        )
        np.matmul(op, data[:, start:stop], out=out[:, start:stop])
        del data, out
    finally:
        in_shm.close()
        out_shm.close()
    return start, stop


def _run_shard_task(payload: Tuple) -> Tuple[int, int]:
    """Apply ``fn(block, *extra)`` in place to one shared-memory shard."""
    fn, name, shape, dtype, start, stop, extra = payload
    shm = attach_shared_block(name)
    try:
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        # Contiguous private block: kernels may assume C layout, and the
        # copy keeps each worker's writes confined to its own columns.
        block = np.array(arr[:, start:stop], order="C", copy=True)
        fn(block, *extra)
        arr[:, start:stop] = block
        del arr
    finally:
        shm.close()
    return start, stop


def _shutdown(state: dict) -> None:
    """Idempotent teardown shared by close(), __exit__ and the finalizer."""
    pool = state.get("pool")
    state["pool"] = None
    if pool is not None:
        pool.close()
        pool.join()
    segments = state.get("segments") or {}
    for shm in segments.values():
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    segments.clear()


class WorkerPool:
    """A persistent, lazily-spawned pool of worker processes.

    Parameters
    ----------
    processes:
        Worker count; ``None`` uses :func:`default_worker_count` (the
        CPU-affinity mask, not the host core count).
    initializer, initargs:
        Run once in every worker at spawn — the one-time payload ship
        (compiled programs, worker callables).  Per-task payloads should
        stay small.
    blas_threads:
        BLAS thread cap exported to workers at spawn (``None`` leaves
        the environment alone).  Defaults to 1: ``K`` workers on ``K``
        cores, no oversubscription.
    seed:
        When given, every worker receives a distinct deterministic RNG
        stream at spawn (``SeedSequence(seed, spawn_key=(i,))`` for slot
        ``i``), readable inside tasks via :func:`worker_rng` /
        :func:`worker_index`.  ``None`` (default) skips the plumbing.

    Examples
    --------
    >>> with WorkerPool(processes=2) as pool:
    ...     pool.map(len, [[1, 2], [3], []])
    [2, 1, 0]
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        initializer: Optional[Callable] = None,
        initargs: Sequence = (),
        blas_threads: Optional[int] = 1,
        seed: Optional[int] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ExperimentError(
                f"processes must be >= 1, got {processes}"
            )
        self.processes = (
            int(processes) if processes is not None else default_worker_count()
        )
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._blas_threads = blas_threads
        self._seed = None if seed is None else int(seed)
        # Mutable state shared with the weakref finalizer so teardown
        # never needs (and never resurrects) self.
        self._state: dict = {"pool": None, "segments": {}}
        self._operator_names: Dict[Tuple, str] = {}
        self._finalizer = weakref.finalize(self, _shutdown, self._state)
        # In-flight task accounting for graceful drain: map() calls may
        # arrive from several threads (a serving executor plus the
        # training loop), and a shutdown wants to wait them out instead
        # of yanking workers mid-GEMM.
        self._inflight = 0
        self._idle = threading.Condition()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._state["pool"] is not None

    def start(self) -> "WorkerPool":
        """Spawn the workers now (otherwise the first task does it)."""
        if self._state["pool"] is not None:
            return self
        saved = {var: os.environ.get(var) for var in _BLAS_ENV_VARS}
        try:
            if self._blas_threads is not None:
                for var in _BLAS_ENV_VARS:
                    os.environ[var] = str(self._blas_threads)
            # 'spawn' keeps workers free of inherited state (fork-safety
            # with BLAS threads); children re-import, reading the capped
            # thread environment above.
            ctx = get_context("spawn")
            initializer, initargs = self._initializer, self._initargs
            if self._seed is not None:
                # Slot claims go through a shared counter so worker i's
                # stream depends only on (seed, i), never on spawn order.
                counter = ctx.Value("i", 0)
                initializer = _seeded_initializer
                initargs = (
                    self._seed, counter, self._initializer, self._initargs,
                )
            self._state["pool"] = ctx.Pool(
                processes=self.processes,
                initializer=initializer,
                initargs=initargs,
            )
        finally:
            if self._blas_threads is not None:
                for var, value in saved.items():
                    if value is None:
                        os.environ.pop(var, None)
                    else:
                        os.environ[var] = value
        return self

    def close(self) -> None:
        """Stop the workers and release every shared-memory segment.

        Idempotent; the pool may be used again afterwards (workers
        respawn lazily), so a serving process can cycle pools across
        deploys without rebuilding the owning objects.
        """
        _shutdown(self._state)
        self._operator_names.clear()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"WorkerPool(processes={self.processes}, {state})"

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def map(self, fn: Callable, payloads: Iterable) -> List:
        """Ordered ``[fn(p) for p in payloads]`` across the workers.

        ``fn`` must be picklable by reference (a module-level callable);
        one payload per task, chunk size 1 so shards spread evenly.
        An empty payload list returns ``[]`` without spawning workers.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        self.start()
        with self._idle:
            self._inflight += 1
        try:
            return self._state["pool"].map(fn, payloads, chunksize=1)
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    @property
    def inflight(self) -> int:
        """Concurrent :meth:`map` calls currently executing."""
        with self._idle:
            return self._inflight

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no :meth:`map` call is in flight (graceful drain).

        The shutdown hook for serving front-ends: lets every scattered
        tick finish before :meth:`close` reaps the workers, so an
        in-flight batch is never lost to a deploy.  Returns ``True``
        when the pool went idle within ``timeout`` seconds (``None`` =
        wait forever); the pool stays usable either way.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # shared-memory block transfer
    # ------------------------------------------------------------------
    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._state["segments"][shm.name] = shm
        return shm

    def _release_segment(self, shm: shared_memory.SharedMemory) -> None:
        self._state["segments"].pop(shm.name, None)
        shm.close()
        shm.unlink()

    def scatter_gather(
        self,
        fn: Callable[..., None],
        data: np.ndarray,
        extra: Tuple = (),
        min_columns: int = 1,
    ) -> np.ndarray:
        """Mutate ``data`` in place via ``fn(block, *extra)`` per shard.

        ``data`` (``(N, M)``, any float/complex dtype) is copied into one
        shared-memory segment; each worker runs ``fn`` — a module-level
        callable — on a private contiguous copy of its column shard and
        writes the result back; the gathered segment is copied into
        ``data``.  ``fn`` must preserve the block's shape and dtype.
        """
        if data.ndim != 2:
            raise DimensionError(
                f"expected a 2-D (N, M) batch, got shape {data.shape}"
            )
        if data.shape[1] == 0:
            return data  # nothing to scatter; match chunked semantics
        shards = plan_shards(
            data.shape[1], self.processes, min_columns=min_columns
        )
        self.start()
        shm = self._new_segment(data.nbytes)
        try:
            arr = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
            arr[:] = data
            payloads = [
                (fn, shm.name, data.shape, data.dtype.str, s.start, s.stop,
                 extra)
                for s in shards
            ]
            self.map(_run_shard_task, payloads)
            data[:] = arr
            del arr
        finally:
            self._release_segment(shm)
        return data

    def _share_operator(self, matrix: np.ndarray) -> Tuple[str, Tuple, str]:
        """Ship a dense operator once; returns (segment name, shape, dtype).

        Content-addressed: the same matrix (by bytes) reuses its segment
        for the life of the pool, and workers cache their private copy
        keyed by segment name, so a serving loop pays the operator
        transfer once, not per tick.
        """
        mat = np.ascontiguousarray(matrix)
        digest = (
            hashlib.blake2b(mat.tobytes(), digest_size=16).hexdigest(),
            mat.shape,
            mat.dtype.str,
        )
        name = self._operator_names.get(digest)
        if name is None or name not in self._state["segments"]:
            shm = self._new_segment(mat.nbytes)
            view = np.ndarray(mat.shape, dtype=mat.dtype, buffer=shm.buf)
            view[:] = mat
            del view
            name = shm.name
            self._operator_names[digest] = name
        return name, mat.shape, mat.dtype.str

    def apply_dense(
        self,
        matrix: np.ndarray,
        data: np.ndarray,
        out: Optional[np.ndarray] = None,
        min_columns: int = 1,
    ) -> np.ndarray:
        """``matrix @ data`` scattered over column shards of ``data``.

        The multi-process analogue of
        :func:`repro.parallel.batch.chunked_apply`: same shape/dtype
        contract (including the caller-owned ``out`` buffer), but the
        shards run concurrently in the worker processes with the
        operator shipped once per pool.

        Examples
        --------
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> m, x = rng.normal(size=(3, 4)), rng.normal(size=(4, 64))
        >>> with WorkerPool(processes=2) as pool:
        ...     bool(np.allclose(pool.apply_dense(m, x), m @ x))
        True
        """
        mat = np.asarray(matrix)
        arr = np.asarray(data)
        if mat.ndim != 2 or arr.ndim != 2 or mat.shape[1] != arr.shape[0]:
            raise DimensionError(
                f"cannot apply {mat.shape} operator to {arr.shape} batch"
            )
        dtype = np.result_type(mat.dtype, arr.dtype)
        shape = (mat.shape[0], arr.shape[1])
        if out is None:
            out = np.empty(shape, dtype=dtype)
        elif out.shape != shape:
            raise DimensionError(
                f"out shape {out.shape} != result shape {shape}"
            )
        elif not np.can_cast(dtype, out.dtype, casting="safe"):
            raise DimensionError(
                f"out buffer dtype {out.dtype} cannot safely hold the "
                f"{dtype} product"
            )
        if arr.shape[1] == 0:
            return out  # empty batch: same contract as chunked_apply
        self.start()
        op_name, op_shape, op_dtype = self._share_operator(mat)
        shards = plan_shards(arr.shape[1], self.processes,
                             min_columns=min_columns)
        in_shm = self._new_segment(arr.nbytes)
        out_shm = self._new_segment(
            int(np.dtype(out.dtype).itemsize) * shape[0] * shape[1]
        )
        try:
            in_view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=in_shm.buf)
            in_view[:] = arr
            out_view = np.ndarray(shape, dtype=out.dtype, buffer=out_shm.buf)
            payloads = [
                (op_name, op_shape, op_dtype,
                 in_shm.name, arr.shape, arr.dtype.str,
                 out_shm.name, np.dtype(out.dtype).str,
                 s.start, s.stop)
                for s in shards
            ]
            self.map(_apply_dense_task, payloads)
            out[:] = out_view
            del in_view, out_view
        finally:
            self._release_segment(in_shm)
            self._release_segment(out_shm)
        return out
