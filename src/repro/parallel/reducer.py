"""Data-parallel gradient reduction: :class:`GradientReducer`.

PRs 4-5 made *inference* scale with cores (the ``sharded`` backend, the
jitted kernels); this module does the same for *training*.  A
:class:`GradientReducer` owns (or borrows) a persistent
:class:`~repro.parallel.pool.WorkerPool` and evaluates
:func:`repro.training.gradients.loss_and_gradient` in parallel:

- **Batch sharding** (``shard="batch"``, the default for the exact
  ``adjoint``/``derivative`` methods): the ``(N, M)`` sample batch is
  split into column shards, each worker computes its shard's
  ``(loss, grad)`` with the full gradient engine stack (prefix/suffix
  workspace, vectorised adjoint sweep), and the shard results are
  combined with batch-size weights.
- **Parameter sharding** (``shard="params"``, the default for the
  finite-difference methods ``fd``/``central``): every worker receives
  the *full* batch plus a contiguous slice of the parameter-perturbation
  stack and evaluates only its slice of stencil passes through the
  cached workspace.  This matters numerically: under batch sharding a
  finite-difference gradient re-differences per-shard base losses and
  the ``~ulp(loss)/delta`` cancellation noise decorrelates from the
  single-process result, while perturbation-stack sharding reproduces
  the single-process arithmetic per parameter (each perturbed output and
  its loss reduction are computed independently per index), keeping the
  match at rounding level.

**Determinism contract.**  Shard results are combined by
:func:`tree_reduce` — a fixed-topology pairwise fold in shard-index
order — so for a given ``(num_workers, batch order)`` the reduced
gradient is *bit-reproducible run-to-run*: no dependence on worker
scheduling, task completion order, or which OS process served which
shard.  Changing the worker count changes the shard boundaries (and for
batch sharding the summation order), which moves the result only within
the method's rounding floor (``<= 1e-10`` gated by
``benchmarks/bench_training.py``).

Workers rebuild each network once from a structure tuple (the
``backends/sharded.py`` idiom) on an in-process delegate backend
(``fused``, or ``numba`` when the parent trains on it) and refresh
parameters only when they change, so a training loop pays compile costs
once, not per iteration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GradientError
from repro.parallel.pool import WorkerPool, default_worker_count
from repro.parallel.sharding import plan_shards

__all__ = [
    "GradientReducer",
    "tree_reduce",
    "validate_parallel_spec",
    "resolve_parallel_workers",
]

#: In-worker delegate backends (compile once, serve gradient workspaces).
_REDUCER_DELEGATES = ("fused", "numba")

#: Shard axis spellings accepted by :meth:`GradientReducer.loss_and_gradient`.
_SHARD_MODES = ("batch", "params")


# ----------------------------------------------------------------------
# parallel spec (the Trainer/CodecSpec/CLI "pool[:K]" spelling)
# ----------------------------------------------------------------------
def validate_parallel_spec(
    value: Optional[str], error_cls: type = GradientError
) -> Optional[str]:
    """Normalise a ``parallel`` spec: ``None``/"none", "pool", "pool:K".

    The single source of truth for trainer/config/CLI-level validation;
    higher layers pass their own ``error_cls``.  Returns the normalised
    spelling (or ``None`` for the single-process default).
    """
    if value is None:
        return None
    text = str(value).strip().lower()
    if text in ("", "none", "off"):
        return None
    if text == "pool":
        return "pool"
    if text.startswith("pool:"):
        tail = text[len("pool:"):]
        try:
            workers = int(tail)
        except ValueError:
            raise error_cls(
                f"parallel spec {value!r}: worker count {tail!r} is not an "
                "integer (expected 'pool' or 'pool:K')"
            ) from None
        if workers < 1:
            raise error_cls(
                f"parallel spec {value!r}: worker count must be >= 1"
            )
        return f"pool:{workers}"
    raise error_cls(
        f"unknown parallel spec {value!r}; expected None, 'none', 'pool' "
        "or 'pool:K'"
    )


def resolve_parallel_workers(spec: Optional[str]) -> Optional[int]:
    """Worker count a normalised spec asks for (``None`` = no pool).

    ``"pool"`` resolves against the CPU-affinity mask
    (:func:`~repro.parallel.pool.default_worker_count`).
    """
    if spec is None:
        return None
    if spec == "pool":
        return default_worker_count()
    return int(spec.split(":", 1)[1])


# ----------------------------------------------------------------------
# deterministic reduction
# ----------------------------------------------------------------------
def tree_reduce(values: Sequence):
    """Fixed-topology pairwise sum in index order.

    ``[a, b, c, d, e]`` folds as ``((a+b) + (c+d)) + e`` — the topology
    is a pure function of ``len(values)``, so reducing the same shard
    results in the same order is bitwise deterministic regardless of
    which worker produced which shard, and the pairwise tree keeps
    rounding growth logarithmic in the shard count.
    """
    items = list(values)
    if not items:
        raise GradientError("tree_reduce needs at least one value")
    while len(items) > 1:
        merged = [
            items[i] + items[i + 1] for i in range(0, len(items) - 1, 2)
        ]
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


# ----------------------------------------------------------------------
# worker side (module-level: picklable by reference)
# ----------------------------------------------------------------------
#: Per-worker-process cache of rebuilt networks keyed by structure;
#: one entry per distinct (dim, layers, order, phase, delegate).
_WORKER_NETWORKS: dict = {}


def _worker_network(struct: Tuple[int, int, bool, bool, str]):
    net = _WORKER_NETWORKS.get(struct)
    if net is None:
        from repro.network.quantum_network import QuantumNetwork

        dim, num_layers, descending, allow_phase, delegate = struct
        net = QuantumNetwork(
            dim,
            num_layers,
            descending=descending,
            allow_phase=allow_phase,
            backend=delegate,
        )
        _WORKER_NETWORKS[struct] = net
    return net


def _worker_projection(dim: int, keep: Optional[Tuple[int, ...]]):
    if keep is None:
        return None
    from repro.network.projection import Projection

    return Projection(dim, keep)


def _batch_shard_task(payload: Tuple) -> Tuple[float, np.ndarray]:
    """One column shard's ``(loss, grad)`` through the full engine stack."""
    (struct, params, inputs, targets, loss, keep, method, delta, engine) = (
        payload
    )
    from repro.training.gradients import loss_and_gradient

    net = _worker_network(struct)
    if not np.array_equal(net.get_flat_params(), params):
        net.set_flat_params(params)
    return loss_and_gradient(
        net,
        inputs,
        targets,
        loss=loss,
        projection=_worker_projection(struct[0], keep),
        method=method,
        delta=delta,
        engine=engine,
    )


def _param_shard_task(payload: Tuple) -> Tuple[float, np.ndarray]:
    """Full-batch base loss plus the gradient slice ``[lo, hi)``.

    Mirrors the single-process workspace drives parameter-by-parameter
    (same chunking, same ``value_many`` reductions, same stencil), so
    concatenating the slices reproduces the one-process gradient at
    rounding level.
    """
    (
        struct,
        params,
        inputs,
        targets,
        loss,
        keep,
        method,
        delta,
        engine,
        lo,
        hi,
    ) = payload
    from repro.training.gradients import (
        _project_and_eval,
        _workspace_loss_and_adjoint,
    )

    net = _worker_network(struct)
    if not np.array_equal(net.get_flat_params(), params):
        net.set_flat_params(params)
    projection = _worker_projection(struct[0], keep)
    ws = net.backend.gradient_workspace(inputs)
    grad = np.empty(hi - lo)
    if method == "derivative":
        base, lam = _workspace_loss_and_adjoint(ws, targets, loss, projection)
        for idx in ws.param_chunks():
            sub = idx[(idx >= lo) & (idx < hi)]
            if sub.size:
                grad[sub - lo] = ws.derivative_gradients(sub, lam)
        return base, grad
    central = method == "central"
    mask = projection.mask if projection is not None else None
    base = _project_and_eval(
        ws.base_output.copy(), targets, loss, projection
    )
    if engine == "looped":
        for i in range(lo, hi):
            plus = _project_and_eval(
                ws.perturbed_output(i, delta), targets, loss, projection
            )
            if central:
                minus = _project_and_eval(
                    ws.perturbed_output(i, -delta), targets, loss, projection
                )
                grad[i - lo] = (plus - minus) / (2.0 * delta)
            else:
                grad[i - lo] = (plus - base) / delta
        return base, grad
    for idx in ws.param_chunks():
        sub = idx[(idx >= lo) & (idx < hi)]
        if not sub.size:
            continue
        plus = loss.value_many(
            ws.perturbed_outputs(sub, delta, keep=mask), targets, keep=mask
        )
        if central:
            minus = loss.value_many(
                ws.perturbed_outputs(sub, -delta, keep=mask),
                targets,
                keep=mask,
            )
            grad[sub - lo] = (plus - minus) / (2.0 * delta)
        else:
            grad[sub - lo] = (plus - base) / delta
    return base, grad


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class GradientReducer:
    """Shard ``loss_and_gradient`` over a persistent worker pool.

    Parameters
    ----------
    num_workers:
        Worker-process count; ``None`` derives it from the CPU-affinity
        mask.  ``1`` short-circuits every call to the in-process engine
        (bit-identical to not using a reducer at all).
    pool:
        An existing :class:`~repro.parallel.pool.WorkerPool` to execute
        on; the reducer then *borrows* it (``close()`` leaves it
        running).  Default builds a private seeded pool lazily.
    seed:
        Seed for the private pool's per-worker RNG streams
        (:func:`repro.parallel.pool.worker_rng`), so stochastic
        shard-side workloads stay reproducible.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.network.quantum_network import QuantumNetwork
    >>> net = QuantumNetwork(4, 2, backend="fused")
    >>> net = net.initialize("uniform", rng=np.random.default_rng(0))
    >>> reducer = GradientReducer(num_workers=1)  # in-process short-circuit
    >>> x = np.eye(4)[:, :3]
    >>> value, grad = reducer.loss_and_gradient(net, x, x)
    >>> grad.shape
    (6,)
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
        seed: int = 0,
    ) -> None:
        if num_workers is not None and num_workers < 1:
            raise GradientError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        if pool is not None:
            self._pool: Optional[WorkerPool] = pool
            self._owns_pool = False
            self.num_workers = pool.processes
        else:
            self._pool = None
            self._owns_pool = True
            self.num_workers = (
                int(num_workers)
                if num_workers is not None
                else default_worker_count()
            )
            self._seed = int(seed)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> WorkerPool:
        """The backing pool (created lazily, started on first task)."""
        if self._pool is None:
            self._pool = WorkerPool(
                processes=self.num_workers, seed=self._seed
            )
        return self._pool

    def close(self) -> None:
        """Stop owned workers (idempotent); borrowed pools are left alone."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "GradientReducer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        owned = "owned" if self._owns_pool else "borrowed"
        return f"GradientReducer(num_workers={self.num_workers}, {owned})"

    # ------------------------------------------------------------------
    # the parallel loss_and_gradient
    # ------------------------------------------------------------------
    @staticmethod
    def _delegate_for(network) -> str:
        """In-worker backend mirroring the parent's execution choice."""
        backend = getattr(network, "backend", None)
        name = getattr(backend, "delegate_name", None) or getattr(
            backend, "name", None
        )
        return name if name in _REDUCER_DELEGATES else "fused"

    @staticmethod
    def _default_shard(method: str) -> str:
        """fd/central difference per-shard base losses under batch
        sharding (cancellation noise ``~ulp(loss)/delta``), so they shard
        the perturbation stack instead; the exact methods shard samples."""
        return "params" if method in ("fd", "central") else "batch"

    def loss_and_gradient(
        self,
        network,
        inputs: np.ndarray,
        targets: np.ndarray,
        loss=None,
        projection=None,
        method: str = "adjoint",
        delta: Optional[float] = None,
        engine: Optional[str] = None,
        shard: Optional[str] = None,
    ) -> Tuple[float, np.ndarray]:
        """Parallel ``(loss, dL/dparams)``; same contract as the
        single-process :func:`repro.training.gradients.loss_and_gradient`.

        ``shard`` picks the scatter axis — ``"batch"`` (column shards)
        or ``"params"`` (perturbation-stack slices); ``None`` selects
        per method (``fd``/``central`` -> params, exact methods ->
        batch).  Single-worker reducers and single-shard plans run
        in-process, bit-identical to the plain engine.
        """
        from repro.training.gradients import (
            _DEFAULT_DELTAS,
            available_gradient_methods,
            loss_and_gradient,
            validate_gradient_engine,
        )
        from repro.training.loss import SquaredErrorLoss

        key = str(method).lower()
        if key not in available_gradient_methods():
            raise GradientError(
                f"unknown gradient method {method!r}; available: "
                f"{available_gradient_methods()}"
            )
        mode = self._default_shard(key) if shard is None else str(shard)
        if mode not in _SHARD_MODES:
            raise GradientError(
                f"shard must be one of {list(_SHARD_MODES)}, got {shard!r}"
            )
        if mode == "params" and key == "adjoint":
            raise GradientError(
                "adjoint computes every parameter in one sweep; shard the "
                "batch instead (shard='batch')"
            )
        if loss is None:
            loss = SquaredErrorLoss(reduction="mean")
        eng = validate_gradient_engine(engine)
        arr = np.ascontiguousarray(inputs)
        tgt = np.ascontiguousarray(targets)
        num_columns = arr.shape[1] if arr.ndim == 2 else 0
        num_params = network.num_parameters
        total = num_columns if mode == "batch" else num_params
        shards = (
            plan_shards(total, self.num_workers) if total > 0 else []
        )
        if self.num_workers == 1 or len(shards) <= 1:
            return loss_and_gradient(
                network,
                arr,
                tgt,
                loss=loss,
                projection=projection,
                method=key,
                delta=delta,
                engine=eng,
            )
        struct = (
            network.dim,
            network.num_layers,
            network.descending,
            network.allow_phase,
            self._delegate_for(network),
        )
        params = network.get_flat_params()
        keep = (
            None
            if projection is None
            else tuple(int(k) for k in projection.keep)
        )
        if mode == "params":
            step = (
                _DEFAULT_DELTAS[key] if delta is None else float(delta)
            )
            payloads = [
                (struct, params, arr, tgt, loss, keep, key, step, eng,
                 s.start, s.stop)
                for s in shards
            ]
            results = self.pool.map(_param_shard_task, payloads)
            # Every worker evaluates the same full-batch base loss.
            value = results[0][0]
            grad = np.concatenate([g for _, g in results])
            return value, grad
        payloads = [
            (struct, params,
             np.ascontiguousarray(arr[:, s.slice]),
             np.ascontiguousarray(tgt[:, s.slice]),
             loss, keep, key, delta, eng)
            for s in shards
        ]
        results = self.pool.map(_batch_shard_task, payloads)
        values: List[float] = [v for v, _ in results]
        grads: List[np.ndarray] = [g for _, g in results]
        if getattr(loss, "reduction", "sum") == "mean":
            # Mean-reduced losses normalise by the batch width, so shard
            # contributions recombine with weights m_i / M.
            weights = [s.num_columns / num_columns for s in shards]
            values = [w * v for w, v in zip(weights, values)]
            grads = [w * g for w, g in zip(weights, grads)]
        return float(tree_reduce(values)), tree_reduce(grads)

    def noisy_loss_and_gradient(
        self,
        network,
        inputs: np.ndarray,
        targets: np.ndarray,
        *,
        model,
        trajectories: int,
        seed: int,
        epoch: int = 0,
        stream: int = 0,
        loss=None,
        projection=None,
        method: str = "adjoint",
        delta: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> Tuple[float, np.ndarray]:
        """Noise-averaged ``(loss, grad)``: realizations sharded over the pool.

        Thin front for :func:`repro.noise.training.noisy_loss_and_gradient`
        with this reducer supplying the workers — each of the
        ``trajectories`` jitter realizations of the
        :class:`~repro.noise.model.NoiseModel` evaluates the *full* batch
        at ``params + eps_r``, keyed on ``(seed, epoch, realization)``
        only, and the pairs recombine by :func:`tree_reduce` in
        realization order.  Bitwise-reproducible run-to-run and across
        pool sizes.
        """
        from repro.noise.training import noisy_loss_and_gradient

        return noisy_loss_and_gradient(
            network,
            inputs,
            targets,
            model=model,
            trajectories=trajectories,
            seed=seed,
            epoch=epoch,
            stream=stream,
            loss=loss,
            projection=projection,
            method=method,
            delta=delta,
            engine=engine,
            reducer=self,
        )
