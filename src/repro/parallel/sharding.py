"""Column-shard planning for ``(N, M)`` amplitude batches.

The paper's pipeline is embarrassingly parallel across batch columns:
``U @ X[:, a:b]`` never reads outside its own column range, so a wide
batch can be *scattered* over worker processes, each worker computing one
contiguous column shard, and the results *gathered* back by plain slice
assignment.  This module is the planning half of that story — pure
index arithmetic with no processes or shared memory involved — used by
:class:`repro.parallel.pool.WorkerPool` and
:class:`repro.backends.sharded.ShardedBackend`.

Shards are balanced to within one column (the first ``M mod K`` shards
get the extra column), contiguous, ordered, and never empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.exceptions import DimensionError

__all__ = ["Shard", "plan_shards", "shard_views"]


@dataclass(frozen=True)
class Shard:
    """One contiguous column range ``[start, stop)`` of a batch."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.stop):
            raise DimensionError(
                f"shard needs 0 <= start < stop, got [{self.start}, "
                f"{self.stop})"
            )

    @property
    def num_columns(self) -> int:
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        return slice(self.start, self.stop)


def plan_shards(
    num_columns: int, num_shards: int, min_columns: int = 1
) -> List[Shard]:
    """Partition ``num_columns`` into at most ``num_shards`` balanced shards.

    Parameters
    ----------
    num_columns:
        Batch width ``M`` to split.
    num_shards:
        Target shard count (typically the worker count).
    min_columns:
        Lower bound on shard width: the plan is narrowed until every
        shard holds at least this many columns (scattering a shard
        cheaper than the scatter itself is pure overhead).

    Returns
    -------
    Ordered, contiguous, non-empty :class:`Shard` list covering
    ``[0, num_columns)`` exactly; widths differ by at most one column.

    Examples
    --------
    >>> [s.num_columns for s in plan_shards(10, 3)]
    [4, 3, 3]
    >>> plan_shards(5, 8)  # never more shards than columns
    [Shard(index=0, start=0, stop=1), Shard(index=1, start=1, stop=2), \
Shard(index=2, start=2, stop=3), Shard(index=3, start=3, stop=4), \
Shard(index=4, start=4, stop=5)]
    >>> [s.num_columns for s in plan_shards(100, 4, min_columns=40)]
    [50, 50]
    """
    if num_columns < 1:
        raise DimensionError(
            f"num_columns must be >= 1, got {num_columns}"
        )
    if num_shards < 1:
        raise DimensionError(f"num_shards must be >= 1, got {num_shards}")
    if min_columns < 1:
        raise DimensionError(f"min_columns must be >= 1, got {min_columns}")
    k = min(num_shards, max(1, num_columns // min_columns), num_columns)
    base, extra = divmod(num_columns, k)
    shards: List[Shard] = []
    start = 0
    for i in range(k):
        width = base + (1 if i < extra else 0)
        shards.append(Shard(index=i, start=start, stop=start + width))
        start += width
    assert start == num_columns
    return shards


def shard_views(array: np.ndarray, shards: List[Shard]) -> Iterator[np.ndarray]:
    """Column views of ``array`` for each shard (no copies).

    Examples
    --------
    >>> import numpy as np
    >>> x = np.arange(12.0).reshape(2, 6)
    >>> [v.shape for v in shard_views(x, plan_shards(6, 2))]
    [(2, 3), (2, 3)]
    """
    if array.ndim != 2:
        raise DimensionError(
            f"expected a 2-D (N, M) batch, got shape {array.shape}"
        )
    for shard in shards:
        yield array[:, shard.slice]
