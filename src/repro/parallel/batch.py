"""Memory-bounded batched state propagation.

The network kernels are already vectorised across samples; for very large
batches (the scaling benches push ``M`` into the tens of thousands) the
``(N, M)`` working set should stay inside cache-friendly chunks and avoid
repeated allocation.  :func:`chunked_forward` streams a batch through a
network in column chunks, writing into a caller-owned output array;
:class:`ChunkedPipeline` does the same for the full autoencoder pipeline.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import DimensionError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.quantum_network import QuantumNetwork

__all__ = ["chunked_apply", "chunked_forward", "ChunkedPipeline"]


def chunked_apply(
    matrix: np.ndarray,
    data: np.ndarray,
    chunk_size: int = 4096,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``matrix @ data`` computed in column chunks of ``data``.

    The dense-operator analogue of :func:`chunked_forward`: peak extra
    memory is bounded by one ``(rows, chunk_size)`` block, so oversized
    serving ticks (see :class:`repro.api.MicroBatcher`) stream through a
    precompiled operator without materialising a second full-width batch.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> m, x = rng.normal(size=(3, 4)), rng.normal(size=(4, 10))
    >>> bool(np.allclose(chunked_apply(m, x, chunk_size=3), m @ x))
    True
    """
    if chunk_size < 1:
        raise DimensionError(f"chunk_size must be >= 1, got {chunk_size}")
    mat = np.asarray(matrix)
    arr = np.asarray(data)
    if mat.ndim != 2 or arr.ndim != 2 or mat.shape[1] != arr.shape[0]:
        raise DimensionError(
            f"cannot apply {mat.shape} operator to {arr.shape} batch"
        )
    dtype = np.result_type(mat.dtype, arr.dtype)
    shape = (mat.shape[0], arr.shape[1])
    if out is None:
        out = np.empty(shape, dtype=dtype)
    elif out.shape != shape:
        raise DimensionError(f"out shape {out.shape} != result shape {shape}")
    elif not np.can_cast(dtype, out.dtype, casting="safe"):
        raise DimensionError(
            f"out buffer dtype {out.dtype} cannot safely hold the {dtype} "
            "product"
        )
    for start in range(0, arr.shape[1], chunk_size):
        stop = min(start + chunk_size, arr.shape[1])
        np.matmul(mat, arr[:, start:stop], out=out[:, start:stop])
    return out


def chunked_forward(
    network: QuantumNetwork,
    data: np.ndarray,
    chunk_size: int = 4096,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply ``network`` to ``(N, M)`` data in column chunks.

    Equivalent to ``network.forward(data)`` but with peak extra memory
    bounded by one ``(N, chunk_size)`` buffer; results are written into
    ``out`` when provided (must be ``(N, M)`` and able to hold the result
    dtype, may alias nothing).  The result dtype follows the same rule as
    ``network.forward``: complex when the input is complex or the network
    carries phases (``allow_phase``), float64 otherwise.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.network import QuantumNetwork
    >>> net = QuantumNetwork(4, 2).initialize("uniform", rng=np.random.default_rng(0))
    >>> x = np.random.default_rng(1).normal(size=(4, 10))
    >>> bool(np.allclose(chunked_forward(net, x, chunk_size=3), net.forward(x)))
    True
    """
    if chunk_size < 1:
        raise DimensionError(f"chunk_size must be >= 1, got {chunk_size}")
    arr = np.asarray(data)
    if arr.ndim != 2 or arr.shape[0] != network.dim:
        raise DimensionError(
            f"data must be (N={network.dim}, M), got shape {arr.shape}"
        )
    dtype = network.result_dtype(arr)
    n, m = arr.shape
    if out is None:
        out = np.empty(arr.shape, dtype=dtype)
    elif out.shape != arr.shape:
        raise DimensionError(
            f"out shape {out.shape} != data shape {arr.shape}"
        )
    elif not np.can_cast(dtype, out.dtype, casting="safe"):
        raise DimensionError(
            f"out buffer dtype {out.dtype} cannot safely hold the {dtype} "
            "forward result"
        )
    for start in range(0, m, chunk_size):
        stop = min(start + chunk_size, m)
        # Explicit copy: ascontiguousarray would alias the input when the
        # chunk spans the whole (contiguous) batch, and forward_inplace
        # must never mutate the caller's data.
        block = np.array(arr[:, start:stop], dtype=dtype, order="C", copy=True)
        network.forward_inplace(block)
        out[:, start:stop] = block
    return out


class ChunkedPipeline:
    """Streamed end-to-end autoencoding for batches too large for one pass.

    Parameters
    ----------
    autoencoder:
        A (typically trained) :class:`QuantumAutoencoder`.
    chunk_size:
        Samples processed per chunk.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.network import QuantumAutoencoder
    >>> ae = QuantumAutoencoder(4, 2, 2, 2).initialize(rng=np.random.default_rng(0))
    >>> X = np.abs(np.random.default_rng(1).normal(size=(100, 4))) + 0.1
    >>> ChunkedPipeline(ae, chunk_size=16).reconstruct(X).shape
    (100, 4)
    """

    def __init__(
        self, autoencoder: QuantumAutoencoder, chunk_size: int = 1024
    ) -> None:
        if chunk_size < 1:
            raise DimensionError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.autoencoder = autoencoder
        self.chunk_size = int(chunk_size)

    def _result_dtype(self) -> np.dtype:
        """Pipeline output dtype: complex for phase-bearing autoencoders."""
        return np.dtype(
            np.complex128
            if self.autoencoder.uc.allow_phase
            else np.float64
        )

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Encode, compress, reconstruct and decode ``X`` chunk by chunk."""
        mat = np.asarray(X, dtype=np.float64)
        if mat.ndim != 2:
            raise DimensionError(f"X must be (M, N), got shape {mat.shape}")
        m = mat.shape[0]
        # Allocate with the dtype the pipeline actually decodes to, not
        # the input's (today decode_batch always yields float64; this
        # keeps the buffer correct if a decode path ever returns signed
        # or complex values instead of magnitudes).
        out = np.empty_like(mat) if m == 0 else None
        for start in range(0, m, self.chunk_size):
            stop = min(start + self.chunk_size, m)
            result = self.autoencoder.forward(mat[start:stop])
            if out is None:
                out = np.empty(mat.shape, dtype=result.x_hat.dtype)
            out[start:stop] = result.x_hat
        return out

    def compact_codes(self, X: np.ndarray) -> np.ndarray:
        """Compressed ``(d, M)`` codes, streamed.

        Codes are complex for phase-bearing (``allow_phase``) autoencoders
        — the same dtype one full-batch ``forward`` would produce.
        """
        mat = np.asarray(X, dtype=np.float64)
        if mat.ndim != 2:
            raise DimensionError(f"X must be (M, N), got shape {mat.shape}")
        m = mat.shape[0]
        d = self.autoencoder.compressed_dim
        out = np.empty((d, m), dtype=self._result_dtype())
        for start in range(0, m, self.chunk_size):
            stop = min(start + self.chunk_size, m)
            result = self.autoencoder.forward(mat[start:stop])
            out[:, start:stop] = result.compact_codes
        return out
