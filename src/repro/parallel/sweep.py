"""Seeded multiprocessing parameter sweeps.

The ablation experiments evaluate training configurations over grids
(layer counts x learning rates x seeds...).  Each configuration is
independent, so the sweep is embarrassingly parallel; ``run_sweep``
distributes configurations over a process pool with per-task child seeds
derived via ``SeedSequence`` spawning (statistically independent streams
regardless of scheduling), falling back to in-process execution for small
grids or when ``processes=0``.

The worker function must be a module-level callable (picklable); each task
receives ``(config_dict, seed)`` and returns any picklable result.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ExperimentError
from repro.parallel.pool import WorkerPool, default_worker_count
from repro.utils.rng import DEFAULT_SEED

__all__ = ["SweepResult", "sweep_grid", "run_sweep"]


@dataclass
class SweepResult:
    """One (configuration, seed, result) record of a sweep."""

    config: Dict[str, Any]
    seed: int
    result: Any


def sweep_grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian-product configurations from named axes.

    Axis values may be any iterable — generators and other one-shot
    iterators are materialised before use.

    Examples
    --------
    >>> grid = sweep_grid(layers=[2, 4], lr=[0.01])
    >>> len(grid), grid[0]
    (2, {'layers': 2, 'lr': 0.01})
    >>> len(sweep_grid(layers=(n for n in (2, 4, 6))))
    3
    """
    if not axes:
        raise ExperimentError("sweep_grid needs at least one axis")
    materialized = {name: list(values) for name, values in axes.items()}
    for name, values in materialized.items():
        if len(values) == 0:
            raise ExperimentError(f"axis {name!r} is empty")
    names = list(materialized)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(materialized[n] for n in names))
    ]


def _child_seeds(base_seed: int, n: int) -> List[int]:
    seq = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1)[0]) for child in seq.spawn(n)]


_worker_fn: Optional[Callable[[Dict[str, Any], int], Any]] = None


def _pool_initializer(fn: Callable[[Dict[str, Any], int], Any]) -> None:
    global _worker_fn
    _worker_fn = fn


def _pool_task(payload: tuple[Dict[str, Any], int]) -> Any:
    assert _worker_fn is not None, "pool initializer did not run"
    config, seed = payload
    return _worker_fn(config, seed)


def run_sweep(
    worker: Callable[[Dict[str, Any], int], Any],
    configs: Iterable[Mapping[str, Any]],
    processes: Optional[int] = None,
    base_seed: int = DEFAULT_SEED,
    backend: Optional[str] = None,
) -> List[SweepResult]:
    """Evaluate ``worker(config, seed)`` for every configuration.

    Parameters
    ----------
    worker:
        Module-level callable (picklable for multiprocessing).
    configs:
        Iterable of configuration mappings (e.g. from :func:`sweep_grid`).
    processes:
        Pool size; ``None`` chooses ``min(len(configs), usable CPUs)``
        where *usable* respects the process's CPU-affinity mask (see
        :func:`repro.parallel.pool.default_worker_count` — containerized
        CI gets its cgroup quota, not the host core count); ``0`` or
        ``1`` runs in-process (deterministic ordering, easier debugging,
        required under coverage tools).
    base_seed:
        Root seed; every task gets an independent child seed.
    backend:
        Execution-backend name (see :mod:`repro.backends`) injected into
        every configuration as ``config["backend"]`` unless the
        configuration already pins one — workers that build networks or
        :class:`~repro.experiments.config.PaperConfig` objects from the
        config dict pick it up without sweep-axis boilerplate.

    Returns
    -------
    ``SweepResult`` list in the same order as ``configs``.
    """
    config_list = [dict(c) for c in configs]
    if not config_list:
        raise ExperimentError("run_sweep received no configurations")
    if backend is not None:
        from repro.backends import validate_backend_name

        backend = validate_backend_name(backend, ExperimentError)
        for cfg in config_list:
            cfg.setdefault("backend", backend)
    seeds = _child_seeds(base_seed, len(config_list))
    payloads = list(zip(config_list, seeds))
    if processes is None:
        processes = min(len(config_list), default_worker_count())
    if processes <= 1:
        results = [worker(cfg, seed) for cfg, seed in payloads]
    else:
        # The persistent WorkerPool carries the spawn-context plumbing;
        # the initializer ships the worker callable once per process.
        # Sweep tasks run whole training loops, so workers keep their
        # full BLAS thread budget (blas_threads=None).
        with WorkerPool(
            processes=processes,
            initializer=_pool_initializer,
            initargs=(worker,),
            blas_threads=None,
        ) as pool:
            results = pool.map(_pool_task, payloads)
    return [
        SweepResult(config=cfg, seed=seed, result=res)
        for (cfg, seed), res in zip(payloads, results)
    ]
