"""HPC execution layer: chunking, sharding and process-pool execution.

Following the scientific-Python optimisation guidance (vectorise across
samples, bound working-set size, parallelise embarrassingly parallel
work with processes), this subpackage provides:

- :mod:`~repro.parallel.batch` — memory-bounded chunked propagation of
  large state batches through a network, with reusable workspaces;
- :mod:`~repro.parallel.sharding` — column-shard planning for scattering
  ``(N, M)`` batches across workers (pure index arithmetic);
- :mod:`~repro.parallel.pool` — :class:`WorkerPool`, the persistent
  spawn-context process pool with shared-memory block transfer, behind
  both the ``sharded`` execution backend and pool-attached serving
  sessions;
- :mod:`~repro.parallel.reducer` — :class:`GradientReducer`, the
  data-parallel training engine: per-shard ``loss_and_gradient`` on the
  pool (batch or perturbation-stack sharding) combined by a
  deterministic :func:`tree_reduce`, behind ``Trainer(parallel="pool")``;
- :mod:`~repro.parallel.sweep` — a seeded multiprocessing executor for
  parameter sweeps (layer counts, learning rates, noise levels), used by
  the ablation experiments and built on :class:`WorkerPool`.
"""

from repro.parallel.batch import chunked_apply, chunked_forward, ChunkedPipeline
from repro.parallel.pool import (
    WorkerPool,
    default_worker_count,
    worker_index,
    worker_rng,
)
from repro.parallel.reducer import (
    GradientReducer,
    resolve_parallel_workers,
    tree_reduce,
    validate_parallel_spec,
)
from repro.parallel.sharding import Shard, plan_shards, shard_views
from repro.parallel.sweep import SweepResult, run_sweep, sweep_grid

__all__ = [
    "chunked_apply",
    "chunked_forward",
    "ChunkedPipeline",
    "GradientReducer",
    "Shard",
    "SweepResult",
    "WorkerPool",
    "default_worker_count",
    "plan_shards",
    "resolve_parallel_workers",
    "run_sweep",
    "shard_views",
    "sweep_grid",
    "tree_reduce",
    "validate_parallel_spec",
    "worker_index",
    "worker_rng",
]
