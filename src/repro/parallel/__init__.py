"""HPC execution layer: chunked batch propagation and process-pool sweeps.

Following the scientific-Python optimisation guidance (vectorise across
samples, bound working-set size, parallelise embarrassingly parallel
sweeps with processes), this subpackage provides:

- :mod:`~repro.parallel.batch` — memory-bounded chunked propagation of
  large state batches through a network, with reusable workspaces;
- :mod:`~repro.parallel.sweep` — a seeded multiprocessing executor for
  parameter sweeps (layer counts, learning rates, noise levels), used by
  the ablation experiments.
"""

from repro.parallel.batch import chunked_apply, chunked_forward, ChunkedPipeline
from repro.parallel.sweep import SweepResult, run_sweep, sweep_grid

__all__ = [
    "chunked_apply",
    "chunked_forward",
    "ChunkedPipeline",
    "SweepResult",
    "run_sweep",
    "sweep_grid",
]
