"""Trajectory execution path: sampled noise realizations, GEMM-shaped.

The exact density path (:mod:`repro.noise.density`) costs ``O(G N^2)`` per
*sample*; this module scales the same :class:`~repro.noise.model.NoiseModel`
to wide batches by sampling whole-mesh **realizations**: for realization
``r`` the per-gate angle jitters are drawn once (a fabricated mesh has
frozen miscalibration) and folded — together with the deterministic
per-gate insertion-loss damping — into a single sub-unitary ``N x N``
matrix, exactly like :class:`~repro.backends.fused.FusedBackend` folds the
ideal program.  Every sample then moves through a realization in one GEMM.

The wire channels (dephasing / depolarizing) act between ``U_C`` and
``U_R``; because the pipeline only ever measures in the computational
basis at the very end, their effect on the measured distribution has an
exact GEMM-shaped closed form and needs **no stochastic unravelling**:

``p = (1-pp) * [(1-pd) * |U_R phi|^2 + pd * |U_R|^2 @ |phi|^2]
+ pp * (tr rho / N) * rowsum(|U_R|^2)``

where ``phi`` is the (unconditional, sub-normalized) compressed state,
``pd``/``pp`` the dephasing/depolarizing strengths.  Only the frozen
miscalibration is genuinely stochastic, so the trajectory mean converges
to the density path with pure Monte-Carlo error — the agreement gate in
``benchmarks/bench_noise.py`` checks exactly this.

Reproducibility contract: realization ``r`` of epoch ``e`` under seed
``s`` is drawn from ``SeedSequence(s, spawn_key=(TAG, stream, e, r))`` —
keyed on the *realization*, never on which worker computes it — so
sharding the realization range across a :class:`~repro.parallel.pool.WorkerPool`
of any size reproduces the single-process result bitwise (the results are
recombined per-realization by the same deterministic
:func:`~repro.parallel.reducer.tree_reduce` the data-parallel trainer uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NoiseError
from repro.noise.model import NoiseModel
from repro.simulator.gates import apply_givens_batch

__all__ = [
    "NoisyForwardResult",
    "realization_rng",
    "sample_mesh_matrix",
    "clean_mesh_matrix",
    "channel_probabilities",
    "measure_probabilities",
    "trajectory_forward",
]

#: Spawn-key tag segregating noise streams from the worker-pool streams
#: (``worker_rng`` spawns on ``(index,)``; we always spawn on a 4-tuple).
_SPAWN_TAG = 0x4E4F4953  # "NOIS"

#: Stream ids: one independent stream per mesh plus one for measurement.
STREAM_UC = 0
STREAM_UR = 1
STREAM_MEASURE = 2


def realization_rng(
    seed: int, epoch: int, realization: int, stream: int = 0
) -> np.random.Generator:
    """The deterministic generator for one noise realization.

    Keyed on ``(seed, stream, epoch, realization)`` only — never on the
    worker that happens to compute it — which is what makes pool-sharded
    noise bitwise-reproducible at any pool size.

    >>> a = realization_rng(7, 0, 3).normal()
    >>> b = realization_rng(7, 0, 3).normal()
    >>> a == b
    True
    >>> realization_rng(7, 0, 4).normal() == a
    False
    """
    ss = np.random.SeedSequence(
        int(seed), spawn_key=(_SPAWN_TAG, int(stream), int(epoch), int(realization))
    )
    return np.random.default_rng(ss)


def _as_program(program_or_network):
    """Accept either a compiled :class:`GateProgram` or a network."""
    if hasattr(program_or_network, "theta_index"):
        return program_or_network
    from repro.backends.program import compile_program

    return compile_program(program_or_network)


def sample_mesh_matrix(
    program_or_network,
    params: np.ndarray,
    model: NoiseModel,
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    """Fold one noisy mesh realization into a dense ``N x N`` matrix.

    Mirrors :meth:`FusedBackend._refresh` gate for gate, with two
    physical modifications per gate ``g`` on modes ``(k, k+1)``:

    - the angle is ``theta_g + eps_g`` with ``eps_g ~ N(0, theta_sigma^2)``
      drawn once from ``rng`` (frozen fabrication miscalibration);
    - rows ``k, k+1`` are damped by ``sqrt(1 - loss_per_gate)`` after the
      rotation (single-photon insertion loss), so the result is
      sub-unitary and carries the *unconditional* (non-post-selected)
      amplitude, matching the density path's trace bookkeeping.

    ``rng=None`` is allowed when ``theta_sigma == 0``.
    """
    prog = _as_program(program_or_network)
    if prog.allow_phase:
        raise NoiseError(
            "the noise model supports the paper's real (phase-free) meshes; "
            "allow_phase networks are out of scope for noisy execution"
        )
    params = np.asarray(params, dtype=np.float64)
    if model.theta_sigma > 0.0:
        if rng is None:
            raise NoiseError("theta_sigma > 0 requires an rng to draw jitter")
        # One draw per *theta parameter*, addressed through theta_index, so
        # the jitter vector has the same layout as the flat parameter
        # vector (what noise-aware training perturbs).
        jitter = rng.normal(0.0, model.theta_sigma, size=prog.num_thetas)
    else:
        jitter = None
    keep_amp = float(np.sqrt(1.0 - model.loss_per_gate))
    lossy = model.loss_per_gate > 0.0
    u = np.eye(prog.dim, dtype=np.float64)
    for g in range(prog.num_gates):
        k = int(prog.modes[g])
        t = int(prog.theta_index[g])
        theta = float(params[t])
        if jitter is not None:
            theta += float(jitter[t])
        apply_givens_batch(u, k, theta)
        if lossy:
            u[k] *= keep_amp
            u[k + 1] *= keep_amp
    return u


def clean_mesh_matrix(program_or_network, params: np.ndarray) -> np.ndarray:
    """The ideal (noise-free) mesh fold — the reference for fidelity."""
    return sample_mesh_matrix(
        program_or_network, params, NoiseModel(), None
    )


def channel_probabilities(
    decode_matrix: np.ndarray,
    phi: np.ndarray,
    model: NoiseModel,
    reference: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Measured-probability map of the wire channels + reconstruction mesh.

    ``phi`` is the (possibly sub-normalized) compressed state batch
    ``(N, M)`` *after* projection; ``decode_matrix`` is one (possibly
    noisy, sub-unitary) realization of ``U_R``.  Returns the exact
    computational-basis probabilities ``(N, M)`` of
    ``U_R ( Depol_pp ( Deph_pd ( |phi><phi| ) ) ) U_R^dagger`` — the
    closed form in the module docstring — plus, when ``reference`` (the
    normalized clean output batch) is given, the per-sample fidelity
    ``<b_c| rho_out |b_c>``.
    """
    pd = model.dephasing
    pp = model.depolarizing
    dim = decode_matrix.shape[0]
    out = decode_matrix @ phi
    probs = np.abs(out) ** 2
    phi_sq = np.abs(phi) ** 2
    trace = phi_sq.sum(axis=0)
    dec_sq = np.abs(decode_matrix) ** 2
    if pd > 0.0:
        probs = (1.0 - pd) * probs + pd * (dec_sq @ phi_sq)
    if pp > 0.0:
        rowpow = dec_sq.sum(axis=1)
        probs = (1.0 - pp) * probs + (pp / dim) * np.outer(rowpow, trace)
    if reference is None:
        return probs, None
    # T[m, j] = <b_c[:, m] | U_R e_j>; all three channel terms project
    # the output density matrix onto the clean reference state.
    t = reference.conj().T @ decode_matrix
    t_sq = np.abs(t) ** 2
    fid_unit = np.abs(np.einsum("nm,nm->m", reference.conj(), out)) ** 2
    fid = fid_unit
    if pd > 0.0:
        fid_deph = np.einsum("mj,jm->m", t_sq, phi_sq)
        fid = (1.0 - pd) * fid + pd * fid_deph
    if pp > 0.0:
        fid = (1.0 - pp) * fid + (pp / dim) * trace * t_sq.sum(axis=1)
    return probs, fid


def measure_probabilities(
    probabilities: np.ndarray,
    shots: Optional[int],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Finite-shot estimate of (possibly sub-normalized) probabilities.

    Samples ``shots`` multinomial draws per column from the *conditional*
    click distribution and rescales by the column's total probability, so
    the estimate is unbiased for the unconditional ``p`` even under loss
    (a lost photon is simply a no-click shot).  ``shots=None`` returns
    the exact probabilities unchanged.
    """
    if shots is None:
        return probabilities
    if rng is None:
        raise NoiseError("finite shots require an rng")
    mat = probabilities.reshape(probabilities.shape[0], -1)
    out = np.zeros_like(mat)
    for m in range(mat.shape[1]):
        p = np.clip(mat[:, m], 0.0, None)
        total = float(p.sum())
        if total <= 0.0:
            continue
        counts = rng.multinomial(int(shots), p / total)
        out[:, m] = counts * (total / float(shots))
    return out.reshape(probabilities.shape)


@dataclass(frozen=True)
class NoisyForwardResult:
    """Outcome of a noisy pipeline pass (density or trajectory path).

    All quantities are *unconditional* (no post-selection): lost
    probability shows up as ``transmission < 1`` and as sub-normalized
    ``probabilities`` columns, never silently renormalized away.
    """

    probabilities: np.ndarray  #: (N, M) mean measured Born probabilities
    fidelity: np.ndarray  #: (M,) conditional fidelity <b_c|rho|b_c> / tr(rho)
    transmission: np.ndarray  #: (M,) mean retained probability (trace)
    trajectories: int  #: number of realizations averaged (1 for density)

    @property
    def amplitudes(self) -> np.ndarray:
        """Magnitude-only amplitudes ``sqrt(p)`` — what Eq. (2) decodes."""
        return np.sqrt(np.clip(self.probabilities, 0.0, None))

    @property
    def mean_fidelity(self) -> float:
        return float(np.mean(self.fidelity))


def _network_struct(network) -> Tuple[int, int, bool, bool]:
    return (
        int(network.dim),
        int(network.num_layers),
        bool(network.descending),
        bool(network.allow_phase),
    )


_PROGRAM_CACHE: Dict[Tuple[int, int, bool, bool], object] = {}


def _program_for_struct(struct: Tuple[int, int, bool, bool]):
    prog = _PROGRAM_CACHE.get(struct)
    if prog is None:
        from repro.backends.program import compile_program
        from repro.network.quantum_network import QuantumNetwork

        dim, num_layers, descending, allow_phase = struct
        prog = compile_program(
            QuantumNetwork(
                dim, num_layers, descending=descending, allow_phase=allow_phase
            )
        )
        _PROGRAM_CACHE[struct] = prog
    return prog


def _masked_compress(encode_matrix, amplitudes, keep: np.ndarray) -> np.ndarray:
    """``P (U_C a)`` — project without renormalizing (unconditional state)."""
    phi = encode_matrix @ amplitudes
    mask = np.zeros(phi.shape[0], dtype=bool)
    mask[keep] = True
    phi[~mask, :] = 0.0
    return phi


def _realization_stats(
    uc_prog,
    uc_params: np.ndarray,
    ur_prog,
    ur_params: np.ndarray,
    keep: np.ndarray,
    amplitudes: np.ndarray,
    reference: np.ndarray,
    model: NoiseModel,
    seed: int,
    epoch: int,
    realization: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-realization (probabilities, fidelity, transmission)."""
    uc = sample_mesh_matrix(
        uc_prog, uc_params, model, realization_rng(seed, epoch, realization, STREAM_UC)
    )
    ur = sample_mesh_matrix(
        ur_prog, ur_params, model, realization_rng(seed, epoch, realization, STREAM_UR)
    )
    phi = _masked_compress(uc, amplitudes, keep)
    probs, fid = channel_probabilities(ur, phi, model, reference=reference)
    assert fid is not None
    return probs, fid, probs.sum(axis=0)


def _trajectory_shard_task(payload) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Worker task: realizations ``[lo, hi)`` of a trajectory sweep.

    Every realization is keyed on its own index (see
    :func:`realization_rng`), so the split of the range across workers is
    irrelevant to the values produced.
    """
    (
        uc_struct,
        uc_params,
        ur_struct,
        ur_params,
        keep,
        amplitudes,
        reference,
        model_dict,
        seed,
        epoch,
        lo,
        hi,
    ) = payload
    model = NoiseModel.from_dict(model_dict)
    uc_prog = _program_for_struct(uc_struct)
    ur_prog = _program_for_struct(ur_struct)
    return [
        _realization_stats(
            uc_prog,
            uc_params,
            ur_prog,
            ur_params,
            keep,
            amplitudes,
            reference,
            model,
            seed,
            epoch,
            r,
        )
        for r in range(lo, hi)
    ]


def trajectory_forward(
    autoencoder,
    amplitudes: np.ndarray,
    model: NoiseModel,
    *,
    trajectories: int = 64,
    seed: int = 0,
    epoch: int = 0,
    pool=None,
) -> NoisyForwardResult:
    """Run the full noisy pipeline by averaging sampled realizations.

    ``amplitudes`` is the ``(N, M)`` encoded input batch;
    ``autoencoder`` a trained :class:`~repro.network.autoencoder.QuantumAutoencoder`.
    When ``pool`` (a :class:`~repro.parallel.pool.WorkerPool`) is given the
    realization range is sharded across its workers; results are bitwise
    identical for any worker count, including none.

    Finite ``model.shots`` are applied to the *averaged* probabilities
    from the dedicated measurement stream, so the shot budget is spent on
    the physical (realization-averaged) distribution.
    """
    K = int(trajectories)
    if K < 1:
        raise NoiseError(f"trajectories must be >= 1, got {trajectories!r}")
    amplitudes = np.asarray(amplitudes, dtype=np.float64)
    if amplitudes.ndim == 1:
        amplitudes = amplitudes.reshape(-1, 1)
    uc, ur = autoencoder.uc, autoencoder.ur
    uc_prog = _program_for_struct(_network_struct(uc))
    ur_prog = _program_for_struct(_network_struct(ur))
    uc_params = np.asarray(uc.get_flat_params(), dtype=np.float64)
    ur_params = np.asarray(ur.get_flat_params(), dtype=np.float64)
    keep = np.asarray(autoencoder.projection.keep, dtype=np.int64)
    # Clean reference outputs, normalized per column (guarding collapse to
    # zero), for the fidelity bookkeeping.
    uc_clean = clean_mesh_matrix(uc_prog, uc_params)
    ur_clean = clean_mesh_matrix(ur_prog, ur_params)
    b_clean = ur_clean @ _masked_compress(uc_clean, amplitudes, keep)
    norms = np.linalg.norm(b_clean, axis=0)
    reference = b_clean / np.where(norms > 0.0, norms, 1.0)

    per_realization: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if pool is not None and pool.processes > 1 and K > 1:
        from repro.parallel.sharding import plan_shards

        shards = plan_shards(K, min(pool.processes, K))
        payloads = [
            (
                _network_struct(uc),
                uc_params,
                _network_struct(ur),
                ur_params,
                keep,
                amplitudes,
                reference,
                model.to_dict(),
                int(seed),
                int(epoch),
                shard.start,
                shard.stop,
            )
            for shard in shards
        ]
        for chunk in pool.map(_trajectory_shard_task, payloads):
            per_realization.extend(chunk)
    else:
        for r in range(K):
            per_realization.append(
                _realization_stats(
                    uc_prog,
                    uc_params,
                    ur_prog,
                    ur_params,
                    keep,
                    amplitudes,
                    reference,
                    model,
                    int(seed),
                    int(epoch),
                    r,
                )
            )

    from repro.parallel.reducer import tree_reduce

    probs = tree_reduce([p for p, _, _ in per_realization]) / K
    fid = tree_reduce([f for _, f, _ in per_realization]) / K
    trans = tree_reduce([t for _, _, t in per_realization]) / K
    # Conditional fidelity of the realization-*averaged* state:
    # E_r[<b|rho_r|b>] / E_r[tr rho_r] — the ratio of means, matching the
    # density path's rho = E_r[rho_r] exactly (not the mean of ratios).
    fid = np.clip(fid / np.where(trans > 0.0, trans, 1.0), 0.0, 1.0)
    probs = measure_probabilities(
        probs, model.shots, realization_rng(seed, epoch, 0, STREAM_MEASURE)
    )
    return NoisyForwardResult(
        probabilities=probs, fidelity=fid, transmission=trans, trajectories=K
    )
