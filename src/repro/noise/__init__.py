"""First-class hardware-noise modelling for the quantum codec.

The paper's Section V defers physical effects to an exact simulator;
this subpackage makes them a first-class value instead of an ablation
footnote:

- :mod:`~repro.noise.model` — :class:`NoiseModel`, the frozen,
  JSON-round-trippable description (angle jitter, insertion loss,
  dephasing, depolarizing, shots) plus the ``mild | lossy | harsh``
  presets;
- :mod:`~repro.noise.density` — the exact execution path: per-sample
  density matrices folded through the compiled gate program and the
  Kraus channels of :mod:`repro.simulator.density`;
- :mod:`~repro.noise.trajectory` — the scalable path: sampled
  whole-mesh realizations (one GEMM per realization per batch),
  pool-shardable with bitwise-reproducible realization-keyed seeding;
- :mod:`~repro.noise.training` — noise-aware gradients: the exact
  gradient of the jitter-averaged loss, sharded over the worker pool;
- :mod:`~repro.noise.evaluate` — degradation metrics and curves
  (accuracy / PSNR / fidelity / transmission vs channel strength).

See ``docs/noise.md`` for the density-vs-trajectory contract and the
reproducibility guarantees.
"""

from repro.noise.model import NOISE_PRESETS, NoiseModel, noise_preset
from repro.noise.density import density_forward
from repro.noise.evaluate import degradation_curve, evaluate_noisy
from repro.noise.trajectory import (
    NoisyForwardResult,
    clean_mesh_matrix,
    realization_rng,
    sample_mesh_matrix,
    trajectory_forward,
)
from repro.noise.training import draw_jitter, noisy_loss_and_gradient

__all__ = [
    "NOISE_PRESETS",
    "NoiseModel",
    "NoisyForwardResult",
    "clean_mesh_matrix",
    "degradation_curve",
    "density_forward",
    "draw_jitter",
    "evaluate_noisy",
    "noise_preset",
    "noisy_loss_and_gradient",
    "realization_rng",
    "sample_mesh_matrix",
    "trajectory_forward",
]
