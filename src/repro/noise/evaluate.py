"""Noisy evaluation: degradation metrics and curves over a trained codec.

The bridge between the execution paths (:mod:`repro.noise.trajectory`,
:mod:`repro.noise.density`) and the user-facing quality vocabulary
(:mod:`repro.training.metrics`): run the pipeline under a
:class:`~repro.noise.model.NoiseModel`, decode the measured
(magnitude-only) amplitudes through Eq. (2), and report accuracy / PSNR /
MSE alongside the quantum-state fidelity and transmission — plus
:func:`degradation_curve`, the same metrics swept over uniformly scaled
channel strengths, which is what "graceful, not cliff" is asserted on in
``benchmarks/bench_noise.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.encoding.amplitude import decode_batch
from repro.noise.model import NoiseModel
from repro.noise.trajectory import NoisyForwardResult, trajectory_forward

__all__ = ["evaluate_noisy", "degradation_curve"]


def _metrics_from_result(
    result: NoisyForwardResult, X: np.ndarray, squared_norms: np.ndarray
) -> Dict[str, float]:
    from repro.training.metrics import mse, paper_accuracy, pixel_accuracy, psnr

    x_hat = decode_batch(result.amplitudes, squared_norms)
    return {
        "noisy_accuracy": float(paper_accuracy(x_hat, X)),
        "noisy_pixel_accuracy": float(pixel_accuracy(x_hat, X)),
        "noisy_mse": float(mse(x_hat, X)),
        "noisy_psnr_db": float(psnr(x_hat, X)),
        "mean_fidelity": result.mean_fidelity,
        "mean_transmission": float(np.mean(result.transmission)),
    }


def evaluate_noisy(
    autoencoder,
    X: np.ndarray,
    model: NoiseModel,
    *,
    trajectories: int = 64,
    seed: int = 0,
    epoch: int = 0,
    pool=None,
    path: str = "trajectory",
) -> Dict[str, float]:
    """Quality metrics of the pipeline under ``model``.

    ``path`` selects the execution path: ``"trajectory"`` (sampled,
    scalable, pool-shardable — the default) or ``"density"`` (exact
    channel folding, per-sample cost).  Metrics are computed on the
    decoded reconstruction of the *measured* probabilities, so finite
    ``model.shots`` degrade them exactly as hardware counts would.
    """
    X = np.asarray(X, dtype=np.float64)
    enc = autoencoder.codec.encode(X)
    if path == "density":
        from repro.noise.density import density_forward

        result = density_forward(
            autoencoder, enc.amplitudes(), model, seed=seed, epoch=epoch
        )
    elif path == "trajectory":
        result = trajectory_forward(
            autoencoder,
            enc.amplitudes(),
            model,
            trajectories=trajectories,
            seed=seed,
            epoch=epoch,
            pool=pool,
        )
    else:
        from repro.exceptions import NoiseError

        raise NoiseError(
            f"unknown noise path {path!r}; expected 'trajectory' or 'density'"
        )
    out = _metrics_from_result(result, X, enc.squared_norms)
    out["trajectories"] = float(result.trajectories)
    return out


def degradation_curve(
    autoencoder,
    X: np.ndarray,
    model: NoiseModel,
    *,
    scales: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    trajectories: int = 64,
    seed: int = 0,
    pool=None,
    path: str = "trajectory",
) -> List[Dict[str, float]]:
    """Sweep ``model.scaled(s)`` over ``scales`` and record the metrics.

    The same realization seeds are reused at every scale (common random
    numbers), so the curve is smooth in the scale rather than jittered by
    independent sampling — monotonicity assertions compare like with
    like.
    """
    records: List[Dict[str, float]] = []
    for scale in scales:
        scaled = model.scaled(float(scale))
        rec: Dict[str, float] = {"scale": float(scale)}
        rec.update(
            {
                "theta_sigma": scaled.theta_sigma,
                "loss_per_gate": scaled.loss_per_gate,
                "dephasing": scaled.dephasing,
                "depolarizing": scaled.depolarizing,
            }
        )
        rec.update(
            evaluate_noisy(
                autoencoder,
                X,
                scaled,
                trajectories=trajectories,
                seed=seed,
                pool=pool,
                path=path,
            )
        )
        records.append(rec)
    return records
