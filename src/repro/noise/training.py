"""Noise-aware training: gradients averaged over jitter realizations.

A mesh trained on the exact simulator and deployed on a miscalibrated
chip sits at a sharp minimum: the loss the hardware realises is
``E_eps[L(theta + eps)]``, not ``L(theta)``.  Noise-aware training
optimises that expectation directly by averaging the exact gradient over
``K`` frozen-jitter realizations per step::

    g = (1/K) sum_r dL/dtheta (theta + eps_r),   eps_r ~ N(0, sigma^2 I)

which is the exact gradient of the realization-averaged loss (the jitter
enters additively in parameter space, so ``d/dtheta L(theta + eps) =
(dL/dparams)(theta + eps)``).  The parameter-*independent* channels of a
:class:`~repro.noise.model.NoiseModel` — insertion loss, dephasing,
depolarizing, finite shots — shift the evaluated loss but not its
parameter gradient to first order, so they enter evaluation
(:mod:`repro.noise.trajectory`) rather than the gradient; a model with
``theta_sigma == 0`` therefore reduces this step to the noise-blind one.

Reproducibility contract (the determinism gate in
``benchmarks/bench_noise.py`` and ``tests/noise``): realization ``r`` of
epoch ``e`` draws from ``realization_rng(seed, e, r, stream)`` — keyed on
the realization, never the worker — and the ``K`` per-realization
``(loss, grad)`` pairs are recombined by the fixed-topology
:func:`~repro.parallel.reducer.tree_reduce` in realization order.  The
result is bitwise identical run-to-run *and* across pool sizes
(``pool:2`` == ``pool:4``), because neither the draws nor the reduction
topology depend on how realizations were scattered.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import NoiseError
from repro.noise.model import NoiseModel
from repro.noise.trajectory import realization_rng

__all__ = ["draw_jitter", "noisy_loss_and_gradient"]


def draw_jitter(
    num_parameters: int,
    num_thetas: int,
    sigma: float,
    seed: int,
    epoch: int,
    realization: int,
    stream: int = 0,
) -> np.ndarray:
    """The flat-parameter jitter vector of one realization.

    Only the ``theta`` half is perturbed (the paper's meshes are
    phase-free; phases, when present, are not miscalibration targets).
    """
    eps = np.zeros(int(num_parameters), dtype=np.float64)
    rng = realization_rng(seed, epoch, realization, stream)
    eps[:num_thetas] = rng.normal(0.0, sigma, size=int(num_thetas))
    return eps


def _noise_shard_task(payload: Tuple) -> List[Tuple[float, np.ndarray]]:
    """Worker task: per-realization ``(loss, grad)`` for ``[lo, hi)``.

    Each realization evaluates the *full* batch at ``params + eps_r``
    through the in-worker delegate backend, so the values depend only on
    the realization index — never on the shard boundaries.
    """
    (
        struct,
        params,
        inputs,
        targets,
        loss,
        keep,
        method,
        delta,
        engine,
        sigma,
        num_thetas,
        seed,
        epoch,
        stream,
        lo,
        hi,
    ) = payload
    from repro.parallel.reducer import _worker_network, _worker_projection
    from repro.training.gradients import loss_and_gradient

    net = _worker_network(struct)
    projection = _worker_projection(struct[0], keep)
    out: List[Tuple[float, np.ndarray]] = []
    try:
        for r in range(lo, hi):
            eps = draw_jitter(
                params.shape[0], num_thetas, sigma, seed, epoch, r, stream
            )
            net.set_flat_params(params + eps)
            out.append(
                loss_and_gradient(
                    net,
                    inputs,
                    targets,
                    loss=loss,
                    projection=projection,
                    method=method,
                    delta=delta,
                    engine=engine,
                )
            )
    finally:
        net.set_flat_params(params)
    return out


def noisy_loss_and_gradient(
    network,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    model: NoiseModel,
    trajectories: int,
    seed: int,
    epoch: int = 0,
    stream: int = 0,
    loss=None,
    projection=None,
    method: str = "adjoint",
    delta: Optional[float] = None,
    engine: Optional[str] = None,
    reducer=None,
) -> Tuple[float, np.ndarray]:
    """``(E_r[loss], E_r[grad])`` over ``K = trajectories`` realizations.

    With ``reducer`` (a :class:`~repro.parallel.reducer.GradientReducer`
    of more than one worker) the realization range is sharded over the
    pool; otherwise the loop runs in-process.  Either way the result is
    the same realization-ordered tree reduction.

    A model without angle jitter short-circuits to the plain (single)
    gradient: the remaining channels do not depend on the parameters, so
    averaging over them would spend ``K`` evaluations reproducing one.
    """
    K = int(trajectories)
    if K < 1:
        raise NoiseError(f"noise_trajectories must be >= 1, got {trajectories!r}")
    from repro.parallel.reducer import tree_reduce
    from repro.training.gradients import loss_and_gradient

    if model.theta_sigma <= 0.0:
        if reducer is not None:
            return reducer.loss_and_gradient(
                network,
                inputs,
                targets,
                loss=loss,
                projection=projection,
                method=method,
                delta=delta,
                engine=engine,
            )
        return loss_and_gradient(
            network,
            inputs,
            targets,
            loss=loss,
            projection=projection,
            method=method,
            delta=delta,
            engine=engine,
        )

    pairs: List[Tuple[float, np.ndarray]]
    if reducer is not None and reducer.num_workers > 1 and K > 1:
        from repro.parallel.sharding import plan_shards

        struct = (
            network.dim,
            network.num_layers,
            network.descending,
            network.allow_phase,
            reducer._delegate_for(network),
        )
        params = network.get_flat_params()
        keep = (
            None
            if projection is None
            else tuple(int(k) for k in projection.keep)
        )
        arr = np.ascontiguousarray(inputs)
        tgt = np.ascontiguousarray(targets)
        shards = plan_shards(K, min(reducer.num_workers, K))
        payloads = [
            (
                struct,
                params,
                arr,
                tgt,
                loss,
                keep,
                method,
                delta,
                engine,
                model.theta_sigma,
                network.num_thetas,
                int(seed),
                int(epoch),
                int(stream),
                s.start,
                s.stop,
            )
            for s in shards
        ]
        pairs = []
        for chunk in reducer.pool.map(_noise_shard_task, payloads):
            pairs.extend(chunk)
    else:
        params = network.get_flat_params()
        pairs = []
        try:
            for r in range(K):
                eps = draw_jitter(
                    params.shape[0],
                    network.num_thetas,
                    model.theta_sigma,
                    int(seed),
                    int(epoch),
                    r,
                    int(stream),
                )
                network.set_flat_params(params + eps)
                pairs.append(
                    loss_and_gradient(
                        network,
                        inputs,
                        targets,
                        loss=loss,
                        projection=projection,
                        method=method,
                        delta=delta,
                        engine=engine,
                    )
                )
        finally:
            network.set_flat_params(params)

    value = tree_reduce([v for v, _ in pairs]) / K
    grad = tree_reduce([g for _, g in pairs]) / K
    return float(value), grad
