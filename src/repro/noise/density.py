"""Density execution path: exact channel-folded evaluation, no sampling.

For every input sample this path carries the full ``N x N`` density
matrix through the compiled :class:`~repro.backends.program.GateProgram`,
applying after each Givens rotation the *exact* noise channels of the
:class:`~repro.noise.model.NoiseModel`:

- **angle jitter** — the Gaussian mixture of rotations
  ``E_eps[R(theta+eps) rho R(theta+eps)^T]`` has a closed form: rotate by
  ``theta``, then dephase in the rotation generator's eigenbasis.  For a
  two-mode Givens gate this reduces to real arithmetic: the cross terms
  between the gate's modes and the rest decay by ``exp(-sigma^2/2)`` and
  the traceless-symmetric part of the gate's own 2x2 block decays by
  ``exp(-2 sigma^2)`` (the antisymmetric part commutes with every
  rotation and survives).
- **insertion loss** — the single-photon amplitude-damping Kraus of
  :func:`repro.simulator.density.amplitude_damping_kraus` on both of the
  gate's modes (the unconditional, trace-decreasing branch: lost
  probability leaves the matrix, it is not renormalized back).

Between the meshes the wire channels are folded through the Kraus
operators built by :func:`repro.simulator.density.dephasing_channel` and
:func:`repro.simulator.density.depolarizing_channel`.

This is ``O(G N^2)`` per sample — exact and cheap at the paper scale
(``N = 16``), the ground truth the scalable trajectory path
(:mod:`repro.noise.trajectory`) must agree with.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import NoiseError
from repro.noise.model import NoiseModel
from repro.noise.trajectory import (
    NoisyForwardResult,
    STREAM_MEASURE,
    _masked_compress,
    _network_struct,
    _program_for_struct,
    clean_mesh_matrix,
    measure_probabilities,
    realization_rng,
)
from repro.simulator.density import (
    amplitude_damping_kraus,
    dephasing_channel,
    depolarizing_channel,
)

__all__ = ["apply_kraus_raw", "apply_jitter_channel", "noisy_program_rho", "density_forward"]


def apply_kraus_raw(rho: np.ndarray, ops: Sequence[np.ndarray]) -> np.ndarray:
    """``sum_i K_i rho K_i^dagger`` on a raw array.

    Unlike :meth:`repro.simulator.density.DensityMatrix.apply_kraus` this
    places no unit-trace requirement on ``rho`` — the noisy pipeline
    works with unconditional (sub-normalized) states whose lost
    probability is physical signal, not an error.
    """
    dtype = np.result_type(rho.dtype, *(op.dtype for op in ops))
    out = np.zeros(rho.shape, dtype=dtype)
    for op in ops:
        out += op @ rho @ op.conj().T
    return out


def _rotate_rho(rho: np.ndarray, k: int, theta: float) -> None:
    """In-place ``R rho R^T`` for the two-mode Givens rotation at ``k``."""
    c, s = math.cos(theta), math.sin(theta)
    r0 = rho[k].copy()
    r1 = rho[k + 1]
    rho[k] = c * r0 - s * r1
    rho[k + 1] = s * r0 + c * r1
    c0 = rho[:, k].copy()
    c1 = rho[:, k + 1]
    rho[:, k] = c * c0 - s * c1
    rho[:, k + 1] = s * c0 + c * c1


def apply_jitter_channel(rho: np.ndarray, k: int, sigma: float) -> None:
    """In-place exact ``E_eps[R(eps) rho R(eps)^T]``, ``eps ~ N(0, sigma^2)``.

    The rotation generator ``J = [[0, -1], [1, 0]]`` on modes ``(k, k+1)``
    has eigenvalues ``+-i``; averaging the rotation angle is Gaussian
    dephasing between its eigenspaces.  Worked into real arithmetic:

    - elements coupling ``{k, k+1}`` to any other mode decay by
      ``exp(-sigma^2/2)`` (eigenvalue gap 1);
    - within the 2x2 block, the identity and antisymmetric components are
      invariant and the traceless-symmetric components decay by
      ``exp(-2 sigma^2)`` (eigenvalue gap 2).
    """
    if sigma <= 0.0:
        return
    f1 = math.exp(-0.5 * sigma * sigma)
    f2 = math.exp(-2.0 * sigma * sigma)
    mask = np.ones(rho.shape[0], dtype=bool)
    mask[k] = mask[k + 1] = False
    rho[k, mask] *= f1
    rho[k + 1, mask] *= f1
    rho[mask, k] *= f1
    rho[mask, k + 1] *= f1
    b00, b01 = rho[k, k], rho[k, k + 1]
    b10, b11 = rho[k + 1, k], rho[k + 1, k + 1]
    a = 0.5 * (b00 + b11)  # identity component (invariant)
    j = 0.5 * (b10 - b01)  # antisymmetric component (commutes with R)
    c = 0.5 * (b00 - b11) * f2  # diag traceless-symmetric, gap 2
    d = 0.5 * (b01 + b10) * f2  # offdiag symmetric, gap 2
    rho[k, k] = a + c
    rho[k, k + 1] = d - j
    rho[k + 1, k] = d + j
    rho[k + 1, k + 1] = a - c


def noisy_program_rho(
    program_or_network, params: np.ndarray, rho: np.ndarray, model: NoiseModel
) -> np.ndarray:
    """Fold one noisy mesh over a density matrix, channel-exactly.

    Applies, per gate in program order: the ideal rotation, the averaged
    angle-jitter channel, and the two-mode insertion-loss damping.
    ``rho`` may be sub-normalized; it is modified in place and returned.
    """
    from repro.noise.trajectory import _as_program

    prog = _as_program(program_or_network)
    if prog.allow_phase:
        raise NoiseError(
            "the noise model supports the paper's real (phase-free) meshes; "
            "allow_phase networks are out of scope for noisy execution"
        )
    params = np.asarray(params, dtype=np.float64)
    sigma = model.theta_sigma
    loss = model.loss_per_gate
    if loss > 0.0:
        # K rho K^dagger for the diagonal amplitude-damping Kraus on both
        # modes collapses to symmetric row/column scaling — the literal
        # simulator builder, folded analytically.
        keep = float(
            amplitude_damping_kraus(prog.dim, 0, loss)[0][0, 0].real
        )
    else:
        keep = 1.0
    for g in range(prog.num_gates):
        k = int(prog.modes[g])
        _rotate_rho(rho, k, float(params[prog.theta_index[g]]))
        if sigma > 0.0:
            apply_jitter_channel(rho, k, sigma)
        if loss > 0.0:
            rho[k] *= keep
            rho[k + 1] *= keep
            rho[:, k] *= keep
            rho[:, k + 1] *= keep
    return rho


def density_forward(
    autoencoder,
    amplitudes: np.ndarray,
    model: NoiseModel,
    *,
    seed: int = 0,
    epoch: int = 0,
) -> NoisyForwardResult:
    """Exact noisy pipeline evaluation via per-sample density matrices.

    Same quantities (and the same unconditional-state convention) as
    :func:`repro.noise.trajectory.trajectory_forward`; ``trajectories``
    is reported as 1 because nothing is sampled — only finite
    ``model.shots`` introduce randomness, drawn from the same
    measurement stream as the trajectory path.
    """
    amplitudes = np.asarray(amplitudes, dtype=np.float64)
    if amplitudes.ndim == 1:
        amplitudes = amplitudes.reshape(-1, 1)
    uc, ur = autoencoder.uc, autoencoder.ur
    uc_prog = _program_for_struct(_network_struct(uc))
    ur_prog = _program_for_struct(_network_struct(ur))
    uc_params = np.asarray(uc.get_flat_params(), dtype=np.float64)
    ur_params = np.asarray(ur.get_flat_params(), dtype=np.float64)
    keep = np.asarray(autoencoder.projection.keep, dtype=np.int64)
    dim, num_samples = amplitudes.shape

    uc_clean = clean_mesh_matrix(uc_prog, uc_params)
    ur_clean = clean_mesh_matrix(ur_prog, ur_params)
    b_clean = ur_clean @ _masked_compress(uc_clean, amplitudes, keep)
    norms = np.linalg.norm(b_clean, axis=0)
    reference = b_clean / np.where(norms > 0.0, norms, 1.0)

    mask = np.zeros(dim, dtype=bool)
    mask[keep] = True
    deph_ops = dephasing_channel(dim, model.dephasing) if model.dephasing > 0 else None
    depol_ops = (
        depolarizing_channel(dim, model.depolarizing) if model.depolarizing > 0 else None
    )

    probs = np.empty((dim, num_samples), dtype=np.float64)
    fid = np.empty(num_samples, dtype=np.float64)
    trans = np.empty(num_samples, dtype=np.float64)
    for m in range(num_samples):
        rho = np.outer(amplitudes[:, m], amplitudes[:, m])
        noisy_program_rho(uc_prog, uc_params, rho, model)
        # Projection P rho P: unconditional, not renormalized.
        rho[~mask, :] = 0.0
        rho[:, ~mask] = 0.0
        if deph_ops is not None:
            rho = apply_kraus_raw(rho, deph_ops)
        if depol_ops is not None:
            # The generalized-Pauli Kraus ops are complex; their sum on a
            # real-symmetric rho is real again — drop the rounding imag.
            rho = np.ascontiguousarray(apply_kraus_raw(rho, depol_ops).real)
        noisy_program_rho(ur_prog, ur_params, rho, model)
        diag = np.clip(np.diag(rho).real.copy(), 0.0, None)
        probs[:, m] = diag
        trans[m] = float(diag.sum())
        # Conditional fidelity: <b_c| rho |b_c> / tr(rho) — the quality of
        # the surviving state, 1.0 exactly at zero noise; the lost
        # probability is reported separately as transmission.
        num = float((reference[:, m] @ rho @ reference[:, m]).real)
        fid[m] = num / trans[m] if trans[m] > 0.0 else 0.0
    probs = measure_probabilities(
        probs, model.shots, realization_rng(seed, epoch, 0, STREAM_MEASURE)
    )
    return NoisyForwardResult(
        probabilities=probs, fidelity=np.clip(fid, 0.0, 1.0), transmission=trans,
        trajectories=1,
    )
