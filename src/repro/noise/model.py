"""The :class:`NoiseModel`: one frozen description of hardware imperfection.

The paper (Section V) trains and evaluates in an exact statevector
simulator and explicitly defers physical effects.  This module promotes
those effects from one-off ablation knobs into a single first-class value
that every execution path understands:

- ``theta_sigma`` — per-gate angle miscalibration: each beamsplitter angle
  is off by ``eps ~ N(0, theta_sigma^2)``.  A fabricated mesh has *frozen*
  errors, so a realization draws one ``eps`` per gate, not per shot.
- ``loss_per_gate`` — per-gate insertion loss: each gate transmits a
  fraction ``1 - loss_per_gate`` of the light in its two modes
  (single-photon amplitude damping, ``keep = sqrt(1 - loss)`` per mode).
- ``dephasing`` — global dephasing strength ``p`` applied to the
  compressed state on the wire between ``U_C`` and ``U_R``
  (:func:`repro.simulator.density.dephasing_channel`).
- ``depolarizing`` — global depolarizing strength applied at the same
  point (:func:`repro.simulator.density.depolarizing_channel`).
- ``shots`` — finite measurement statistics at readout; ``None`` is the
  paper's exact (infinite-shot) regime.

The model is a frozen dataclass with a canonical JSON round trip
(:meth:`NoiseModel.to_json` / :meth:`NoiseModel.from_json`) so it can ride
inside a :class:`~repro.api.spec.CodecSpec`, a CLI flag or a checkpoint
without loss.  :meth:`NoiseModel.from_spec` accepts every surface syntax
(preset name, JSON object string, dict, model, ``None``).

Two execution paths consume it — see :mod:`repro.noise.density` (exact,
small) and :mod:`repro.noise.trajectory` (sampled, scalable) and the
contract notes in ``docs/noise.md``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, Mapping, Optional, Union

from repro.exceptions import NoiseError

__all__ = ["NoiseModel", "NOISE_PRESETS", "noise_preset"]


def _check_fraction(name: str, value: float, *, upper_open: bool = False) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise NoiseError(f"{name} must be a real number, got {value!r}") from None
    if not math.isfinite(out):
        raise NoiseError(f"{name} must be finite, got {out!r}")
    if out < 0.0:
        raise NoiseError(f"{name} must be >= 0, got {out!r}")
    if upper_open:
        if out >= 1.0:
            raise NoiseError(f"{name} must be < 1, got {out!r}")
    elif out > 1.0:
        raise NoiseError(f"{name} must be <= 1, got {out!r}")
    return out


@dataclasses.dataclass(frozen=True)
class NoiseModel:
    """Frozen, JSON-round-trippable description of hardware noise.

    >>> model = NoiseModel(theta_sigma=0.01, dephasing=0.05)
    >>> model.is_ideal
    False
    >>> NoiseModel.from_json(model.to_json()) == model
    True
    >>> NoiseModel.from_spec("mild").shots
    8192
    """

    theta_sigma: float = 0.0
    loss_per_gate: float = 0.0
    dephasing: float = 0.0
    depolarizing: float = 0.0
    shots: Optional[int] = None

    def __post_init__(self) -> None:
        sigma = self.theta_sigma
        try:
            sigma = float(sigma)
        except (TypeError, ValueError):
            raise NoiseError(
                f"theta_sigma must be a real number, got {sigma!r}"
            ) from None
        if not math.isfinite(sigma) or sigma < 0.0:
            raise NoiseError(f"theta_sigma must be finite and >= 0, got {sigma!r}")
        object.__setattr__(self, "theta_sigma", sigma)
        object.__setattr__(
            self,
            "loss_per_gate",
            _check_fraction("loss_per_gate", self.loss_per_gate, upper_open=True),
        )
        object.__setattr__(
            self, "dephasing", _check_fraction("dephasing", self.dephasing)
        )
        object.__setattr__(
            self, "depolarizing", _check_fraction("depolarizing", self.depolarizing)
        )
        shots = self.shots
        if shots is not None:
            if isinstance(shots, bool) or not isinstance(shots, int):
                raise NoiseError(f"shots must be None or a positive int, got {shots!r}")
            if shots < 1:
                raise NoiseError(f"shots must be None or >= 1, got {shots!r}")
            object.__setattr__(self, "shots", int(shots))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_ideal(self) -> bool:
        """True when every channel is off and measurement is exact."""
        return (
            self.theta_sigma == 0.0
            and self.loss_per_gate == 0.0
            and self.dephasing == 0.0
            and self.depolarizing == 0.0
            and self.shots is None
        )

    @property
    def has_channel_noise(self) -> bool:
        """True when any state-level channel (not just shots) is active."""
        return (
            self.theta_sigma > 0.0
            or self.loss_per_gate > 0.0
            or self.dephasing > 0.0
            or self.depolarizing > 0.0
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """A model with every channel strength multiplied by ``factor``.

        ``shots`` is kept as-is (it is a sampling budget, not a strength).
        Used to sweep degradation curves: ``model.scaled(0.5)`` is "half
        as noisy" along every axis simultaneously.

        >>> NoiseModel(dephasing=0.4, shots=100).scaled(0.5)
        NoiseModel(theta_sigma=0.0, loss_per_gate=0.0, dephasing=0.2, depolarizing=0.0, shots=100)
        """
        try:
            f = float(factor)
        except (TypeError, ValueError):
            raise NoiseError(f"scale factor must be a number, got {factor!r}") from None
        if not math.isfinite(f) or f < 0.0:
            raise NoiseError(f"scale factor must be finite and >= 0, got {factor!r}")
        return NoiseModel(
            theta_sigma=self.theta_sigma * f,
            loss_per_gate=min(self.loss_per_gate * f, math.nextafter(1.0, 0.0)),
            dephasing=min(self.dephasing * f, 1.0),
            depolarizing=min(self.depolarizing * f, 1.0),
            shots=self.shots,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe values only)."""
        return {
            "theta_sigma": self.theta_sigma,
            "loss_per_gate": self.loss_per_gate,
            "dephasing": self.dephasing,
            "depolarizing": self.depolarizing,
            "shots": self.shots,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NoiseModel":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, Mapping):
            raise NoiseError(f"noise dict must be a mapping, got {type(payload).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise NoiseError(
                f"unknown noise field(s) {unknown}; known fields: {sorted(known)}"
            )
        return cls(**dict(payload))

    def to_json(self) -> str:
        """Canonical compact JSON form (sorted keys, minimal separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "NoiseModel":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise NoiseError(f"invalid noise JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise NoiseError(
                f"noise JSON must encode an object, got {type(payload).__name__}"
            )
        return cls.from_dict(payload)

    def spec_string(self) -> str:
        """The canonical string a :class:`CodecSpec` stores: the preset name
        when the model matches a preset exactly, else canonical JSON."""
        for name, preset in NOISE_PRESETS.items():
            if preset == self:
                return name
        return self.to_json()

    @classmethod
    def from_spec(
        cls, value: Union[None, str, Mapping[str, Any], "NoiseModel"]
    ) -> Optional["NoiseModel"]:
        """Normalise any user-facing noise spec to a model (or ``None``).

        Accepts ``None``, an existing model, a preset name
        (``mild | lossy | harsh``), a JSON object string or a plain dict.

        >>> NoiseModel.from_spec(None) is None
        True
        >>> NoiseModel.from_spec('{"dephasing": 0.05}').dephasing
        0.05
        >>> NoiseModel.from_spec("harsh").theta_sigma
        0.08
        """
        if value is None:
            return None
        if isinstance(value, NoiseModel):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            text = value.strip()
            if not text:
                return None
            if text.startswith("{"):
                return cls.from_json(text)
            return noise_preset(text)
        raise NoiseError(
            "noise spec must be None, a NoiseModel, a preset name, a JSON "
            f"object string or a dict, got {type(value).__name__}"
        )


#: Named severity presets.  ``mild`` is a plausible well-calibrated
#: photonic chip; ``lossy`` adds realistic insertion loss; ``harsh`` is a
#: stress configuration where degradation must stay graceful, not cliff.
NOISE_PRESETS: Dict[str, NoiseModel] = {
    "mild": NoiseModel(
        theta_sigma=0.01,
        loss_per_gate=0.001,
        dephasing=0.02,
        depolarizing=0.01,
        shots=8192,
    ),
    "lossy": NoiseModel(
        theta_sigma=0.02,
        loss_per_gate=0.01,
        dephasing=0.05,
        depolarizing=0.02,
        shots=4096,
    ),
    "harsh": NoiseModel(
        theta_sigma=0.08,
        loss_per_gate=0.03,
        dephasing=0.15,
        depolarizing=0.10,
        shots=1024,
    ),
}


def noise_preset(name: str) -> NoiseModel:
    """Look up a preset by name; raises :class:`NoiseError` on unknown names."""
    try:
        return NOISE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(NOISE_PRESETS))
        raise NoiseError(f"unknown noise preset {name!r}; known presets: {known}") from None
