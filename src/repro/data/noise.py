"""Noise models for robustness ablations.

These corrupt *classical* images (before encoding).  Quantum-side noise
(finite measurement shots, beamsplitter imperfections) lives in
:mod:`repro.simulator.measurement` and :mod:`repro.optics.interferometer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng

__all__ = ["flip_pixels", "add_gaussian_noise", "salt_and_pepper"]


def flip_pixels(
    images: np.ndarray,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Flip a fraction of binary pixels (0 <-> 1).

    Raises if the input is not binary — flipping grayscale values is
    almost never what an experiment intends.
    """
    arr = np.asarray(images, dtype=np.float64)
    if not np.all((arr == 0.0) | (arr == 1.0)):
        raise DatasetError("flip_pixels requires strictly binary input")
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    out = arr.copy()
    mask = ensure_rng(rng).random(out.shape) < fraction
    out[mask] = 1.0 - out[mask]
    return out


def add_gaussian_noise(
    images: np.ndarray,
    sigma: float,
    rng: Optional[np.random.Generator] = None,
    clip: bool = True,
) -> np.ndarray:
    """Additive zero-mean Gaussian pixel noise, optionally clipped to [0,1]."""
    if sigma < 0:
        raise DatasetError(f"sigma must be >= 0, got {sigma}")
    arr = np.asarray(images, dtype=np.float64)
    out = arr + ensure_rng(rng).normal(0.0, sigma, size=arr.shape)
    return np.clip(out, 0.0, 1.0) if clip else out


def salt_and_pepper(
    images: np.ndarray,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Set a fraction of pixels to 0 or 1 (equal probability)."""
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    arr = np.asarray(images, dtype=np.float64)
    gen = ensure_rng(rng)
    out = arr.copy()
    mask = gen.random(out.shape) < fraction
    values = (gen.random(out.shape) < 0.5).astype(np.float64)
    out[mask] = values[mask]
    return out
