"""Image-dataset container.

:class:`ImageDataset` holds an ``(M, D, D)`` image stack together with its
flattened ``(M, N)`` matrix form, provides train/test splitting, batching
and summary statistics (effective rank — the quantity that controls how
compressible a set is into ``d`` amplitudes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.encoding.images import flatten_images, unflatten_images
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng

__all__ = ["ImageDataset"]


@dataclass
class ImageDataset:
    """An immutable stack of square images.

    Parameters
    ----------
    images:
        ``(M, D, D)`` array of pixel values in ``[0, 1]``.
    name:
        Human-readable identifier used in experiment reports.

    Examples
    --------
    >>> import numpy as np
    >>> ds = ImageDataset(np.zeros((3, 4, 4)) + 1.0, name="ones")
    >>> ds.num_samples, ds.image_size, ds.dim
    (3, 4, 16)
    """

    images: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        arr = np.asarray(self.images, dtype=np.float64)
        if arr.ndim != 3:
            raise DatasetError(
                f"images must be (M, D, D), got shape {arr.shape}"
            )
        if arr.shape[1] != arr.shape[2]:
            raise DatasetError(
                f"images must be square, got {arr.shape[1]}x{arr.shape[2]}"
            )
        if arr.shape[0] == 0:
            raise DatasetError("dataset must contain at least one image")
        if not np.all(np.isfinite(arr)):
            raise DatasetError("images contain NaN or Inf")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise DatasetError(
                f"pixel values must lie in [0, 1], got range "
                f"[{arr.min():.3g}, {arr.max():.3g}]"
            )
        object.__setattr__(self, "images", arr)

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return self.images.shape[0]

    @property
    def image_size(self) -> int:
        """Side length ``D``."""
        return self.images.shape[1]

    @property
    def dim(self) -> int:
        """Flattened dimension ``N = D * D``."""
        return self.image_size**2

    @property
    def is_binary(self) -> bool:
        return bool(np.all((self.images == 0.0) | (self.images == 1.0)))

    def matrix(self) -> np.ndarray:
        """The ``(M, N)`` row-sample data matrix ``X`` (Section II-A)."""
        return flatten_images(self.images)

    def image(self, i: int) -> np.ndarray:
        if not 0 <= i < self.num_samples:
            raise DatasetError(
                f"index {i} out of range for {self.num_samples} images"
            )
        return self.images[i].copy()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def rank(self, tol: Optional[float] = None) -> int:
        """Numerical rank of the data matrix."""
        return int(np.linalg.matrix_rank(self.matrix(), tol=tol))

    def singular_values(self) -> np.ndarray:
        return np.linalg.svd(self.matrix(), compute_uv=False)

    def effective_rank(self, energy: float = 0.99) -> int:
        """Smallest ``r`` capturing ``energy`` of the squared spectrum.

        This is the quantity that bounds lossless compressibility into
        ``d`` amplitudes: ``effective_rank <= d`` means a ``d``-channel
        quantum compression can be near-exact.
        """
        if not 0.0 < energy <= 1.0:
            raise DatasetError(f"energy must be in (0, 1], got {energy}")
        sv = self.singular_values() ** 2
        total = sv.sum()
        if total <= 0:
            raise DatasetError("dataset is all-zero")
        frac = np.cumsum(sv) / total
        return int(np.searchsorted(frac, energy) + 1)

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------
    def split(
        self,
        train_fraction: float = 0.8,
        rng: Optional[np.random.Generator] = None,
        shuffle: bool = True,
    ) -> Tuple["ImageDataset", "ImageDataset"]:
        """Split into train/test subsets (at least one sample each)."""
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        if self.num_samples < 2:
            raise DatasetError("need at least 2 samples to split")
        order = np.arange(self.num_samples)
        if shuffle:
            ensure_rng(rng).shuffle(order)
        n_train = int(round(self.num_samples * train_fraction))
        n_train = min(max(n_train, 1), self.num_samples - 1)
        return (
            ImageDataset(self.images[order[:n_train]], f"{self.name}-train"),
            ImageDataset(self.images[order[n_train:]], f"{self.name}-test"),
        )

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Yield ``(m, N)`` matrix chunks of at most ``batch_size`` rows."""
        if batch_size < 1:
            raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
        mat = self.matrix()
        for start in range(0, self.num_samples, batch_size):
            yield mat[start : start + batch_size]

    def subset(self, indices: np.ndarray | list) -> "ImageDataset":
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise DatasetError("subset must select at least one image")
        if idx.min() < 0 or idx.max() >= self.num_samples:
            raise DatasetError(
                f"subset indices out of range [0, {self.num_samples})"
            )
        return ImageDataset(self.images[idx], f"{self.name}-subset")

    @classmethod
    def from_matrix(
        cls, X: np.ndarray, name: str = "dataset"
    ) -> "ImageDataset":
        """Build from an ``(M, N)`` matrix with ``N`` a perfect square."""
        return cls(unflatten_images(np.asarray(X, dtype=np.float64)), name)

    def __len__(self) -> int:
        return self.num_samples

    def __repr__(self) -> str:
        kind = "binary" if self.is_binary else "grayscale"
        return (
            f"ImageDataset({self.name!r}, M={self.num_samples}, "
            f"{self.image_size}x{self.image_size}, {kind})"
        )
