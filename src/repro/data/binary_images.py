"""Binary image datasets, including the Fig. 4a substitute.

:func:`paper_dataset` is the reproduction's stand-in for the paper's 25
binary 4x4 images.  Requirements derived from the paper's results:

- 25 samples, 4x4, strictly binary (Section IV-A);
- compressible into ``d = 4`` amplitude channels with near-zero loss
  (Fig. 4c reaches ``min L_C = 0.017``, ``min L_R = 0.023``) — i.e. the
  data matrix must have (effective) rank <= 4;
- visually glyph-like (Fig. 4a shows block/digit shapes).

The construction uses four *disjoint-support* base patterns (2x2 quadrant
blocks by default); every union of base patterns is then both strictly
binary and exactly inside the 4-dimensional span, so the 25 images form an
exactly rank-4 binary set.  Generators with controllable extra rank
(:func:`rank_limited_binary_dataset`) and fully random sets
(:func:`random_binary_dataset`) support the ablation studies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import ImageDataset
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng

__all__ = [
    "block_basis",
    "paper_dataset",
    "random_binary_dataset",
    "rank_limited_binary_dataset",
]


def block_basis(image_size: int = 4, blocks_per_side: int = 2) -> np.ndarray:
    """Disjoint-support block patterns tiling a ``D x D`` image.

    Returns ``(blocks_per_side**2, D, D)`` binary arrays, each a solid
    ``(D/b) x (D/b)`` block.  Disjoint supports make every 0/1 union of
    patterns an exact element of their linear span — the property that
    keeps :func:`paper_dataset` simultaneously binary and rank-4.
    """
    if image_size < 2:
        raise DatasetError(f"image_size must be >= 2, got {image_size}")
    if blocks_per_side < 1 or image_size % blocks_per_side != 0:
        raise DatasetError(
            f"blocks_per_side={blocks_per_side} must divide "
            f"image_size={image_size}"
        )
    b = image_size // blocks_per_side
    patterns = []
    for r in range(blocks_per_side):
        for c in range(blocks_per_side):
            img = np.zeros((image_size, image_size))
            img[r * b : (r + 1) * b, c * b : (c + 1) * b] = 1.0
            patterns.append(img)
    return np.stack(patterns)


def paper_dataset(
    num_samples: int = 25,
    image_size: int = 4,
    rank: int = 4,
    seed: Optional[int] = 2024,
) -> ImageDataset:
    """The deterministic Fig. 4a substitute: binary, glyph-like, rank <= 4.

    The first ``2**rank - 1`` samples enumerate every non-empty union of
    the ``rank`` disjoint base patterns (deterministic, seed-independent);
    the remainder are seeded random re-draws of those unions, mimicking the
    repeated shapes visible in the paper's Fig. 4a.

    Examples
    --------
    >>> ds = paper_dataset()
    >>> ds.num_samples, ds.dim, ds.is_binary
    (25, 16, True)
    >>> ds.rank()
    4
    """
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    side = int(round(np.sqrt(rank)))
    if side * side != rank:
        raise DatasetError(
            f"rank must be a perfect square (block grid), got {rank}"
        )
    bases = block_basis(image_size, side)  # (rank, D, D)
    n_unions = 2**rank - 1
    rng = ensure_rng(seed)
    images = []
    for i in range(num_samples):
        if i < n_unions:
            mask = i + 1
        else:
            mask = int(rng.integers(1, n_unions + 1))
        coeff = np.array([(mask >> k) & 1 for k in range(rank)], dtype=float)
        images.append(np.tensordot(coeff, bases, axes=1))
    return ImageDataset(np.stack(images), name="paper-25-binary-4x4")


def random_binary_dataset(
    num_samples: int,
    image_size: int = 4,
    density: float = 0.5,
    seed: Optional[int] = None,
) -> ImageDataset:
    """i.i.d. Bernoulli binary images (full-rank in general).

    All-zero images are rerolled (they cannot be amplitude-encoded); if a
    reroll still produces zeros, one uniformly random pixel is set.
    """
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    if not 0.0 < density < 1.0:
        raise DatasetError(f"density must be in (0, 1), got {density}")
    rng = ensure_rng(seed)
    imgs = (
        rng.random((num_samples, image_size, image_size)) < density
    ).astype(np.float64)
    for i in range(num_samples):
        if imgs[i].sum() == 0:
            imgs[i] = (
                rng.random((image_size, image_size)) < density
            ).astype(np.float64)
        if imgs[i].sum() == 0:
            r, c = rng.integers(image_size), rng.integers(image_size)
            imgs[i, r, c] = 1.0
    return ImageDataset(imgs, name=f"random-binary-{num_samples}")


def rank_limited_binary_dataset(
    num_samples: int,
    rank: int,
    image_size: int = 4,
    flip_fraction: float = 0.0,
    seed: Optional[int] = None,
) -> ImageDataset:
    """Binary images with controllable dominant rank plus optional noise.

    Builds unions over ``rank`` disjoint stripe patterns, then flips
    ``flip_fraction`` of all pixels (breaking exact low-rankness) — the
    knob used by the compression-dimension ablation to study how accuracy
    degrades as data exceeds the ``d``-dimensional budget.
    """
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    n_pixels = image_size * image_size
    if not 1 <= rank <= n_pixels:
        raise DatasetError(
            f"rank must be in [1, {n_pixels}], got {rank}"
        )
    if not 0.0 <= flip_fraction < 1.0:
        raise DatasetError(
            f"flip_fraction must be in [0, 1), got {flip_fraction}"
        )
    rng = ensure_rng(seed)
    # `rank` disjoint pixel groups (contiguous stripes in flattened order).
    groups = np.array_split(np.arange(n_pixels), rank)
    bases = np.zeros((rank, n_pixels))
    for g, idx in enumerate(groups):
        bases[g, idx] = 1.0
    imgs = np.zeros((num_samples, n_pixels))
    for i in range(num_samples):
        mask = 0
        while mask == 0:
            mask = int(rng.integers(1, 2**rank))
        coeff = np.array([(mask >> k) & 1 for k in range(rank)], dtype=float)
        imgs[i] = coeff @ bases
    if flip_fraction > 0.0:
        flips = rng.random(imgs.shape) < flip_fraction
        imgs[flips] = 1.0 - imgs[flips]
        for i in range(num_samples):  # keep encodable
            if imgs[i].sum() == 0:
                imgs[i, int(rng.integers(n_pixels))] = 1.0
    return ImageDataset(
        imgs.reshape(num_samples, image_size, image_size),
        name=f"rank{rank}-binary-{num_samples}",
    )
