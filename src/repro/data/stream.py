"""Streaming shuffled mini-batches: :class:`MiniBatchStream`.

The trainer's mini-batch regime used to draw a random index subset per
iteration directly in the training loop — fine for the paper's 25
in-memory samples, wasteful once the data lives on disk (``.npy``
memmaps) or the gradient runs on a worker pool while the parent sits
idle.  :class:`MiniBatchStream` separates *scheduling* from *gathering*:

- **Deterministic schedule** — each epoch ``e`` is a full permutation
  drawn from ``SeedSequence(seed, spawn_key=(e,))`` (or the identity
  when ``shuffle=False``), cut into ``batch_size`` slices.  The schedule
  is a pure function of ``(seed, num_samples, batch_size, epoch)`` —
  independent of consumption timing, prefetch depth, or worker count —
  which is what lets ``benchmarks/bench_training.py`` demand gradient
  equality "at identical batch order".
- **Background gathering** — :meth:`batches` runs the index gathers on
  a daemon prefetch thread feeding a bounded queue, so disk reads (for
  memmap-backed sources) and batch assembly overlap the consumer's
  compute.  ``prefetch=0`` degrades to fully synchronous iteration.

Sources: an ``(M, N)`` array, a tuple of arrays sharing a sample axis
(e.g. inputs + targets), an :class:`~repro.data.dataset.ImageDataset`,
or a path (``.npy`` opened as a memmap, ``.npz``, or a results JSON
holding ``"X"``).
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import DatasetError

__all__ = ["MiniBatch", "MiniBatchStream", "load_data_matrix"]

PathLike = Union[str, Path]

#: Queue messages: ("batch", MiniBatch) | ("done", None) | ("error", exc).
_DONE = "done"


def load_data_matrix(path: PathLike) -> np.ndarray:
    """Load an ``(M, N)`` data matrix from ``.npy``/``.npz``/results JSON.

    ``.npy`` files open as read-only memmaps (batch gathers then read
    only the touched rows from disk); ``.npz`` archives use their ``X``
    entry (or their only entry); JSON files go through
    :func:`repro.io.results_io.load_results` and must hold ``"X"``.
    """
    p = Path(path)
    if not p.exists():
        raise DatasetError(f"no such data file: {p}")
    suffix = p.suffix.lower()
    if suffix == ".npy":
        return np.load(p, mmap_mode="r")
    if suffix == ".npz":
        with np.load(p) as archive:
            names = list(archive.files)
            key = "X" if "X" in names else names[0] if len(names) == 1 else None
            if key is None:
                raise DatasetError(
                    f"{p} holds {names}; expected an 'X' entry (or a "
                    "single-array archive)"
                )
            return np.asarray(archive[key])
    from repro.io.results_io import load_results

    results = load_results(p)
    if "X" not in results:
        raise DatasetError(
            f"{p} has no 'X' entry; expected a results JSON holding an "
            "(M, N) data matrix under 'X'"
        )
    return np.asarray(results["X"], dtype=np.float64)


class MiniBatch:
    """One scheduled batch: its position, indices and gathered arrays."""

    __slots__ = ("epoch", "step", "indices", "arrays")

    def __init__(
        self,
        epoch: int,
        step: int,
        indices: np.ndarray,
        arrays: Tuple[np.ndarray, ...],
    ) -> None:
        self.epoch = epoch
        #: Global batch counter (monotonic across epochs).
        self.step = step
        self.indices = indices
        self.arrays = arrays

    @property
    def data(self) -> np.ndarray:
        """The first (or only) gathered array."""
        return self.arrays[0]

    @property
    def num_samples(self) -> int:
        return int(self.indices.size)

    def __repr__(self) -> str:
        return (
            f"MiniBatch(epoch={self.epoch}, step={self.step}, "
            f"samples={self.num_samples})"
        )


class MiniBatchStream:
    """Seeded, epoch-shuffled mini-batches with background prefetch.

    Parameters
    ----------
    source:
        An array, a tuple/list of arrays sharing ``axis``, an
        :class:`~repro.data.dataset.ImageDataset` (its ``(M, N)``
        matrix), or a path accepted by :func:`load_data_matrix`.
    batch_size:
        Samples per batch; the final batch of an epoch may be smaller
        unless ``drop_last``.
    axis:
        The sample axis of every source array (0 for ``(M, N)`` data
        matrices, 1 for ``(N, M)`` amplitude batches).
    seed, shuffle:
        Epoch ``e`` uses the permutation drawn from
        ``SeedSequence(seed, spawn_key=(e,))``; ``shuffle=False`` keeps
        natural order (the schedule stays a pure function of its
        arguments either way).
    prefetch:
        Batches gathered ahead on a background thread; ``0`` disables
        the thread entirely.

    Examples
    --------
    >>> import numpy as np
    >>> stream = MiniBatchStream(np.arange(20.0).reshape(10, 2), 4, seed=7)
    >>> stream.num_samples, stream.batches_per_epoch
    (10, 3)
    >>> [mb.num_samples for mb in stream.batches(3)]
    [4, 4, 2]
    >>> a = [mb.indices.tolist() for mb in stream.batches(3)]
    >>> b = [mb.indices.tolist() for mb in stream.batches(3)]
    >>> a == b  # the schedule is deterministic, prefetch or not
    True
    """

    def __init__(
        self,
        source,
        batch_size: int,
        axis: int = 0,
        seed: int = 0,
        shuffle: bool = True,
        drop_last: bool = False,
        prefetch: int = 2,
    ) -> None:
        if batch_size < 1:
            raise DatasetError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if axis not in (0, 1):
            raise DatasetError(f"axis must be 0 or 1, got {axis}")
        if prefetch < 0:
            raise DatasetError(f"prefetch must be >= 0, got {prefetch}")
        self.arrays = self._resolve_source(source)
        for arr in self.arrays:
            if arr.ndim < axis + 1:
                raise DatasetError(
                    f"source array of shape {arr.shape} has no axis {axis}"
                )
        counts = {arr.shape[axis] for arr in self.arrays}
        if len(counts) != 1:
            raise DatasetError(
                f"source arrays disagree on sample count along axis "
                f"{axis}: {sorted(counts)}"
            )
        self.num_samples = counts.pop()
        if self.num_samples < 1:
            raise DatasetError("stream source holds no samples")
        self.batch_size = int(batch_size)
        self.axis = axis
        self.seed = int(seed)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.prefetch = int(prefetch)

    @staticmethod
    def _resolve_source(source) -> Tuple[np.ndarray, ...]:
        from repro.data.dataset import ImageDataset

        if isinstance(source, ImageDataset):
            return (source.matrix(),)
        if isinstance(source, (str, Path)):
            return (load_data_matrix(source),)
        if isinstance(source, (tuple, list)):
            if not source:
                raise DatasetError("source tuple must hold >= 1 array")
            return tuple(np.asarray(a) for a in source)
        arr = np.asarray(source)
        return (arr,)

    # ------------------------------------------------------------------
    # schedule (pure functions — no I/O, no state)
    # ------------------------------------------------------------------
    @property
    def batches_per_epoch(self) -> int:
        full, rem = divmod(self.num_samples, self.batch_size)
        return full + (1 if rem and not self.drop_last else 0)

    def __len__(self) -> int:
        return self.batches_per_epoch

    def epoch_order(self, epoch: int) -> np.ndarray:
        """The deterministic sample permutation of epoch ``epoch``."""
        if not self.shuffle:
            return np.arange(self.num_samples)
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(int(epoch),))
        )
        return rng.permutation(self.num_samples)

    def epoch_batches(self, epoch: int) -> list:
        """Epoch ``epoch``'s schedule as a list of index arrays."""
        order = self.epoch_order(epoch)
        cuts = range(0, self.num_samples, self.batch_size)
        batches = [order[i: i + self.batch_size] for i in cuts]
        if self.drop_last and batches and batches[-1].size < self.batch_size:
            batches.pop()
        return batches

    # ------------------------------------------------------------------
    # gathering
    # ------------------------------------------------------------------
    def _gather(self, indices: np.ndarray) -> Tuple[np.ndarray, ...]:
        # np.take materialises a contiguous private copy — for memmap
        # sources this is the actual disk read, done off-thread.
        return tuple(
            np.take(arr, indices, axis=self.axis) for arr in self.arrays
        )

    def _produce(
        self, num_batches: Optional[int], start_epoch: int
    ) -> Iterator[MiniBatch]:
        step = 0
        epoch = int(start_epoch)
        while num_batches is None or step < num_batches:
            for indices in self.epoch_batches(epoch):
                if num_batches is not None and step >= num_batches:
                    return
                yield MiniBatch(epoch, step, indices, self._gather(indices))
                step += 1
            epoch += 1

    def batches(
        self, num_batches: Optional[int] = None, start_epoch: int = 0
    ) -> Iterator[MiniBatch]:
        """Iterate ``num_batches`` batches across epochs (``None`` =
        unbounded), gathering up to ``prefetch`` batches ahead on a
        background thread.  Closing the generator (or exhausting it)
        always stops and joins the thread.
        """
        producer = self._produce(num_batches, start_epoch)
        if self.prefetch < 1:
            yield from producer
            return
        q: "queue.Queue" = queue.Queue(maxsize=self.prefetch)
        stop = threading.Event()

        def pump() -> None:
            try:
                for batch in producer:
                    while not stop.is_set():
                        try:
                            q.put(("batch", batch), timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                item = (_DONE, None)
            except BaseException as exc:  # surface in the consumer
                item = ("error", exc)
            while not stop.is_set():
                try:
                    q.put(item, timeout=0.1)
                    return
                except queue.Full:
                    continue

        thread = threading.Thread(
            target=pump, name="minibatch-prefetch", daemon=True
        )
        thread.start()
        try:
            while True:
                kind, value = q.get()
                if kind == _DONE:
                    return
                if kind == "error":
                    raise value
                yield value
        finally:
            stop.set()
            thread.join(timeout=5.0)

    def __iter__(self) -> Iterator[MiniBatch]:
        """One epoch (epoch 0) of batches."""
        return self.batches(self.batches_per_epoch)

    def materialize(self) -> np.ndarray:
        """The full first source array, loaded into memory, natural order."""
        return np.asarray(self.arrays[0])

    def __repr__(self) -> str:
        return (
            f"MiniBatchStream(samples={self.num_samples}, "
            f"batch_size={self.batch_size}, axis={self.axis}, "
            f"seed={self.seed}, shuffle={self.shuffle}, "
            f"prefetch={self.prefetch})"
        )
