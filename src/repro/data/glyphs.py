"""A small library of 4x4 (and 8x8) binary glyphs.

Fig. 4a of the paper shows 25 digit-like binary 4x4 images.  The exact
pixels are unpublished; these glyphs provide visually similar material for
examples and documentation, while the *reproduction* dataset
(:func:`repro.data.binary_images.paper_dataset`) is built from rank-
controlled pattern unions so the compression properties match the paper's
results (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.exceptions import DatasetError

__all__ = ["GLYPHS_4X4", "GLYPHS_8X8", "glyph", "available_glyphs"]


def _g(rows: List[str]) -> np.ndarray:
    """Parse a list of '.'/'#' strings into a binary array."""
    arr = np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in rows]
    )
    return arr


#: 4x4 binary glyphs: digits and simple shapes.
GLYPHS_4X4: Dict[str, np.ndarray] = {
    "zero": _g(["####", "#..#", "#..#", "####"]),
    "one": _g(["..#.", ".##.", "..#.", ".###"]),
    "two": _g(["###.", "..#.", ".#..", "####"]),
    "three": _g(["###.", ".##.", "...#", "###."]),
    "four": _g(["#.#.", "#.#.", "####", "..#."]),
    "five": _g(["####", "##..", "...#", "###."]),
    "seven": _g(["####", "...#", "..#.", ".#.."]),
    "cross": _g([".##.", "####", "####", ".##."]),
    "ex": _g(["#..#", ".##.", ".##.", "#..#"]),
    "tl": _g(["##..", "##..", "....", "...."]),
    "tr": _g(["..##", "..##", "....", "...."]),
    "bl": _g(["....", "....", "##..", "##.."]),
    "br": _g(["....", "....", "..##", "..##"]),
    "hbar": _g(["....", "####", "####", "...."]),
    "vbar": _g([".##.", ".##.", ".##.", ".##."]),
    "frame": _g(["####", "#..#", "#..#", "####"]),
    "solid": _g(["####", "####", "####", "####"]),
    "diag": _g(["#...", ".#..", "..#.", "...#"]),
    "anti": _g(["...#", "..#.", ".#..", "#..."]),
}

#: 8x8 glyphs used by the grayscale/large-image examples.
GLYPHS_8X8: Dict[str, np.ndarray] = {
    "ring": _g(
        [
            "..####..",
            ".#....#.",
            "#......#",
            "#......#",
            "#......#",
            "#......#",
            ".#....#.",
            "..####..",
        ]
    ),
    "plus": _g(
        [
            "...##...",
            "...##...",
            "...##...",
            "########",
            "########",
            "...##...",
            "...##...",
            "...##...",
        ]
    ),
    "checker": _g(
        [
            "##..##..",
            "##..##..",
            "..##..##",
            "..##..##",
            "##..##..",
            "##..##..",
            "..##..##",
            "..##..##",
        ]
    ),
}


def available_glyphs(size: int = 4) -> List[str]:
    """Names of the glyphs available at the given side length."""
    if size == 4:
        return sorted(GLYPHS_4X4)
    if size == 8:
        return sorted(GLYPHS_8X8)
    raise DatasetError(f"no glyph library for size {size}; use 4 or 8")


def glyph(name: str, size: int = 4) -> np.ndarray:
    """Fetch a glyph by name (a fresh copy)."""
    table = GLYPHS_4X4 if size == 4 else GLYPHS_8X8 if size == 8 else None
    if table is None:
        raise DatasetError(f"no glyph library for size {size}; use 4 or 8")
    if name not in table:
        raise DatasetError(
            f"unknown glyph {name!r}; available: {sorted(table)}"
        )
    return table[name].copy()
