"""Synthetic grayscale images.

The paper's Discussion notes the pipeline handles grayscale data (the
reconstructions in Fig. 4b are themselves grayscale); these generators
provide smooth, structured test material for the grayscale example and the
higher-dimension scaling benches.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import ImageDataset
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng

__all__ = [
    "gradient_image",
    "gaussian_blob",
    "checkerboard",
    "stripes",
    "grayscale_dataset",
]


def _check_size(size: int) -> int:
    if not isinstance(size, (int, np.integer)) or size < 2:
        raise DatasetError(f"size must be an int >= 2, got {size!r}")
    return int(size)


def gradient_image(size: int = 8, angle: float = 0.0) -> np.ndarray:
    """Linear intensity ramp across the image at the given angle (radians)."""
    size = _check_size(size)
    ys, xs = np.mgrid[0:size, 0:size] / max(size - 1, 1)
    ramp = np.cos(angle) * xs + np.sin(angle) * ys
    lo, hi = ramp.min(), ramp.max()
    if hi - lo < 1e-12:
        return np.full((size, size), 0.5)
    return (ramp - lo) / (hi - lo)


def gaussian_blob(
    size: int = 8,
    center: Optional[Sequence[float]] = None,
    sigma: float = 0.25,
) -> np.ndarray:
    """An isotropic Gaussian bump, peak value 1."""
    size = _check_size(size)
    if sigma <= 0:
        raise DatasetError(f"sigma must be positive, got {sigma}")
    if center is None:
        center = (0.5, 0.5)
    cy, cx = float(center[0]), float(center[1])
    ys, xs = np.mgrid[0:size, 0:size] / max(size - 1, 1)
    r2 = (ys - cy) ** 2 + (xs - cx) ** 2
    return np.exp(-r2 / (2.0 * sigma**2))


def checkerboard(size: int = 8, cell: int = 2) -> np.ndarray:
    """Binary checkerboard with ``cell x cell`` squares."""
    size = _check_size(size)
    if cell < 1:
        raise DatasetError(f"cell must be >= 1, got {cell}")
    ys, xs = np.mgrid[0:size, 0:size]
    return (((ys // cell) + (xs // cell)) % 2).astype(np.float64)


def stripes(
    size: int = 8, period: int = 2, horizontal: bool = True
) -> np.ndarray:
    """Sinusoidal stripes normalised to [0, 1]."""
    size = _check_size(size)
    if period < 1:
        raise DatasetError(f"period must be >= 1, got {period}")
    axis = np.arange(size)
    wave = 0.5 * (1.0 + np.sin(2.0 * np.pi * axis / period))
    return (
        np.tile(wave[:, None], (1, size))
        if horizontal
        else np.tile(wave[None, :], (size, 1))
    )


def grayscale_dataset(
    num_samples: int = 16,
    size: int = 8,
    seed: Optional[int] = None,
) -> ImageDataset:
    """A seeded mixture of blobs, gradients, stripes and checkerboards.

    Each image is a random convex combination of two structured templates
    — smooth enough to compress well yet varied enough to be a meaningful
    reconstruction benchmark.
    """
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    rng = ensure_rng(seed)
    makers = [
        lambda: gradient_image(size, angle=float(rng.uniform(0, np.pi))),
        lambda: gaussian_blob(
            size,
            center=(float(rng.uniform(0.2, 0.8)), float(rng.uniform(0.2, 0.8))),
            sigma=float(rng.uniform(0.15, 0.4)),
        ),
        lambda: checkerboard(size, cell=int(rng.integers(1, max(size // 2, 2)))),
        lambda: stripes(
            size,
            period=int(rng.integers(2, size)),
            horizontal=bool(rng.integers(2)),
        ),
    ]
    imgs = np.empty((num_samples, size, size))
    for i in range(num_samples):
        a = makers[int(rng.integers(len(makers)))]()
        b = makers[int(rng.integers(len(makers)))]()
        w = float(rng.uniform(0.3, 0.7))
        img = w * a + (1 - w) * b
        peak = img.max()
        imgs[i] = img / peak if peak > 0 else img + 0.5
    return ImageDataset(imgs, name=f"grayscale-{num_samples}x{size}x{size}")
