"""Datasets: the paper's 25 binary 4x4 images and parametric generators.

The authors never published their pixel data, so
:func:`~repro.data.binary_images.paper_dataset` builds a deterministic
substitute with the properties the paper's results require: 25 binary 4x4
glyph-like images whose matrix has low effective rank (compressible into
``d = 4`` amplitudes).  Generators for higher-rank binary sets, grayscale
images and noise models support the ablation experiments.
"""

from repro.data.dataset import ImageDataset
from repro.data.stream import MiniBatch, MiniBatchStream, load_data_matrix
from repro.data.glyphs import GLYPHS_4X4, glyph, available_glyphs
from repro.data.binary_images import (
    paper_dataset,
    block_basis,
    random_binary_dataset,
    rank_limited_binary_dataset,
)
from repro.data.grayscale import (
    gradient_image,
    gaussian_blob,
    checkerboard,
    stripes,
    grayscale_dataset,
)
from repro.data.noise import flip_pixels, add_gaussian_noise, salt_and_pepper

__all__ = [
    "ImageDataset",
    "MiniBatch",
    "MiniBatchStream",
    "load_data_matrix",
    "GLYPHS_4X4",
    "glyph",
    "available_glyphs",
    "paper_dataset",
    "block_basis",
    "random_binary_dataset",
    "rank_limited_binary_dataset",
    "gradient_image",
    "gaussian_blob",
    "checkerboard",
    "stripes",
    "grayscale_dataset",
    "flip_pixels",
    "add_gaussian_noise",
    "salt_and_pepper",
]
