"""Mesh layouts and Givens-chain synthesis of orthogonal matrices.

Two complementary facilities:

- :func:`rectangular_mesh_layout` describes the gate placement of the
  paper's network (Fig. 3): ``layers`` columns, each containing the
  ``N-1`` adjacent-mode gates ``(0,1), (1,2), ..., (N-2, N-1)`` — the
  rectangular arrangement of Clements et al. (paper ref. [19]);
- :func:`reck_decompose` factors an arbitrary real orthogonal matrix into
  a chain of adjacent-mode Givens rotations plus a ±1 diagonal — the
  triangular (Reck-style) synthesis.  This answers the deployment
  question: any trained ``U_C`` / ``U_R`` (or any target orthogonal) can
  be programmed into a physical mesh, and
  :func:`circuit_from_orthogonal` returns the executable
  :class:`~repro.simulator.circuit.Circuit`.

Sign diagonals: a pair of ``-1`` s on modes ``(a, b)`` is realised exactly
by the chain of ``pi``-rotations at modes ``a, a+1, ..., b-1`` (each
``G(pi)`` negates two adjacent modes; the interior modes cancel pairwise).
A matrix with ``det = -1`` contains an *odd* number of sign flips and lies
outside SO(N) — it cannot be built from rotations at all and physically
requires a phase shifter, so :func:`circuit_from_orthogonal` raises for it.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.exceptions import DecompositionError
from repro.simulator.circuit import Circuit
from repro.simulator.gates import BeamsplitterGate, PhaseGate

__all__ = [
    "rectangular_mesh_layout",
    "mesh_depth",
    "reck_decompose",
    "circuit_from_orthogonal",
    "circuit_from_unitary",
]


def rectangular_mesh_layout(dim: int, layers: int) -> List[List[int]]:
    """Gate mode-positions of the paper's layered mesh (Fig. 3).

    Returns one list per layer; each inner list holds the first mode index
    ``k`` of every gate ``U^(k,k+1)`` in application order.

    Examples
    --------
    >>> rectangular_mesh_layout(4, 2)
    [[0, 1, 2], [0, 1, 2]]
    """
    if dim < 2:
        raise DecompositionError(f"dim must be >= 2, got {dim}")
    if layers < 1:
        raise DecompositionError(f"layers must be >= 1, got {layers}")
    return [list(range(dim - 1)) for _ in range(layers)]


def mesh_depth(dim: int, layers: int) -> int:
    """Total gate count of a layered mesh: ``layers * (N - 1)``.

    The paper notes each layer is "N-1 quantum gate combinations"; full
    SO(N) coverage needs ``N(N-1)/2`` independent rotations, i.e. at least
    ``ceil(N/2)`` layers.
    """
    if dim < 2:
        raise DecompositionError(f"dim must be >= 2, got {dim}")
    if layers < 1:
        raise DecompositionError(f"layers must be >= 1, got {layers}")
    return layers * (dim - 1)


def reck_decompose(
    u: np.ndarray, atol: float = 1e-10
) -> Tuple[List[Tuple[int, float]], np.ndarray]:
    """Factor a real orthogonal ``u`` into adjacent Givens rotations.

    Returns ``(rotations, signs)`` with ``rotations`` a list of
    ``(mode, theta)`` pairs such that

    ``u = G(mode_1, theta_1) @ ... @ G(mode_K, theta_K) @ diag(signs)``

    where each ``G`` is the rotation ``[[c, -s], [s, c]]`` embedded at
    ``(mode, mode+1)`` and ``signs`` is a ±1 vector with
    ``prod(signs) = det(u)``.

    Raises
    ------
    DecompositionError
        If ``u`` is not square or not orthogonal to tolerance ``atol``.
    """
    mat = np.asarray(u, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise DecompositionError(
            f"expected a square matrix, got shape {mat.shape}"
        )
    n = mat.shape[0]
    if np.max(np.abs(mat.T @ mat - np.eye(n))) > max(atol, 1e-8):
        raise DecompositionError(
            "matrix is not orthogonal; reck_decompose only applies to real "
            "orthogonal matrices (polar-project first if needed)"
        )
    work = mat.copy()
    applied: List[Tuple[int, float]] = []
    # QR by adjacent Givens: null below-diagonal entries column by column,
    # bottom-up, rotating rows (row-1, row) from the left with G^T(theta):
    # [[c, s], [-s, c]] @ [a; b] = [r; 0] for theta = atan2(b, a).
    for col in range(n - 1):
        for row in range(n - 1, col, -1):
            a = work[row - 1, col]
            b = work[row, col]
            if abs(b) <= atol:
                continue
            theta = math.atan2(b, a)
            c, s = math.cos(theta), math.sin(theta)
            r0 = work[row - 1].copy()
            r1 = work[row].copy()
            work[row - 1] = c * r0 + s * r1
            work[row] = -s * r0 + c * r1
            applied.append((row - 1, theta))
    diag = np.diagonal(work).copy()
    if np.max(np.abs(work - np.diag(diag))) > 1e-7:
        raise DecompositionError(
            "Givens reduction did not reach diagonal form; the input may "
            "be ill-conditioned"
        )
    signs = np.sign(diag)
    signs[signs == 0] = 1.0
    # (G^T_L ... G^T_1) u = D  =>  u = G_1 G_2 ... G_L D, in `applied` order.
    return applied, signs


def _sign_pair_gates(a: int, b: int) -> List[BeamsplitterGate]:
    """Gates realising ``diag`` with ``-1`` exactly at modes ``a`` and ``b``.

    The chain of ``G(pi)`` at modes ``a..b-1`` negates modes ``a`` and
    ``b`` only: each ``G(pi)`` negates two adjacent modes and the interior
    modes are negated twice.
    """
    if not a < b:
        raise DecompositionError(f"need a < b, got ({a}, {b})")
    return [BeamsplitterGate(m, math.pi) for m in range(a, b)]


def circuit_from_orthogonal(u: np.ndarray, atol: float = 1e-10) -> Circuit:
    """Executable circuit reproducing a real orthogonal ``u`` with det = +1.

    Combines :func:`reck_decompose` with exact ``pi``-rotation realisation
    of the sign diagonal.  Gates are appended so that
    ``circuit.apply(x) == u @ x``.

    Raises
    ------
    DecompositionError
        If ``det(u) = -1``: such a matrix is a reflection and cannot be
        composed from rotations; physically it needs one ``pi`` phase
        shifter (see :class:`repro.simulator.gates.PhaseGate`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.simulator.unitary import random_orthogonal
    >>> u = random_orthogonal(5, np.random.default_rng(0), special=True)
    >>> c = circuit_from_orthogonal(u)
    >>> bool(np.allclose(c.unitary(), u, atol=1e-9))
    True
    """
    rotations, signs = reck_decompose(u, atol=atol)
    n = np.asarray(u).shape[0]
    neg = [i for i in range(n) if signs[i] < 0]
    if len(neg) % 2 == 1:
        raise DecompositionError(
            "det(u) = -1: a reflection cannot be built from rotations "
            "alone; use circuit_from_unitary (adds phase shifters) or "
            "flip one column upstream"
        )
    sign_gates: List[BeamsplitterGate] = []
    for j in range(0, len(neg), 2):
        sign_gates.extend(_sign_pair_gates(neg[j], neg[j + 1]))
    circuit = Circuit(n)
    # u = G_1 ... G_L D.  Circuit.apply computes G_last ... G_first x, so
    # append D's gates first, then the rotations in reverse factor order.
    for g in sign_gates:
        circuit.append(g)
    for mode, theta in reversed(rotations):
        circuit.append(BeamsplitterGate(mode, theta))
    return circuit


def circuit_from_unitary(u: np.ndarray, atol: float = 1e-10) -> Circuit:
    """Synthesise an arbitrary U(N) unitary: rotations + phase shifters.

    This is the full Clements-style capability of the paper's ref. [19]:
    where :func:`circuit_from_orthogonal` covers the paper's real network,
    a general complex unitary additionally needs one phase shifter ahead
    of each nulling rotation plus a final output phase layer.

    The factorisation nulls below-diagonal entries column by column: to
    null ``b = u[row, col]`` against ``a = u[row-1, col]`` we first align
    phases with ``P = diag(..., e^{i phi}, ...)`` on ``row`` (with ``phi =
    arg(a) - arg(b)``), then apply the real Givens rotation with ``theta =
    atan2(|b|, |a|)``.  The residual diagonal of unit-modulus phases is
    realised by one :class:`PhaseGate` per mode.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.simulator.unitary import haar_random_unitary
    >>> u = haar_random_unitary(5, np.random.default_rng(0))
    >>> c = circuit_from_unitary(u)
    >>> bool(np.allclose(c.unitary(), u, atol=1e-9))
    True
    """
    mat = np.asarray(u, dtype=np.complex128)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise DecompositionError(
            f"expected a square matrix, got shape {mat.shape}"
        )
    n = mat.shape[0]
    if np.max(np.abs(np.conj(mat.T) @ mat - np.eye(n))) > max(atol, 1e-8):
        raise DecompositionError("matrix is not unitary")
    work = mat.copy()
    applied: List[Tuple[str, int, float]] = []  # ("phase"|"rot", mode, value)
    for col in range(n - 1):
        for row in range(n - 1, col, -1):
            a = work[row - 1, col]
            b = work[row, col]
            if abs(b) <= atol:
                continue
            # Phase-align row `row` with row `row-1` (on this column).
            phi = float(np.angle(a) - np.angle(b)) if abs(a) > atol else float(
                -np.angle(b)
            )
            work[row] = work[row] * np.exp(1j * phi)
            applied.append(("phase", row, phi))
            a = work[row - 1, col]
            b = work[row, col]
            theta = math.atan2(abs(b), abs(a)) if abs(a) > atol else math.pi / 2
            # With aligned phases the pair (a, b) = e^{i psi}(|a|, |b|), so
            # the real rotation nulls b exactly.
            c, s = math.cos(theta), math.sin(theta)
            r0 = work[row - 1].copy()
            r1 = work[row].copy()
            work[row - 1] = c * r0 + s * r1
            work[row] = -s * r0 + c * r1
            applied.append(("rot", row - 1, theta))
    diag = np.diagonal(work).copy()
    if np.max(np.abs(work - np.diag(diag))) > 1e-7:
        raise DecompositionError(
            "unitary reduction did not reach diagonal form"
        )
    if np.max(np.abs(np.abs(diag) - 1.0)) > 1e-7:
        raise DecompositionError("residual diagonal is not unit-modulus")
    # (ops_L ... ops_1) u = D  =>  u = inv(ops_1) ... inv(ops_L) D.
    circuit = Circuit(n)
    for mode in range(n):
        phase = float(np.angle(diag[mode]))
        if abs(phase) > atol:
            circuit.append(PhaseGate(mode, phase))
    for kind, mode, value in reversed(applied):
        if kind == "phase":
            # inverse of diag phase phi on `mode` is -phi... but we need
            # the *forward* factor: applied op was P(phi); its inverse in
            # the factorisation of u is P(-phi).
            circuit.append(PhaseGate(mode, -value))
        else:
            # inverse of G^T(theta) is G(theta).
            circuit.append(BeamsplitterGate(mode, value))
    return circuit
