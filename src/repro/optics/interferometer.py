"""Programmable multiport interferometer with imperfection models.

The paper's deployment story is that trained parameters "can also be
directly set into the corresponding position interferometer for physical
implementation" (Section III-C).  :class:`Interferometer` models that
device: a rectangular mesh whose splitting angles are programmed from a
trained :class:`~repro.network.quantum_network.QuantumNetwork`, subject to
an :class:`ImperfectionModel` capturing the dominant hardware errors:

- ``theta_sigma`` — Gaussian miscalibration of each programmed angle
  (thermo-optic phase-setting error);
- ``loss_per_gate`` — fractional power loss per beamsplitter crossing
  (insertion loss), making the transfer sub-unitary;
- finite measurement shots are modelled downstream by
  :func:`repro.simulator.measurement.estimate_probabilities`.

The hardware-realism bench sweeps these knobs to show how the paper's
accuracy degrades on a physical device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import GateError, NetworkConfigError
from repro.network.quantum_network import QuantumNetwork
from repro.utils.rng import ensure_rng

__all__ = ["ImperfectionModel", "Interferometer"]


@dataclass(frozen=True)
class ImperfectionModel:
    """Hardware-error parameters for a programmed mesh.

    Attributes
    ----------
    theta_sigma:
        Std-dev (radians) of i.i.d. Gaussian error added to every
        programmed angle.
    loss_per_gate:
        Power loss per beamsplitter in ``[0, 1)``; amplitudes through a
        gate are scaled by ``sqrt(1 - loss_per_gate)``.
    """

    theta_sigma: float = 0.0
    loss_per_gate: float = 0.0

    def __post_init__(self) -> None:
        if self.theta_sigma < 0 or not math.isfinite(self.theta_sigma):
            raise GateError(
                f"theta_sigma must be >= 0, got {self.theta_sigma}"
            )
        if not 0.0 <= self.loss_per_gate < 1.0:
            raise GateError(
                f"loss_per_gate must be in [0, 1), got {self.loss_per_gate}"
            )

    @property
    def is_ideal(self) -> bool:
        return self.theta_sigma == 0.0 and self.loss_per_gate == 0.0


class Interferometer:
    """A mesh of beamsplitters programmed with explicit angle settings.

    Parameters
    ----------
    dim:
        Number of optical modes.
    thetas:
        ``(layers, dim - 1)`` programmed angles.
    descending:
        Gate order within a layer (matches the source network).
    imperfections:
        Optional :class:`ImperfectionModel`; defaults to ideal.
    rng:
        Generator used to draw the *frozen* miscalibration: angle errors
        are sampled once at programming time (a fabricated/calibrated chip
        has a fixed error, not a fresh one per shot).
    """

    def __init__(
        self,
        dim: int,
        thetas: np.ndarray,
        descending: bool = False,
        imperfections: Optional[ImperfectionModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        theta = np.asarray(thetas, dtype=np.float64)
        if theta.ndim != 2 or theta.shape[1] != dim - 1:
            raise NetworkConfigError(
                f"thetas must be (layers, {dim - 1}), got {theta.shape}"
            )
        if not np.all(np.isfinite(theta)):
            raise NetworkConfigError("thetas contain NaN or Inf")
        self.dim = int(dim)
        self.descending = bool(descending)
        self.imperfections = imperfections or ImperfectionModel()
        self.programmed_thetas = theta.copy()
        if self.imperfections.theta_sigma > 0:
            gen = ensure_rng(rng)
            self.effective_thetas = theta + gen.normal(
                0.0, self.imperfections.theta_sigma, size=theta.shape
            )
        else:
            self.effective_thetas = theta.copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls,
        network: QuantumNetwork,
        imperfections: Optional[ImperfectionModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "Interferometer":
        """Program an interferometer with a trained network's angles."""
        if network.allow_phase:
            raise NetworkConfigError(
                "Interferometer models the paper's real mesh; complex "
                "networks would additionally need phase shifters"
            )
        return cls(
            network.dim,
            network.theta_matrix,
            descending=network.descending,
            imperfections=imperfections,
            rng=rng,
        )

    @property
    def num_layers(self) -> int:
        return self.programmed_thetas.shape[0]

    @property
    def num_gates(self) -> int:
        return self.num_layers * (self.dim - 1)

    def total_transmission(self) -> float:
        """Worst-case power transmission through the full mesh.

        Every mode crosses at most ``2`` gates per layer (its left and
        right neighbours); with per-gate power loss ``l`` the deepest path
        sees ``(1 - l)`` per crossing.  We report the uniform-loss figure
        ``(1 - l)^(2 * layers)``, the standard depth-loss estimate for
        rectangular meshes.
        """
        keep = 1.0 - self.imperfections.loss_per_gate
        return float(keep ** (2 * self.num_layers))

    # ------------------------------------------------------------------
    def apply(self, data: np.ndarray) -> np.ndarray:
        """Propagate ``(N, M)`` amplitudes through the (imperfect) mesh.

        With loss, output columns are sub-normalised; renormalising and
        resampling is the caller's choice (the benches post-select).
        """
        arr = np.asarray(data, dtype=np.float64)
        squeeze = arr.ndim == 1
        out = np.array(arr.reshape(self.dim, -1), copy=True)
        keep_amp = math.sqrt(1.0 - self.imperfections.loss_per_gate)
        order = range(self.dim - 1)
        for p in range(self.num_layers):
            modes = reversed(order) if self.descending else order
            for k in modes:
                theta = self.effective_thetas[p, k]
                c, s = math.cos(theta), math.sin(theta)
                r0 = out[k].copy()
                r1 = out[k + 1]
                out[k] = keep_amp * (c * r0 - s * r1)
                out[k + 1] = keep_amp * (s * r0 + c * r1)
        return out.ravel() if squeeze else out

    def transfer_matrix(self) -> np.ndarray:
        """The (sub-)unitary ``N x N`` transfer matrix of the device."""
        return self.apply(np.eye(self.dim))

    def __repr__(self) -> str:
        imp = self.imperfections
        return (
            f"Interferometer(dim={self.dim}, layers={self.num_layers}, "
            f"theta_sigma={imp.theta_sigma}, loss={imp.loss_per_gate})"
        )
