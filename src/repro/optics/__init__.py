"""Optical-interferometer realisation of the quantum network.

The paper's network "is more suitable for optical quantum circuits" and is
"commonly implemented by optical quantum circuits" (Section III, citing
Clements et al., its ref. [19]).  This subpackage closes the loop between
the trained parameters and a physical multiport interferometer:

- :mod:`~repro.optics.beamsplitter` — 2x2 beamsplitter blocks and lossy
  variants;
- :mod:`~repro.optics.mesh` — mesh layouts (the paper's rectangular layer
  arrangement) and Givens-chain synthesis of arbitrary real orthogonal
  matrices (triangular, Reck-style);
- :mod:`~repro.optics.interferometer` — a programmable interferometer with
  imperfection models (angle miscalibration, per-splitter loss) used by the
  hardware-realism benches.
"""

from repro.optics.beamsplitter import (
    beamsplitter_block,
    lossy_beamsplitter_block,
)
from repro.optics.mesh import (
    rectangular_mesh_layout,
    reck_decompose,
    circuit_from_orthogonal,
    circuit_from_unitary,
    mesh_depth,
)
from repro.optics.interferometer import (
    Interferometer,
    ImperfectionModel,
)

__all__ = [
    "beamsplitter_block",
    "lossy_beamsplitter_block",
    "rectangular_mesh_layout",
    "reck_decompose",
    "circuit_from_orthogonal",
    "circuit_from_unitary",
    "mesh_depth",
    "Interferometer",
    "ImperfectionModel",
]
