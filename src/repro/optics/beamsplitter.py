"""Beamsplitter block matrices, ideal and lossy.

The ideal block is the same ``T(theta, alpha)`` as
:class:`repro.simulator.gates.BeamsplitterGate`; this module adds the
*lossy* variant used by the hardware-realism ablation: a uniform amplitude
transmission ``sqrt(1 - loss)`` multiplying the block, the standard
phenomenological insertion-loss model for integrated photonics.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GateError

__all__ = ["beamsplitter_block", "lossy_beamsplitter_block"]


def beamsplitter_block(theta: float, alpha: float = 0.0) -> np.ndarray:
    """Ideal 2x2 beamsplitter block (Clements convention, Fig. 2).

    Examples
    --------
    >>> import numpy as np
    >>> b = beamsplitter_block(0.0)
    >>> np.allclose(b, np.eye(2))
    True
    """
    if not (math.isfinite(theta) and math.isfinite(alpha)):
        raise GateError("theta and alpha must be finite")
    c, s = math.cos(theta), math.sin(theta)
    if alpha == 0.0:
        return np.array([[c, -s], [s, c]])
    phase = complex(math.cos(alpha), math.sin(alpha))
    return np.array([[phase * c, -s], [phase * s, c]], dtype=np.complex128)


def lossy_beamsplitter_block(
    theta: float, loss: float, alpha: float = 0.0
) -> np.ndarray:
    """Beamsplitter with fractional power loss per pass.

    ``loss`` is the power (intensity) loss in ``[0, 1)``; amplitudes are
    scaled by ``sqrt(1 - loss)``.  The resulting block is sub-unitary:
    ``B^dagger B = (1 - loss) I``, which is how photon loss appears at the
    amplitude level (the lost population is traced out).
    """
    if not 0.0 <= loss < 1.0:
        raise GateError(f"loss must be in [0, 1), got {loss}")
    return math.sqrt(1.0 - loss) * beamsplitter_block(theta, alpha)
