"""Minimal PGM/PBM image IO (no external imaging dependencies).

Binary images of the paper are written as PBM (P1 ASCII / P4 packed)
and grayscale images as PGM (P2 ASCII / P5 raw).  The ASCII flavours
are trivially inspectable in a terminal; the raw flavours are what real
image tooling emits and are 8x (P4) / ~3x (P5) smaller.  ``read_pgm``
and ``read_pbm`` auto-detect the flavour from the magic number, so the
imaging CLI eats either transparently.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.exceptions import SerializationError

__all__ = ["write_pgm", "read_pgm", "write_pbm", "read_pbm"]

PathLike = Union[str, Path]

_WHITESPACE = b" \t\r\n\x0b\x0c"


def _header_tokens(data: bytes, count: int) -> Tuple[List[str], int]:
    """Read ``count`` whitespace-separated Netpbm header tokens.

    Returns the tokens and the offset just past the single whitespace
    byte terminating the last one — the raster start for the binary
    (P4/P5) flavours.  ``#`` comments run to end of line, anywhere in
    the header.  Binary-safe: never decodes raster bytes as text.
    """
    tokens: List[str] = []
    i, n = 0, len(data)
    while len(tokens) < count:
        while i < n:
            c = data[i : i + 1]
            if c in _WHITESPACE:
                i += 1
            elif c == b"#":
                j = data.find(b"\n", i)
                i = n if j < 0 else j + 1
            else:
                break
        j = i
        while j < n and data[j : j + 1] not in _WHITESPACE + b"#":
            j += 1
        if j == i:
            raise SerializationError(
                f"truncated Netpbm header: expected {count} tokens, "
                f"found {len(tokens)}"
            )
        try:
            tokens.append(data[i:j].decode("ascii"))
        except UnicodeDecodeError as exc:
            raise SerializationError(
                f"non-ASCII bytes in Netpbm header: {exc}"
            ) from exc
        i = j
    if i < n and data[i : i + 1] in _WHITESPACE:
        i += 1  # the single whitespace separating header from raster
    return tokens, i


def _check_2d(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise SerializationError(
            f"image must be 2-D, got shape {arr.shape}"
        )
    return arr


def write_pgm(
    image: np.ndarray,
    path: PathLike,
    max_value: int = 255,
    binary: bool = False,
) -> None:
    """Write a 2-D array in [0, 1] as a PGM file.

    ``binary=False`` writes ASCII P2; ``binary=True`` writes raw P5
    (one byte per pixel, or big-endian 16-bit when ``max_value`` > 255,
    per the Netpbm spec).
    """
    arr = _check_2d(image)
    if not 1 <= max_value <= 65535:
        raise SerializationError(
            f"max_value must be in [1, 65535], got {max_value}"
        )
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise SerializationError(
            f"pixel values must be in [0, 1], got range "
            f"[{arr.min():.3g}, {arr.max():.3g}]"
        )
    levels = np.rint(arr * max_value).astype(np.uint32)
    h, w = levels.shape
    if binary:
        header = f"P5\n{w} {h}\n{max_value}\n".encode("ascii")
        dtype = np.uint8 if max_value <= 255 else ">u2"
        raster = np.ascontiguousarray(levels, dtype=dtype).tobytes()
        Path(path).write_bytes(header + raster)
        return
    lines = ["P2", f"{w} {h}", f"{max_value}"]
    lines += [" ".join(str(int(v)) for v in row) for row in levels]
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_pgm(path: PathLike) -> np.ndarray:
    """Read a PGM (ASCII P2 or raw P5) file into a [0, 1] float array."""
    data = Path(path).read_bytes()
    if data[:2] not in (b"P2", b"P5"):
        raise SerializationError("not a PGM (P2/P5) file")
    try:
        tokens, offset = _header_tokens(data, 4)
        magic = tokens[0]
        w, h, maxv = int(tokens[1]), int(tokens[2]), int(tokens[3])
    except ValueError as exc:
        raise SerializationError(f"malformed PGM header: {exc}") from exc
    if w < 1 or h < 1 or not 1 <= maxv <= 65535:
        raise SerializationError(
            f"bad PGM geometry: {w}x{h}, max {maxv}"
        )
    if magic == "P2":
        text = data[offset:].decode("ascii", errors="replace")
        body = [
            tok
            for line in text.splitlines()
            for tok in line.split("#", 1)[0].split()
        ]
        try:
            values = np.array([int(t) for t in body], dtype=np.float64)
        except ValueError as exc:
            raise SerializationError(f"malformed PGM: {exc}") from exc
        if values.size != w * h:
            raise SerializationError(
                f"PGM header promises {w * h} pixels, found {values.size}"
            )
    else:
        dtype = np.dtype(np.uint8) if maxv <= 255 else np.dtype(">u2")
        expected = w * h * dtype.itemsize
        raster = data[offset:]
        if len(raster) != expected:
            raise SerializationError(
                f"P5 raster is {len(raster)} bytes, expected {expected}"
            )
        values = np.frombuffer(raster, dtype=dtype).astype(np.float64)
    if values.min() < 0 or values.max() > maxv:
        raise SerializationError("PGM pixel values exceed the stated maximum")
    return (values / maxv).reshape(h, w)


def write_pbm(
    image: np.ndarray, path: PathLike, binary: bool = False
) -> None:
    """Write a strictly binary 2-D array as a PBM file.

    PBM convention: 1 = black; we map pixel value 1.0 -> 1.
    ``binary=False`` writes ASCII P1; ``binary=True`` writes raw P4
    (rows packed MSB-first into ceil(w / 8) bytes each).
    """
    arr = _check_2d(image)
    if not np.all((arr == 0.0) | (arr == 1.0)):
        raise SerializationError("PBM requires strictly binary pixel values")
    h, w = arr.shape
    if binary:
        header = f"P4\n{w} {h}\n".encode("ascii")
        packed = np.packbits(arr.astype(np.uint8), axis=1)
        Path(path).write_bytes(header + packed.tobytes())
        return
    lines = ["P1", f"{w} {h}"]
    lines += [" ".join(str(int(v)) for v in row) for row in arr]
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_pbm(path: PathLike) -> np.ndarray:
    """Read a PBM (ASCII P1 or raw P4) file into a {0, 1} float array."""
    data = Path(path).read_bytes()
    if data[:2] not in (b"P1", b"P4"):
        raise SerializationError("not a PBM (P1/P4) file")
    try:
        tokens, offset = _header_tokens(data, 3)
        magic = tokens[0]
        w, h = int(tokens[1]), int(tokens[2])
    except ValueError as exc:
        raise SerializationError(f"malformed PBM header: {exc}") from exc
    if w < 1 or h < 1:
        raise SerializationError(f"bad PBM geometry: {w}x{h}")
    if magic == "P1":
        # The P1 raster allows pixels with *or without* separating
        # whitespace ("0110"), so parse character-wise, not by token.
        text = data[offset:].decode("ascii", errors="replace")
        clean = "".join(
            line.split("#", 1)[0] for line in text.splitlines()
        )
        bits = [c for c in clean if not c.isspace()]
        if any(c not in "01" for c in bits):
            raise SerializationError("P1 raster has non-binary characters")
        if len(bits) != w * h:
            raise SerializationError(
                f"PBM header promises {w * h} pixels, found {len(bits)}"
            )
        values = np.array([int(c) for c in bits], dtype=np.float64)
        return values.reshape(h, w)
    row_bytes = -(-w // 8)
    expected = h * row_bytes
    raster = data[offset:]
    if len(raster) != expected:
        raise SerializationError(
            f"P4 raster is {len(raster)} bytes, expected {expected}"
        )
    packed = np.frombuffer(raster, dtype=np.uint8).reshape(h, row_bytes)
    return np.unpackbits(packed, axis=1)[:, :w].astype(np.float64)
