"""Minimal PGM/PBM image IO (no external imaging dependencies).

Binary images of the paper are written as PBM (P1, ASCII) and grayscale
reconstructions as PGM (P2, ASCII) — both trivially inspectable in a
terminal and readable by virtually every image tool.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import SerializationError

__all__ = ["write_pgm", "read_pgm", "write_pbm"]

PathLike = Union[str, Path]


def write_pgm(
    image: np.ndarray, path: PathLike, max_value: int = 255
) -> None:
    """Write a 2-D array in [0, 1] as an ASCII PGM (P2) file."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise SerializationError(
            f"image must be 2-D, got shape {arr.shape}"
        )
    if not 1 <= max_value <= 65535:
        raise SerializationError(
            f"max_value must be in [1, 65535], got {max_value}"
        )
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise SerializationError(
            f"pixel values must be in [0, 1], got range "
            f"[{arr.min():.3g}, {arr.max():.3g}]"
        )
    levels = np.rint(arr * max_value).astype(int)
    h, w = levels.shape
    lines = [f"P2", f"{w} {h}", f"{max_value}"]
    lines += [" ".join(str(v) for v in row) for row in levels]
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_pgm(path: PathLike) -> np.ndarray:
    """Read an ASCII PGM (P2) file back into a [0, 1] float array."""
    text = Path(path).read_text(encoding="ascii")
    tokens = [
        tok
        for line in text.splitlines()
        for tok in line.split("#", 1)[0].split()
    ]
    if not tokens or tokens[0] != "P2":
        raise SerializationError("not an ASCII PGM (P2) file")
    try:
        w, h, maxv = int(tokens[1]), int(tokens[2]), int(tokens[3])
        values = np.array([int(t) for t in tokens[4:]], dtype=np.float64)
    except (IndexError, ValueError) as exc:
        raise SerializationError(f"malformed PGM: {exc}") from exc
    if maxv < 1 or values.size != w * h:
        raise SerializationError(
            f"PGM header promises {w * h} pixels, found {values.size}"
        )
    if values.min() < 0 or values.max() > maxv:
        raise SerializationError("PGM pixel values exceed the stated maximum")
    return (values / maxv).reshape(h, w)


def write_pbm(image: np.ndarray, path: PathLike) -> None:
    """Write a strictly binary 2-D array as an ASCII PBM (P1) file.

    PBM convention: 1 = black; we map pixel value 1.0 -> 1.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise SerializationError(
            f"image must be 2-D, got shape {arr.shape}"
        )
    if not np.all((arr == 0.0) | (arr == 1.0)):
        raise SerializationError("PBM requires strictly binary pixel values")
    h, w = arr.shape
    lines = ["P1", f"{w} {h}"]
    lines += [" ".join(str(int(v)) for v in row) for row in arr]
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
