"""Experiment-result serialisation (JSON with transparent array handling).

Experiment harnesses return nested dictionaries mixing scalars, strings
and numpy arrays; these helpers serialise them losslessly to JSON (arrays
become nested lists tagged with their dtype so integers survive the round
trip) for EXPERIMENTS.md bookkeeping and offline analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.exceptions import SerializationError

__all__ = ["save_results", "load_results"]

PathLike = Union[str, Path]

_ARRAY_TAG = "__ndarray__"


def _encode(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return {
            _ARRAY_TAG: True,
            "dtype": str(obj.dtype),
            "data": obj.tolist(),
        }
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        if isinstance(obj, float) and not np.isfinite(obj):
            return {"__float__": repr(obj)}
        return obj
    raise SerializationError(
        f"cannot serialise object of type {type(obj).__name__}"
    )


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if obj.get(_ARRAY_TAG):
            return np.asarray(obj["data"], dtype=np.dtype(obj["dtype"]))
        if "__float__" in obj and len(obj) == 1:
            return float(obj["__float__"])
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def save_results(results: dict, path: PathLike) -> None:
    """Write a results dictionary to JSON.

    Examples
    --------
    >>> import tempfile, os, numpy as np
    >>> with tempfile.TemporaryDirectory() as d:
    ...     p = os.path.join(d, "r.json")
    ...     save_results({"acc": 97.75, "curve": np.arange(3)}, p)
    ...     out = load_results(p)
    >>> out["curve"].tolist()
    [0, 1, 2]
    """
    if not isinstance(results, dict):
        raise SerializationError(
            f"results must be a dict, got {type(results).__name__}"
        )
    Path(path).write_text(
        json.dumps(_encode(results), indent=2), encoding="utf-8"
    )


def load_results(path: PathLike) -> dict:
    """Read a results dictionary written by :func:`save_results`."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt results file: {exc}") from exc
    if not isinstance(raw, dict):
        raise SerializationError("results file does not contain a dict")
    return _decode(raw)
