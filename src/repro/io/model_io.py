"""Save/load trained networks and autoencoders (NPZ container).

The format stores a small JSON metadata string (architecture) plus the raw
parameter arrays, so a file round-trips to a network that is numerically
identical and structurally re-buildable without pickling arbitrary code.

Format history:

- **v1** (PR 0): architecture + parameters.
- **v2** (this version): additionally persists the pipeline state a
  round-trip used to drop — ``renormalize`` and the selected execution
  ``backend`` name — plus an optional free-form ``extra`` mapping used by
  higher layers (:meth:`repro.api.Codec.save` stores its ``CodecSpec``
  there).  v1 archives still load, with back-compat defaults
  (``renormalize=False``, ``backend="loop"``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.exceptions import SerializationError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork

__all__ = [
    "save_network",
    "load_network",
    "save_autoencoder",
    "load_autoencoder",
    "load_autoencoder_with_meta",
    "read_model_meta",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

PathLike = Union[str, Path]


def _npz_path(path: PathLike) -> Path:
    """The path ``np.savez`` will actually write (it appends ``.npz``)."""
    p = Path(path)
    return p if str(p).endswith(".npz") else Path(str(p) + ".npz")


def _read_path(path: PathLike) -> Path:
    """Resolve a load path symmetrically with the save-side suffixing.

    A checkpoint saved as ``model`` lands on disk as ``model.npz``; loads
    by either name must find it (the literal path wins if it exists).
    """
    p = Path(path)
    if p.exists():
        return p
    alt = _npz_path(p)
    return alt if alt.exists() else p


def _write_archive(path: PathLike, meta: dict, params: np.ndarray) -> Path:
    target = _npz_path(path)
    np.savez(
        target,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        params=params,
    )
    return target


def save_network(
    network: QuantumNetwork,
    path: PathLike,
    extra: Optional[dict] = None,
) -> Path:
    """Serialise a network; returns the written path (``.npz`` appended
    when missing, matching ``np.savez``).

    Examples
    --------
    >>> import tempfile, os
    >>> net = QuantumNetwork(4, 2)
    >>> with tempfile.TemporaryDirectory() as d:
    ...     _ = save_network(net, os.path.join(d, "net.npz"))
    ...     same = load_network(os.path.join(d, "net.npz"))
    >>> same.dim, same.num_layers
    (4, 2)
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "QuantumNetwork",
        "dim": network.dim,
        "num_layers": network.num_layers,
        "descending": network.descending,
        "allow_phase": network.allow_phase,
        "backend": network.backend.name,
    }
    if extra:
        meta["extra"] = extra
    return _write_archive(path, meta, network.get_flat_params())


def _read_meta(archive: np.lib.npyio.NpzFile, expected_kind: str) -> dict:
    if "meta" not in archive or "params" not in archive:
        raise SerializationError(
            "file is missing 'meta'/'params' entries — not a repro model file"
        )
    try:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt model metadata: {exc}") from exc
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise SerializationError(
            f"unsupported format version {meta.get('format_version')!r}; "
            f"this build reads versions {list(_SUPPORTED_VERSIONS)}"
        )
    if meta.get("kind") != expected_kind:
        raise SerializationError(
            f"expected a {expected_kind} file, got {meta.get('kind')!r}"
        )
    return meta


def read_model_meta(path: PathLike, expected_kind: str) -> dict:
    """The JSON metadata header of a saved model archive.

    Lets higher layers (e.g. :mod:`repro.api`) inspect a checkpoint —
    including the v2 ``extra`` mapping — without loading parameters.
    """
    with np.load(_read_path(path)) as archive:
        return _read_meta(archive, expected_kind)


def load_network(path: PathLike) -> QuantumNetwork:
    """Load a network saved by :func:`save_network`."""
    with np.load(_read_path(path)) as archive:
        meta = _read_meta(archive, "QuantumNetwork")
        net = QuantumNetwork(
            dim=int(meta["dim"]),
            num_layers=int(meta["num_layers"]),
            descending=bool(meta["descending"]),
            allow_phase=bool(meta["allow_phase"]),
            backend=str(meta.get("backend", "loop")),
        )
        net.set_flat_params(np.asarray(archive["params"], dtype=np.float64))
    return net


def save_autoencoder(
    autoencoder: QuantumAutoencoder,
    path: PathLike,
    extra: Optional[dict] = None,
) -> Path:
    """Serialise a full autoencoder (both networks + projection + pipeline).

    Returns the written path (``.npz`` appended when missing, matching
    ``np.savez``).

    Since format v2 the archive also carries ``renormalize`` and the
    execution ``backend`` name, so a round-tripped autoencoder produces
    bit-identical outputs; ``extra`` (any JSON-serialisable mapping) rides
    along in the header for callers layering richer artefacts on the same
    container.
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "QuantumAutoencoder",
        "dim": autoencoder.dim,
        "compressed_dim": autoencoder.compressed_dim,
        "compression_layers": autoencoder.uc.num_layers,
        "reconstruction_layers": autoencoder.ur.num_layers,
        "allow_phase": autoencoder.uc.allow_phase,
        "keep": autoencoder.projection.keep.tolist(),
        "renormalize": autoencoder.renormalize,
        "backend": autoencoder.backend_name,
    }
    if extra:
        meta["extra"] = extra
    return _write_archive(
        path,
        meta,
        np.concatenate(
            [autoencoder.uc.get_flat_params(), autoencoder.ur.get_flat_params()]
        ),
    )


def load_autoencoder(path: PathLike) -> QuantumAutoencoder:
    """Load an autoencoder saved by :func:`save_autoencoder`.

    v1 archives (which predate the pipeline-state fields) load with
    ``renormalize=False`` and the ``"loop"`` backend — the defaults every
    v1-era autoencoder actually ran with.
    """
    return load_autoencoder_with_meta(path)[0]


def load_autoencoder_with_meta(
    path: PathLike,
) -> tuple[QuantumAutoencoder, dict]:
    """Like :func:`load_autoencoder`, also returning the metadata header.

    One archive read serves callers that need both (e.g.
    :meth:`repro.api.Codec.load`, which reconstructs its spec from the
    v2 ``extra`` mapping).
    """
    with np.load(_read_path(path)) as archive:
        meta = _read_meta(archive, "QuantumAutoencoder")
        ae = QuantumAutoencoder(
            dim=int(meta["dim"]),
            compressed_dim=int(meta["compressed_dim"]),
            compression_layers=int(meta["compression_layers"]),
            reconstruction_layers=int(meta["reconstruction_layers"]),
            projection=Projection(int(meta["dim"]), meta["keep"]),
            allow_phase=bool(meta["allow_phase"]),
            backend=str(meta.get("backend", "loop")),
            renormalize=bool(meta.get("renormalize", False)),
        )
        params = np.asarray(archive["params"], dtype=np.float64)
        n_uc = ae.uc.num_parameters
        if params.size != n_uc + ae.ur.num_parameters:
            raise SerializationError(
                f"parameter count {params.size} does not match architecture"
            )
        ae.uc.set_flat_params(params[:n_uc])
        ae.ur.set_flat_params(params[n_uc:])
    return ae, meta
