"""Save/load trained networks and autoencoders (NPZ container).

The format stores a small JSON metadata string (architecture) plus the raw
parameter arrays, so a file round-trips to a network that is numerically
identical and structurally re-buildable without pickling arbitrary code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import SerializationError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.projection import Projection
from repro.network.quantum_network import QuantumNetwork

__all__ = [
    "save_network",
    "load_network",
    "save_autoencoder",
    "load_autoencoder",
]

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_network(network: QuantumNetwork, path: PathLike) -> None:
    """Serialise a network to ``path`` (``.npz``).

    Examples
    --------
    >>> import tempfile, os
    >>> net = QuantumNetwork(4, 2)
    >>> with tempfile.TemporaryDirectory() as d:
    ...     save_network(net, os.path.join(d, "net.npz"))
    ...     same = load_network(os.path.join(d, "net.npz"))
    >>> same.dim, same.num_layers
    (4, 2)
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "QuantumNetwork",
        "dim": network.dim,
        "num_layers": network.num_layers,
        "descending": network.descending,
        "allow_phase": network.allow_phase,
    }
    np.savez(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        params=network.get_flat_params(),
    )


def _read_meta(archive: np.lib.npyio.NpzFile, expected_kind: str) -> dict:
    if "meta" not in archive or "params" not in archive:
        raise SerializationError(
            "file is missing 'meta'/'params' entries — not a repro model file"
        )
    try:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt model metadata: {exc}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {meta.get('format_version')!r}"
        )
    if meta.get("kind") != expected_kind:
        raise SerializationError(
            f"expected a {expected_kind} file, got {meta.get('kind')!r}"
        )
    return meta


def load_network(path: PathLike) -> QuantumNetwork:
    """Load a network saved by :func:`save_network`."""
    with np.load(Path(path)) as archive:
        meta = _read_meta(archive, "QuantumNetwork")
        net = QuantumNetwork(
            dim=int(meta["dim"]),
            num_layers=int(meta["num_layers"]),
            descending=bool(meta["descending"]),
            allow_phase=bool(meta["allow_phase"]),
        )
        net.set_flat_params(np.asarray(archive["params"], dtype=np.float64))
    return net


def save_autoencoder(autoencoder: QuantumAutoencoder, path: PathLike) -> None:
    """Serialise a full autoencoder (both networks + projection)."""
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "QuantumAutoencoder",
        "dim": autoencoder.dim,
        "compressed_dim": autoencoder.compressed_dim,
        "compression_layers": autoencoder.uc.num_layers,
        "reconstruction_layers": autoencoder.ur.num_layers,
        "allow_phase": autoencoder.uc.allow_phase,
        "keep": autoencoder.projection.keep.tolist(),
    }
    np.savez(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        params=np.concatenate(
            [autoencoder.uc.get_flat_params(), autoencoder.ur.get_flat_params()]
        ),
    )


def load_autoencoder(path: PathLike) -> QuantumAutoencoder:
    """Load an autoencoder saved by :func:`save_autoencoder`."""
    with np.load(Path(path)) as archive:
        meta = _read_meta(archive, "QuantumAutoencoder")
        ae = QuantumAutoencoder(
            dim=int(meta["dim"]),
            compressed_dim=int(meta["compressed_dim"]),
            compression_layers=int(meta["compression_layers"]),
            reconstruction_layers=int(meta["reconstruction_layers"]),
            projection=Projection(int(meta["dim"]), meta["keep"]),
            allow_phase=bool(meta["allow_phase"]),
        )
        params = np.asarray(archive["params"], dtype=np.float64)
        n_uc = ae.uc.num_parameters
        if params.size != n_uc + ae.ur.num_parameters:
            raise SerializationError(
                f"parameter count {params.size} does not match architecture"
            )
        ae.uc.set_flat_params(params[:n_uc])
        ae.ur.set_flat_params(params[n_uc:])
    return ae
