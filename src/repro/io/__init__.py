"""Serialisation: trained models, images and experiment results.

- :mod:`~repro.io.model_io` — save/load network and autoencoder parameters
  (NPZ with a JSON header), so trained meshes can be re-programmed;
- :mod:`~repro.io.image_io` — portable PGM/PBM image files (no external
  imaging dependency in the offline environment);
- :mod:`~repro.io.results_io` — experiment-result dictionaries to/from
  JSON (arrays converted losslessly to nested lists).
"""

from repro.io.model_io import (
    save_network,
    load_network,
    save_autoencoder,
    load_autoencoder,
    load_autoencoder_with_meta,
    read_model_meta,
)
from repro.io.image_io import write_pgm, read_pgm, write_pbm
from repro.io.results_io import save_results, load_results

__all__ = [
    "save_network",
    "load_network",
    "save_autoencoder",
    "load_autoencoder",
    "load_autoencoder_with_meta",
    "read_model_meta",
    "write_pgm",
    "read_pgm",
    "write_pbm",
    "save_results",
    "load_results",
]
