"""Module runner: ``python -m repro fig4|fig5|table1|ablation ...``."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
