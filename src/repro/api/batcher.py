""":class:`MicroBatcher` — accumulate single requests into GEMM-sized ticks.

The ROADMAP's serving item: individual inference requests (one image
each) are worth almost nothing to a BLAS-backed pipeline — the win comes
from batching them into one ``(N, M)`` tick and serving the tick with a
single matrix product.  The batcher implements the standard micro-batching
policy:

- a tick flushes as soon as ``max_batch_size`` requests are pending
  (*size trigger*, served inline on the submitting thread — no idle wait
  under load), or
- ``flush_latency`` seconds after the first pending request arrived
  (*latency trigger*, a daemon timer — bounded tail latency under trickle
  traffic), or
- when the caller invokes :meth:`flush` / :meth:`close` explicitly.

Each :meth:`submit` returns a :class:`concurrent.futures.Future`
resolving to that request's reconstructed ``(N,)`` vector, so callers
from any threading model can await results.  Ticks wider than the
session's ``chunk_size`` are transparently streamed in column chunks
(:func:`repro.parallel.batch.chunked_apply`) — an oversized burst costs
memory-bounded GEMMs, never an error.

Requests may carry a **deadline** (an absolute ``time.monotonic()``
instant).  Expired requests are dropped at *drain* time — before the
GEMM, so dead work never widens a tick — and their futures fail with
:class:`~repro.exceptions.DeadlineExpired`.  :attr:`stats` exposes the
full `/healthz` surface: queue depth, served/rejected/expired counters
(all monotone non-decreasing) and a per-flush latency histogram.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Tuple

import numpy as np

from repro.encoding.amplitude import _ZERO_NORM_ATOL
from repro.exceptions import DeadlineExpired, ServingError
from repro.serving.stats import LatencyHistogram

__all__ = ["MicroBatcher"]

#: (sample, future, absolute monotonic deadline or None)
_Entry = Tuple[np.ndarray, Future, Optional[float]]


class MicroBatcher:
    """Request accumulator in front of an :class:`InferenceSession`.

    Parameters
    ----------
    session:
        Any object with ``reconstruct((M, N)) -> (M, N)`` and a ``dim``
        attribute — in practice an
        :class:`~repro.api.session.InferenceSession`.
    max_batch_size:
        Tick width that triggers an immediate flush.
    flush_latency:
        Seconds after the first pending request before a timer flush;
        ``None`` disables the timer (size/manual flushes only — the
        deterministic mode the tests and benchmarks use).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.network.autoencoder import QuantumAutoencoder
    >>> from repro.api.session import InferenceSession
    >>> ae = QuantumAutoencoder(4, 2, 2, 2).initialize(rng=np.random.default_rng(0))
    >>> batcher = MicroBatcher(InferenceSession(ae), max_batch_size=8,
    ...                        flush_latency=None)
    >>> futures = [batcher.submit([1.0, 0.0, 0.0, float(i)]) for i in range(3)]
    >>> batcher.flush()
    3
    >>> futures[0].result().shape
    (4,)
    >>> batcher.stats["queue_depth"], batcher.stats["rejected_requests"]
    (0, 0)
    """

    def __init__(
        self,
        session,
        max_batch_size: int = 64,
        flush_latency: Optional[float] = 0.005,
    ) -> None:
        if max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if flush_latency is not None and flush_latency <= 0:
            raise ServingError(
                f"flush_latency must be > 0 or None, got {flush_latency}"
            )
        self.session = session
        self.max_batch_size = int(max_batch_size)
        self.flush_latency = flush_latency
        self._lock = threading.Lock()
        self._pending: List[_Entry] = []
        self._timer: Optional[threading.Timer] = None
        self._closed = False
        # -- stats (read via the `stats` property) ---------------------
        self._served = 0
        self._ticks = 0
        self._largest_tick = 0
        self._rejected = 0
        self._expired = 0
        self._flush_hist = LatencyHistogram()

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests waiting for the next tick."""
        with self._lock:
            return len(self._pending)

    @property
    def oldest_pending_deadline(self) -> Optional[float]:
        """Earliest absolute deadline among queued requests (``None``
        when empty or none carry deadlines) — the front-end's adaptive
        flusher reads this to fire ticks before work goes stale."""
        with self._lock:
            deadlines = [d for _, _, d in self._pending if d is not None]
        return min(deadlines) if deadlines else None

    @property
    def stats(self) -> dict:
        """Counters + per-flush latency histogram for capacity planning.

        Every counter is monotone non-decreasing over the batcher's
        lifetime; ``queue_depth`` (= ``pending``, kept for
        back-compat) is the only gauge.  ``flush_latency`` is the
        :meth:`~repro.serving.stats.LatencyHistogram.summary` of
        wall-clock seconds each tick spent in the session call.
        """
        with self._lock:
            return {
                "served_requests": self._served,
                "ticks": self._ticks,
                "largest_tick": self._largest_tick,
                "pending": len(self._pending),
                "queue_depth": len(self._pending),
                "rejected_requests": self._rejected,
                "expired_requests": self._expired,
                "flush_latency": self._flush_hist.summary(),
            }

    # ------------------------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline: Optional[float] = None
    ) -> Future:
        """Enqueue one ``(N,)`` classical sample; returns its Future.

        Shape/finiteness/encodability are validated here, per request, so
        those failures raise at their own submit call instead of
        poisoning a whole tick (each such raise counts as a *rejection*
        in :attr:`stats`).  Failures only detectable inside the batched
        pass (a ``renormalize`` session hitting a sample with near-zero
        mass in the kept subspace) still fail tick-wide: the exception is
        set on every future of that tick.

        ``deadline`` is an absolute :func:`time.monotonic` instant; a
        request still queued when it passes is dropped at drain time
        (before the GEMM) and its future fails with
        :class:`~repro.exceptions.DeadlineExpired`.
        """
        try:
            arr = np.asarray(x, dtype=np.float64).ravel()
            if arr.size != self.session.dim:
                raise ServingError(
                    f"request length {arr.size} != session dim "
                    f"{self.session.dim}"
                )
            if not np.all(np.isfinite(arr)):
                raise ServingError("request contains NaN or Inf")
            if float(arr @ arr) <= _ZERO_NORM_ATOL:
                raise ServingError(
                    "all-zero request cannot be amplitude-encoded (Eq. 1 "
                    "divides by its norm)"
                )
        except ServingError:
            with self._lock:
                self._rejected += 1
            raise
        future: Future = Future()
        batch = None
        with self._lock:
            if self._closed:
                self._rejected += 1
                raise ServingError("micro-batcher is closed")
            self._pending.append((arr, future, deadline))
            if len(self._pending) >= self.max_batch_size:
                batch = self._drain_locked()
            elif self.flush_latency is not None and self._timer is None:
                # The callback closes over its own timer object so a
                # stale firing (cancelled after it already started) can
                # recognise it was superseded and stand down.
                timer = threading.Timer(
                    self.flush_latency,
                    lambda: self._timer_flush(timer),
                )
                timer.daemon = True
                timer.start()
                self._timer = timer
        if batch is not None:
            self._serve(batch)
        return future

    def flush(self) -> int:
        """Serve everything pending now; returns how many requests were
        actually delivered (caller-cancelled and deadline-expired ones
        are excluded, matching ``stats['served_requests']``)."""
        with self._lock:
            batch = self._drain_locked()
        return self._serve(batch)

    def close(self) -> None:
        """Flush pending requests and reject future submits (idempotent)."""
        with self._lock:
            self._closed = True
            batch = self._drain_locked()
        self._serve(batch)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drain_locked(self) -> List[_Entry]:
        """Take the pending list and disarm the timer; caller holds lock."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        return batch

    def _timer_flush(self, timer: threading.Timer) -> None:
        with self._lock:
            if self._timer is not timer:
                # A size-triggered or manual drain already consumed the
                # requests this timer was armed for (cancel() cannot stop
                # a timer that has started firing) — possibly arming a
                # newer timer for fresher requests.  Stand down rather
                # than flush someone else's partial tick early.
                return
            batch = self._drain_locked()
        self._serve(batch)

    def _serve(self, batch: List[_Entry]) -> int:
        """Run one tick outside the lock: one GEMM for the whole batch.

        Returns the number of requests delivered (cancelled and expired
        excluded).  Expired requests are failed *before* the GEMM so a
        tick never spends FLOPs on work nobody is waiting for.
        """
        if not batch:
            return 0
        now = time.monotonic()
        expired = [
            (arr, future)
            for arr, future, deadline in batch
            if deadline is not None and deadline <= now
        ]
        for _, future in expired:
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    DeadlineExpired(
                        "request deadline passed while queued for a tick"
                    )
                )
        if expired:
            with self._lock:
                self._expired += len(expired)
            alive = [
                entry for entry in batch
                if not (entry[2] is not None and entry[2] <= now)
            ]
        else:
            alive = batch
        # Claim each future first; a caller-cancelled one must neither
        # raise InvalidStateError here nor strand the rest of its tick.
        live = [
            (i, future)
            for i, (_, future, _) in enumerate(alive)
            if future.set_running_or_notify_cancel()
        ]
        if not live:
            return 0  # every request cancelled/expired; skip the GEMM
        tick = np.stack([arr for arr, _, _ in alive])
        t0 = time.perf_counter()
        try:
            out = self.session.reconstruct(tick)
        except Exception as exc:
            with self._lock:
                self._flush_hist.record(time.perf_counter() - t0)
            for _, future in live:
                future.set_exception(exc)
            return 0
        seconds = time.perf_counter() - t0
        for i, future in live:
            future.set_result(out[i])
        with self._lock:
            self._served += len(live)
            self._ticks += 1
            self._largest_tick = max(self._largest_tick, len(alive))
            self._flush_hist.record(seconds)
        return len(live)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"MicroBatcher(max_batch_size={self.max_batch_size}, "
            f"flush_latency={self.flush_latency}, {state})"
        )
