""":class:`CodecSpec` — the single frozen description of a codec.

Before this module existed the knobs of the paper's pipeline were split
between two surfaces: the *network* knobs (``dim``, ``compressed_dim``,
layer counts, ``allow_phase``, ``renormalize``, the projection) lived in
``QuantumAutoencoder``'s constructor, while the *execution* knobs
(``backend``, ``grad_engine``, gradient method, optimizer, loss mode)
lived in :class:`~repro.experiments.config.PaperConfig` and ``Trainer``
keyword arguments.  ``CodecSpec`` unifies both into one frozen, hashable,
JSON-round-trippable dataclass; :class:`~repro.api.codec.Codec` is
configured by it, checkpoints embed it, and ``PaperConfig`` now builds its
autoencoder and trainer *through* it (thin-layer delegation), so there is
exactly one code path from a description to a runnable pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Literal, Optional, Tuple

import numpy as np

from repro.exceptions import NetworkConfigError
from repro.network.autoencoder import QuantumAutoencoder
from repro.network.projection import Projection

__all__ = ["CodecSpec"]

OptimizerName = Literal["gd", "momentum", "adam"]
TargetName = Literal["pca", "restrict", "uniform"]
LossMode = Literal["sum", "mean"]


@dataclass(frozen=True)
class CodecSpec:
    """Every knob of a compression/reconstruction codec, paper defaults.

    The first block mirrors the network architecture (Eqs. 3-4), the
    second the execution/training stack layered on it since PR 1-2.
    Instances are immutable — use :meth:`with_` for functional updates —
    and serialise losslessly via :meth:`to_dict` / :meth:`from_dict`.

    Examples
    --------
    >>> spec = CodecSpec()
    >>> spec.dim, spec.compressed_dim, spec.compression_layers
    (16, 4, 12)
    >>> spec.with_(backend="fused").backend
    'fused'
    >>> CodecSpec.from_dict(spec.to_dict()) == spec
    True
    """

    # -- network (Eqs. 3-4, Fig. 1) ------------------------------------
    dim: int = 16
    compressed_dim: int = 4
    compression_layers: int = 12
    reconstruction_layers: int = 14
    allow_phase: bool = False
    renormalize: bool = False
    #: Kept basis-state indices of ``P1``; ``None`` means the paper's
    #: default layout (the *last* ``compressed_dim`` states).
    projection: Optional[Tuple[int, ...]] = None

    # -- execution / training ------------------------------------------
    backend: str = "loop"
    grad_engine: str = "batched"
    gradient_method: str = "adjoint"
    optimizer: OptimizerName = "momentum"
    learning_rate: float = 0.01
    momentum: float = 0.9
    iterations: int = 150
    loss_mode: LossMode = "sum"
    target: TargetName = "pca"
    seed: int = 2024
    #: Mini-batch size per gradient step; ``None`` = full batch (the
    #: paper's regime).
    batch_size: Optional[int] = None
    #: Data-parallel gradient execution: ``None`` (single-process),
    #: ``"pool"`` or ``"pool:K"`` — see ``Trainer(parallel=...)``.
    parallel: Optional[str] = None

    # -- hardware-noise model (repro.noise) -----------------------------
    #: Channel description for noise-aware training and noisy evaluation:
    #: ``None`` (ideal), a preset name (``"mild" | "lossy" | "harsh"``) or
    #: a :meth:`repro.noise.NoiseModel.to_json` string.  Stored in the
    #: canonical form of :meth:`~repro.noise.NoiseModel.spec_string` so
    #: equal models compare equal as specs.
    noise: Optional[str] = None
    #: Jitter realizations averaged per gradient step when ``noise`` has
    #: ``theta_sigma > 0`` — see ``Trainer(noise_trajectories=...)``.
    noise_trajectories: int = 8

    # -- imaging front-end (repro.imaging, wire format v2) --------------
    #: Tile side ``T`` of the image pipeline; ``None`` means
    #: ``sqrt(dim)`` (the codec eats one ``T^2``-vector per tile).
    tile_size: Optional[int] = None
    #: Per-tile transform: ``"dct"`` (zig-zag ordered) or ``"pixel"``.
    tile_transform: str = "dct"
    #: JPEG-style quality knob (1-100) for the coefficient quantizer.
    tile_quality: int = 75
    #: Tile padding for non-multiple image dims: ``"edge"`` or ``"zero"``.
    tile_pad: str = "edge"
    #: Signed bits per quantized code amplitude on the image wire.
    code_bits: int = 8

    def __post_init__(self) -> None:
        if self.compressed_dim >= self.dim:
            raise NetworkConfigError(
                f"compressed_dim={self.compressed_dim} must be < "
                f"dim={self.dim}"
            )
        if self.iterations < 1:
            raise NetworkConfigError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.learning_rate <= 0:
            raise NetworkConfigError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.optimizer not in ("gd", "momentum", "adam"):
            raise NetworkConfigError(f"unknown optimizer {self.optimizer!r}")
        if self.target not in ("pca", "restrict", "uniform"):
            raise NetworkConfigError(f"unknown target {self.target!r}")
        if self.loss_mode not in ("sum", "mean"):
            raise NetworkConfigError(
                f"loss_mode must be 'sum' or 'mean', got {self.loss_mode!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise NetworkConfigError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )
        from repro.parallel.reducer import validate_parallel_spec

        object.__setattr__(
            self,
            "parallel",
            validate_parallel_spec(self.parallel, NetworkConfigError),
        )
        # Noise spec normalizes to NoiseModel's canonical string so two
        # specs describing the same channels hash/compare equal.
        from repro.exceptions import NoiseError
        from repro.noise.model import NoiseModel

        try:
            model = NoiseModel.from_spec(self.noise)
        except NoiseError as exc:
            raise NetworkConfigError(f"invalid noise spec: {exc}") from exc
        object.__setattr__(
            self, "noise", None if model is None else model.spec_string()
        )
        if not isinstance(self.noise_trajectories, int) or isinstance(
            self.noise_trajectories, bool
        ) or self.noise_trajectories < 1:
            raise NetworkConfigError(
                "noise_trajectories must be an int >= 1, got "
                f"{self.noise_trajectories!r}"
            )
        # Imaging front-end knobs (validated here so a spec embedded in a
        # checkpoint can never describe an unusable image pipeline).
        from repro.imaging.tiler import PAD_MODES
        from repro.imaging.transform import TRANSFORMS

        if self.tile_size is not None:
            tile = int(self.tile_size)
            if tile < 1:
                raise NetworkConfigError(
                    f"tile_size must be >= 1 or None, got {self.tile_size}"
                )
            if tile * tile != self.dim:
                raise NetworkConfigError(
                    f"tile_size^2 = {tile * tile} must equal dim="
                    f"{self.dim} (one tile vector per codec input)"
                )
            object.__setattr__(self, "tile_size", tile)
        if self.tile_transform not in TRANSFORMS:
            raise NetworkConfigError(
                f"tile_transform must be one of {TRANSFORMS}, got "
                f"{self.tile_transform!r}"
            )
        if not 1 <= self.tile_quality <= 100:
            raise NetworkConfigError(
                f"tile_quality must be in [1, 100], got {self.tile_quality}"
            )
        if self.tile_pad not in PAD_MODES:
            raise NetworkConfigError(
                f"tile_pad must be one of {PAD_MODES}, got {self.tile_pad!r}"
            )
        if not 2 <= self.code_bits <= 16:
            raise NetworkConfigError(
                f"code_bits must be in [2, 16], got {self.code_bits}"
            )
        if self.projection is not None:
            object.__setattr__(
                self, "projection", tuple(int(k) for k in self.projection)
            )
            if len(self.projection) != self.compressed_dim:
                raise NetworkConfigError(
                    f"projection keeps {len(self.projection)} dims but "
                    f"compressed_dim={self.compressed_dim}"
                )
        # Registry-backed names validate against their single source of
        # truth; Projection re-checks index bounds.
        from repro.backends import validate_backend_name
        from repro.training.gradients import (
            validate_gradient_engine,
            available_gradient_methods,
        )

        validate_backend_name(self.backend, NetworkConfigError)
        validate_gradient_engine(self.grad_engine, NetworkConfigError)
        if self.gradient_method not in available_gradient_methods():
            raise NetworkConfigError(
                f"unknown gradient method {self.gradient_method!r}; "
                f"available: {available_gradient_methods()}"
            )
        self.build_projection()

    # ------------------------------------------------------------------
    def with_(self, **changes) -> "CodecSpec":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-serialisable mapping; inverse of :meth:`from_dict`."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        if out["projection"] is not None:
            out["projection"] = list(out["projection"])
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CodecSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys are rejected (a checkpoint from a newer format should
        fail loudly, not half-load).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise NetworkConfigError(
                f"unknown CodecSpec fields {sorted(unknown)}"
            )
        kwargs = dict(data)
        if kwargs.get("projection") is not None:
            kwargs["projection"] = tuple(kwargs["projection"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # factories — the one code path from description to runnable objects
    # ------------------------------------------------------------------
    def build_projection(self) -> Projection:
        """The ``P1`` this spec describes."""
        if self.projection is None:
            return Projection.last(self.dim, self.compressed_dim)
        return Projection(self.dim, self.projection)

    def build_noise_model(self):
        """The :class:`~repro.noise.NoiseModel` this spec describes.

        ``None`` when the spec is ideal (``noise=None``).
        """
        from repro.noise.model import NoiseModel

        return NoiseModel.from_spec(self.noise)

    def build_autoencoder(self) -> QuantumAutoencoder:
        """A fresh autoencoder, parameters initialised from ``seed``."""
        ae = QuantumAutoencoder(
            dim=self.dim,
            compressed_dim=self.compressed_dim,
            compression_layers=self.compression_layers,
            reconstruction_layers=self.reconstruction_layers,
            projection=(
                None if self.projection is None else self.build_projection()
            ),
            allow_phase=self.allow_phase,
            backend=self.backend,
            renormalize=self.renormalize,
        )
        ae.initialize("uniform", rng=np.random.default_rng(self.seed))
        return ae

    def build_optimizer(self):
        """A fresh optimizer per network (Algorithm 1 trains two)."""
        from repro.training.optimizers import Adam, GradientDescent, MomentumGD

        if self.optimizer == "gd":
            return GradientDescent(self.learning_rate)
        if self.optimizer == "momentum":
            return MomentumGD(self.learning_rate, self.momentum)
        # The 5x factor is the PaperConfig calibration: Adam at the raw
        # paper eta undershoots the Fig. 4c losses in 150 iterations.
        return Adam(self.learning_rate * 5.0)

    def build_trainer(
        self,
        record_theta_every: Optional[int] = 1,
        trace_sample: Optional[int] = None,
    ):
        """A :class:`~repro.training.trainer.Trainer` wired to this spec."""
        from repro.training.trainer import Trainer

        return Trainer(
            iterations=self.iterations,
            learning_rate=self.learning_rate,
            gradient_method=self.gradient_method,
            backend=self.backend,
            grad_engine=self.grad_engine,
            optimizer_factory=self.build_optimizer,
            trace_sample=trace_sample,
            record_theta_every=record_theta_every,
            update_reduction=self.loss_mode,
            batch_size=self.batch_size,
            parallel=self.parallel,
            noise=self.noise,
            noise_trajectories=self.noise_trajectories,
        )

    def build_target_strategy(
        self, autoencoder: QuantumAutoencoder, X: np.ndarray
    ):
        """The compression-target strategy ``fit`` trains against."""
        from repro.network.targets import (
            TruncatedInputTarget,
            UniformSubspaceTarget,
        )

        if self.target == "pca":
            return TruncatedInputTarget.from_pca(autoencoder.projection, X)
        if self.target == "restrict":
            return TruncatedInputTarget(autoencoder.projection)
        return UniformSubspaceTarget(autoencoder.projection)

    @classmethod
    def from_paper_config(cls, config) -> "CodecSpec":
        """Lift a :class:`~repro.experiments.config.PaperConfig` into a spec.

        Duck-typed on the config's attributes so this module never imports
        the experiments layer (which imports *us*).
        """
        return cls(
            dim=config.dim,
            compressed_dim=config.compressed_dim,
            compression_layers=config.compression_layers,
            reconstruction_layers=config.reconstruction_layers,
            allow_phase=config.allow_phase,
            backend=config.backend,
            grad_engine=config.grad_engine,
            gradient_method=config.gradient_method,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            momentum=config.momentum,
            iterations=config.iterations,
            target=config.target,
            seed=config.seed,
            batch_size=getattr(config, "batch_size", None),
            parallel=getattr(config, "parallel", None),
            noise=getattr(config, "noise", None),
            noise_trajectories=getattr(config, "noise_trajectories", 8),
        )
