""":class:`Codec` — the estimator-style facade over the full pipeline.

One object that can be trained, applied, persisted and compiled for
serving, replacing the four-surface dance (``QuantumAutoencoder`` +
``Trainer`` + ``PaperConfig`` + ``repro.io.model_io``) with::

    codec = Codec(CodecSpec(backend="fused"))
    codec.fit(X)
    payload = codec.compress(X)          # (d, M) codes + norm scalars
    x_hat = codec.decompress(payload)    # == codec.forward(X).x_hat, bitwise
    codec.save("model.npz"); Codec.load("model.npz")

The compressed representation travels as a :class:`CompressedBatch`: the
``d`` kept amplitudes per sample plus the squared input norm (Eq. 2's
classical side channel) — exactly the payload the paper's transmission
scenario sends per image.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.api.spec import CodecSpec
from repro.encoding.amplitude import decode_batch
from repro.exceptions import DimensionError
from repro.network.autoencoder import AutoencoderOutput, QuantumAutoencoder
from repro.training.loss import SquaredErrorLoss
from repro.training.metrics import mse, paper_accuracy, pixel_accuracy
from repro.training.trainer import TrainingResult

__all__ = ["Codec", "CompressedBatch"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CompressedBatch:
    """The wire format of a compressed batch.

    Attributes
    ----------
    codes:
        ``(d, M)`` kept amplitudes (complex for phase-bearing codecs).
    squared_norms:
        ``(M,)`` squared input norms — Eq. 2's classical side channel,
        one scalar per sample.
    """

    codes: np.ndarray
    squared_norms: np.ndarray

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes)
        sq = np.asarray(self.squared_norms, dtype=np.float64).ravel()
        if codes.ndim != 2:
            raise DimensionError(
                f"codes must be (d, M), got shape {codes.shape}"
            )
        if sq.size != codes.shape[1]:
            raise DimensionError(
                f"{sq.size} norms for {codes.shape[1]} samples"
            )
        object.__setattr__(self, "codes", codes)
        object.__setattr__(self, "squared_norms", sq)

    @property
    def compressed_dim(self) -> int:
        return int(self.codes.shape[0])

    @property
    def num_samples(self) -> int:
        return int(self.codes.shape[1])

    @property
    def floats_per_sample(self) -> int:
        """Classical payload size: ``d`` amplitudes + the norm scalar."""
        return self.compressed_dim + 1

    @classmethod
    def coerce(
        cls,
        compressed: "Union[CompressedBatch, np.ndarray]",
        squared_norms: Optional[np.ndarray] = None,
    ) -> "CompressedBatch":
        """Normalise the two accepted payload forms into one.

        Every ``decompress`` surface (:class:`Codec`,
        :class:`~repro.api.session.InferenceSession`) accepts either a
        :class:`CompressedBatch` or a raw ``(d, M)`` code matrix plus
        its norms; this is the single unpacking path.
        """
        if isinstance(compressed, CompressedBatch):
            if squared_norms is not None:
                raise DimensionError(
                    "pass squared_norms only with a raw code matrix — a "
                    "CompressedBatch already carries its own"
                )
            return compressed
        if squared_norms is None:
            raise DimensionError(
                "raw code matrices need their squared_norms; pass a "
                "CompressedBatch or both arrays"
            )
        return cls(codes=compressed, squared_norms=squared_norms)

    # -- JSON wire form (repro.io.results_io container) ----------------
    def to_results(self) -> dict:
        """A :func:`repro.io.results_io.save_results`-safe mapping.

        Complex codes (phase-bearing codecs) split into real/imaginary
        planes since JSON has no complex scalar; :meth:`from_results`
        reassembles either form.  This is the one serialisation of the
        wire payload — the CLI and any network front-end share it.
        """
        out = {
            "squared_norms": self.squared_norms,
            "compressed_dim": self.compressed_dim,
            "num_samples": self.num_samples,
        }
        if np.iscomplexobj(self.codes):
            out["codes_real"] = self.codes.real.copy()
            out["codes_imag"] = self.codes.imag.copy()
        else:
            out["codes"] = self.codes
        return out

    @classmethod
    def from_results(cls, results: dict) -> "CompressedBatch":
        """Rebuild a payload from :meth:`to_results` output."""
        if "codes" in results:
            codes = np.asarray(results["codes"])
        elif "codes_real" in results and "codes_imag" in results:
            codes = np.asarray(results["codes_real"]) + 1j * np.asarray(
                results["codes_imag"]
            )
        else:
            raise DimensionError(
                "payload mapping has neither 'codes' nor "
                "'codes_real'/'codes_imag'"
            )
        return cls(
            codes=codes,
            squared_norms=np.asarray(results["squared_norms"]),
        )


class Codec:
    """Trainable compress/decompress pipeline configured by a CodecSpec.

    Parameters
    ----------
    spec:
        The frozen configuration; defaults to the paper's Section IV-A
        values.  Keyword overrides are applied via ``spec.with_(...)``.

    Examples
    --------
    >>> import numpy as np
    >>> codec = Codec(dim=4, compressed_dim=2, compression_layers=2,
    ...               reconstruction_layers=2, iterations=2)
    >>> X = np.abs(np.random.default_rng(0).normal(size=(6, 4))) + 0.1
    >>> payload = codec.fit(X).compress(X)
    >>> payload.codes.shape, codec.decompress(payload).shape
    ((2, 6), (6, 4))
    """

    def __init__(self, spec: Optional[CodecSpec] = None, **overrides) -> None:
        spec = spec if spec is not None else CodecSpec()
        if overrides:
            spec = spec.with_(**overrides)
        self.spec = spec
        self._ae = spec.build_autoencoder()
        self.last_result: Optional[TrainingResult] = None
        # Checkpoints record whether the parameters were ever fitted;
        # the training history itself is not serialised.
        self._fitted_on_load = False

    # ------------------------------------------------------------------
    @property
    def autoencoder(self) -> QuantumAutoencoder:
        """The underlying pipeline (shared, not a copy)."""
        return self._ae

    @property
    def dim(self) -> int:
        return self._ae.dim

    @property
    def compressed_dim(self) -> int:
        return self._ae.compressed_dim

    @property
    def is_fitted(self) -> bool:
        """Whether the parameters come from training (this process or a
        reloaded checkpoint); ``last_result`` only exists for the former."""
        return self.last_result is not None or self._fitted_on_load

    def compression_ratio(self) -> float:
        return self._ae.compression_ratio()

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, X, target_strategy=None) -> "Codec":
        """Train both networks on ``(M, N)`` classical data (Algorithm 1).

        ``X`` may be an ``(M, N)`` array, an
        :class:`~repro.data.dataset.ImageDataset`, a
        :class:`~repro.data.stream.MiniBatchStream` (trained with the
        stream's own batch size unless the spec sets one), or a path to a
        ``.npy``/``.npz``/results-JSON data file.  ``target_strategy``
        defaults to the spec's ``target`` choice (the calibrated
        per-sample PCA target).  Returns ``self``; the full
        :class:`~repro.training.trainer.TrainingResult` is kept on
        :attr:`last_result`.
        """
        from repro.data.dataset import ImageDataset
        from repro.data.stream import MiniBatchStream, load_data_matrix

        spec = self.spec
        if isinstance(X, MiniBatchStream):
            if spec.batch_size is None:
                spec = spec.with_(batch_size=X.batch_size)
            X = X.materialize()
        elif isinstance(X, ImageDataset):
            X = X.matrix()
        elif isinstance(X, (str, Path)):
            X = load_data_matrix(X)
        X = np.asarray(X, dtype=np.float64)
        if target_strategy is None:
            target_strategy = spec.build_target_strategy(self._ae, X)
        trainer = spec.build_trainer(record_theta_every=None)
        self.last_result = trainer.train(
            self._ae, X, target_strategy=target_strategy
        )
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray) -> AutoencoderOutput:
        """The full Fig.-1 pass with every intermediate artefact."""
        return self._ae.forward(X)

    def compress(self, X: np.ndarray) -> CompressedBatch:
        """Encode and compress ``(M, N)`` data into its wire payload.

        Bit-identical to the ``compact_codes``/``squared_norms`` a full
        :meth:`forward` produces — only the reconstruction half is
        skipped.
        """
        encoded = self._ae.codec.encode(np.asarray(X, dtype=np.float64))
        compressed = self._ae.compression.compress(
            encoded.states, renormalize=self._ae.renormalize
        )
        return CompressedBatch(
            codes=self._ae.projection.restrict(compressed),
            squared_norms=encoded.squared_norms,
        )

    def decompress(
        self,
        compressed: Union[CompressedBatch, np.ndarray],
        squared_norms: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Reconstruct ``(M, N)`` classical data from a compressed payload.

        Accepts a :class:`CompressedBatch` or a raw ``(d, M)`` code matrix
        plus its norms.  ``decompress(compress(X))`` equals
        ``forward(X).x_hat`` bitwise: the embedded codes reproduce the
        projected state exactly (discarded rows are exact zeros), so the
        reconstruction network sees identical inputs.
        """
        payload = CompressedBatch.coerce(compressed, squared_norms)
        return self._ae.reconstruct_from_codes(
            payload.codes, payload.squared_norms
        )

    def evaluate(
        self,
        X: np.ndarray,
        *,
        noise=None,
        noise_trajectories: Optional[int] = None,
        noise_seed: int = 0,
        noise_path: str = "trajectory",
        pool=None,
    ) -> dict:
        """Round-trip quality metrics of this codec on ``(M, N)`` data.

        Returns Eq. 10 accuracy (thresholded and raw), MSE, the Eq. 5
        reconstruction loss and the mean probability mass surviving
        ``P1`` (1 - the paper's compression information loss).

        When ``noise`` is given (anything
        :meth:`repro.noise.NoiseModel.from_spec` accepts — a preset name,
        a JSON string, a mapping or a model), the same data is also run
        through the noisy execution path and the ``noisy_*`` /
        ``mean_fidelity`` / ``mean_transmission`` keys of
        :func:`repro.noise.evaluate_noisy` are merged in.
        ``noise_trajectories`` defaults to the spec's value;
        ``noise_path`` selects ``"trajectory"`` (default) or the exact
        ``"density"`` fold; ``pool`` shards trajectory realizations over
        a :class:`~repro.parallel.WorkerPool`.
        """
        X = np.asarray(X, dtype=np.float64)
        out = self._ae.forward(X)
        reference = decode_batch(
            out.encoded.amplitudes(), out.encoded.squared_norms
        )
        loss = SquaredErrorLoss(reduction="sum")
        metrics = {
            "accuracy": paper_accuracy(out.x_hat, reference),
            "pixel_accuracy": pixel_accuracy(out.x_hat, reference),
            "mse": mse(out.x_hat, reference),
            "reconstruction_loss": loss.value(
                out.output_amplitudes, out.encoded.amplitudes()
            ),
            "mean_retained_probability": float(
                np.mean(out.retained_probability)
            ),
        }
        from repro.noise.model import NoiseModel

        model = NoiseModel.from_spec(noise)
        if model is not None:
            from repro.noise.evaluate import evaluate_noisy

            metrics.update(
                evaluate_noisy(
                    self._ae,
                    X,
                    model,
                    trajectories=(
                        noise_trajectories
                        if noise_trajectories is not None
                        else self.spec.noise_trajectories
                    ),
                    seed=noise_seed,
                    pool=pool,
                    path=noise_path,
                )
            )
        return metrics

    def degradation_curve(
        self,
        X: np.ndarray,
        noise=None,
        *,
        scales=(0.0, 0.25, 0.5, 0.75, 1.0),
        noise_trajectories: Optional[int] = None,
        noise_seed: int = 0,
        noise_path: str = "trajectory",
        pool=None,
    ) -> list:
        """Graceful-degradation sweep of this codec under scaled noise.

        ``noise`` defaults to the spec's own model and must resolve to a
        non-ideal :class:`~repro.noise.NoiseModel`; each entry of
        ``scales`` multiplies its channel strengths (shots kept fixed).
        Returns the record list of :func:`repro.noise.degradation_curve`.
        """
        from repro.exceptions import NoiseError
        from repro.noise.evaluate import degradation_curve
        from repro.noise.model import NoiseModel

        model = NoiseModel.from_spec(
            noise if noise is not None else self.spec.noise
        )
        if model is None:
            raise NoiseError(
                "degradation_curve needs a noise model: pass noise=... or "
                "configure the spec with one"
            )
        return degradation_curve(
            self._ae,
            np.asarray(X, dtype=np.float64),
            model,
            scales=scales,
            trajectories=(
                noise_trajectories
                if noise_trajectories is not None
                else self.spec.noise_trajectories
            ),
            seed=noise_seed,
            pool=pool,
            path=noise_path,
        )

    # ------------------------------------------------------------------
    # imaging front-end (repro.imaging, wire format v2)
    # ------------------------------------------------------------------
    def compress_image(self, image: np.ndarray, **overrides):
        """Compress an arbitrary-size ``[0, 1]`` grayscale image.

        Delegates to :func:`repro.imaging.compress_image` with this
        spec's tile/transform/quantization knobs (``tile_size``,
        ``tile_transform``, ``tile_quality``, ``tile_pad``,
        ``code_bits``) as defaults; keyword ``overrides`` win.  Returns
        a :class:`~repro.imaging.container.CompressedImage`.
        """
        from repro.imaging import compress_image

        return compress_image(image, self, **self._imaging_kwargs(overrides))

    def decompress_image(self, compressed) -> np.ndarray:
        """Reconstruct an image from a wire-format-v2 container."""
        from repro.imaging import decompress_image

        return decompress_image(compressed, self)

    def _imaging_kwargs(self, overrides: dict) -> dict:
        spec = self.spec
        kwargs = {
            "tile_size": spec.tile_size,
            "transform": spec.tile_transform,
            "quality": spec.tile_quality,
            "pad_mode": spec.tile_pad,
            "code_bits": spec.code_bits,
        }
        kwargs.update(overrides)
        return kwargs

    # ------------------------------------------------------------------
    # persistence — the repro.io npz container, spec riding in the header
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Write a v2 checkpoint: autoencoder archive + embedded spec.

        The file is a plain :func:`repro.io.model_io.save_autoencoder`
        archive (so ``load_autoencoder`` still reads it) with the full
        :class:`CodecSpec` stored under ``extra.spec``.  Returns the
        written path (``.npz`` appended when missing).
        """
        from repro.io.model_io import save_autoencoder

        return save_autoencoder(
            self._ae,
            path,
            extra={"spec": self.spec.to_dict(), "fitted": self.is_fitted},
        )

    @classmethod
    def load(cls, path: PathLike) -> "Codec":
        """Rebuild a codec from :meth:`save` output or any autoencoder
        archive (v1 or v2).

        Archives without an embedded spec (plain ``save_autoencoder``
        output, including every v1 file) get a spec synthesised from the
        architecture header plus default execution knobs.
        """
        from repro.io.model_io import load_autoencoder_with_meta

        ae, meta = load_autoencoder_with_meta(path)
        extra = meta.get("extra") or {}
        spec_dict = extra.get("spec")
        if spec_dict is not None:
            spec = CodecSpec.from_dict(spec_dict)
            # The archive header only stores the backend's registry name;
            # the spec keeps the full spelling (e.g. 'sharded:4'), so
            # restore any configuration the header spelling dropped.
            if spec.backend != ae.backend_name:
                ae.set_backend(spec.backend)
        else:
            spec = CodecSpec(
                dim=ae.dim,
                compressed_dim=ae.compressed_dim,
                compression_layers=ae.uc.num_layers,
                reconstruction_layers=ae.ur.num_layers,
                allow_phase=ae.uc.allow_phase,
                renormalize=ae.renormalize,
                projection=tuple(int(k) for k in ae.projection.keep),
                backend=ae.backend_name,
            )
        codec = cls.__new__(cls)
        codec.spec = spec
        codec._ae = ae
        codec.last_result = None
        codec._fitted_on_load = bool(extra.get("fitted", False))
        return codec

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def session(self, **kwargs):
        """Compile an immutable :class:`~repro.api.session.InferenceSession`.

        Keyword arguments are forwarded (``max_batch_size``,
        ``flush_latency``, ``chunk_size``, ``pool``).
        """
        from repro.api.session import InferenceSession

        return InferenceSession.from_codec(self, **kwargs)

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return (
            f"Codec(dim={self.dim}, d={self.compressed_dim}, "
            f"lC={self._ae.uc.num_layers}, lR={self._ae.ur.num_layers}, "
            f"backend={self._ae.backend_name!r}, {state})"
        )
